"""The concurrent multi-session server, end to end.

Satellite suite for the asyncio front end: serial-replay equality under
concurrent mixed workloads, snapshot-read isolation while a writer
commits, shared plan-cache behaviour over the wire, per-tenant admission
refusal, ``stop()`` drain semantics (both servers), and chunked result
streaming.  Parity: with one client the async server's results are
identical to the threaded server's across all six UDF designs.

The per-table write-lock gate (ROADMAP): concurrent writers on disjoint
tables must (a) produce exactly the state a serial replay produces —
including after a durable close/reopen of the WAL-backed database — and
(b) genuinely not serialize: a stalled writer on table A must not block
a writer on table B.
"""

import threading
import time

import pytest

from repro.core.designs import Design
from repro.database import Database
from repro.server import protocol
from repro.server.aserver import AsyncDatabaseServer
from repro.server.client import Client, ServerReportedError
from repro.server.server import DatabaseServer

SETUP = [
    "CREATE TABLE nums (id INT, v FLOAT)",
    "INSERT INTO nums VALUES (1, 1.5), (2, 2.5), (3, NULL), "
    "(4, 4.5), (5, 5.5)",
]


def make_db():
    database = Database()
    for sql in SETUP:
        database.execute(sql)
    return database


@pytest.fixture
def adb():
    database = make_db()
    with AsyncDatabaseServer(database, trust_all_clients=True) as server:
        yield server
    database.close()


# -- host payloads for the native designs (resolved by module:attr) ----------

def triple_native(x):
    return x * 3 + 1


#: Deterministic blocking for drain/admission tests: the UDF signals
#: ``STARTED`` and then parks on ``GATE`` until the test releases it.
GATE = threading.Event()
STARTED = threading.Event()


def gated_native(x):
    STARTED.set()
    GATE.wait(10)
    return x


@pytest.fixture
def gate():
    GATE.clear()
    STARTED.clear()
    yield
    GATE.set()


GATED_UDF = (
    "CREATE FUNCTION gated(int) RETURNS int LANGUAGE NATIVE "
    "DESIGN INTEGRATED AS "
    "'tests.server.test_concurrent_server:gated_native'"
)


# -- parity: one client, all six designs -------------------------------------

DESIGN_SQL = {
    Design.NATIVE_INTEGRATED:
        "LANGUAGE NATIVE DESIGN INTEGRATED AS "
        "'tests.server.test_concurrent_server:triple_native'",
    Design.NATIVE_SFI:
        "LANGUAGE NATIVE DESIGN SFI AS "
        "'tests.server.test_concurrent_server:triple_native'",
    Design.NATIVE_ISOLATED:
        "LANGUAGE NATIVE DESIGN ISOLATED AS "
        "'tests.server.test_concurrent_server:triple_native'",
    Design.SANDBOX_JIT:
        "LANGUAGE JAGUAR DESIGN SANDBOX AS "
        "'def arith(x: int) -> int:\n    return x * 3 + 1'",
    Design.SANDBOX_INTERP:
        "LANGUAGE JAGUAR DESIGN SANDBOX_INTERP AS "
        "'def arith(x: int) -> int:\n    return x * 3 + 1'",
    Design.SANDBOX_ISOLATED:
        "LANGUAGE JAGUAR DESIGN SANDBOX_ISOLATED AS "
        "'def arith(x: int) -> int:\n    return x * 3 + 1'",
}

PARITY_SQL = "SELECT id, arith(id) FROM nums WHERE id <= 4 ORDER BY id"


class TestSingleClientParity:
    @pytest.mark.parametrize(
        "design", list(DESIGN_SQL), ids=lambda d: d.value
    )
    def test_async_matches_threaded(self, design):
        create = f"CREATE FUNCTION arith(int) RETURNS int {DESIGN_SQL[design]}"
        results = {}
        for kind, server_cls in (
            ("threaded", DatabaseServer), ("async", AsyncDatabaseServer)
        ):
            database = make_db()
            try:
                with server_cls(
                    database, trust_all_clients=True
                ) as server:
                    with Client(server.host, server.port) as client:
                        client.execute(create)
                        results[kind] = client.execute(PARITY_SQL)
            finally:
                database.close()
        assert results["async"].columns == results["threaded"].columns
        assert results["async"].rows == results["threaded"].rows
        assert results["async"].rows == [
            (1, 4), (2, 7), (3, 10), (4, 13)
        ]

    def test_error_frames_match(self, adb):
        with Client(adb.host, adb.port) as client:
            with pytest.raises(ServerReportedError) as info:
                client.execute("SELECT * FROM no_such_table")
            assert info.value.error_class == "CatalogError"
            with pytest.raises(ServerReportedError) as info:
                client.execute("SELEC oops")
            assert info.value.error_class == "ParseError"
            assert client.ping()  # connection survives both


# -- satellite (d): concurrent mixed workload == serial replay ---------------

class TestSerialReplayEquality:
    N_CLIENTS = 4
    REPEATS = 3

    @staticmethod
    def _statements(worker):
        udf = (
            f"CREATE FUNCTION add{worker}(int) RETURNS int "
            f"LANGUAGE JAGUAR DESIGN SANDBOX AS "
            f"'def add{worker}(x: int) -> int: return x + {worker}'"
        )
        queries = [
            f"SELECT id, add{worker}(id) FROM nums ORDER BY id",
            "SELECT count(*), sum(id) FROM nums",
            f"SELECT add{worker}(id) FROM nums WHERE v IS NOT NULL "
            f"ORDER BY id",
        ]
        return udf, queries

    def test_mixed_select_create_function(self, adb):
        """N clients interleaving SELECTs and CREATE FUNCTIONs produce
        exactly the rows a serial replay produces."""
        outcomes = {}
        errors = []

        def worker(n):
            try:
                udf, queries = self._statements(n)
                with Client(adb.host, adb.port) as client:
                    client.execute(udf)
                    collected = []
                    for __ in range(self.REPEATS):
                        for sql in queries:
                            result = client.execute(sql)
                            collected.append(
                                (sql, result.columns, result.rows)
                            )
                    outcomes[n] = collected
            except Exception as exc:  # pragma: no cover - fail loud
                errors.append((n, exc))

        threads = [
            threading.Thread(target=worker, args=(n,))
            for n in range(self.N_CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors, errors
        assert sorted(outcomes) == list(range(self.N_CLIENTS))

        # Serial replay on a fresh embedded database.
        serial_db = make_db()
        try:
            for n in range(self.N_CLIENTS):
                udf, queries = self._statements(n)
                serial_db.execute(udf)
                expected = []
                for __ in range(self.REPEATS):
                    for sql in queries:
                        result = serial_db.execute(sql)
                        expected.append(
                            (sql, result.columns, result.rows)
                        )
                assert outcomes[n] == expected
        finally:
            serial_db.close()


# -- ROADMAP gate: concurrent multi-table writers ----------------------------

class TestConcurrentMultiTableWriters:
    N_WRITERS = 4
    ROWS = 12

    @classmethod
    def _script(cls, n):
        """One writer's statements, all against its own table."""
        return (
            [f"CREATE TABLE tab{n} (id INT, v INT)"]
            + [
                f"INSERT INTO tab{n} VALUES ({i}, {i * 10 + n})"
                for i in range(cls.ROWS)
            ]
            + [
                f"UPDATE tab{n} SET v = v + {n + 1} WHERE id <= 5",
                f"DELETE FROM tab{n} WHERE id = 0",
            ]
        )

    @classmethod
    def _select(cls, n):
        return f"SELECT id, v FROM tab{n} ORDER BY id"

    def test_disjoint_writers_match_serial_replay_and_survive_reopen(
        self, tmp_path
    ):
        """N clients writing to N disjoint tables concurrently on a
        WAL-backed database: final contents equal a serial replay, and
        a close/reopen (checkpoint + recovery path) preserves them."""
        path = str(tmp_path / "db")
        database = Database(path, group_commit_window=0.002)
        observed = {}
        try:
            with AsyncDatabaseServer(
                database, trust_all_clients=True
            ) as server:
                errors = []

                def worker(n):
                    try:
                        with Client(server.host, server.port) as client:
                            for sql in self._script(n):
                                client.execute(sql)
                    except Exception as exc:  # pragma: no cover
                        errors.append((n, exc))

                threads = [
                    threading.Thread(target=worker, args=(n,))
                    for n in range(self.N_WRITERS)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join(timeout=30)
                assert not errors, errors

                with Client(server.host, server.port) as check:
                    for n in range(self.N_WRITERS):
                        observed[n] = check.execute(self._select(n)).rows
            wal_stats = database.stats()["wal"]
            # Every writer's statements were logged and made durable.
            assert wal_stats["statements_logged"] >= (
                self.N_WRITERS * (self.ROWS + 3)
            )
        finally:
            database.close()

        # Serial replay on a fresh in-memory database.
        serial = Database()
        try:
            for n in range(self.N_WRITERS):
                for sql in self._script(n):
                    serial.execute(sql)
            for n in range(self.N_WRITERS):
                assert observed[n] == serial.execute(self._select(n)).rows
        finally:
            serial.close()

        # Durability: the clean close checkpointed; reopen sees it all.
        reopened = Database(path)
        try:
            assert reopened.wal.recovered_statements == 0
            for n in range(self.N_WRITERS):
                assert reopened.query(self._select(n)) == observed[n]
        finally:
            reopened.close()

    def test_stalled_writer_does_not_block_other_tables(self, gate):
        """Deterministic non-serialization proof: a writer parked inside
        a UDF on table A holds only A's write lock, so an INSERT into
        table B completes while A's statement is still in flight."""
        database = Database()
        try:
            database.execute("CREATE TABLE a (id INT, v INT)")
            database.execute("CREATE TABLE b (id INT, v INT)")
            database.execute("INSERT INTO a VALUES (1, 10)")
            with AsyncDatabaseServer(
                database, trust_all_clients=True
            ) as server:
                with Client(server.host, server.port) as setup:
                    setup.execute(GATED_UDF)
                slow = {}

                def stalled():
                    with Client(server.host, server.port) as c1:
                        c1.execute(
                            "UPDATE a SET v = gated(v) WHERE id = 1"
                        )
                        slow["done"] = True

                t1 = threading.Thread(target=stalled)
                t1.start()
                assert STARTED.wait(5)  # the UPDATE holds table a's lock

                fast = {}

                def other_table():
                    with Client(server.host, server.port) as c2:
                        c2.execute("INSERT INTO b VALUES (2, 20)")
                        fast["done"] = True

                t2 = threading.Thread(target=other_table)
                t2.start()
                t2.join(timeout=3)
                # B's writer finished while A's writer is still parked.
                assert fast.get("done") is True
                assert "done" not in slow
                GATE.set()
                t1.join(timeout=10)
                assert slow.get("done") is True
                with Client(server.host, server.port) as check:
                    # gated(v) returns v: the stalled UPDATE committed
                    # its (identity) write, and B's insert is visible.
                    assert check.execute(
                        "SELECT v FROM a WHERE id = 1"
                    ).rows == [(10,)]
                    assert check.execute(
                        "SELECT v FROM b"
                    ).rows == [(20,)]
        finally:
            GATE.set()
            database.close()


# -- satellite (d): snapshot isolation while a writer commits ----------------

class TestSnapshotIsolation:
    WRITES = 30

    def test_readers_never_see_partial_statements(self, adb):
        """Each INSERT writes a *pair* of rows in one statement; a
        snapshot reader must only ever count complete pairs."""
        with Client(adb.host, adb.port) as ddl:
            ddl.execute("CREATE TABLE pairs (k INT, half INT)")

        stop_readers = threading.Event()
        bad_counts = []
        reader_errors = []

        def reader():
            try:
                with Client(adb.host, adb.port) as client:
                    last = 0
                    while not stop_readers.is_set():
                        count = client.execute(
                            "SELECT count(*) FROM pairs"
                        ).scalar()
                        if count % 2 != 0 or count < last:
                            bad_counts.append((last, count))
                        last = count
            except Exception as exc:  # pragma: no cover - fail loud
                reader_errors.append(exc)

        readers = [
            threading.Thread(target=reader) for __ in range(3)
        ]
        for t in readers:
            t.start()
        try:
            with Client(adb.host, adb.port) as writer:
                for k in range(self.WRITES):
                    writer.execute(
                        f"INSERT INTO pairs VALUES ({k}, 0), ({k}, 1)"
                    )
        finally:
            stop_readers.set()
            for t in readers:
                t.join(timeout=10)
        assert not reader_errors, reader_errors
        assert not bad_counts, bad_counts
        with Client(adb.host, adb.port) as client:
            final = client.execute("SELECT count(*) FROM pairs").scalar()
        assert final == 2 * self.WRITES


# -- satellite (d): plan cache over the wire ---------------------------------

class TestPlanCacheOverWire:
    SQL = "SELECT id, v FROM nums ORDER BY id"

    def test_cross_session_hits_and_epoch_invalidation(self, adb):
        database = adb.database
        with Client(adb.host, adb.port) as c1:
            c1.execute(self.SQL)
        with Client(adb.host, adb.port) as c2:
            c2.execute(self.SQL)  # second session shares the plan
            stats = database.plan_cache.stats()
            assert stats["hits"] == 1 and stats["misses"] == 1

            c2.execute(
                "CREATE FUNCTION bump(int) RETURNS int LANGUAGE JAGUAR "
                "DESIGN SANDBOX AS "
                "'def bump(x: int) -> int: return x'"
            )
            c2.execute(self.SQL)  # epoch moved: must re-plan
            stats = database.plan_cache.stats()
            assert stats["hits"] == 1
            assert stats["misses"] == 2
            assert stats["invalidations"] == 1


# -- satellite (d): admission refusal on an exhausted tenant budget ----------

class TestAdmissionOverWire:
    def test_tenant_over_budget_is_refused(self, gate):
        database = make_db()
        try:
            with AsyncDatabaseServer(
                database,
                trust_all_clients=True,
                tenant_slots=1,
                tenant_queue_cap=1,
            ) as server:
                with Client(server.host, server.port) as setup:
                    setup.execute(GATED_UDF)
                slow = "SELECT gated(id) FROM nums WHERE id = 1"
                c1 = Client(server.host, server.port, tenant="acme")
                c2 = Client(server.host, server.port, tenant="acme")
                c3 = Client(server.host, server.port, tenant="acme")
                try:
                    r1, r2 = {}, {}
                    t1 = threading.Thread(
                        target=lambda: r1.update(
                            rows=c1.execute(slow).rows
                        )
                    )
                    t1.start()
                    assert STARTED.wait(5)  # c1 occupies the one slot
                    t2 = threading.Thread(
                        target=lambda: r2.update(
                            rows=c2.execute(slow).rows
                        )
                    )
                    t2.start()
                    time.sleep(0.3)  # c2 reaches the (now full) queue
                    with pytest.raises(ServerReportedError) as info:
                        c3.execute(slow)
                    assert info.value.error_class == "AdmissionRefused"
                    # A different tenant is admitted immediately.
                    with Client(
                        server.host, server.port, tenant="other"
                    ) as c4:
                        assert c4.execute(
                            "SELECT count(*) FROM nums"
                        ).scalar() == 5
                    GATE.set()
                    t1.join(timeout=10)
                    t2.join(timeout=10)
                    assert r1["rows"] == [(1,)]
                    assert r2["rows"] == [(1,)]
                    assert server.admission.stats()["refused"] >= 1
                finally:
                    GATE.set()
                    for c in (c1, c2, c3):
                        c.close()
        finally:
            database.close()


# -- satellite (a): stop() drains in-flight statements ------------------------

class TestStopDrains:
    @pytest.mark.parametrize("server_cls", [
        DatabaseServer, AsyncDatabaseServer,
    ], ids=["threaded", "async"])
    def test_stop_during_inflight_statement_delivers_result(
        self, gate, server_cls
    ):
        database = make_db()
        server = server_cls(database, trust_all_clients=True)
        server.start()
        outcome = {}
        try:
            with Client(server.host, server.port) as setup:
                setup.execute(GATED_UDF)
            client = Client(server.host, server.port)

            def run():
                try:
                    outcome["rows"] = client.execute(
                        "SELECT gated(id) FROM nums WHERE id = 2"
                    ).rows
                except Exception as exc:
                    outcome["error"] = exc

            worker = threading.Thread(target=run)
            worker.start()
            assert STARTED.wait(5)  # the statement is in flight

            stopper = threading.Thread(target=server.stop)
            stopper.start()
            time.sleep(0.1)  # stop() is now draining
            GATE.set()
            stopper.join(timeout=10)
            worker.join(timeout=10)
            # The in-flight statement still got its result frame.
            assert outcome.get("rows") == [(2,)]
            client.close()
        finally:
            GATE.set()
            server.stop()
            database.close()


# -- satellite (c): chunked result streaming ----------------------------------

class TestChunkedStreaming:
    def test_result_frames_chunking_unit(self):
        rows = [(bytes(3 * protocol.RESULT_CHUNK_CAP // 2),)]
        frames = list(protocol.result_frames(["data"], rows))
        assert [op for op, __ in frames[:-1]] == [
            protocol.OP_RESULT_PART
        ]
        assert frames[-1][0] == protocol.OP_RESULT
        assert all(
            len(payload) <= protocol.RESULT_CHUNK_CAP
            for __, payload in frames
        )
        columns, rowcount, decoded = protocol.decode_result(
            b"".join(payload for __, payload in frames)
        )
        assert columns == ["data"] and rowcount == 1
        assert decoded == rows

    def test_small_results_stay_single_frame(self):
        frames = list(protocol.result_frames(["id"], [(1,), (2,)]))
        assert len(frames) == 1
        assert frames[0][0] == protocol.OP_RESULT

    @pytest.mark.parametrize("server_cls", [
        DatabaseServer, AsyncDatabaseServer,
    ], ids=["threaded", "async"])
    def test_large_lob_round_trips(self, server_cls):
        size = protocol.RESULT_CHUNK_CAP + 500_000
        database = Database()
        try:
            database.execute("CREATE TABLE blobs (id INT, data BYTEARRAY)")
            database.execute(
                f"INSERT INTO blobs VALUES (7, zerobytes({size}))"
            )
            with server_cls(database) as server:
                with Client(server.host, server.port) as client:
                    result = client.execute(
                        "SELECT id, data FROM blobs"
                    )
                    assert result.rows == [(7, bytes(size))]
                    # More bytes than one chunk arrived: it streamed.
                    assert client.bytes_received > protocol.RESULT_CHUNK_CAP
        finally:
            database.close()


# -- satellite (b): server counters surface through db.stats() ----------------

class TestServerStats:
    def test_async_server_counters_in_db_stats(self, adb):
        with Client(adb.host, adb.port) as client:
            client.execute("SELECT count(*) FROM nums")
            client.execute("SELECT count(*) FROM nums")
        stats = adb.database.stats()["server"]
        assert stats["kind"] == "async"
        assert stats["sessions_served"] >= 1
        # ``completed`` ticks on the worker thread after the reply is
        # already released to the client, so assert on admissions.
        assert stats["admission"]["admitted"] >= 2
        assert stats["plan_cache"]["hits"] >= 1
        assert stats["snapshots"]["enabled"] is True

    def test_threaded_server_counters(self):
        database = make_db()
        try:
            with DatabaseServer(database) as server:
                database.attach_stats_source(
                    "server", server.stats_snapshot
                )
                with Client(server.host, server.port) as client:
                    client.execute("SELECT count(*) FROM nums")
                stats = database.stats()["server"]
                assert stats["kind"] == "threaded"
                assert stats["sessions_served"] == 1
        finally:
            database.close()

    def test_session_counters_thread_safe_increment(self, adb):
        with Client(adb.host, adb.port) as client:
            for __ in range(5):
                client.execute("SELECT count(*) FROM nums")
        # sessions_served moves under the state lock; no torn counts.
        assert adb.stats_snapshot()["sessions_served"] >= 1
