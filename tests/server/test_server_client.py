"""Client/server integration: queries, migration, authorization, sessions."""

import threading

import pytest

from repro.database import Database
from repro.server.client import Client, LocalUDFHarness, ServerReportedError
from repro.server.server import DatabaseServer
from repro.server.session import Session, UNTRUSTED_DESIGNS
from repro.core.designs import Design
from repro.errors import AuthError, ClientError


@pytest.fixture
def served_db():
    database = Database()
    database.execute("CREATE TABLE nums (id INT, v FLOAT)")
    database.execute(
        "INSERT INTO nums VALUES (1, 1.5), (2, 2.5), (3, NULL)"
    )
    with DatabaseServer(database) as server:
        yield server
    database.close()


@pytest.fixture
def client(served_db):
    with Client(served_db.host, served_db.port) as connection:
        yield connection


class TestQueries:
    def test_hello_and_ping(self, client):
        assert client.session_id >= 1
        assert client.ping()

    def test_select_round_trips_types(self, client):
        result = client.execute("SELECT id, v FROM nums ORDER BY id")
        assert result.columns == ["id", "v"]
        assert result.rows == [(1, 1.5), (2, 2.5), (3, None)]

    def test_ddl_and_dml_through_wire(self, client):
        client.execute("CREATE TABLE w (a INT, b STRING)")
        client.execute("INSERT INTO w VALUES (1, 'x'), (2, 'y')")
        assert client.execute("SELECT count(*) FROM w").scalar() == 2

    def test_errors_reported_not_fatal(self, client):
        with pytest.raises(ServerReportedError) as info:
            client.execute("SELECT * FROM no_such_table")
        assert info.value.error_class == "CatalogError"
        # The connection survives the error.
        assert client.ping()

    def test_parse_error_reported(self, client):
        with pytest.raises(ServerReportedError) as info:
            client.execute("SELEC oops")
        assert info.value.error_class == "ParseError"

    def test_multiple_clients_served_concurrently(self, served_db):
        results = {}

        def worker(name):
            with Client(served_db.host, served_db.port) as c:
                results[name] = c.execute(
                    "SELECT count(*) FROM nums"
                ).scalar()

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(5)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert results == {i: 3 for i in range(5)}


class TestMigration:
    """Section 6.4: develop at the client, test locally, migrate."""

    SRC = (
        "def volat(h: farr) -> float:\n"
        "    total: float = 0.0\n"
        "    for i in range(len(h)):\n"
        "        total = total + h[i] * h[i]\n"
        "    return total\n"
    )

    def test_develop_test_migrate_execute(self, client):
        harness = LocalUDFHarness()
        classfile = harness.develop(
            self.SRC, "volat",
            test_vectors=[(([1.0, 2.0],), 5.0), (([],), 0.0)],
        )
        client.register_udf_classfile(
            "volat", ["farr"], "float", classfile
        )
        client.execute("CREATE TABLE series (h TIMESERIES)")
        client.execute("INSERT INTO series VALUES (NULL)")
        # NULL argument -> NULL result (never reaches the UDF).
        assert client.execute("SELECT volat(h) FROM series").rows == [(None,)]

    def test_local_test_failure_blocks_migration(self):
        harness = LocalUDFHarness()
        with pytest.raises(ClientError, match="local test failed"):
            harness.develop(
                self.SRC, "volat", test_vectors=[(([1.0],), 999.0)]
            )

    def test_identical_bytes_run_both_sides(self, client):
        """The portability claim: the classfile bytes the client tested
        are byte-for-byte what the server loads."""
        harness = LocalUDFHarness()
        classfile = harness.compile_to_bytes(
            "def trip(x: int) -> int:\n    return x * 3", "udf_trip"
        )
        local = harness.run(classfile, "trip", [14])
        client.register_udf_classfile("trip", ["int"], "int", classfile)
        remote = client.execute("SELECT trip(id) FROM nums WHERE id = 2")
        assert local == 42
        assert remote.scalar() == 6

    def test_server_reverifies_bad_classfile(self, client):
        with pytest.raises(ServerReportedError) as info:
            client.register_udf_classfile(
                "evil", ["int"], "int", b"JAGC\x01\x00not a classfile"
            )
        assert info.value.error_class in ("ClassFormatError", "VerifyError")

    def test_mock_callbacks_in_local_harness(self):
        harness = LocalUDFHarness(
            mock_callbacks={"cb_lob_length": lambda h: 77}
        )
        src = "def peek(h: int) -> int:\n    return cb_lob_length(h)"
        classfile = harness.compile_to_bytes(src, "udf_peek")
        result = harness.run(
            classfile, "peek", [1], callbacks=["cb_lob_length"]
        )
        assert result == 77


class TestAuthorization:
    def test_untrusted_cannot_register_native_integrated(self, client):
        with pytest.raises(ServerReportedError) as info:
            client.register_udf_classfile(
                "native_sneak", ["int"], "int",
                b"repro.core.generic_udf:noop_native",
                design="native_integrated",
                entry="noop_native",
            )
        assert info.value.error_class == "AuthError"

    def test_trusted_server_mode_allows_native(self):
        database = Database()
        with DatabaseServer(database, trust_all_clients=True) as server:
            with Client(server.host, server.port) as c:
                assert c.trusted
                c.register_udf_classfile(
                    "gen", ["bytes", "int", "int", "int"], "int",
                    b"repro.core.generic_udf:generic_native",
                    design="native_integrated",
                    entry="generic_native",
                )
        database.close()

    def test_session_policy_object(self):
        session = Session(peer="1.2.3.4:5", trusted=False)
        for design in UNTRUSTED_DESIGNS:
            session.check_design_allowed(design)
        with pytest.raises(AuthError):
            session.check_design_allowed(Design.NATIVE_INTEGRATED)
        with pytest.raises(AuthError):
            session.check_design_allowed(Design.NATIVE_SFI)
        trusted = Session(peer="local", trusted=True)
        trusted.check_design_allowed(Design.NATIVE_INTEGRATED)


class TestConcurrentUDFQueries:
    def test_parallel_clients_running_sandboxed_udfs(self, served_db):
        """Multiple client threads exercise the same sandboxed UDF; the
        per-query contexts must not interfere (the server serializes
        statements, but executor state spans queries)."""
        import threading

        with Client(served_db.host, served_db.port) as setup_client:
            setup_client.execute(
                "CREATE FUNCTION sq(int) RETURNS int LANGUAGE JAGUAR "
                "DESIGN SANDBOX AS 'def sq(x: int) -> int: return x * x'"
            )

        results = {}

        def worker(tag):
            with Client(served_db.host, served_db.port) as c:
                values = []
                for __ in range(10):
                    values.append(
                        c.execute("SELECT sq(id) FROM nums WHERE id = 2").scalar()
                    )
                results[tag] = values

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert results == {i: [4] * 10 for i in range(4)}
