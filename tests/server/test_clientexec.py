"""Client-side vs server-side UDF execution (the Section 3.1 study)."""

import pytest

from repro.database import Database
from repro.server.client import Client, LocalUDFHarness
from repro.server.clientexec import ClientSideUDF, compare_strategies
from repro.server.server import DatabaseServer

DOUBLER = """
def bigval(data: bytes) -> int:
    total: int = 0
    for i in range(len(data)):
        total = total + data[i]
    return total
"""


@pytest.fixture
def setup():
    database = Database()
    database.execute("CREATE TABLE blobs (id INT, data BYTEARRAY)")
    table = database.catalog.get_table("blobs")
    for row_id in range(20):
        payload = bytes([row_id * 10] * 2000)  # 2 KB each, spilled to LOB
        database.insert_row(table, [row_id, payload])
    with DatabaseServer(database) as server:
        with Client(server.host, server.port) as client:
            udf = ClientSideUDF(
                client=client,
                harness=LocalUDFHarness(),
                name="bigval",
                source=DOUBLER,
                param_types=["bytes"],
                ret_type="int",
            )
            yield client, udf
    database.close()


THRESHOLD = 100 * 2000  # rows with byte value > 100 qualify


class TestStrategies:
    def test_both_strategies_agree(self, setup):
        __, udf = setup
        shipping = udf.run_data_shipping(
            "blobs", "id", ["data"], lambda v: v > THRESHOLD
        )
        server_side = udf.run_server_side(
            "blobs", "id", ["data"], f"> {THRESHOLD}"
        )
        assert sorted(shipping.rows) == sorted(server_side.rows)
        assert len(shipping.rows) == 9  # ids 11..19

    def test_data_shipping_moves_far_more_bytes(self, setup):
        __, udf = setup
        shipping = udf.run_data_shipping(
            "blobs", "id", ["data"], lambda v: v > THRESHOLD
        )
        server_side = udf.run_server_side(
            "blobs", "id", ["data"], f"> {THRESHOLD}"
        )
        # 20 x 2 KB must cross the wire for shipping; only ids otherwise.
        assert shipping.bytes_over_wire > 20 * 2000
        assert server_side.bytes_over_wire < 2000
        assert shipping.bytes_over_wire > 20 * server_side.bytes_over_wire

    def test_cheap_predicates_stay_at_server(self, setup):
        __, udf = setup
        shipping = udf.run_data_shipping(
            "blobs", "id", ["data"], lambda v: v > THRESHOLD,
            where="id >= 15",
        )
        assert sorted(shipping.rows) == [(i,) for i in range(15, 20)]
        # Only 5 rows shipped.
        assert shipping.udf_invocations == 5

    def test_comparison_report(self, setup):
        __, udf = setup
        shipping = udf.run_data_shipping(
            "blobs", "id", ["data"], lambda v: v > THRESHOLD
        )
        server_side = udf.run_server_side(
            "blobs", "id", ["data"], f"> {THRESHOLD}"
        )
        text = compare_strategies(shipping, server_side)
        assert "data shipping moved" in text

    def test_migration_happens_once(self, setup):
        __, udf = setup
        udf.run_server_side("blobs", "id", ["data"], f"> {THRESHOLD}")
        udf.run_server_side("blobs", "id", ["data"], f"> {THRESHOLD}")


class TestLobShippingBoundary:
    def test_projected_lob_arrives_as_bytes(self, setup):
        client, __ = setup
        result = client.execute("SELECT data FROM blobs WHERE id = 3")
        value = result.rows[0][0]
        assert isinstance(value, bytes)
        assert value == bytes([30] * 2000)
