"""Shared prepared-plan cache: LRU behaviour and structural invalidation."""

import pytest

from repro.database import Database
from repro.sql.plancache import PlanCache


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE nums (id INT, v FLOAT)")
    database.execute("INSERT INTO nums VALUES (1, 1.5), (2, 2.5)")
    yield database
    database.close()


class TestPlanCacheUnit:
    def test_miss_then_hit(self):
        cache = PlanCache()
        assert cache.lookup("SELECT 1", (0,)) is None
        cache.store("SELECT 1", (0,), "stmt", "plan")
        assert cache.lookup("SELECT 1", (0,)) == ("stmt", "plan")
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_fingerprint_partitions_entries(self):
        cache = PlanCache()
        cache.store("SELECT 1", (0,), "s0", "p0")
        assert cache.lookup("SELECT 1", (1,)) is None

    def test_stale_fingerprint_entry_dropped_on_store(self):
        cache = PlanCache()
        cache.store("SELECT 1", (0,), "s0", "p0")
        cache.store("SELECT 1", (1,), "s1", "p1")
        assert len(cache) == 1
        assert cache.stats()["invalidations"] == 1
        assert cache.lookup("SELECT 1", (1,)) == ("s1", "p1")

    def test_lru_eviction(self):
        cache = PlanCache(capacity=2)
        cache.store("a", (0,), 1, 1)
        cache.store("b", (0,), 2, 2)
        cache.lookup("a", (0,))  # refresh a; b is now LRU
        cache.store("c", (0,), 3, 3)
        assert cache.lookup("b", (0,)) is None
        assert cache.lookup("a", (0,)) is not None
        assert cache.stats()["evictions"] == 1

    def test_clear_counts_invalidations(self):
        cache = PlanCache()
        cache.store("a", (0,), 1, 1)
        cache.store("b", (0,), 2, 2)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["invalidations"] == 2

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)


class TestDatabaseIntegration:
    SQL = "SELECT id, v FROM nums ORDER BY id"

    def test_repeat_read_hits_cache(self, db):
        first = db.execute_read(self.SQL).rows
        second = db.execute_read(self.SQL).rows
        assert first == second == [(1, 1.5), (2, 2.5)]
        stats = db.plan_cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_ddl_bumps_epoch_and_misses(self, db):
        db.execute_read(self.SQL)
        before = db.settings_fingerprint()
        db.execute("CREATE TABLE other (a INT)")
        after = db.settings_fingerprint()
        assert after != before  # schema epoch moved
        db.execute_read(self.SQL)
        assert db.plan_cache.stats()["hits"] == 0

    def test_create_function_invalidates(self, db):
        db.execute_read(self.SQL)
        db.execute(
            "CREATE FUNCTION plus1(int) RETURNS int LANGUAGE JAGUAR "
            "DESIGN SANDBOX AS "
            "'def plus1(x: int) -> int: return x + 1'"
        )
        # Same text re-planned under the new epoch; the superseded
        # entry is dropped when the fresh plan is stored.
        db.execute_read(self.SQL)
        stats = db.plan_cache.stats()
        assert stats["hits"] == 0
        assert stats["misses"] == 2
        assert stats["invalidations"] == 1
        assert stats["entries"] == 1

    def test_settings_change_misses(self, db):
        db.execute_read(self.SQL)
        db.inlining = True
        db.execute_read(self.SQL)
        # Same-text entries for superseded fingerprints are dropped
        # eagerly on store, so the cache never holds both.
        stats = db.plan_cache.stats()
        assert stats["hits"] == 0
        assert stats["invalidations"] == 1
        assert stats["entries"] == 1
        db.execute_read(self.SQL)  # same settings: now a hit
        assert db.plan_cache.stats()["hits"] == 1

    def test_writes_fall_through_uncached(self, db):
        db.execute_read("INSERT INTO nums VALUES (3, 3.5)")
        assert len(db.plan_cache) == 0
        assert db.execute("SELECT count(*) FROM nums").rows == [(3,)]

    def test_adaptive_mode_bypasses_cache(self):
        database = Database(adaptive=True)
        try:
            database.execute("CREATE TABLE t (a INT)")
            database.execute("INSERT INTO t VALUES (1)")
            database.execute_read("SELECT a FROM t")
            database.execute_read("SELECT a FROM t")
            stats = database.plan_cache.stats()
            assert stats["hits"] == 0 and stats["misses"] == 0
            assert len(database.plan_cache) == 0
        finally:
            database.close()

    def test_cached_plan_correct_with_udf(self, db):
        db.execute(
            "CREATE FUNCTION twice(float) RETURNS float LANGUAGE JAGUAR "
            "DESIGN SANDBOX AS "
            "'def twice(x: float) -> float: return x * 2.0'"
        )
        sql = "SELECT twice(v) FROM nums WHERE id = 1"
        assert db.execute_read(sql).rows == [(3.0,)]
        assert db.execute_read(sql).rows == [(3.0,)]
        assert db.plan_cache.stats()["hits"] == 1
