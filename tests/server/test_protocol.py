"""Wire protocol framing and hostile-input handling."""

import socket
import struct

import pytest

from repro.database import Database
from repro.errors import ProtocolError
from repro.server import protocol
from repro.server.server import DatabaseServer


class TestFraming:
    def test_send_recv_roundtrip(self):
        left, right = socket.socketpair()
        try:
            protocol.send_frame(left, protocol.OP_EXECUTE, b"payload")
            opcode, payload = protocol.recv_frame(right)
            assert opcode == protocol.OP_EXECUTE
            assert payload == b"payload"
        finally:
            left.close()
            right.close()

    def test_empty_payload(self):
        left, right = socket.socketpair()
        try:
            protocol.send_frame(left, protocol.OP_PING)
            assert protocol.recv_frame(right) == (protocol.OP_PING, b"")
        finally:
            left.close()
            right.close()

    def test_closed_connection_mid_frame(self):
        left, right = socket.socketpair()
        left.sendall(struct.pack("<IB", 100, protocol.OP_EXECUTE))
        left.close()
        with pytest.raises(ProtocolError, match="closed"):
            protocol.recv_frame(right)
        right.close()

    def test_bad_length_rejected(self):
        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack("<IB", 0, protocol.OP_PING))
            with pytest.raises(ProtocolError, match="length"):
                protocol.recv_frame(right)
        finally:
            left.close()
            right.close()


class TestPayloadCodecs:
    def test_encode_decode_values(self):
        payload = protocol.encode_values("sql text", 42, (1, 2))
        assert protocol.decode_values(payload, 3) == ("sql text", 42, (1, 2))

    def test_trailing_bytes_rejected(self):
        payload = protocol.encode_values(1) + b"x"
        with pytest.raises(ProtocolError, match="trailing"):
            protocol.decode_values(payload, 1)

    def test_result_roundtrip(self):
        columns = ["a", "b"]
        rows = [(1, "x"), (None, b"\x00")]
        payload = protocol.encode_result(columns, rows)
        got_columns, rowcount, got_rows = protocol.decode_result(payload)
        assert got_columns == columns
        assert rowcount == 2
        assert got_rows == rows


class TestServerRobustness:
    @pytest.fixture
    def server(self):
        database = Database()
        database.execute("CREATE TABLE t (a INT)")
        with DatabaseServer(database) as srv:
            yield srv
        database.close()

    def raw_connect(self, server):
        return socket.create_connection((server.host, server.port), 10)

    def test_unknown_opcode_answered_with_error(self, server):
        with self.raw_connect(server) as conn:
            protocol.send_frame(conn, 200, b"")
            opcode, payload = protocol.recv_frame(conn)
            assert opcode == protocol.OP_ERROR

    def test_garbage_payload_answered_with_error(self, server):
        with self.raw_connect(server) as conn:
            protocol.send_frame(conn, protocol.OP_EXECUTE, b"\xff\xfe")
            opcode, __ = protocol.recv_frame(conn)
            assert opcode == protocol.OP_ERROR

    def test_abrupt_disconnect_does_not_kill_server(self, server):
        conn = self.raw_connect(server)
        conn.sendall(b"\x05\x00")  # half a frame header
        conn.close()
        # Server keeps accepting.
        with self.raw_connect(server) as again:
            protocol.send_frame(again, protocol.OP_PING)
            assert protocol.recv_frame(again)[0] == protocol.OP_PONG

    def test_malformed_register_payload(self, server):
        with self.raw_connect(server) as conn:
            protocol.send_frame(
                conn, protocol.OP_REGISTER_UDF,
                protocol.encode_values("only-one-value"),
            )
            opcode, __ = protocol.recv_frame(conn)
            assert opcode == protocol.OP_ERROR
