"""Per-tenant admission control: fairness, hard caps, group budgets."""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.errors import AdmissionRefused, SecurityViolation
from repro.server.admission import AdmissionController
from repro.vm.threadgroups import ThreadGroupRegistry


@pytest.fixture
def pool():
    executor = ThreadPoolExecutor(max_workers=4)
    yield executor
    executor.shutdown(wait=True)


def serial_pool():
    return ThreadPoolExecutor(max_workers=1)


class TestBasics:
    def test_submit_returns_result(self, pool):
        controller = AdmissionController(pool)
        assert controller.submit("a", lambda: 42).result(5) == 42
        stats = controller.stats()
        assert stats["admitted"] == 1 and stats["completed"] == 1

    def test_thunk_exception_propagates(self, pool):
        controller = AdmissionController(pool)
        future = controller.submit("a", lambda: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            future.result(5)
        # The failed statement released its slot.
        assert controller.submit("a", lambda: "ok").result(5) == "ok"

    def test_parameters_validated(self, pool):
        with pytest.raises(ValueError):
            AdmissionController(pool, tenant_slots=0)
        with pytest.raises(ValueError):
            AdmissionController(pool, queue_cap=0)


class TestHardCap:
    def test_queue_cap_refuses_synchronously(self):
        pool = serial_pool()
        try:
            controller = AdmissionController(
                pool, tenant_slots=1, queue_cap=2
            )
            gate = threading.Event()
            blocked = controller.submit("a", gate.wait)
            q1 = controller.submit("a", lambda: 1)
            q2 = controller.submit("a", lambda: 2)
            with pytest.raises(AdmissionRefused):
                controller.submit("a", lambda: 3)
            assert controller.stats()["refused"] == 1
            # Another tenant is not affected by a's full queue.
            other = controller.submit("b", lambda: "b")
            gate.set()
            assert blocked.result(5) is True
            assert q1.result(5) == 1 and q2.result(5) == 2
            assert other.result(5) == "b"
        finally:
            gate.set()
            pool.shutdown(wait=True)

    def test_drained_queue_admits_again(self):
        pool = serial_pool()
        try:
            controller = AdmissionController(
                pool, tenant_slots=1, queue_cap=1
            )
            gate = threading.Event()
            blocked = controller.submit("a", gate.wait)
            controller.submit("a", lambda: 1)
            with pytest.raises(AdmissionRefused):
                controller.submit("a", lambda: 2)
            gate.set()
            blocked.result(5)
            assert controller.submit("a", lambda: 3).result(5) == 3
        finally:
            gate.set()
            pool.shutdown(wait=True)


class TestFairness:
    def test_round_robin_across_tenants(self):
        """A tenant with a deep queue yields to a tenant with one item."""
        pool = serial_pool()
        order = []
        gate = threading.Event()
        try:
            controller = AdmissionController(pool, tenant_slots=1)
            blocked = controller.submit("a", gate.wait)
            futures = [
                controller.submit("a", lambda i=i: order.append(f"a{i}"))
                for i in range(3)
            ]
            futures.append(
                controller.submit("b", lambda: order.append("b0"))
            )
            gate.set()
            blocked.result(5)
            for future in futures:
                future.result(5)
            # b's single statement ran before a's backlog drained.
            assert order.index("b0") < order.index("a2")
        finally:
            gate.set()
            pool.shutdown(wait=True)

    def test_tenant_slots_limit_concurrency(self, pool):
        controller = AdmissionController(pool, tenant_slots=2)
        running = []
        peak = []
        lock = threading.Lock()
        gate = threading.Event()

        def work(i):
            with lock:
                running.append(i)
                peak.append(len(running))
            gate.wait(5)
            with lock:
                running.remove(i)

        futures = [
            controller.submit("a", lambda i=i: work(i)) for i in range(6)
        ]
        # Let the first admissions start, then open the gate.
        deadline = threading.Event()
        deadline.wait(0.1)
        gate.set()
        for future in futures:
            future.result(5)
        assert max(peak) <= 2


class TestThreadGroupIntegration:
    def test_tenant_group_budgeted(self, pool):
        groups = ThreadGroupRegistry()
        controller = AdmissionController(pool, groups, tenant_slots=2)
        controller.submit("acme", lambda: None).result(5)
        group = groups.group_for("tenant:acme")
        assert group.fuel_budget == 2

    def test_killed_tenant_group_refuses(self, pool):
        groups = ThreadGroupRegistry()
        controller = AdmissionController(pool, groups)
        controller.submit("acme", lambda: None).result(5)
        # Kill the group object itself (still registered): further
        # reservations against it die with SecurityViolation.
        groups.group_for("tenant:acme").kill()
        future = controller.submit("acme", lambda: "nope")
        with pytest.raises(SecurityViolation):
            future.result(5)
        # Other tenants are untouched.
        assert controller.submit("other", lambda: 7).result(5) == 7

    def test_registry_kill_gives_fresh_group_next_time(self, pool):
        """``ThreadGroupRegistry.kill`` pops the group (same semantics
        as ``Database.kill_udf``): in-flight reservations die, but the
        tenant's *next* statement gets a fresh group and is admitted."""
        groups = ThreadGroupRegistry()
        controller = AdmissionController(pool, groups, tenant_slots=2)
        controller.submit("acme", lambda: None).result(5)
        groups.kill("tenant:acme")
        assert controller.submit("acme", lambda: 1).result(5) == 1
        assert groups.group_for("tenant:acme").fuel_budget == 2
