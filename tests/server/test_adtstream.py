"""ADT stream protocol (Section 6.4): round trips and hostile decodes."""

import io
from array import array

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.server import adtstream


def roundtrip(value):
    return adtstream.loads(adtstream.dumps(value))


class TestRoundTrips:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -1,
            2 ** 63 - 1,
            -(2 ** 63),
            1.5,
            float("inf"),
            "",
            "héllo ▲",
            b"",
            b"\x00\xff" * 100,
        ],
    )
    def test_scalars(self, value):
        assert roundtrip(value) == value

    def test_bool_not_confused_with_int(self):
        assert roundtrip(True) is True
        assert roundtrip(1) == 1 and roundtrip(1) is not True

    def test_float_array(self):
        values = array("d", [1.0, -2.5, 3.25])
        result = roundtrip(values)
        assert isinstance(result, array) and result == values

    def test_rows(self):
        row = (1, "x", None, b"\x01", 2.5)
        assert roundtrip(row) == row

    def test_nested_rows(self):
        assert roundtrip((1, (2, (3,)))) == (1, (2, (3,)))

    def test_list_becomes_tuple(self):
        assert roundtrip([1, 2]) == (1, 2)

    def test_row_batch(self):
        rows = [(1, "a"), (2, None)]
        assert adtstream.load_rows(adtstream.dump_rows(rows)) == rows

    def test_bytearray_encodes_as_bytes(self):
        assert roundtrip(bytearray(b"xy")) == b"xy"


class TestRejection:
    def test_unknown_tag(self):
        with pytest.raises(ProtocolError, match="tag"):
            adtstream.loads(b"\x63")

    def test_truncated(self):
        data = adtstream.dumps("hello")
        for cut in range(len(data)):
            with pytest.raises(ProtocolError):
                adtstream.loads(data[:cut])

    def test_trailing_bytes(self):
        with pytest.raises(ProtocolError, match="trailing"):
            adtstream.loads(adtstream.dumps(1) + b"\x00")

    def test_oversized_declared_length(self):
        bad = bytes([4]) + (2 ** 30).to_bytes(4, "little") + b"x"
        with pytest.raises(ProtocolError, match="exceeds"):
            adtstream.loads(bad)

    def test_bad_bool_byte(self):
        with pytest.raises(ProtocolError, match="bool"):
            adtstream.loads(bytes([3, 7]))

    def test_invalid_utf8(self):
        bad = bytes([4]) + (2).to_bytes(4, "little") + b"\xff\xfe"
        with pytest.raises(ProtocolError, match="utf-8"):
            adtstream.loads(bad)

    def test_unserializable_value(self):
        with pytest.raises(ProtocolError):
            adtstream.dumps(object())

    @settings(max_examples=200)
    @given(st.binary(max_size=60))
    def test_random_bytes_never_crash(self, data):
        try:
            adtstream.loads(data)
        except ProtocolError:
            pass


_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1),
    st.floats(allow_nan=False),
    st.text(max_size=30),
    st.binary(max_size=60),
)


@settings(max_examples=150)
@given(st.lists(_scalars, max_size=6).map(tuple))
def test_row_roundtrip_property(row):
    assert roundtrip(row) == row
