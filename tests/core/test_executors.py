"""All six UDF designs: identical results, different properties."""

import pytest

from repro.core.callbacks import CallbackBroker
from repro.core.designs import Design
from repro.core.generic_udf import generic_definition, noop_definition
from repro.core.udf import ServerEnvironment, UDFRegistry
from repro.errors import UDFRegistrationError
from repro.vm.machine import JaguarVM

DATA = bytes(range(100))


@pytest.fixture
def registry():
    broker = CallbackBroker()
    env = ServerEnvironment(
        vm=JaguarVM(broker.signatures()), broker=broker
    )
    reg = UDFRegistry(env)
    yield reg
    reg.close()


@pytest.fixture
def broker(registry):
    return registry.environment.broker


ALL_DESIGNS = list(Design)


class TestParity:
    @pytest.mark.parametrize("design", ALL_DESIGNS, ids=lambda d: d.value)
    def test_generic_udf_result_identical(self, registry, broker, design):
        definition = generic_definition(design)
        registry.register(definition)
        executor = registry.executor_for_query(definition.name)
        executor.begin_query(broker.bind())
        try:
            expected = 7 + 2 * sum(DATA) + 0
            assert executor.invoke([DATA, 7, 2, 3]) == expected
        finally:
            executor.end_query()

    @pytest.mark.parametrize("design", ALL_DESIGNS, ids=lambda d: d.value)
    def test_noop_udf(self, registry, broker, design):
        definition = noop_definition(design)
        registry.register(definition)
        executor = registry.executor_for_query(definition.name)
        executor.begin_query(broker.bind())
        try:
            assert executor.invoke([DATA, 0, 0, 0]) == 0
        finally:
            executor.end_query()

    @pytest.mark.parametrize(
        "design",
        [d for d in ALL_DESIGNS if not d.is_isolated],
        ids=lambda d: d.value,
    )
    def test_many_invocations_one_query(self, registry, broker, design):
        definition = generic_definition(design)
        registry.register(definition)
        executor = registry.executor_for_query(definition.name)
        executor.begin_query(broker.bind())
        try:
            for index in range(50):
                assert executor.invoke([b"\x01", index, 1, 0]) == index + 1
        finally:
            executor.end_query()


class TestExecutorLifecycle:
    def test_in_process_executor_shared(self, registry):
        definition = generic_definition(Design.SANDBOX_JIT)
        registry.register(definition)
        first = registry.executor_for_query(definition.name)
        second = registry.executor_for_query(definition.name)
        assert first is second

    def test_isolated_executor_fresh_per_query(self, registry):
        definition = generic_definition(Design.NATIVE_ISOLATED)
        registry.register(definition)
        first = registry.executor_for_query(definition.name)
        second = registry.executor_for_query(definition.name)
        assert first is not second
        first.close()
        second.close()

    def test_duplicate_registration_rejected(self, registry):
        definition = generic_definition(Design.SANDBOX_JIT)
        registry.register(definition)
        with pytest.raises(UDFRegistrationError):
            registry.register(generic_definition(Design.SANDBOX_JIT))

    def test_unregister_allows_reregistration(self, registry):
        definition = generic_definition(Design.SANDBOX_JIT)
        registry.register(definition)
        registry.unregister(definition.name)
        registry.register(generic_definition(Design.SANDBOX_JIT))

    def test_names_listing(self, registry):
        registry.register(generic_definition(Design.SANDBOX_JIT, name="aaa"))
        registry.register(generic_definition(Design.NATIVE_SFI, name="bbb"))
        assert registry.names() == ["aaa", "bbb"]


class TestRegistrationValidation:
    def test_bad_jagscript_rejected_eagerly(self, registry):
        from repro.core.udf import UDFDefinition, UDFSignature

        definition = UDFDefinition(
            name="broken",
            signature=UDFSignature(("int",), "int"),
            design=Design.SANDBOX_JIT,
            payload=b"def broken(x: int) -> int:\n    return undefined_var",
            entry="broken",
        )
        with pytest.raises(Exception):
            registry.register(definition)
        assert not registry.has("broken")

    def test_signature_mismatch_rejected(self, registry):
        from repro.core.udf import UDFDefinition, UDFSignature

        definition = UDFDefinition(
            name="mismatch",
            signature=UDFSignature(("int", "int"), "int"),
            design=Design.SANDBOX_JIT,
            payload=b"def mismatch(x: int) -> int:\n    return x",
            entry="mismatch",
        )
        with pytest.raises(UDFRegistrationError, match="signature"):
            registry.register(definition)

    def test_missing_entry_rejected(self, registry):
        from repro.core.udf import UDFDefinition, UDFSignature

        definition = UDFDefinition(
            name="ghost",
            signature=UDFSignature(("int",), "int"),
            design=Design.SANDBOX_JIT,
            payload=b"def other(x: int) -> int:\n    return x",
            entry="ghost",
        )
        with pytest.raises(UDFRegistrationError, match="no function"):
            registry.register(definition)

    def test_unknown_native_module_rejected(self, registry):
        from repro.core.udf import UDFDefinition, UDFSignature

        definition = UDFDefinition(
            name="nomod",
            signature=UDFSignature(("int",), "int"),
            design=Design.NATIVE_INTEGRATED,
            payload=b"no.such.module:fn",
            entry="fn",
        )
        with pytest.raises(UDFRegistrationError, match="import"):
            registry.register(definition)

    def test_native_arity_checked(self, registry):
        from repro.core.udf import UDFDefinition, UDFSignature

        definition = UDFDefinition(
            name="badarity",
            signature=UDFSignature(("int",), "int"),
            design=Design.NATIVE_INTEGRATED,
            payload=b"repro.core.generic_udf:generic_native",
            entry="generic_native",
        )
        with pytest.raises(UDFRegistrationError, match="parameters"):
            registry.register(definition)

    def test_bad_signature_type_name(self):
        from repro.core.udf import UDFSignature

        with pytest.raises(UDFRegistrationError):
            UDFSignature(("quaternion",), "int")
