"""UDFs through the full SQL path, parametrized over all six designs.

The query template is exactly the paper's benchmark query (Section 5.1):
``SELECT UDF(R.ByteArray, ...) FROM Rel R WHERE <condition>``, and every
design must return identical answers.
"""

import pytest

from repro.core.designs import Design
from repro.core.generic_udf import GENERIC_JAGSCRIPT


@pytest.fixture
def rel(db):
    db.execute("CREATE TABLE rel (id INT, arr BYTEARRAY)")
    db.execute(
        "INSERT INTO rel VALUES "
        "(0, patbytes(50, 0)), (1, patbytes(50, 1)), (2, patbytes(50, 2)), "
        "(3, zerobytes(50)), (4, NULL)"
    )
    return db


def create_generic(db, design: Design, name: str) -> None:
    if design.is_sandboxed:
        body = GENERIC_JAGSCRIPT.replace("def generic(", f"def {name}(")
        escaped = body.replace("'", "''")
        db.execute(
            f"CREATE FUNCTION {name}(bytes, int, int, int) RETURNS int "
            f"LANGUAGE JAGUAR DESIGN {_design_word(design)} "
            f"CALLBACKS 'cb_noop' AS '{escaped}'"
        )
    else:
        db.execute(
            f"CREATE FUNCTION {name}(bytes, int, int, int) RETURNS int "
            f"LANGUAGE NATIVE DESIGN {_design_word(design)} "
            f"CALLBACKS 'cb_noop' "
            f"AS 'repro.core.generic_udf:generic_native'"
        )


def _design_word(design: Design) -> str:
    return {
        Design.NATIVE_INTEGRATED: "INTEGRATED",
        Design.NATIVE_SFI: "SFI",
        Design.NATIVE_ISOLATED: "ISOLATED",
        Design.SANDBOX_JIT: "SANDBOX",
        Design.SANDBOX_INTERP: "SANDBOX_INTERP",
        Design.SANDBOX_ISOLATED: "SANDBOX_ISOLATED",
    }[design]


@pytest.mark.parametrize("design", list(Design), ids=lambda d: d.value)
class TestAllDesignsThroughSQL:
    def test_projection(self, rel, design):
        create_generic(rel, design, "g")
        rows = rel.query(
            "SELECT id, g(arr, 3, 1, 1) FROM rel WHERE id < 3 ORDER BY id"
        )
        # noop callback adds 0; value = 3 + sum(arr).
        from repro.sql.expressions import _patbytes

        expected = [
            (i, 3 + sum(_patbytes(50, i))) for i in range(3)
        ]
        assert rows == expected

    def test_predicate_use(self, rel, design):
        create_generic(rel, design, "g")
        count = rel.execute(
            "SELECT count(*) FROM rel WHERE g(arr, 0, 1, 0) = 0 "
            "AND arr IS NOT NULL"
        ).scalar()
        assert count == 1  # only the zerobytes row sums to 0

    def test_null_argument_short_circuits(self, rel, design):
        create_generic(rel, design, "g")
        rows = rel.query("SELECT g(arr, 1, 0, 0) FROM rel WHERE id = 4")
        assert rows == [(None,)]


class TestDesignInteroperability:
    def test_two_designs_in_one_query(self, rel):
        create_generic(rel, Design.NATIVE_INTEGRATED, "g_native")
        create_generic(rel, Design.SANDBOX_JIT, "g_sandbox")
        rows = rel.query(
            "SELECT g_native(arr, 1, 1, 0), g_sandbox(arr, 1, 1, 0) "
            "FROM rel WHERE id = 1"
        )
        assert rows[0][0] == rows[0][1]

    def test_drop_function_frees_name(self, rel):
        create_generic(rel, Design.SANDBOX_JIT, "g")
        rel.execute("DROP FUNCTION g")
        create_generic(rel, Design.NATIVE_INTEGRATED, "g")
        assert rel.query("SELECT g(arr, 1, 0, 0) FROM rel WHERE id = 0") == [(1,)]

    def test_udf_inside_aggregate(self, rel):
        create_generic(rel, Design.SANDBOX_JIT, "g")
        total = rel.execute(
            "SELECT sum(g(arr, 0, 1, 0)) FROM rel WHERE id < 4"
        ).scalar()
        from repro.sql.expressions import _patbytes

        assert total == sum(sum(_patbytes(50, i)) for i in range(3))

    def test_udf_in_order_by(self, rel):
        create_generic(rel, Design.SANDBOX_JIT, "g")
        rows = rel.query(
            "SELECT id FROM rel WHERE id < 4 ORDER BY g(arr, 0, 1, 0) DESC"
        )
        from repro.sql.expressions import _patbytes

        sums = {i: sum(_patbytes(50, i)) for i in range(3)}
        sums[3] = 0
        expected = sorted(sums, key=lambda i: -sums[i])
        assert [r[0] for r in rows] == expected


class TestNativePayloadGenerality:
    def test_stdlib_builtin_as_udf(self, db):
        """Any importable callable can serve as trusted native UDF code —
        even a C-implemented builtin with no __code__ object."""
        db.execute("CREATE TABLE pts (x FLOAT, y FLOAT)")
        db.execute("INSERT INTO pts VALUES (3.0, 4.0)")
        db.execute(
            "CREATE FUNCTION hypot(float, float) RETURNS float "
            "LANGUAGE NATIVE DESIGN INTEGRATED AS 'math:hypot'"
        )
        assert db.execute("SELECT hypot(x, y) FROM pts").scalar() == 5.0

    def test_float_promotion_of_int_args(self, db):
        db.execute("CREATE TABLE one (x INT)")
        db.execute("INSERT INTO one VALUES (3)")
        db.execute(
            "CREATE FUNCTION hyp2(float, float) RETURNS float "
            "LANGUAGE NATIVE DESIGN INTEGRATED AS 'math:hypot'"
        )
        assert db.execute("SELECT hyp2(x, 4) FROM one").scalar() == 5.0
