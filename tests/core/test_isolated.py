"""Remote executor internals: chunked shm transport, callbacks, teardown."""

import pytest

from repro.core.callbacks import CallbackBroker
from repro.core.designs import Design
from repro.core.generic_udf import SIGNATURE, generic_definition
from repro.core.isolated import DEFAULT_BUFFER, RemoteExecutor
from repro.core.udf import ServerEnvironment, UDFDefinition, UDFSignature
from repro.errors import UDFInvocationError
from repro.vm.machine import JaguarVM


@pytest.fixture
def env():
    broker = CallbackBroker()
    return ServerEnvironment(vm=JaguarVM(broker.signatures()), broker=broker)


def make_executor(env, definition, **kwargs):
    executor = RemoteExecutor(definition, env, **kwargs)
    executor.begin_query(env.broker.bind())
    return executor


class TestTransport:
    def test_payload_larger_than_buffer_chunks_through(self, env):
        """The shm buffer is smaller than the argument; the chunking
        protocol must still deliver it intact (with more hand-offs —
        the data-size cost the paper predicts)."""
        definition = generic_definition(
            Design.NATIVE_ISOLATED, name="bigpayload"
        )
        executor = make_executor(env, definition, buffer_size=4096)
        try:
            data = bytes(range(256)) * 100  # 25,600 bytes >> 4,096
            assert executor.invoke([data, 0, 1, 0]) == sum(data)
        finally:
            executor.close()

    def test_large_result_chunks_back(self, env):
        definition = UDFDefinition(
            name="echo",
            signature=UDFSignature(("bytes",), "bytes"),
            design=Design.NATIVE_ISOLATED,
            payload=b"tests.core.test_isolated:echo_bytes",
            entry="echo_bytes",
        )
        executor = make_executor(env, definition, buffer_size=2048)
        try:
            data = bytes(10000)
            assert executor.invoke([data]) == data
        finally:
            executor.close()

    def test_many_sequential_invocations(self, env):
        definition = generic_definition(Design.NATIVE_ISOLATED, name="seq")
        executor = make_executor(env, definition)
        try:
            for index in range(100):
                assert executor.invoke([b"\x02", index, 0, 0]) == index
        finally:
            executor.close()


class TestCallbacks:
    def test_callback_round_trips_counted(self, env):
        definition = generic_definition(Design.NATIVE_ISOLATED, name="cbs")
        executor = RemoteExecutor(definition, env)
        binding = env.broker.bind()
        executor.begin_query(binding)
        try:
            executor.invoke([b"\x00", 0, 0, 25])
            assert binding.invocations["cb_noop"] == 25
        finally:
            executor.close()

    def test_callback_error_propagates_into_udf(self, env):
        definition = UDFDefinition(
            name="badcb",
            signature=SIGNATURE,
            design=Design.NATIVE_ISOLATED,
            payload=b"repro.core.generic_udf:generic_native",
            entry="generic_native",
        )
        executor = RemoteExecutor(definition, env)
        binding = env.broker.bind()

        def explode(binding_):
            raise ValueError("callback exploded")

        # Sabotage the broker's handler for this binding.
        binding.broker._handlers["cb_noop"] = explode
        executor.begin_query(binding)
        try:
            with pytest.raises(ValueError, match="exploded"):
                executor.invoke([b"", 0, 0, 1])
        finally:
            executor.close()


class TestLifecycle:
    def test_end_query_terminates_process(self, env):
        definition = generic_definition(Design.NATIVE_ISOLATED, name="gone")
        executor = make_executor(env, definition)
        process = executor._process
        executor.end_query()
        assert process is not None
        process.join(timeout=5.0)
        assert not process.is_alive()

    def test_invoke_after_close_raises(self, env):
        definition = generic_definition(Design.NATIVE_ISOLATED, name="dead")
        executor = make_executor(env, definition)
        executor.close()
        with pytest.raises(UDFInvocationError, match="closed"):
            executor.invoke([b"", 0, 0, 0])

    def test_double_close_harmless(self, env):
        definition = generic_definition(Design.NATIVE_ISOLATED, name="twice")
        executor = make_executor(env, definition)
        executor.close()
        executor.close()

    def test_sandbox_isolated_jit_and_interp(self, env):
        for design, name in (
            (Design.SANDBOX_ISOLATED, "si"),
        ):
            definition = generic_definition(design, name=name)
            executor = make_executor(env, definition)
            try:
                assert executor.invoke([b"\x03\x04", 1, 1, 0]) == 8
            finally:
                executor.close()


def echo_bytes(data):
    return bytes(data)
