"""Design metadata (Table 1) and the SFI guarded buffer."""

import pytest

from repro.core.designs import Design, design_space
from repro.core.sfi import GuardedBytes
from repro.errors import SFIViolation


class TestDesignEnum:
    def test_paper_labels(self):
        assert Design.NATIVE_INTEGRATED.paper_label == "C++"
        assert Design.NATIVE_ISOLATED.paper_label == "IC++"
        assert Design.SANDBOX_JIT.paper_label == "JNI"

    def test_isolation_classification(self):
        assert Design.NATIVE_ISOLATED.is_isolated
        assert Design.SANDBOX_ISOLATED.is_isolated
        assert not Design.SANDBOX_JIT.is_isolated

    def test_sandbox_classification(self):
        sandboxed = {d for d in Design if d.is_sandboxed}
        assert sandboxed == {
            Design.SANDBOX_JIT,
            Design.SANDBOX_INTERP,
            Design.SANDBOX_ISOLATED,
        }

    def test_language(self):
        assert Design.NATIVE_SFI.language == "native"
        assert Design.SANDBOX_ISOLATED.language == "jaguar"


class TestDesignSpace:
    def test_covers_all_designs(self):
        assert {p.design for p in design_space()} == set(Design)

    def test_table1_crash_containment_column(self):
        properties = {p.design: p for p in design_space()}
        assert not properties[Design.NATIVE_INTEGRATED].crash_contained
        assert not properties[Design.NATIVE_SFI].crash_contained
        assert properties[Design.NATIVE_ISOLATED].crash_contained
        assert properties[Design.SANDBOX_JIT].crash_contained

    def test_only_sandboxes_police_resources(self):
        for p in design_space():
            assert p.resources_policed == p.design.is_sandboxed

    def test_only_sandboxes_are_portable(self):
        for p in design_space():
            assert p.portable == p.design.is_sandboxed


class TestGuardedBytes:
    def test_basic_access(self):
        guarded = GuardedBytes(b"abc")
        assert len(guarded) == 3
        assert guarded[0] == ord("a")
        guarded[1] = 999  # masked
        assert guarded[1] == 999 & 0xFF

    def test_out_of_range_read(self):
        guarded = GuardedBytes(b"abc")
        with pytest.raises(SFIViolation):
            guarded[3]
        with pytest.raises(SFIViolation):
            guarded[-1]

    def test_out_of_range_write(self):
        guarded = GuardedBytes(b"abc")
        with pytest.raises(SFIViolation):
            guarded[10] = 0

    def test_slice_read_within_region(self):
        guarded = GuardedBytes(b"abcdef")
        assert guarded[1:4] == b"bcd"

    def test_strided_access_denied(self):
        guarded = GuardedBytes(b"abcdef")
        with pytest.raises(SFIViolation):
            guarded[::2]

    def test_slice_store_denied(self):
        guarded = GuardedBytes(b"abc")
        with pytest.raises(SFIViolation):
            guarded[0:2] = b"xy"

    def test_iteration(self):
        assert list(GuardedBytes(b"ab")) == [ord("a"), ord("b")]

    def test_copy_semantics(self):
        original = bytearray(b"abc")
        guarded = GuardedBytes(original)
        guarded[0] = ord("z")
        assert original == b"abc"  # the UDF works on its own copy
        assert guarded.tobytes() == b"zbc"
