"""Callback broker/bindings and the Section 5.6 cost model."""

import pytest

from repro.core.callbacks import CallbackBroker, standard_callback_signatures
from repro.core.cost_model import CostModel, fit_cost_model, recommend_design
from repro.core.designs import Design
from repro.errors import CallbackError
from repro.vm.values import VMType


class TestBroker:
    def test_standard_callbacks_present(self):
        broker = CallbackBroker()
        signatures = broker.signatures()
        assert set(signatures) >= {"cb_noop", "cb_lob_length", "cb_lob_read"}

    def test_noop_returns_zero(self):
        binding = CallbackBroker().bind()
        assert binding.invoke("cb_noop") == 0

    def test_lob_callbacks_over_bytes_handle(self):
        binding = CallbackBroker().bind({5: b"hello world"})
        assert binding.invoke("cb_lob_length", 5) == 11
        assert binding.invoke("cb_lob_read", 5, 6, 5) == bytearray(b"world")
        assert binding.invoke("cb_lob_read", 5, 6, 100) == bytearray(b"world")

    def test_unknown_handle(self):
        binding = CallbackBroker().bind()
        with pytest.raises(CallbackError, match="handle"):
            binding.invoke("cb_lob_length", 99)

    def test_unknown_callback(self):
        binding = CallbackBroker().bind()
        with pytest.raises(CallbackError, match="unknown callback"):
            binding.invoke("cb_teleport")

    def test_negative_range_rejected(self):
        binding = CallbackBroker().bind({1: b"abc"})
        with pytest.raises(CallbackError):
            binding.invoke("cb_lob_read", 1, -1, 5)

    def test_invocation_counting(self):
        binding = CallbackBroker().bind()
        for __ in range(7):
            binding.invoke("cb_noop")
        assert binding.invocations == {"cb_noop": 7}

    def test_custom_registration(self):
        broker = CallbackBroker()
        broker.register(
            "cb_double", ((VMType.INT,), VMType.INT),
            lambda binding, x: x * 2,
        )
        assert broker.bind().invoke("cb_double", 21) == 42

    def test_duplicate_registration_rejected(self):
        broker = CallbackBroker()
        with pytest.raises(CallbackError, match="already"):
            broker.register("cb_noop", ((), VMType.INT), lambda b: 0)

    def test_as_handlers_adapts_for_vm(self):
        binding = CallbackBroker().bind({1: b"xy"})
        handlers = binding.as_handlers()
        assert handlers["cb_lob_length"](1) == 2

    def test_signatures_are_copies(self):
        table = standard_callback_signatures()
        table["cb_injected"] = ((), VMType.INT)
        assert "cb_injected" not in standard_callback_signatures()


class TestCostModel:
    def synthetic_samples(self, invoke, indep, dep_byte, callback, data_byte):
        model = CostModel(
            Design.SANDBOX_JIT, invoke, indep, dep_byte, callback, data_byte
        )
        samples = []
        for nbytes in (1, 100, 10000):
            for ni in (0, 1000):
                for nd in (0, 2):
                    for nc in (0, 10):
                        samples.append(
                            (nbytes, ni, nd, nc,
                             model.predict(nbytes, ni, nd, nc))
                        )
        return samples

    def test_fit_recovers_coefficients(self):
        truth = (1e-5, 1e-8, 2e-9, 5e-6, 1e-9)
        samples = self.synthetic_samples(*truth)
        fitted = fit_cost_model(Design.SANDBOX_JIT, samples)
        for name, expected in zip(
            ("invoke", "indep", "dep_byte", "callback", "data_byte"), truth
        ):
            assert fitted.as_dict()[name] == pytest.approx(expected, rel=1e-3)

    def test_fit_requires_enough_samples(self):
        with pytest.raises(ValueError):
            fit_cost_model(Design.SANDBOX_JIT, [(1, 1, 1, 1, 0.5)])

    def test_negative_coefficients_clamped(self):
        samples = [
            (1, 0, 0, 0, 0.0),
            (1, 1, 0, 0, 0.0),
            (1, 0, 1, 0, 0.0),
            (1, 0, 0, 1, 0.0),
            (100, 0, 0, 0, 0.0),
            (100, 5, 5, 5, 0.0),
        ]
        fitted = fit_cost_model(Design.SANDBOX_JIT, samples)
        assert all(v >= 0 for v in fitted.as_dict().values())

    def test_recommendation_prefers_cheap_safe_design(self):
        models = {
            Design.NATIVE_INTEGRATED: CostModel(
                Design.NATIVE_INTEGRATED, 1e-6, 1e-9, 1e-10, 1e-6, 0.0
            ),
            Design.NATIVE_ISOLATED: CostModel(
                Design.NATIVE_ISOLATED, 1e-4, 1e-9, 1e-10, 1e-4, 1e-9
            ),
            Design.SANDBOX_JIT: CostModel(
                Design.SANDBOX_JIT, 1e-5, 2e-9, 5e-10, 1e-5, 5e-10
            ),
        }
        # Safety required: Design 1 excluded even though it is cheapest.
        best, __ = recommend_design(models, 10000, 1000, 1, 0)
        assert best is Design.SANDBOX_JIT
        # Without the safety requirement, raw speed wins.
        best, __ = recommend_design(
            models, 10000, 1000, 1, 0, require_safety=False
        )
        assert best is Design.NATIVE_INTEGRATED

    def test_callback_heavy_workload_shifts_choice(self):
        models = {
            Design.NATIVE_ISOLATED: CostModel(
                Design.NATIVE_ISOLATED, 1e-5, 1e-9, 1e-10, 1e-3, 0.0
            ),
            Design.SANDBOX_JIT: CostModel(
                Design.SANDBOX_JIT, 2e-5, 2e-9, 5e-10, 1e-5, 0.0
            ),
        }
        # Few callbacks: IC++ invoke cost is lower here.
        best, __ = recommend_design(models, 100, 0, 0, 0)
        assert best is Design.NATIVE_ISOLATED
        # Callback-heavy: the per-callback IPC dominates (Figure 8).
        best, __ = recommend_design(models, 100, 0, 0, 100)
        assert best is Design.SANDBOX_JIT

    def test_no_admissible_design(self):
        models = {
            Design.NATIVE_INTEGRATED: CostModel(
                Design.NATIVE_INTEGRATED, 0, 0, 0, 0, 0
            )
        }
        with pytest.raises(ValueError):
            recommend_design(models, 1, 1, 1, 1)
