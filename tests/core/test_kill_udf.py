"""DBA kill switch: revoking a running UDF through its thread group."""

import threading
import time

import pytest

from repro.errors import FuelExhausted


# Input-dependent trip count: the static certifier cannot prove this
# exceeds the fuel quota (x comes from the table), so it admits at load
# and the kill switch gets exercised at run time as intended.
SLOW_UDF = (
    "def slow(x: int) -> int:\n"
    "    s: int = 0\n"
    "    for i in range(x * 100000000):\n"
    "        s = s + 1\n"
    "    return s"
)


@pytest.fixture
def slow_db(db):
    db.execute("CREATE TABLE t (id INT)")
    db.execute("INSERT INTO t VALUES (1)")
    escaped = SLOW_UDF.replace("'", "''")
    db.execute(
        f"CREATE FUNCTION slow(int) RETURNS int LANGUAGE JAGUAR "
        f"DESIGN SANDBOX FUEL 1000000000 AS '{escaped}'"
    )
    return db


class TestKillUDF:
    def test_kill_running_query(self, slow_db):
        outcome = {}

        def run_query():
            try:
                outcome["result"] = slow_db.execute(
                    "SELECT slow(id) FROM t"
                )
            except Exception as exc:
                outcome["error"] = exc

        thread = threading.Thread(target=run_query, daemon=True)
        thread.start()
        time.sleep(0.3)  # let the UDF get going
        assert thread.is_alive(), "query finished before the kill"
        slow_db.kill_udf("slow")
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert isinstance(outcome.get("error"), FuelExhausted)

    def test_other_udfs_unaffected(self, slow_db):
        slow_db.execute(
            "CREATE FUNCTION quick(int) RETURNS int LANGUAGE JAGUAR "
            "DESIGN SANDBOX AS 'def quick(x: int) -> int: return x + 1'"
        )
        slow_db.kill_udf("slow")
        assert slow_db.execute("SELECT quick(id) FROM t").scalar() == 2

    def test_killed_udf_usable_on_next_query(self, slow_db):
        # Kill while idle: the revocation hits the group, but the next
        # query gets a fresh group and a fresh account.
        slow_db.kill_udf("slow")
        slow_db.execute(
            "CREATE FUNCTION tiny(int) RETURNS int LANGUAGE JAGUAR "
            "DESIGN SANDBOX AS 'def tiny(x: int) -> int: return x'"
        )
        slow_db.kill_udf("tiny")
        assert slow_db.execute("SELECT tiny(id) FROM t").scalar() == 1

    def test_kill_unknown_udf_is_noop(self, slow_db):
        slow_db.kill_udf("never_registered")
