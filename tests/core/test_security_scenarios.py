"""The attacks of Section 1, demonstrated failing (or, for Design 1,
demonstrated *succeeding* — which is the paper's point).

"the DBMS must be wary of UDFs that might crash the database system,
that modify its files or memory directly ... or that monopolize CPU,
memory or disk resources."
"""

import os

import pytest

from repro.core.callbacks import CallbackBroker
from repro.core.designs import Design
from repro.core.udf import ServerEnvironment, UDFDefinition, UDFRegistry, UDFSignature
from repro.errors import (
    FuelExhausted,
    MemoryQuotaExceeded,
    SecurityViolation,
    SFIViolation,
    UDFCrashed,
)
from repro.vm.machine import JaguarVM


@pytest.fixture
def registry():
    broker = CallbackBroker()
    env = ServerEnvironment(vm=JaguarVM(broker.signatures()), broker=broker)
    reg = UDFRegistry(env)
    yield reg
    reg.close()


def run_udf(registry, definition, args):
    registry.register(definition)
    executor = registry.executor_for_query(definition.name)
    executor.begin_query(registry.environment.broker.bind())
    try:
        return executor.invoke(args)
    finally:
        executor.end_query()


# -- malicious native UDFs (importable by the worker) -------------------------

SERVER_STATE = {"corrupted": False}


def evil_crash(x):
    os._exit(13)  # the closest Python gets to a segfault


def evil_raise(x):
    raise RuntimeError("buggy UDF blew up")


def evil_touch_server(x):
    SERVER_STATE["corrupted"] = True
    return x


def evil_scan_everything(ctx, data):
    total = 0
    for index in range(len(data) + 10):  # off-by-ten bug
        total += data[index]
    return total


def native_def(name, func_name, design, params=("int",), ret="int",
               **kwargs):
    return UDFDefinition(
        name=name,
        signature=UDFSignature(tuple(params), ret),
        design=design,
        payload=f"tests.core.test_security_scenarios:{func_name}".encode(),
        entry=func_name,
        **kwargs,
    )


class TestDesign1IsUnsafe:
    """Design 1 trusts the UDF — and that trust is real."""

    def test_exception_escapes_into_server_thread(self, registry):
        definition = native_def("bug", "evil_raise", Design.NATIVE_INTEGRATED)
        with pytest.raises(RuntimeError, match="blew up"):
            run_udf(registry, definition, [1])

    def test_udf_can_mutate_server_state(self, registry):
        SERVER_STATE["corrupted"] = False
        definition = native_def(
            "touch", "evil_touch_server", Design.NATIVE_INTEGRATED
        )
        run_udf(registry, definition, [1])
        assert SERVER_STATE["corrupted"]  # nothing stopped it


class TestDesign2Containment:
    """Design 2: the crash kills only the executor process."""

    def test_hard_crash_contained(self, registry):
        definition = native_def("crash", "evil_crash", Design.NATIVE_ISOLATED)
        with pytest.raises(UDFCrashed):
            run_udf(registry, definition, [1])
        # The server (this test process) is alive and can keep working.
        ok = native_def("ok", "evil_touch_server", Design.NATIVE_ISOLATED)
        assert run_udf(registry, ok, [5]) == 5

    def test_exception_reported_not_fatal(self, registry):
        definition = native_def("bug2", "evil_raise", Design.NATIVE_ISOLATED)
        with pytest.raises(RuntimeError, match="blew up"):
            run_udf(registry, definition, [1])

    def test_server_state_isolated_by_process_boundary(self, registry):
        SERVER_STATE["corrupted"] = False
        definition = native_def(
            "touch2", "evil_touch_server", Design.NATIVE_ISOLATED
        )
        run_udf(registry, definition, [1])
        # The worker mutated *its own copy*; the server's is untouched.
        assert not SERVER_STATE["corrupted"]


class TestSFI:
    def test_out_of_region_access_trapped(self, registry):
        definition = UDFDefinition(
            name="oob",
            signature=UDFSignature(("bytes",), "int"),
            design=Design.NATIVE_SFI,
            payload=b"tests.core.test_security_scenarios:evil_scan_everything",
            entry="evil_scan_everything",
        )
        with pytest.raises(SFIViolation):
            run_udf(registry, definition, [b"ab"])


SPIN_SRC = b"def spin(x: int) -> int:\n    while True:\n        pass\n"
# The allocation size depends on the argument, so the static certifier
# cannot reject this at load — it must be killed by the runtime quota,
# which is exactly what this scenario tests.
BOMB_SRC = (
    b"def bomb(x: int) -> int:\n"
    b"    total: int = 0\n"
    b"    for i in range(1000000):\n"
    b"        a: bytes = bytearray(x * 1048576)\n"
    b"        total = total + len(a)\n"
    b"    return total"
)
SNEAKY_SRC = b"def sneak(x: int) -> int:\n    return cb_lob_length(x)\n"


def sandbox_def(name, payload, entry, design=Design.SANDBOX_JIT, **kwargs):
    return UDFDefinition(
        name=name,
        signature=UDFSignature(("int",), "int"),
        design=design,
        payload=payload,
        entry=entry,
        **kwargs,
    )


class TestSandboxResourcePolicing:
    def test_cpu_bomb_killed_by_fuel(self, registry):
        definition = sandbox_def("spin", SPIN_SRC, "spin", fuel=100_000)
        with pytest.raises(FuelExhausted):
            run_udf(registry, definition, [1])

    def test_cpu_bomb_killed_in_interpreter_too(self, registry):
        definition = sandbox_def(
            "spin2", SPIN_SRC, "spin",
            design=Design.SANDBOX_INTERP, fuel=100_000,
        )
        with pytest.raises(FuelExhausted):
            run_udf(registry, definition, [1])

    def test_memory_bomb_killed_by_quota(self, registry):
        definition = sandbox_def(
            "bomb", BOMB_SRC, "bomb", memory=8 * 1024 * 1024
        )
        with pytest.raises(MemoryQuotaExceeded):
            run_udf(registry, definition, [1])

    def test_isolated_sandbox_also_policed(self, registry):
        definition = sandbox_def(
            "spin3", SPIN_SRC, "spin",
            design=Design.SANDBOX_ISOLATED, fuel=100_000,
        )
        with pytest.raises(FuelExhausted):
            run_udf(registry, definition, [1])

    def test_server_survives_all_of_the_above(self, registry):
        definition = sandbox_def(
            "fine", b"def fine(x: int) -> int:\n    return x + 1", "fine"
        )
        assert run_udf(registry, definition, [41]) == 42


class TestLeastPrivilege:
    def test_unauthorized_callback_denied(self, registry):
        # The UDF compiles (cb_lob_length is a known signature) but the
        # registration grants no callbacks: the static pre-check rejects
        # it at CREATE FUNCTION time, before it can ever run.
        definition = sandbox_def("sneak", SNEAKY_SRC, "sneak")
        with pytest.raises(SecurityViolation):
            run_udf(registry, definition, [1])

    def test_rejected_at_registration_not_first_invocation(self, registry):
        definition = sandbox_def("sneak2", SNEAKY_SRC, "sneak")
        with pytest.raises(SecurityViolation, match="cb_lob_length"):
            registry.register(definition)
        # Nothing reached the catalog or the VM.
        assert not registry.has("sneak2")
        assert "sneak2" not in registry.environment.vm.loaded_udfs

    def test_denial_recorded_in_audit_log(self, registry):
        from repro.vm.security import SecurityManager

        manager = SecurityManager(class_name="udf_sneak2")
        with pytest.raises(SecurityViolation, match="rejected at load"):
            manager.check_static_effects(frozenset({"cb_lob_length"}))
        denials = manager.denials()
        assert denials and denials[0].target == "cb_lob_length"
        assert denials[0].action == "static:callback"

    def test_granted_callback_allowed(self, registry):
        definition = sandbox_def(
            "legit", SNEAKY_SRC, "sneak", callbacks=("cb_lob_length",)
        )
        registry.register(definition)
        executor = registry.executor_for_query("legit")
        binding = registry.environment.broker.bind({1: b"hello"})
        executor.begin_query(binding)
        try:
            assert executor.invoke([1]) == 5
        finally:
            executor.end_query()
