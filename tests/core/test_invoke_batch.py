"""``invoke_batch`` contract: every design, same results as ``invoke``.

The batch entry point is the executor-level amortization boundary; its
contract is one result per argument tuple, in order, first failure
propagating.  Each design's override must be indistinguishable from the
per-tuple loop except for speed.
"""

import pytest

from repro.core.designs import Design
from repro.core.generic_udf import generic_definition
from repro.database import Database

ALL_DESIGNS = tuple(Design)
IN_PROCESS = tuple(d for d in ALL_DESIGNS if not d.is_isolated)
ISOLATED = tuple(d for d in ALL_DESIGNS if d.is_isolated)


@pytest.fixture()
def db():
    with Database() as database:
        yield database


def _executor(db, design):
    definition = generic_definition(design)
    db.register_udf(definition, persist=False)
    return db.registry.executor_for_query(definition.name)


def _args(count):
    # (data, num_indep, num_dep, num_callbacks); expected result is
    # num_indep + num_dep * sum(data).
    return [
        (bytes([row % 251, row % 7]), row, 1, 0) for row in range(count)
    ]


def _expected(args_list):
    return [indep + dep * sum(data) for data, indep, dep, __ in args_list]


@pytest.mark.parametrize("design", ALL_DESIGNS)
def test_matches_per_tuple_results(db, design):
    executor = _executor(db, design)
    try:
        executor.begin_query()
        args_list = _args(10)
        assert executor.invoke_batch(args_list) == _expected(args_list)
    finally:
        executor.end_query()
        executor.close()


@pytest.mark.parametrize("design", IN_PROCESS)
def test_batch_equals_loop_of_invokes(db, design):
    executor = _executor(db, design)
    try:
        executor.begin_query()
        args_list = _args(7)
        loop = [executor.invoke(args) for args in args_list]
        assert executor.invoke_batch(args_list) == loop
    finally:
        executor.end_query()
        executor.close()


@pytest.mark.parametrize("design", ALL_DESIGNS)
def test_empty_batch(db, design):
    executor = _executor(db, design)
    try:
        executor.begin_query()
        assert executor.invoke_batch([]) == []
    finally:
        executor.end_query()
        executor.close()


@pytest.mark.parametrize("design", IN_PROCESS)
def test_callbacks_cross_per_call(db, design):
    executor = _executor(db, design)
    try:
        executor.begin_query()
        args_list = [(b"", 0, 0, 3), (b"", 0, 0, 2)]
        # cb_noop returns 0, so results are 0; what matters is that the
        # batch path dispatches the per-call callbacks without error.
        assert executor.invoke_batch(args_list) == [0, 0]
    finally:
        executor.end_query()
        executor.close()


@pytest.mark.parametrize("design", (Design.NATIVE_ISOLATED,))
def test_isolated_batch_with_callbacks(db, design):
    executor = _executor(db, design)
    try:
        executor.begin_query()
        args_list = [(b"\x05", 1, 1, 2), (b"\x02", 2, 0, 1)]
        assert executor.invoke_batch(args_list) == [6, 2]
    finally:
        executor.end_query()
        executor.close()


def test_default_fallback_loops_over_invoke(db):
    """An executor that only implements ``invoke`` still batches."""
    from repro.core.factory import UDFExecutor

    calls = []

    class Minimal(UDFExecutor):
        def invoke(self, args):
            calls.append(tuple(args))
            return sum(args)

    definition = generic_definition(Design.NATIVE_INTEGRATED)
    executor = Minimal(definition, db.environment)
    assert executor.invoke_batch([(1, 2), (3, 4)]) == [3, 7]
    assert calls == [(1, 2), (3, 4)]


@pytest.mark.parametrize("design", IN_PROCESS)
def test_first_failure_propagates(db, design):
    executor = _executor(db, design)
    try:
        executor.begin_query()
        # Arity violation inside the batch: designs surface their own
        # error types, but the batch must raise rather than return.
        with pytest.raises(Exception):
            executor.invoke_batch([(b"", 0, 0, 0), (b"",)])
    finally:
        executor.end_query()
        executor.close()
