"""Physical operators, unit-level (fed from lists, no storage)."""

import pytest

from repro.errors import ExecutionError
from repro.sql.operators import (
    Aggregate,
    Distinct,
    Filter,
    Limit,
    NestedLoopJoin,
    PhysicalOp,
    Project,
    Sort,
)


class Rows(PhysicalOp):
    """Test source operator."""

    def __init__(self, rows):
        self._rows = rows

    def rows(self):
        return iter([list(r) for r in self._rows])


class TestFilterProject:
    def test_filter_requires_strict_true(self):
        # None (SQL NULL) must not pass, only True.
        source = Rows([[1], [None], [3]])
        out = list(Filter(source, [lambda r: None if r[0] is None else r[0] > 0]).rows())
        assert out == [[1], [3]]

    def test_project_applies_in_order(self):
        source = Rows([[1, 2]])
        out = list(Project(source, [lambda r: r[1], lambda r: r[0] + 10]).rows())
        assert out == [[2, 11]]


class TestJoin:
    def test_cross_product_order(self):
        left = Rows([[1], [2]])
        right = Rows([["a"], ["b"]])
        out = list(NestedLoopJoin(left, right).rows())
        assert out == [[1, "a"], [1, "b"], [2, "a"], [2, "b"]]

    def test_join_predicate(self):
        left = Rows([[1], [2], [3]])
        right = Rows([[2], [3], [4]])
        out = list(
            NestedLoopJoin(left, right, [lambda r: r[0] == r[1]]).rows()
        )
        assert out == [[2, 2], [3, 3]]

    def test_empty_sides(self):
        assert list(NestedLoopJoin(Rows([]), Rows([["x"]])).rows()) == []
        assert list(NestedLoopJoin(Rows([["x"]]), Rows([])).rows()) == []


class TestAggregate:
    def agg(self, rows, group_fns, specs):
        return list(Aggregate(Rows(rows), group_fns, specs).rows())

    def test_count_star_vs_count_column(self):
        rows = [[1], [None], [3]]
        out = self.agg(
            rows, [],
            [("count", None, False), ("count", lambda r: r[0], False)],
        )
        assert out == [[3, 2]]

    def test_sum_avg_skip_nulls(self):
        rows = [[2.0], [None], [4.0]]
        out = self.agg(
            rows, [],
            [("sum", lambda r: r[0], False), ("avg", lambda r: r[0], False)],
        )
        assert out == [[6.0, 3.0]]

    def test_min_max(self):
        rows = [[5], [1], [9]]
        out = self.agg(
            rows, [],
            [("min", lambda r: r[0], False), ("max", lambda r: r[0], False)],
        )
        assert out == [[1, 9]]

    def test_distinct_aggregation(self):
        rows = [[1], [1], [2]]
        out = self.agg(rows, [], [("sum", lambda r: r[0], True)])
        assert out == [[3.0]]

    def test_groups_preserve_first_seen_order(self):
        rows = [["b"], ["a"], ["b"], ["c"]]
        out = self.agg(
            rows, [lambda r: r[0]], [("count", None, False)]
        )
        assert out == [["b", 2], ["a", 1], ["c", 1]]

    def test_empty_input_global_aggregate(self):
        out = self.agg([], [], [("count", None, False),
                                ("sum", lambda r: r[0], False)])
        assert out == [[0, None]]

    def test_empty_input_grouped(self):
        out = self.agg([], [lambda r: r[0]], [("count", None, False)])
        assert out == []


class TestSortDistinctLimit:
    def test_multi_key_sort_stability(self):
        rows = [[2, "x"], [1, "y"], [2, "a"], [1, "a"]]
        out = list(
            Sort(
                Rows(rows),
                [lambda r: r[0], lambda r: r[1]],
                [False, True],
            ).rows()
        )
        assert out == [[1, "y"], [1, "a"], [2, "x"], [2, "a"]]

    def test_nulls_sort_last_ascending(self):
        rows = [[None], [2], [1]]
        out = list(Sort(Rows(rows), [lambda r: r[0]], [False]).rows())
        assert out == [[1], [2], [None]]

    def test_distinct_hashable(self):
        rows = [[1, "a"], [1, "a"], [2, "a"]]
        out = list(Distinct(Rows(rows)).rows())
        assert out == [[1, "a"], [2, "a"]]

    def test_distinct_bytearray_normalized(self):
        rows = [[bytearray(b"x")], [bytearray(b"x")]]
        out = list(Distinct(Rows(rows)).rows())
        assert len(out) == 1

    def test_distinct_unhashable_raises(self):
        rows = [[["list"]]]
        with pytest.raises(ExecutionError):
            list(Distinct(Rows(rows)).rows())

    def test_limit(self):
        rows = [[i] for i in range(10)]
        assert len(list(Limit(Rows(rows), 3).rows())) == 3
        assert list(Limit(Rows(rows), 0).rows()) == []
        assert len(list(Limit(Rows(rows), 99).rows())) == 10

    def test_limit_does_not_overconsume(self):
        consumed = []

        class Counting(PhysicalOp):
            def rows(self):
                for i in range(10):
                    consumed.append(i)
                    yield [i]

        list(Limit(Counting(), 2).rows())
        assert len(consumed) == 2
