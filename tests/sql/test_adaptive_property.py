"""Property-based test: adaptive replanning never changes results.

Hypothesis generates a small table and a random built-in conjunct; the
query pairs it with a pure (deliberately mis-hinted) UDF predicate.  An
``adaptive=True`` database — with the trust thresholds lowered so
feedback engages even on tiny tables — may reorder the conjuncts
between runs; a static database never does.  Every run of both
databases must return exactly the same rows as a direct Python model:
adaptivity is allowed to change plan shape, never semantics.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.database import Database
from repro.obs.adaptive import AdaptiveFeedback

#: Pure, slow, and declared nearly free (COST 0.1) with a falsely low
#: selectivity — the worst-case wrong hint adaptivity exists to fix.
_UDF_DDL = (
    "CREATE FUNCTION sp(int) RETURNS int LANGUAGE JAGUAR "
    "DESIGN SANDBOX COST 0.1 SELECTIVITY 0.2 AS "
    "'def sp(x: int) -> int:\n"
    "    total = 0\n"
    "    for i in range(200):\n"
    "        total = total + i\n"
    "    return x + total - total'"
)


@st.composite
def tables(draw):
    n = draw(st.integers(min_value=0, max_value=16))
    return [draw(st.integers(-20, 20)) for __ in range(n)]


@st.composite
def builtin_predicates(draw):
    """(sql_fragment, python_fn(a) -> bool) without NULL handling."""
    op = draw(st.sampled_from(["=", "!=", "<", "<=", ">", ">="]))
    literal = draw(st.integers(-20, 20))
    ops = {
        "=": lambda v: v == literal,
        "!=": lambda v: v != literal,
        "<": lambda v: v < literal,
        "<=": lambda v: v <= literal,
        ">": lambda v: v > literal,
        ">=": lambda v: v >= literal,
    }
    return f"a {op} {literal}", ops[op]


def _run(db, sql, repeats=3):
    """The query's sorted rows for each of ``repeats`` runs."""
    return [sorted(db.query(sql)) for __ in range(repeats)]


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(values=tables(), predicate=builtin_predicates(), threshold=st.integers(-20, 20))
def test_adaptive_reordering_preserves_results(values, predicate, threshold):
    fragment, python_fn = predicate
    sql = f"SELECT a FROM t WHERE sp(a) > {threshold} AND {fragment}"
    expected = sorted(
        (v,) for v in values if v > threshold and python_fn(v)
    )

    adaptive = Database(adaptive=True)
    static = Database()
    try:
        for db in (adaptive, static):
            db.execute("CREATE TABLE t (a INT)")
            for v in values:
                db.execute(f"INSERT INTO t VALUES ({v})")
            db.execute(_UDF_DDL)
        # Lower the trust thresholds so feedback engages on tables far
        # smaller than the production MIN_CALLS/MIN_ROWS floors.
        adaptive.observability.adaptive = AdaptiveFeedback(
            min_calls=2, min_rows=2
        )

        static_plans = []
        for run in range(3):
            assert sorted(adaptive.query(sql)) == expected
            assert sorted(static.query(sql)) == expected
            static_plans.append(
                [line for (line,) in static.execute("EXPLAIN " + sql)]
            )
        # The static database's plan is identical run after run; only
        # the adaptive one is allowed to change shape.
        assert static_plans[0] == static_plans[1] == static_plans[2]
    finally:
        adaptive.close()
        static.close()
