"""SQL parser: statement shapes and failure modes."""

import pytest

from repro.errors import ParseError
from repro.sql import ast_nodes as A
from repro.sql.parser import parse_script, parse_statement
from repro.sql.types import SQLType


class TestSelect:
    def test_simple(self):
        stmt = parse_statement("SELECT a, b FROM t")
        assert isinstance(stmt, A.Select)
        assert len(stmt.items) == 2
        assert stmt.tables == (A.TableRef("t"),)

    def test_star(self):
        stmt = parse_statement("SELECT * FROM t")
        assert isinstance(stmt.items[0].expr, A.Star)

    def test_qualified_star(self):
        stmt = parse_statement("SELECT t.* FROM t")
        assert stmt.items[0].expr == A.Star(table="t")

    def test_aliases(self):
        stmt = parse_statement("SELECT a AS x, b y FROM t u")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"
        assert stmt.tables[0].alias == "u"

    def test_where_precedence(self):
        stmt = parse_statement(
            "SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3"
        )
        where = stmt.where
        assert isinstance(where, A.BinaryOp) and where.op == "or"
        assert isinstance(where.right, A.BinaryOp)
        assert where.right.op == "and"

    def test_arith_precedence(self):
        stmt = parse_statement("SELECT 1 + 2 * 3 FROM t")
        expr = stmt.items[0].expr
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_group_order_limit(self):
        stmt = parse_statement(
            "SELECT a, count(*) FROM t GROUP BY a "
            "ORDER BY a DESC, b LIMIT 5"
        )
        assert len(stmt.group_by) == 1
        assert stmt.order_by[0].descending
        assert not stmt.order_by[1].descending
        assert stmt.limit == 5

    def test_join_on_folded_into_where(self):
        stmt = parse_statement(
            "SELECT a FROM t JOIN u ON t.x = u.y WHERE t.z = 1"
        )
        assert len(stmt.tables) == 2
        # WHERE and ON are ANDed.
        assert isinstance(stmt.where, A.BinaryOp)
        assert stmt.where.op == "and"

    def test_cross_join_and_comma(self):
        first = parse_statement("SELECT a FROM t, u")
        second = parse_statement("SELECT a FROM t CROSS JOIN u")
        assert first.tables == second.tables

    def test_predicates(self):
        stmt = parse_statement(
            "SELECT a FROM t WHERE a IS NOT NULL AND b BETWEEN 1 AND 5 "
            "AND c IN (1, 2) AND d LIKE 'x%' AND NOT e NOT IN (3)"
        )
        assert stmt.where is not None

    def test_distinct_and_agg_distinct(self):
        stmt = parse_statement("SELECT DISTINCT count(DISTINCT a) FROM t")
        assert stmt.distinct
        assert stmt.items[0].expr.distinct

    def test_udf_call(self):
        stmt = parse_statement(
            "SELECT InvestVal(s.history) FROM stocks s "
            "WHERE s.type = 'tech' AND InvestVal(s.history) > 5"
        )
        call = stmt.items[0].expr
        assert isinstance(call, A.FuncCall)
        assert call.name == "investval"

    def test_unary_and_literals(self):
        stmt = parse_statement(
            "SELECT -a, +b, 1.5, 'x', TRUE, FALSE, NULL FROM t"
        )
        assert isinstance(stmt.items[0].expr, A.UnaryOp)
        values = [item.expr for item in stmt.items[2:]]
        assert [v.value for v in values] == [1.5, "x", True, False, None]


class TestDDL:
    def test_create_table(self):
        stmt = parse_statement(
            "CREATE TABLE t (id INT NOT NULL, name VARCHAR, "
            "img BYTEARRAY, hist TIMESERIES)"
        )
        assert isinstance(stmt, A.CreateTable)
        assert stmt.columns[0].sql_type is SQLType.INT
        assert not stmt.columns[0].nullable
        assert stmt.columns[2].sql_type is SQLType.BYTES
        assert stmt.columns[3].sql_type is SQLType.FLOATARR

    def test_create_index(self):
        stmt = parse_statement("CREATE INDEX i ON t(id)")
        assert stmt == A.CreateIndex("i", "t", "id")

    def test_drop(self):
        assert parse_statement("DROP TABLE t") == A.DropTable("t")
        assert parse_statement("DROP FUNCTION f") == A.DropFunction("f")

    def test_create_function_full(self):
        stmt = parse_statement(
            "CREATE FUNCTION redness(handle, int) RETURNS float "
            "LANGUAGE JAGUAR DESIGN SANDBOX ENTRY 'main' "
            "CALLBACKS 'cb_lob_read', 'cb_lob_length' "
            "COST 500 SELECTIVITY 0.2 FUEL 1000000 MEMORY 65536 "
            "AS 'def main(h: int, t: int) -> float: return 0.0'"
        )
        assert isinstance(stmt, A.CreateFunction)
        assert stmt.param_types == ("handle", "int")
        assert stmt.ret_type == "float"
        assert stmt.language == "jaguar"
        assert stmt.design == "sandbox_jit"
        assert stmt.entry == "main"
        assert stmt.callbacks == ("cb_lob_read", "cb_lob_length")
        assert stmt.cost == 500
        assert stmt.selectivity == 0.2
        assert stmt.fuel == 1000000
        assert stmt.memory == 65536

    def test_create_function_native(self):
        stmt = parse_statement(
            "CREATE FUNCTION g(bytes, int, int, int) RETURNS int "
            "LANGUAGE NATIVE DESIGN ISOLATED AS 'pkg.mod:fn'"
        )
        assert stmt.design == "native_isolated"


class TestDML:
    def test_insert(self):
        stmt = parse_statement(
            "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')"
        )
        assert stmt.columns == ("a", "b")
        assert len(stmt.rows) == 2

    def test_insert_without_columns(self):
        stmt = parse_statement("INSERT INTO t VALUES (1)")
        assert stmt.columns == ()

    def test_update(self):
        stmt = parse_statement("UPDATE t SET a = a + 1, b = 2 WHERE c = 3")
        assert len(stmt.assignments) == 2
        assert stmt.where is not None

    def test_delete(self):
        stmt = parse_statement("DELETE FROM t WHERE a = 1")
        assert stmt.table == "t"


class TestScripts:
    def test_multi_statement(self):
        statements = parse_script(
            "CREATE TABLE t (a INT); INSERT INTO t VALUES (1); "
            "SELECT a FROM t;"
        )
        assert len(statements) == 3

    def test_empty_tail_ok(self):
        assert len(parse_script("SELECT 1 FROM t")) == 1


class TestErrors:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT",
            "SELECT a",
            "SELECT a FROM",
            "SELECT a FROM t WHERE",
            "CREATE TABLE t",
            "CREATE TABLE t (a NOSUCHTYPE)",
            "INSERT t VALUES (1)",
            "SELECT a FROM t GROUP a",
            "CREATE FUNCTION f() RETURNS int LANGUAGE COBOL DESIGN SANDBOX AS 'x'",
            "CREATE FUNCTION f() RETURNS int LANGUAGE JAGUAR DESIGN MAGIC AS 'x'",
            "SELECT a FROM t LIMIT 'x'",
            "SELECT a FROM t alias garbage",
            "DELETE t",
        ],
    )
    def test_rejected(self, sql):
        with pytest.raises(Exception) as info:
            parse_statement(sql)
        assert isinstance(info.value, ParseError) or "PlanError" in type(info.value).__name__
