"""Batch-size parity: batching must never change what a query returns.

Property-style sweeps over batch sizes 1, 2, 7, 64 (1 is exact
tuple-at-a-time, 7 leaves a ragged tail, 64 is the default) asserting
identical rows — order included where the seed guaranteed it — at both
levels:

* operator level: every physical operator fed from an in-memory source,
  compared against the batch-size-1 (per-tuple) reference;
* query level: the same SQL against the same data under every UDF
  design, compared across batch sizes.
"""

import pytest

from repro.core.designs import Design
from repro.database import Database
from repro.sql.operators import (
    Aggregate,
    Distinct,
    Filter,
    Limit,
    NestedLoopJoin,
    PhysicalOp,
    Project,
    Sort,
)

BATCH_SIZES = (1, 2, 7, 64)


class Rows(PhysicalOp):
    """In-memory source implementing only ``rows()`` (seed idiom)."""

    def __init__(self, rows, batch_size=None):
        self._rows = rows
        if batch_size is not None:
            self.batch_size = batch_size

    def rows(self):
        return iter([list(r) for r in self._rows])


def _dataset():
    # NULLs, duplicates, negatives, and strings: every row shape the
    # operators special-case.
    return [
        [1, 10, "tech"],
        [2, None, "oil"],
        [3, 10, "tech"],
        [4, -5, None],
        [5, 7, "oil"],
        [6, 10, "gas"],
        [7, None, "tech"],
        [8, 7, "gas"],
        [9, 0, "oil"],
        [10, 3, "tech"],
    ]


def _pipelines(batch_size):
    """One representative tree per operator, at the given batch size."""
    bs = batch_size
    data = _dataset()

    def source():
        return Rows(data, batch_size=bs)

    yield "filter", Filter(
        source(),
        [lambda r: None if r[1] is None else r[1] > 2,
         lambda r: r[2] != "gas"],
        batch_size=bs,
    )
    yield "project", Project(
        source(), [lambda r: r[0] * 2, lambda r: r[2]], batch_size=bs
    )
    yield "join", NestedLoopJoin(
        Rows(data[:4], batch_size=bs),
        Rows([[x] for x in (1, 3, 4)], batch_size=bs),
        [lambda r: r[0] == r[3]],
        batch_size=bs,
    )
    yield "aggregate", Aggregate(
        source(),
        [lambda r: r[2]],
        [("count", None, False), ("sum", lambda r: r[1], False),
         ("min", lambda r: r[1], False)],
        batch_size=bs,
    )
    yield "sort", Sort(
        source(),
        [lambda r: r[1], lambda r: r[0]],
        [False, True],
        batch_size=bs,
    )
    yield "distinct", Distinct(
        Project(source(), [lambda r: r[1]], batch_size=bs), batch_size=bs
    )
    yield "limit", Limit(source(), 3, batch_size=bs)
    yield "limit-zero", Limit(source(), 0, batch_size=bs)


OPERATOR_NAMES = [name for name, __ in _pipelines(1)]


class TestOperatorParity:
    @pytest.mark.parametrize("name", OPERATOR_NAMES)
    @pytest.mark.parametrize("batch_size", BATCH_SIZES[1:])
    def test_same_rows_as_per_tuple(self, name, batch_size):
        reference = dict(_pipelines(1))[name]
        batched = dict(_pipelines(batch_size))[name]
        assert list(batched.rows()) == list(reference.rows())

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_batches_flatten_to_rows(self, batch_size):
        op = Sort(
            Rows(_dataset(), batch_size=batch_size),
            [lambda r: r[0]], [False], batch_size=batch_size,
        )
        flattened = [row for batch in op.batches() for row in batch]
        assert flattened == list(op.rows())
        for batch in op.batches():
            assert 0 < len(batch) <= batch_size


# -- query-level parity across designs ----------------------------------------

SETUP = """
CREATE TABLE stocks (id INT, price INT, type TEXT);
INSERT INTO stocks VALUES (1, 10, 'tech');
INSERT INTO stocks VALUES (2, NULL, 'oil');
INSERT INTO stocks VALUES (3, 10, 'tech');
INSERT INTO stocks VALUES (4, -5, NULL);
INSERT INTO stocks VALUES (5, 7, 'oil');
INSERT INTO stocks VALUES (6, 10, 'gas');
INSERT INTO stocks VALUES (7, NULL, 'tech');
INSERT INTO stocks VALUES (8, 7, 'gas');
INSERT INTO stocks VALUES (9, 0, 'oil');
INSERT INTO stocks VALUES (10, 3, 'tech');
"""

NATIVE_PAYLOAD = "repro.core.generic_udf:noop_native"

UDF_BY_DESIGN = {
    Design.NATIVE_INTEGRATED: (
        "CREATE FUNCTION t1(int) RETURNS int LANGUAGE NATIVE "
        "DESIGN INTEGRATED AS 'tests.sql.test_batch_parity:triple'"
    ),
    Design.NATIVE_SFI: (
        "CREATE FUNCTION t1(int) RETURNS int LANGUAGE NATIVE "
        "DESIGN SFI AS 'tests.sql.test_batch_parity:triple'"
    ),
    Design.NATIVE_ISOLATED: (
        "CREATE FUNCTION t1(int) RETURNS int LANGUAGE NATIVE "
        "DESIGN ISOLATED AS 'tests.sql.test_batch_parity:triple'"
    ),
    Design.SANDBOX_JIT: (
        "CREATE FUNCTION t1(int) RETURNS int LANGUAGE JAGUAR "
        "DESIGN SANDBOX AS 'def t1(x: int) -> int:\n    return x * 3'"
    ),
    Design.SANDBOX_INTERP: (
        "CREATE FUNCTION t1(int) RETURNS int LANGUAGE JAGUAR "
        "DESIGN SANDBOX_INTERP AS "
        "'def t1(x: int) -> int:\n    return x * 3'"
    ),
    Design.SANDBOX_ISOLATED: (
        "CREATE FUNCTION t1(int) RETURNS int LANGUAGE JAGUAR "
        "DESIGN SANDBOX_ISOLATED AS "
        "'def t1(x: int) -> int:\n    return x * 3'"
    ),
}


def triple(x):
    """Host-native UDF payload used by the parity matrix."""
    return x * 3


QUERIES = [
    "SELECT id, t1(id) FROM stocks ORDER BY id",
    "SELECT id FROM stocks WHERE t1(id) > 12 AND type <> 'gas' ORDER BY id",
    "SELECT id FROM stocks WHERE price IS NULL OR t1(id) < 10 ORDER BY id",
    "SELECT type, count(*), sum(t1(price)) FROM stocks "
    "GROUP BY type ORDER BY type",
    "SELECT DISTINCT t1(price) FROM stocks ORDER BY 1",
    "SELECT id FROM stocks WHERE id BETWEEN 2 AND 8 "
    "AND type IN ('tech', 'oil') ORDER BY t1(id) DESC LIMIT 3",
]

#: Isolated designs spawn one worker process per UDF query, so the
#: cross-design matrix runs a representative subset for them.
ISOLATED_QUERIES = QUERIES[1:3]

IN_PROCESS = (
    Design.NATIVE_INTEGRATED,
    Design.NATIVE_SFI,
    Design.SANDBOX_JIT,
    Design.SANDBOX_INTERP,
)
ISOLATED = (Design.NATIVE_ISOLATED, Design.SANDBOX_ISOLATED)


def _fresh_db(design):
    db = Database()
    for statement in SETUP.strip().split(";"):
        if statement.strip():
            db.execute(statement)
    db.execute(UDF_BY_DESIGN[design])
    return db


class TestQueryParityAcrossDesigns:
    @pytest.mark.parametrize("design", IN_PROCESS)
    def test_in_process_designs(self, design):
        with _fresh_db(design) as db:
            reference = {}
            for batch_size in BATCH_SIZES:
                db.batch_size = batch_size
                for sql in QUERIES:
                    rows = db.query(sql)
                    if batch_size == 1:
                        reference[sql] = rows
                    else:
                        assert rows == reference[sql], (sql, batch_size)

    @pytest.mark.parametrize("design", ISOLATED)
    def test_isolated_designs(self, design):
        with _fresh_db(design) as db:
            reference = {}
            for batch_size in BATCH_SIZES:
                db.batch_size = batch_size
                for sql in ISOLATED_QUERIES:
                    rows = db.query(sql)
                    if batch_size == 1:
                        reference[sql] = rows
                    else:
                        assert rows == reference[sql], (sql, batch_size)

    def test_no_udf_queries_are_batch_invariant(self):
        with _fresh_db(Design.NATIVE_INTEGRATED) as db:
            plain = [
                "SELECT * FROM stocks ORDER BY id",
                "SELECT type, count(*) FROM stocks GROUP BY type "
                "ORDER BY type",
                "SELECT id FROM stocks WHERE price > 5 "
                "ORDER BY price, id DESC LIMIT 4",
            ]
            reference = {}
            for batch_size in BATCH_SIZES:
                db.batch_size = batch_size
                for sql in plain:
                    rows = db.query(sql)
                    if batch_size == 1:
                        reference[sql] = rows
                    else:
                        assert rows == reference[sql], (sql, batch_size)
