"""Parallelism parity: parallel execution must never change results.

Two layers of guarantees, mirroring ``test_batch_parity``:

* pool level: a :class:`~repro.core.isolated.RemoteExecutor` with
  ``parallelism > 1`` shards each batch across worker processes but must
  reassemble results in input order, even when per-argument work is
  deliberately skewed so the shards finish out of order;
* operator/query level: the Exchange operator dispatches batches to a
  thread pool but collects them in dispatch order, so every query under
  every design returns exactly what ``parallelism = 1`` returns — order
  included wherever the serial executor guaranteed it.

Plus the failure-surface contracts the parallel layer adds: worker
death carries the exit status, ``close()`` reaps every worker, EXPLAIN
shows the parallel region, and ``channel_stats`` breaks traffic down
per worker.
"""

import os
import time

import pytest

from repro.core.designs import Design
from repro.core.isolated import RemoteExecutor
from repro.database import Database
from repro.errors import UDFCrashed
from repro.sql.operators import Exchange, PhysicalOp

PARALLELISM_LEVELS = (2, 4)


# -- UDF payloads (module-level so worker processes can import them) ----------

def slow_triple(x):
    """Skewed per-argument work: shards finish out of dispatch order."""
    time.sleep((x % 3) * 0.002)
    return x * 3


def die42(x):
    """Hard-crash the worker with a recognizable exit status."""
    os._exit(42)


# -- fixtures -----------------------------------------------------------------

SETUP = """
CREATE TABLE stocks (id INT, price INT, type TEXT);
INSERT INTO stocks VALUES (1, 10, 'tech');
INSERT INTO stocks VALUES (2, NULL, 'oil');
INSERT INTO stocks VALUES (3, 10, 'tech');
INSERT INTO stocks VALUES (4, -5, NULL);
INSERT INTO stocks VALUES (5, 7, 'oil');
INSERT INTO stocks VALUES (6, 10, 'gas');
INSERT INTO stocks VALUES (7, NULL, 'tech');
INSERT INTO stocks VALUES (8, 7, 'gas');
INSERT INTO stocks VALUES (9, 0, 'oil');
INSERT INTO stocks VALUES (10, 3, 'tech');
"""

#: Every design's ``t1`` declares COST 500 so the optimizer treats it
#: as expensive: the pure sandbox variants then get an Exchange, the
#: impure/native ones must *not* (purity gate) — both paths are under
#: parity test.
UDF_BY_DESIGN = {
    Design.NATIVE_INTEGRATED: (
        "CREATE FUNCTION t1(int) RETURNS int LANGUAGE NATIVE "
        "DESIGN INTEGRATED COST 500 "
        "AS 'tests.sql.test_parallel_parity:slow_triple'"
    ),
    Design.NATIVE_SFI: (
        "CREATE FUNCTION t1(int) RETURNS int LANGUAGE NATIVE "
        "DESIGN SFI COST 500 "
        "AS 'tests.sql.test_parallel_parity:slow_triple'"
    ),
    Design.NATIVE_ISOLATED: (
        "CREATE FUNCTION t1(int) RETURNS int LANGUAGE NATIVE "
        "DESIGN ISOLATED COST 500 "
        "AS 'tests.sql.test_parallel_parity:slow_triple'"
    ),
    Design.SANDBOX_JIT: (
        "CREATE FUNCTION t1(int) RETURNS int LANGUAGE JAGUAR "
        "DESIGN SANDBOX COST 500 "
        "AS 'def t1(x: int) -> int:\n    return x * 3'"
    ),
    Design.SANDBOX_INTERP: (
        "CREATE FUNCTION t1(int) RETURNS int LANGUAGE JAGUAR "
        "DESIGN SANDBOX_INTERP COST 500 "
        "AS 'def t1(x: int) -> int:\n    return x * 3'"
    ),
    Design.SANDBOX_ISOLATED: (
        "CREATE FUNCTION t1(int) RETURNS int LANGUAGE JAGUAR "
        "DESIGN SANDBOX_ISOLATED COST 500 "
        "AS 'def t1(x: int) -> int:\n    return x * 3'"
    ),
}

QUERIES = [
    "SELECT id, t1(id) FROM stocks ORDER BY id",
    "SELECT id FROM stocks WHERE t1(id) > 12 AND type <> 'gas' ORDER BY id",
    "SELECT id FROM stocks WHERE price IS NULL OR t1(id) < 10 ORDER BY id",
    "SELECT type, count(*), sum(t1(price)) FROM stocks "
    "GROUP BY type ORDER BY type",
    "SELECT id FROM stocks WHERE id BETWEEN 2 AND 8 "
    "AND type IN ('tech', 'oil') ORDER BY t1(id) DESC LIMIT 3",
]

#: Isolated designs spawn ``parallelism`` workers per UDF query, so the
#: cross-design matrix runs a representative subset for them.
ISOLATED_QUERIES = QUERIES[1:3]

IN_PROCESS = (
    Design.NATIVE_INTEGRATED,
    Design.NATIVE_SFI,
    Design.SANDBOX_JIT,
    Design.SANDBOX_INTERP,
)
ISOLATED = (Design.NATIVE_ISOLATED, Design.SANDBOX_ISOLATED)


def _fresh_db(design, parallelism=1):
    db = Database(parallelism=parallelism)
    for statement in SETUP.strip().split(";"):
        if statement.strip():
            db.execute(statement)
    db.execute(UDF_BY_DESIGN[design])
    return db


# -- query-level parity across designs ----------------------------------------

class TestQueryParityAcrossDesigns:
    @pytest.mark.parametrize("design", IN_PROCESS)
    def test_in_process_designs(self, design):
        with _fresh_db(design) as db:
            reference = {sql: db.query(sql) for sql in QUERIES}
            for level in PARALLELISM_LEVELS:
                db.parallelism = level
                for sql in QUERIES:
                    assert db.query(sql) == reference[sql], (sql, level)

    @pytest.mark.parametrize("design", ISOLATED)
    def test_isolated_designs(self, design):
        with _fresh_db(design) as db:
            reference = {sql: db.query(sql) for sql in ISOLATED_QUERIES}
            for level in PARALLELISM_LEVELS:
                db.parallelism = level
                for sql in ISOLATED_QUERIES:
                    assert db.query(sql) == reference[sql], (sql, level)

    def test_explain_shows_parallel_region_for_pure_udf(self):
        with _fresh_db(Design.SANDBOX_JIT, parallelism=3) as db:
            lines = [row[0] for row in db.execute(
                "EXPLAIN SELECT id FROM stocks "
                "WHERE t1(id) > 12 AND type <> 'gas'"
            )]
            assert any("Exchange [parallel=3]" in line for line in lines)

    def test_no_exchange_for_impure_native_udf(self):
        # Native UDFs are never analyzer-proven pure: the purity gate
        # must keep them out of Exchange regions (they still get pool
        # sharding inside invoke_batch when isolated).
        with _fresh_db(Design.NATIVE_INTEGRATED, parallelism=3) as db:
            lines = [row[0] for row in db.execute(
                "EXPLAIN SELECT id FROM stocks WHERE t1(id) > 12"
            )]
            assert not any("Exchange" in line for line in lines)

    def test_no_exchange_at_parallelism_one(self):
        with _fresh_db(Design.SANDBOX_JIT, parallelism=1) as db:
            lines = [row[0] for row in db.execute(
                "EXPLAIN SELECT id FROM stocks WHERE t1(id) > 12"
            )]
            assert not any("Exchange" in line for line in lines)


# -- Exchange operator unit tests ---------------------------------------------

class Rows(PhysicalOp):
    """In-memory source implementing only ``rows()`` (seed idiom)."""

    def __init__(self, rows, batch_size=None):
        self._rows = rows
        if batch_size is not None:
            self.batch_size = batch_size

    def rows(self):
        return iter([list(r) for r in self._rows])


class TestExchangeOperator:
    def _source(self):
        return Rows([[x] for x in range(20)], batch_size=2)

    def test_preserves_batch_order_under_skew(self):
        def stage(batch):
            # Later batches sleep less: without ordered collection the
            # output would arrive reversed.
            time.sleep(max(0.0, (10 - batch[0][0]) * 0.002))
            return [[row[0] * 2] for row in batch]

        exchange = Exchange(self._source(), stage, parallelism=4,
                            batch_size=2)
        assert list(exchange.rows()) == [[x * 2] for x in range(20)]

    def test_parallelism_one_is_serial_identity(self):
        stage = lambda batch: [[row[0] + 1] for row in batch]  # noqa: E731
        serial = Exchange(self._source(), stage, parallelism=1,
                          batch_size=2)
        threaded = Exchange(self._source(), stage, parallelism=3,
                            batch_size=2)
        assert list(serial.rows()) == list(threaded.rows())

    def test_empty_stage_outputs_are_dropped(self):
        def stage(batch):
            return [row for row in batch if row[0] % 2 == 0]

        exchange = Exchange(self._source(), stage, parallelism=3,
                            batch_size=2)
        assert list(exchange.rows()) == [[x] for x in range(0, 20, 2)]

    def test_stage_error_propagates(self):
        def stage(batch):
            raise ValueError("stage blew up")

        exchange = Exchange(self._source(), stage, parallelism=3,
                            batch_size=2)
        with pytest.raises(ValueError, match="stage blew up"):
            list(exchange.rows())


# -- pool-level contracts -----------------------------------------------------

def _native_definition(name, payload):
    from repro.core.udf import UDFDefinition, UDFSignature

    return UDFDefinition(
        name=name,
        signature=UDFSignature(("int",), "int"),
        design=Design.NATIVE_ISOLATED,
        payload=payload.encode(),
        entry=payload.split(":")[1],
    )


@pytest.fixture
def env():
    from repro.core.callbacks import CallbackBroker
    from repro.core.udf import ServerEnvironment
    from repro.vm.machine import JaguarVM

    broker = CallbackBroker()
    return ServerEnvironment(vm=JaguarVM(broker.signatures()), broker=broker)


class TestWorkerPool:
    def test_batch_order_preserved_across_skewed_shards(self, env):
        definition = _native_definition(
            "slow3", "tests.sql.test_parallel_parity:slow_triple"
        )
        executor = RemoteExecutor(definition, env, parallelism=3)
        try:
            executor.begin_query(env.broker.bind())
            args = [(x,) for x in range(40)]
            assert executor.invoke_batch(args) == [x * 3 for x in range(40)]
            assert executor.pool_size == 3
        finally:
            executor.close()

    def test_worker_death_surfaces_exit_status(self, env):
        definition = _native_definition(
            "dies", "tests.sql.test_parallel_parity:die42"
        )
        executor = RemoteExecutor(definition, env, parallelism=2)
        try:
            executor.begin_query(env.broker.bind())
            with pytest.raises(UDFCrashed, match="exit code 42"):
                executor.invoke_batch([(x,) for x in range(16)])
        finally:
            executor.close()

    def test_close_reaps_every_worker(self, env):
        definition = _native_definition(
            "reap", "tests.sql.test_parallel_parity:slow_triple"
        )
        executor = RemoteExecutor(definition, env, parallelism=3)
        executor.begin_query(env.broker.bind())
        processes = [w.process for w in executor._pool.workers]
        assert len(processes) == 3
        executor.invoke_batch([(x,) for x in range(24)])
        executor.close()
        for process in processes:
            assert not process.is_alive()
        # Idempotent, and invocation after close is a clean error.
        executor.close()

    def test_per_worker_stats_roll_up(self, env):
        definition = _native_definition(
            "stats", "tests.sql.test_parallel_parity:slow_triple"
        )
        executor = RemoteExecutor(definition, env, parallelism=3)
        try:
            executor.begin_query(env.broker.bind())
            executor.invoke_batch([(x,) for x in range(30)])
            stats = executor.channel_stats()
            assert stats["workers"] == 3
            assert len(stats["per_worker"]) == 3
            for key in ("messages_sent", "messages_received",
                        "chunks_sent", "chunks_received"):
                assert stats[key] == sum(w[key] for w in stats["per_worker"])
        finally:
            executor.close()

    def test_small_batches_stay_on_one_worker(self, env):
        # Below _MIN_SHARD_ROWS per shard, fanning out costs more than
        # it saves: a 4-row batch must use a single round trip.
        definition = _native_definition(
            "tiny", "tests.sql.test_parallel_parity:slow_triple"
        )
        executor = RemoteExecutor(definition, env, parallelism=3)
        try:
            executor.begin_query(env.broker.bind())
            assert executor.invoke_batch([(x,) for x in range(4)]) == [
                0, 3, 6, 9
            ]
            stats = executor.channel_stats()
            busy = [w for w in stats["per_worker"]
                    if w["messages_sent"] > 0]
            assert len(busy) == 1
        finally:
            executor.close()
