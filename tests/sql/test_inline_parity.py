"""Inlining parity: ``inlining=True`` must never change what a query returns.

The matrix sweeps every inlinable sample UDF across all six designs,
batch sizes {1, 64}, and parallelism {1, 2}, asserting bit-identical
rows against the same database with inlining off.  Sandboxed designs
actually rewrite call sites; native designs refuse (opaque host code)
and must be byte-for-byte unaffected.

Also covered: the zero-VM-entry acceptance criterion (an inlined pure
UDF in WHERE executes with no per-design UDF counters at all, only the
``inlined_calls`` stamp), EXPLAIN's ``inlined`` / ``opaque(<reason>)``
markers, and adaptive-feedback isolation (inlined evaluation must not
feed observed UDF costs).
"""

import pytest

from repro.core.designs import Design
from repro.database import Database

JAG_PLUS1 = "def plus1(x: int) -> int:\n    return x + 1"
JAG_CLIP = (
    "def clip(x: int) -> int:\n"
    "    if x < 0:\n"
    "        return 0\n"
    "    return x"
)
JAG_SCALE = "def scale(x: float) -> float:\n    return x * 2.0 - 1.0"

#: (name, signature, jagscript body, native module:function)
SAMPLES = [
    ("plus1", "(int) RETURNS int", JAG_PLUS1, "tests.sql.inline_samples:plus1"),
    ("clip", "(int) RETURNS int", JAG_CLIP, "tests.sql.inline_samples:clip"),
    ("scale", "(float) RETURNS float", JAG_SCALE,
     "tests.sql.inline_samples:scale"),
]

_DESIGN_SQL = {
    Design.NATIVE_INTEGRATED: "LANGUAGE NATIVE DESIGN INTEGRATED",
    Design.NATIVE_SFI: "LANGUAGE NATIVE DESIGN SFI",
    Design.NATIVE_ISOLATED: "LANGUAGE NATIVE DESIGN ISOLATED",
    Design.SANDBOX_JIT: "LANGUAGE JAGUAR DESIGN SANDBOX",
    Design.SANDBOX_INTERP: "LANGUAGE JAGUAR DESIGN SANDBOX_INTERP",
    Design.SANDBOX_ISOLATED: "LANGUAGE JAGUAR DESIGN SANDBOX_ISOLATED",
}

ALL_DESIGNS = tuple(_DESIGN_SQL)
IN_PROCESS = tuple(d for d in ALL_DESIGNS if not d.is_isolated)
ISOLATED = tuple(d for d in ALL_DESIGNS if d.is_isolated)

QUERIES = [
    "SELECT id, plus1(x) FROM t ORDER BY id",
    "SELECT id FROM t WHERE plus1(x) > 0 ORDER BY id",
    "SELECT id, clip(x) FROM t WHERE clip(x) > 3 ORDER BY id",
    "SELECT id, scale(f) FROM t WHERE scale(f) < 10.0 ORDER BY id",
    "SELECT id, plus1(clip(x)) FROM t ORDER BY id",
    "SELECT sum(plus1(x)) FROM t WHERE x IS NOT NULL",
    "SELECT id FROM t ORDER BY clip(x) DESC, id LIMIT 5",
]

#: Isolated designs spawn a worker process per UDF query; a
#: representative subset keeps the matrix affordable.
ISOLATED_QUERIES = QUERIES[1:4]


def _payload(design, jag, native):
    if design.is_sandboxed:
        return jag.replace("'", "''")
    return native


def _fresh_db(design, **kwargs):
    db = Database(**kwargs)
    db.execute("CREATE TABLE t (id INT, x INT, f FLOAT)")
    rows = []
    for i in range(30):
        x = None if i % 7 == 3 else (i - 12) * 3
        f = None if i % 11 == 5 else (i - 15) / 2.0
        rows.append((i, x, f))
    db.insert_rows("t", rows)
    for name, sig, jag, native in SAMPLES:
        db.execute(
            f"CREATE FUNCTION {name}{sig} {_DESIGN_SQL[design]} "
            f"AS '{_payload(design, jag, native)}'"
        )
    return db


class TestInlineParityMatrix:
    @pytest.mark.parametrize("design", IN_PROCESS)
    @pytest.mark.parametrize("parallelism", (1, 2))
    def test_in_process(self, design, parallelism):
        with _fresh_db(design) as db:
            db.parallelism = parallelism
            for batch_size in (1, 64):
                db.batch_size = batch_size
                for sql in QUERIES:
                    db.inlining = False
                    reference = db.query(sql)
                    db.inlining = True
                    assert db.query(sql) == reference, (
                        design, batch_size, parallelism, sql
                    )

    @pytest.mark.parametrize("design", ISOLATED)
    @pytest.mark.parametrize("parallelism", (1, 2))
    def test_isolated(self, design, parallelism):
        with _fresh_db(design) as db:
            db.parallelism = parallelism
            for batch_size in (1, 64):
                db.batch_size = batch_size
                for sql in ISOLATED_QUERIES:
                    db.inlining = False
                    reference = db.query(sql)
                    db.inlining = True
                    assert db.query(sql) == reference, (
                        design, batch_size, parallelism, sql
                    )


class TestZeroVMEntries:
    @pytest.mark.parametrize(
        "design", (Design.SANDBOX_JIT, Design.SANDBOX_INTERP)
    )
    def test_inlined_where_clause_never_enters_vm(self, design):
        with _fresh_db(design, metrics=True, inlining=True) as db:
            rows = db.query("SELECT id FROM t WHERE plus1(x) > 0")
            assert rows
            counters = db.stats()["metrics"]["counters"]
            # No per-design UDF activity at all: no executor was even
            # created, so not a single invocation/batch counter exists.
            design_keys = [
                key for key in counters
                if key.startswith(f"udf.plus1.{design.value}.")
            ]
            assert design_keys == []
            assert counters["udf.plus1.inlined_calls"] > 0

    def test_opaque_udf_still_counts_calls(self):
        design = Design.SANDBOX_JIT
        with _fresh_db(design, metrics=True, inlining=False) as db:
            db.query("SELECT id FROM t WHERE plus1(x) > 0")
            counters = db.stats()["metrics"]["counters"]
            assert counters[f"udf.plus1.{design.value}.calls"] > 0
            assert "udf.plus1.inlined_calls" not in counters

    def test_inlined_counter_counts_rows(self):
        with _fresh_db(
            Design.SANDBOX_JIT, metrics=True, inlining=True
        ) as db:
            db.query("SELECT plus1(x) FROM t WHERE x IS NOT NULL")
            counters = db.stats()["metrics"]["counters"]
            # One inlined evaluation per row reaching the projection.
            non_null = sum(
                1 for (x,) in db.query("SELECT x FROM t") if x is not None
            )
            assert counters["udf.plus1.inlined_calls"] >= non_null


class TestExplainMarkers:
    def _db(self, **kwargs):
        db = _fresh_db(Design.SANDBOX_JIT, **kwargs)
        db.execute(
            "CREATE FUNCTION looped(int) RETURNS int LANGUAGE JAGUAR "
            "DESIGN SANDBOX AS 'def looped(n: int) -> int:\n"
            "    total: int = 0\n"
            "    i: int = 0\n"
            "    while i < n:\n"
            "        total = total + i\n"
            "        i = i + 1\n"
            "    return total'"
        )
        return db

    def test_inlined_marker_in_filter(self):
        with self._db(inlining=True) as db:
            text = "\n".join(
                line for (line,) in db.execute(
                    "EXPLAIN SELECT id FROM t WHERE plus1(x) > 0"
                ).rows
            )
            assert "udf plus1: inlined" in text
            assert "plus1(" not in text  # the call site is gone

    def test_opaque_marker_carries_reason(self):
        with self._db(inlining=True) as db:
            text = "\n".join(
                line for (line,) in db.execute(
                    "EXPLAIN SELECT looped(x) FROM t WHERE looped(x) > 0"
                ).rows
            )
            assert "opaque(loop)" in text

    def test_inlining_off_is_seed_identical(self):
        with self._db(inlining=False) as db:
            text = "\n".join(
                line for (line,) in db.execute(
                    "EXPLAIN SELECT looped(x) FROM t WHERE plus1(x) > 0"
                ).rows
            )
            assert "inlined" not in text
            assert "opaque" not in text
            assert "plus1(t.x)" in text

    def test_analyze_reports_inlined_rows(self):
        with self._db(inlining=True) as db:
            text = "\n".join(
                line for (line,) in db.execute(
                    "EXPLAIN ANALYZE SELECT id FROM t WHERE plus1(x) > 0"
                ).rows
            )
            assert "udf plus1 [inlined]: rows=" in text


class TestAdaptiveIsolation:
    def test_inlined_calls_do_not_feed_observed_costs(self):
        with _fresh_db(
            Design.SANDBOX_JIT, adaptive=True, inlining=True
        ) as db:
            for __ in range(5):
                db.query("SELECT id FROM t WHERE plus1(x) > 0")
            # The adaptive store never saw a plus1 invocation: inlined
            # evaluation is native SQL, and feeding its (near-zero)
            # timings would corrupt the cost model of designs that
            # still really execute the UDF.
            assert db.observability.adaptive.observed_cost("plus1") is None

    def test_opaque_calls_still_feed_observed_costs(self):
        with _fresh_db(
            Design.SANDBOX_JIT, adaptive=True, inlining=False
        ) as db:
            for __ in range(30):
                db.query("SELECT id FROM t WHERE plus1(x) > 0")
            assert db.observability.adaptive.observed_cost("plus1") is not None


class TestInliningSemantics:
    def test_null_arguments_stay_null(self):
        with _fresh_db(Design.SANDBOX_JIT, inlining=True) as db:
            rows = dict(db.query("SELECT id, plus1(x) FROM t"))
            nulls = dict(db.query("SELECT id, x FROM t"))
            for rid, value in rows.items():
                if nulls[rid] is None:
                    assert value is None
                else:
                    assert value == nulls[rid] + 1

    def test_truncating_division_matches_vm(self):
        # SQL // floors; the VM truncates toward zero.  The idiv
        # builtin in lifted bodies must follow the VM.
        with Database(inlining=True) as db:
            db.execute("CREATE TABLE n (x INT)")
            db.execute("INSERT INTO n VALUES (-7)")
            db.execute(
                "CREATE FUNCTION half(int) RETURNS int LANGUAGE JAGUAR "
                "DESIGN SANDBOX AS 'def half(x: int) -> int:\n"
                "    return x // 2'"
            )
            db.inlining = False
            reference = db.query("SELECT half(x) FROM n")
            db.inlining = True
            assert db.query("SELECT half(x) FROM n") == reference == [(-3,)]

    def test_runtime_trap_still_raises_inlined(self):
        from repro.errors import ExecutionError, UDFCrashed

        with Database(inlining=True) as db:
            db.execute("CREATE TABLE n (x INT)")
            db.execute("INSERT INTO n VALUES (0)")
            db.execute(
                "CREATE FUNCTION inv(int) RETURNS int LANGUAGE JAGUAR "
                "DESIGN SANDBOX AS 'def inv(x: int) -> int:\n"
                "    return 100 // x'"
            )
            with pytest.raises((ExecutionError, UDFCrashed)):
                db.query("SELECT inv(x) FROM n")

    def test_inlining_flag_is_per_query(self):
        with _fresh_db(Design.SANDBOX_JIT, metrics=True) as db:
            db.inlining = True
            db.query("SELECT id FROM t WHERE plus1(x) > 0")
            db.inlining = False
            db.query("SELECT id FROM t WHERE plus1(x) > 0")
            counters = db.stats()["metrics"]["counters"]
            # Both modes ran: the stamp from the first, real VM calls
            # from the second.
            assert counters["udf.plus1.inlined_calls"] > 0
            assert counters["udf.plus1.sandbox_jit.calls"] > 0
