"""SQL type mapping and row-schema resolution."""

import pytest

from repro.errors import PlanError
from repro.sql.types import (
    RowSchema,
    SchemaColumn,
    SQLType,
    schema_for_table,
    sql_type_from_name,
    sql_type_from_storage,
)
from repro.storage.catalog import Column, TableInfo
from repro.storage.record import ColumnType


class TestTypeNames:
    @pytest.mark.parametrize(
        "name, expected",
        [
            ("INT", SQLType.INT),
            ("integer", SQLType.INT),
            ("BIGINT", SQLType.INT),
            ("double", SQLType.FLOAT),
            ("REAL", SQLType.FLOAT),
            ("Boolean", SQLType.BOOL),
            ("varchar", SQLType.STRING),
            ("TEXT", SQLType.STRING),
            ("bytea", SQLType.BYTES),
            ("BLOB", SQLType.BYTES),
            ("TimeSeries", SQLType.FLOATARR),
            ("floatarray", SQLType.FLOATARR),
        ],
    )
    def test_accepted_spellings(self, name, expected):
        assert sql_type_from_name(name) is expected

    def test_unknown_rejected(self):
        with pytest.raises(PlanError):
            sql_type_from_name("quaternion")

    def test_storage_roundtrip(self):
        for sql_type in (
            SQLType.INT, SQLType.FLOAT, SQLType.BOOL,
            SQLType.STRING, SQLType.BYTES, SQLType.FLOATARR,
        ):
            assert sql_type_from_storage(sql_type.storage_type) is sql_type

    def test_null_type_not_storable(self):
        with pytest.raises(PlanError):
            SQLType.NULL.storage_type


class TestRowSchema:
    def make(self):
        return RowSchema(
            [
                SchemaColumn("t", "a", SQLType.INT),
                SchemaColumn("t", "b", SQLType.STRING),
                SchemaColumn("u", "a", SQLType.FLOAT),
            ]
        )

    def test_qualified_resolution(self):
        schema = self.make()
        assert schema.resolve("a", "t") == 0
        assert schema.resolve("a", "u") == 2
        assert schema.resolve("A", "T") == 0  # case-insensitive

    def test_unqualified_unique(self):
        assert self.make().resolve("b") == 1

    def test_unqualified_ambiguous(self):
        with pytest.raises(PlanError, match="ambiguous"):
            self.make().resolve("a")

    def test_missing(self):
        with pytest.raises(PlanError, match="unknown column"):
            self.make().resolve("zzz")
        with pytest.raises(PlanError, match="unknown column"):
            self.make().resolve("b", "u")

    def test_concat(self):
        left = RowSchema([SchemaColumn("l", "x", SQLType.INT)])
        right = RowSchema([SchemaColumn("r", "y", SQLType.INT)])
        combined = left.concat(right)
        assert combined.names() == ["x", "y"]
        assert combined.resolve("y") == 1

    def test_names_types(self):
        schema = self.make()
        assert schema.names() == ["a", "b", "a"]
        assert schema.types() == [SQLType.INT, SQLType.STRING, SQLType.FLOAT]


class TestSchemaForTable:
    def test_alias_labels_columns(self):
        table = TableInfo(
            name="stocks",
            columns=[Column("id", ColumnType.INT),
                     Column("hist", ColumnType.FLOATARR)],
            first_page=2,
        )
        schema = schema_for_table(table, alias="s")
        assert schema.resolve("id", "s") == 0
        with pytest.raises(PlanError):
            schema.resolve("id", "stocks")  # alias replaces the name
        assert schema.columns[1].sql_type is SQLType.FLOATARR
