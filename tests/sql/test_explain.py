"""EXPLAIN: optimized-plan rendering."""

import pytest


@pytest.fixture
def setup(db):
    db.execute("CREATE TABLE s (id INT, type STRING, h TIMESERIES)")
    db.execute("CREATE INDEX s_id ON s(id)")
    db.execute(
        "CREATE FUNCTION iv(farr) RETURNS float LANGUAGE JAGUAR "
        "DESIGN SANDBOX COST 2000 SELECTIVITY 0.3 "
        "AS 'def iv(h: farr) -> float:\n    return 1.0'"
    )
    return db


def plan_text(db, sql):
    return "\n".join(row[0] for row in db.query("EXPLAIN " + sql))


class TestExplain:
    def test_returns_plan_not_rows(self, setup):
        result = setup.execute("EXPLAIN SELECT id FROM s")
        assert result.columns == ["plan"]
        assert result.rows

    def test_shows_pushdown_and_predicate_order(self, setup):
        text = plan_text(
            setup,
            "SELECT id FROM s WHERE iv(h) > 5.0 AND type = 'tech'",
        )
        assert "SeqScan" in text
        # The cheap predicate is filter[0]; the expensive UDF follows.
        cheap = text.index("filter[0]: (s.type = 'tech')")
        costly = text.index("filter[1]: (iv(s.h) > 5.0)")
        assert cheap < costly

    def test_shows_index_scan_with_bounds(self, setup):
        text = plan_text(setup, "SELECT id FROM s WHERE id BETWEEN 3 AND 9")
        assert "IndexScan s" in text
        assert "USING s_id [3..9]" in text

    def test_shows_join_tree(self, setup):
        setup.execute("CREATE TABLE t2 (id INT)")
        text = plan_text(
            setup, "SELECT s.id FROM s JOIN t2 ON s.id = t2.id"
        )
        assert "NestedLoopJoin" in text
        assert text.count("Scan") == 2
        assert "on[0]: (s.id = t2.id)" in text

    def test_shows_aggregate_sort_limit_distinct(self, setup):
        text = plan_text(
            setup,
            "SELECT DISTINCT type, count(*) AS n FROM s GROUP BY type "
            "ORDER BY n DESC LIMIT 7",
        )
        assert "Aggregate groups=[s.type] aggs=[count(*)]" in text
        assert "Sort [n DESC]" in text
        assert "Limit 7" in text
        assert "Distinct" in text

    def test_explain_does_not_execute(self, setup):
        # The UDF would trap on every row; EXPLAIN must not run it.
        setup.execute("INSERT INTO s VALUES (1, 't', NULL)")
        setup.execute(
            "CREATE FUNCTION boom(int) RETURNS int LANGUAGE JAGUAR "
            "DESIGN SANDBOX AS "
            "'def boom(x: int) -> int:\n    return 1 // 0'"
        )
        setup.execute("EXPLAIN SELECT id FROM s WHERE boom(id) = 1")

    def test_expression_rendering_roundtrips_shapes(self, setup):
        text = plan_text(
            setup,
            "SELECT id FROM s WHERE type LIKE 'a%' AND id IN (1, 2) "
            "AND h IS NOT NULL AND NOT (id = 5)",
        )
        assert "LIKE 'a%'" in text
        assert "IN (1, 2)" in text
        assert "IS NOT NULL" in text
        assert "NOT" in text
