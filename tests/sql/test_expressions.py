"""Expression compilation: nulls, operators, builtins."""

import pytest

from repro.errors import ExecutionError, PlanError
from repro.sql import ast_nodes as A
from repro.sql.expressions import compile_expr, infer_type
from repro.sql.parser import parse_statement
from repro.sql.types import RowSchema, SchemaColumn, SQLType


def schema():
    return RowSchema(
        [
            SchemaColumn("t", "a", SQLType.INT),
            SchemaColumn("t", "b", SQLType.FLOAT),
            SchemaColumn("t", "s", SQLType.STRING),
            SchemaColumn("t", "flag", SQLType.BOOL),
        ]
    )


def evaluate(sql_expr, row):
    stmt = parse_statement(f"SELECT {sql_expr} FROM t")
    fn = compile_expr(stmt.items[0].expr, schema())
    return fn(row)


ROW = [10, 2.5, "hello", True]


class TestOperators:
    @pytest.mark.parametrize(
        "expr, expected",
        [
            ("a + 1", 11),
            ("a - 1", 9),
            ("a * 2", 20),
            ("a / 4", 2),          # int / int is integer division
            ("b / 2", 1.25),
            ("a % 3", 1),
            ("-a", -10),
            ("a = 10", True),
            ("a != 10", False),
            ("a < 11", True),
            ("a >= 10", True),
            ("s = 'hello'", True),
            ("s LIKE 'he%'", True),
            ("s LIKE 'h_llo'", True),
            ("s LIKE 'x%'", False),
            ("a BETWEEN 5 AND 15", True),
            ("a NOT BETWEEN 5 AND 15", False),
            ("a IN (1, 10, 100)", True),
            ("a NOT IN (1, 2)", True),
            ("a IS NULL", False),
            ("a IS NOT NULL", True),
            ("a > 5 AND b < 3.0", True),
            ("a > 50 OR flag", True),
            ("NOT flag", False),
        ],
    )
    def test_value(self, expr, expected):
        assert evaluate(expr, ROW) == expected

    def test_division_by_zero(self):
        with pytest.raises(ExecutionError):
            evaluate("a / 0", ROW)


class TestNullSemantics:
    NULL_ROW = [None, None, None, None]

    @pytest.mark.parametrize(
        "expr, expected",
        [
            ("a + 1", None),
            ("a = 1", None),
            ("a IS NULL", True),
            ("a IS NOT NULL", False),
            ("a BETWEEN 1 AND 2", None),
            ("s LIKE 'x'", None),
            ("a IN (1, 2)", None),
        ],
    )
    def test_null_propagation(self, expr, expected):
        assert evaluate(expr, self.NULL_ROW) == expected

    def test_kleene_and(self):
        # NULL AND FALSE is FALSE; NULL AND TRUE is NULL.
        assert evaluate("a = 1 AND 1 = 2", self.NULL_ROW) is False
        assert evaluate("a = 1 AND 1 = 1", self.NULL_ROW) is None

    def test_kleene_or(self):
        assert evaluate("a = 1 OR 1 = 1", self.NULL_ROW) is True
        assert evaluate("a = 1 OR 1 = 2", self.NULL_ROW) is None

    def test_not_null(self):
        assert evaluate("NOT (a = 1)", self.NULL_ROW) is None


class TestBuiltins:
    @pytest.mark.parametrize(
        "expr, expected",
        [
            ("abs(-5)", 5),
            ("length(s)", 5),
            ("upper(s)", "HELLO"),
            ("lower('ABC')", "abc"),
            ("sqrt(4.0)", 2.0),
            ("floor(2.7)", 2),
            ("ceil(2.2)", 3),
            ("round(2.5)", 2),
            ("length(zerobytes(10))", 10),
            ("length(patbytes(16, 3))", 16),
        ],
    )
    def test_value(self, expr, expected):
        assert evaluate(expr, ROW) == expected

    def test_patbytes_deterministic(self):
        assert evaluate("patbytes(8, 5)", ROW) == evaluate("patbytes(8, 5)", ROW)

    def test_wrong_arity(self):
        with pytest.raises(PlanError, match="argument"):
            evaluate("abs(1, 2)", ROW)

    def test_unknown_function(self):
        with pytest.raises(PlanError, match="unknown function"):
            evaluate("frobnicate(1)", ROW)

    def test_aggregate_outside_aggregation_rejected(self):
        with pytest.raises(PlanError, match="aggregate"):
            compile_expr(
                parse_statement("SELECT a FROM t WHERE count(*) > 1").where,
                schema(),
            )


class TestColumnResolution:
    def test_qualified(self):
        assert evaluate("t.a", ROW) == 10

    def test_unknown_column(self):
        with pytest.raises(PlanError, match="unknown column"):
            evaluate("zzz", ROW)

    def test_ambiguous(self):
        two = RowSchema(
            [
                SchemaColumn("x", "a", SQLType.INT),
                SchemaColumn("y", "a", SQLType.INT),
            ]
        )
        with pytest.raises(PlanError, match="ambiguous"):
            compile_expr(A.ColumnRef("a"), two)


class TestTypeInference:
    def test_literals(self):
        sch = schema()
        assert infer_type(A.Literal(1), sch) is SQLType.INT
        assert infer_type(A.Literal(1.5), sch) is SQLType.FLOAT
        assert infer_type(A.Literal("x"), sch) is SQLType.STRING
        assert infer_type(A.Literal(True), sch) is SQLType.BOOL

    def test_arith_promotion(self):
        sch = schema()
        expr = parse_statement("SELECT a + b FROM t").items[0].expr
        assert infer_type(expr, sch) is SQLType.FLOAT
        expr = parse_statement("SELECT a + 1 FROM t").items[0].expr
        assert infer_type(expr, sch) is SQLType.INT

    def test_comparisons_are_bool(self):
        expr = parse_statement("SELECT a > 1 FROM t").items[0].expr
        assert infer_type(expr, schema()) is SQLType.BOOL
