"""Host-native equivalents of the inlinable sample UDFs.

The parity matrix registers the same function under every design:
sandboxed designs compile the JagScript bodies in
``test_inline_parity``; native designs resolve these callables.
"""


def plus1(x):
    return x + 1


def clip(x):
    return 0 if x < 0 else x


def scale(x):
    return x * 2.0 - 1.0
