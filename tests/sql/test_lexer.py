"""SQL tokenizer."""

import pytest

from repro.errors import LexError
from repro.sql.lexer import Token, TokenType, tokenize


def kinds(text):
    return [(t.type, t.value) for t in tokenize(text)[:-1]]


class TestTokens:
    def test_keywords_case_insensitive(self):
        assert kinds("SELECT select SeLeCt") == [
            (TokenType.KEYWORD, "select")
        ] * 3

    def test_identifiers_lowered(self):
        assert kinds("MyTable x_1") == [
            (TokenType.IDENT, "mytable"),
            (TokenType.IDENT, "x_1"),
        ]

    def test_numbers(self):
        assert kinds("42 3.14 .5 1e3 2.5e-2") == [
            (TokenType.INT, "42"),
            (TokenType.FLOAT, "3.14"),
            (TokenType.FLOAT, ".5"),
            (TokenType.FLOAT, "1e3"),
            (TokenType.FLOAT, "2.5e-2"),
        ]

    def test_strings_with_escapes(self):
        assert kinds("'hello' 'it''s'") == [
            (TokenType.STRING, "hello"),
            (TokenType.STRING, "it's"),
        ]

    def test_operators_greedy(self):
        assert kinds("<= >= <> != < > =") == [
            (TokenType.OP, "<="),
            (TokenType.OP, ">="),
            (TokenType.OP, "<>"),
            (TokenType.OP, "!="),
            (TokenType.OP, "<"),
            (TokenType.OP, ">"),
            (TokenType.OP, "="),
        ]

    def test_comments_skipped(self):
        assert kinds("1 -- a comment\n2") == [
            (TokenType.INT, "1"),
            (TokenType.INT, "2"),
        ]

    def test_minus_not_comment(self):
        assert kinds("1 - 2") == [
            (TokenType.INT, "1"),
            (TokenType.OP, "-"),
            (TokenType.INT, "2"),
        ]

    def test_qualified_name_tokens(self):
        assert kinds("a.b") == [
            (TokenType.IDENT, "a"),
            (TokenType.OP, "."),
            (TokenType.IDENT, "b"),
        ]

    def test_eof_always_present(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.EOF


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(LexError, match="unterminated"):
            tokenize("'oops")

    def test_bad_character(self):
        with pytest.raises(LexError, match="unexpected"):
            tokenize("select @")
