"""Property-based test: the SQL engine vs. an in-memory Python model.

Hypothesis generates a small table and random simple predicates; the
engine's filter/projection/aggregation answers must match a direct
Python evaluation over the same rows.  This catches planner/optimizer
bugs (a pushdown that changes semantics would surface immediately).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.database import Database

COLUMNS = ("a", "b", "s")


@st.composite
def tables(draw):
    n = draw(st.integers(min_value=0, max_value=25))
    rows = []
    for __ in range(n):
        rows.append(
            (
                draw(st.one_of(st.none(), st.integers(-50, 50))),
                draw(st.one_of(st.none(), st.integers(-50, 50))),
                draw(st.sampled_from(["x", "y", "zz", None])),
            )
        )
    return rows


@st.composite
def predicates(draw):
    """Returns (sql_fragment, python_fn(row) -> bool|None)."""
    kind = draw(st.sampled_from(["cmp", "between", "in", "isnull", "and", "or"]))
    if kind == "cmp":
        column = draw(st.sampled_from(["a", "b"]))
        op = draw(st.sampled_from(["=", "!=", "<", "<=", ">", ">="]))
        literal = draw(st.integers(-50, 50))
        index = COLUMNS.index(column)
        ops = {
            "=": lambda v: v == literal,
            "!=": lambda v: v != literal,
            "<": lambda v: v < literal,
            "<=": lambda v: v <= literal,
            ">": lambda v: v > literal,
            ">=": lambda v: v >= literal,
        }
        fn = ops[op]
        return (
            f"{column} {op} {literal}",
            lambda row: None if row[index] is None else fn(row[index]),
        )
    if kind == "between":
        lo = draw(st.integers(-50, 0))
        hi = draw(st.integers(0, 50))
        return (
            f"a BETWEEN {lo} AND {hi}",
            lambda row: None if row[0] is None else lo <= row[0] <= hi,
        )
    if kind == "in":
        items = draw(st.lists(st.integers(-5, 5), min_size=1, max_size=4))
        sql_items = ", ".join(map(str, items))
        return (
            f"b IN ({sql_items})",
            lambda row: None if row[1] is None else row[1] in items,
        )
    if kind == "isnull":
        negated = draw(st.booleans())
        if negated:
            return "s IS NOT NULL", lambda row: row[2] is not None
        return "s IS NULL", lambda row: row[2] is None
    left_sql, left_fn = draw(predicates())
    right_sql, right_fn = draw(predicates())
    if kind == "and":
        def kleene_and(row):
            lv, rv = left_fn(row), right_fn(row)
            if lv is False or rv is False:
                return False
            if lv is None or rv is None:
                return None
            return True
        return f"({left_sql}) AND ({right_sql})", kleene_and

    def kleene_or(row):
        lv, rv = left_fn(row), right_fn(row)
        if lv is True or rv is True:
            return True
        if lv is None or rv is None:
            return None
        return False
    return f"({left_sql}) OR ({right_sql})", kleene_or


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(rows=tables(), predicate=predicates())
def test_filter_matches_model(rows, predicate):
    sql_fragment, python_fn = predicate
    db = Database()
    try:
        db.execute("CREATE TABLE t (a INT, b INT, s STRING)")
        table = db.catalog.get_table("t")
        for row in rows:
            db.insert_row(table, list(row))
        got = sorted(
            db.query(f"SELECT a, b, s FROM t WHERE {sql_fragment}"),
            key=repr,
        )
        expected = sorted(
            (row for row in rows if python_fn(row) is True), key=repr
        )
        assert got == [tuple(r) for r in expected]
    finally:
        db.close()


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(rows=tables())
def test_aggregates_match_model(rows):
    db = Database()
    try:
        db.execute("CREATE TABLE t (a INT, b INT, s STRING)")
        table = db.catalog.get_table("t")
        for row in rows:
            db.insert_row(table, list(row))
        result = db.execute(
            "SELECT count(*), count(a), sum(a), min(a), max(a) FROM t"
        ).rows[0]
        a_values = [row[0] for row in rows if row[0] is not None]
        assert result[0] == len(rows)
        assert result[1] == len(a_values)
        assert result[2] == (float(sum(a_values)) if a_values else None)
        assert result[3] == (min(a_values) if a_values else None)
        assert result[4] == (max(a_values) if a_values else None)
    finally:
        db.close()


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(rows=tables())
def test_group_by_matches_model(rows):
    db = Database()
    try:
        db.execute("CREATE TABLE t (a INT, b INT, s STRING)")
        table = db.catalog.get_table("t")
        for row in rows:
            db.insert_row(table, list(row))
        got = {
            row[0]: row[1]
            for row in db.query("SELECT s, count(*) FROM t GROUP BY s")
        }
        expected = {}
        for row in rows:
            expected[row[2]] = expected.get(row[2], 0) + 1
        assert got == expected
    finally:
        db.close()


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(rows=tables(), limit=st.integers(0, 30))
def test_order_limit_matches_model(rows, limit):
    db = Database()
    try:
        db.execute("CREATE TABLE t (a INT, b INT, s STRING)")
        table = db.catalog.get_table("t")
        for row in rows:
            db.insert_row(table, list(row))
        got = [
            row[0]
            for row in db.query(
                f"SELECT a FROM t WHERE a IS NOT NULL "
                f"ORDER BY a LIMIT {limit}"
            )
        ]
        expected = sorted(
            row[0] for row in rows if row[0] is not None
        )[:limit]
        assert got == expected
    finally:
        db.close()
