"""Flow-certificate parity: the fast paths must never change results.

The flow certificates unlock three executor/optimizer fast paths —
defensive-copy elision for read-only parameters, arena-style quota
reclamation for non-escaping allocations, and the trap-free CASE batch
form for inlined UDF bodies — plus a wider Exchange purity gate.  All
of them are pure optimizations: stripping every ``definition.flows``
(which restores the seed's defensive baseline end to end, including in
isolated workers) must leave every query result bit-identical across
all six designs, batch sizes 1 and 64, and parallelism 1 and 2.

The suite also pins the load gate on the SQL surface: a CREATE
FUNCTION whose payload leaks tuple data into the ``cb_log`` sink is
refused before it ever reaches the catalog.
"""

import pytest

from repro.core.designs import Design
from repro.database import Database
from repro.errors import SecurityViolation

BATCH_SIZES = (1, 64)
PARALLELISM_LEVELS = (1, 2)


# -- native payloads (module-level so worker processes can import them) -------

def triple_native(x):
    return x * 3


def blen_native(data):
    return len(data)


# -- fixtures -----------------------------------------------------------------

SETUP = """
CREATE TABLE stocks (id INT, price INT, type TEXT);
INSERT INTO stocks VALUES (1, 10, 'tech');
INSERT INTO stocks VALUES (2, NULL, 'oil');
INSERT INTO stocks VALUES (3, 10, 'tech');
INSERT INTO stocks VALUES (4, -5, NULL);
INSERT INTO stocks VALUES (5, 7, 'oil');
INSERT INTO stocks VALUES (6, 10, 'gas');
INSERT INTO stocks VALUES (7, NULL, 'tech');
INSERT INTO stocks VALUES (8, 7, 'gas');
INSERT INTO stocks VALUES (9, 0, 'oil');
INSERT INTO stocks VALUES (10, 3, 'tech');
"""

#: ``t1`` is small, pure, branchy arithmetic: inlinable, trap-free, and
#: (with COST 500) Exchange-eligible — it exercises the trap-free CASE
#: batch form and the parallel path.  ``blen`` takes a BYTES argument it
#: only reads: the copy-elision path.  ``mash`` allocates a buffer that
#: never escapes: the arena path.  The native designs run host payloads
#: (no certificates, the unchanged baseline).
JAGUAR_T1 = (
    "def t1(x: int) -> int:\n"
    "    if x < 0:\n"
    "        return 0 - x\n"
    "    return x * 3\n"
)
JAGUAR_BLEN = "def blen(data: bytes) -> int:\n    return len(data)\n"
JAGUAR_MASH = (
    "def mash(x: int) -> int:\n"
    "    buf: bytes = bytearray(16)\n"
    "    buf[3] = 9\n"
    "    return len(buf) + x\n"
)


def _jaguar(design_sql, name, signature, body, cost=None):
    cost_clause = f"COST {cost} " if cost else ""
    return (
        f"CREATE FUNCTION {name}({signature}) RETURNS int LANGUAGE JAGUAR "
        f"DESIGN {design_sql} {cost_clause}AS '{body}'"
    )


def _native(design_sql, name, signature, payload, cost=None):
    cost_clause = f"COST {cost} " if cost else ""
    return (
        f"CREATE FUNCTION {name}({signature}) RETURNS int LANGUAGE NATIVE "
        f"DESIGN {design_sql} {cost_clause}AS '{payload}'"
    )


DESIGN_SQL = {
    Design.NATIVE_INTEGRATED: "INTEGRATED",
    Design.NATIVE_SFI: "SFI",
    Design.NATIVE_ISOLATED: "ISOLATED",
    Design.SANDBOX_JIT: "SANDBOX",
    Design.SANDBOX_INTERP: "SANDBOX_INTERP",
    Design.SANDBOX_ISOLATED: "SANDBOX_ISOLATED",
}

NATIVE = (
    Design.NATIVE_INTEGRATED, Design.NATIVE_SFI, Design.NATIVE_ISOLATED,
)

QUERIES = [
    "SELECT id, t1(id) FROM stocks ORDER BY id",
    "SELECT id FROM stocks WHERE t1(id) > 12 AND type <> 'gas' ORDER BY id",
    "SELECT type, count(*), sum(t1(price)) FROM stocks "
    "GROUP BY type ORDER BY type",
    "SELECT id, blen(payload) FROM blobs ORDER BY id",
    "SELECT id FROM blobs WHERE blen(payload) > 4 ORDER BY id",
    "SELECT id, mash(id) FROM stocks WHERE id < 6 ORDER BY id",
]

#: Isolated designs spawn worker processes per UDF query, so the matrix
#: runs a representative subset for them (one UDF per fast path).
ISOLATED_QUERIES = [QUERIES[1], QUERIES[3], QUERIES[5]]

IN_PROCESS = (
    Design.NATIVE_INTEGRATED,
    Design.NATIVE_SFI,
    Design.SANDBOX_JIT,
    Design.SANDBOX_INTERP,
)
ISOLATED = (Design.NATIVE_ISOLATED, Design.SANDBOX_ISOLATED)


def _fresh_db(design):
    db = Database()
    for statement in SETUP.strip().split(";"):
        if statement.strip():
            db.execute(statement)
    db.execute("CREATE TABLE blobs (id INT, payload BYTEARRAY)")
    table = db.catalog.get_table("blobs")
    for blob_id in range(1, 6):
        db.insert_row(table, [blob_id, bytes(range(blob_id * 2))])

    sql = DESIGN_SQL[design]
    if design in NATIVE:
        db.execute(_native(
            sql, "t1", "int",
            "tests.sql.test_flows_parity:triple_native", cost=500,
        ))
        db.execute(_native(
            sql, "blen", "bytes",
            "tests.sql.test_flows_parity:blen_native",
        ))
        db.execute(_native(
            sql, "mash", "int",
            "tests.sql.test_flows_parity:triple_native",
        ))
    else:
        db.execute(_jaguar(sql, "t1", "int", JAGUAR_T1, cost=500))
        db.execute(_jaguar(sql, "blen", "bytes", JAGUAR_BLEN))
        db.execute(_jaguar(sql, "mash", "int", JAGUAR_MASH))
    return db


def _strip_flows(db):
    """Disable every flow fast path: back to the defensive baseline."""
    stripped = 0
    for definition in db.registry._definitions.values():
        if definition.flows is not None:
            definition.flows = None
            stripped += 1
    return stripped


def _snapshot(db, queries):
    rows = {}
    for batch_size in BATCH_SIZES:
        for level in PARALLELISM_LEVELS:
            db.batch_size = batch_size
            db.parallelism = level
            for sql in queries:
                rows[(sql, batch_size, level)] = db.query(sql)
    return rows


class TestFlowParity:
    @pytest.mark.parametrize("design", IN_PROCESS)
    def test_in_process_designs(self, design):
        with _fresh_db(design) as db:
            certified = _snapshot(db, QUERIES)
            stripped = _strip_flows(db)
            if design not in NATIVE:
                assert stripped >= 3  # every jaguar UDF was certified
            baseline = _snapshot(db, QUERIES)
            assert certified == baseline

    @pytest.mark.parametrize("design", ISOLATED)
    def test_isolated_designs(self, design):
        with _fresh_db(design) as db:
            certified = _snapshot(db, ISOLATED_QUERIES)
            stripped = _strip_flows(db)
            if design not in NATIVE:
                assert stripped >= 3
            baseline = _snapshot(db, ISOLATED_QUERIES)
            assert certified == baseline

    def test_native_definitions_carry_no_flows(self):
        with _fresh_db(Design.NATIVE_INTEGRATED) as db:
            assert _strip_flows(db) == 0


class TestSqlLoadGate:
    def test_exfiltrating_udf_refused_at_create_function(self):
        with Database() as db:
            with pytest.raises(SecurityViolation) as exc:
                db.execute(
                    "CREATE FUNCTION leak(int) RETURNS int LANGUAGE JAGUAR "
                    "DESIGN SANDBOX CALLBACKS 'cb_log' AS "
                    "'def leak(x: int) -> int:\n"
                    "    disguised: int = x * 31 + 7\n"
                    "    return cb_log(disguised)\n'"
                )
            assert "tuple-derived data" in str(exc.value)
            assert "rejected at load" in str(exc.value)
            # The refusal left no catalog entry behind.
            assert "leak" not in db.registry.names()

    def test_constant_argument_sink_is_admitted(self):
        with Database() as db:
            db.execute(
                "CREATE FUNCTION heartbeat(int) RETURNS int LANGUAGE JAGUAR "
                "DESIGN SANDBOX CALLBACKS 'cb_log' AS "
                "'def heartbeat(x: int) -> int:\n    return cb_log(1)\n'"
            )
            assert "heartbeat" in db.registry.names()
