"""End-to-end SQL execution against an embedded database."""

import pytest

from repro.errors import CatalogError, PlanError, RecordError


@pytest.fixture
def people(db):
    db.execute(
        "CREATE TABLE people (id INT NOT NULL, name STRING, age INT, "
        "score FLOAT)"
    )
    db.execute(
        "INSERT INTO people VALUES "
        "(1, 'ann', 30, 1.5), (2, 'bob', 25, 2.5), (3, 'cat', 30, 3.5), "
        "(4, 'dan', NULL, NULL)"
    )
    return db


class TestSelect:
    def test_projection_and_star(self, people):
        result = people.execute("SELECT * FROM people WHERE id = 1")
        assert result.columns == ["id", "name", "age", "score"]
        assert result.rows == [(1, "ann", 30, 1.5)]

    def test_expressions_in_select(self, people):
        result = people.execute(
            "SELECT id * 10 + 1 AS x FROM people WHERE id <= 2 ORDER BY id"
        )
        assert result.columns == ["x"]
        assert result.rows == [(11,), (21,)]

    def test_where_filters_nulls(self, people):
        # dan has NULL age: NULL comparisons exclude the row.
        result = people.execute("SELECT id FROM people WHERE age >= 0")
        assert len(result.rows) == 3

    def test_is_null(self, people):
        result = people.execute("SELECT id FROM people WHERE age IS NULL")
        assert result.rows == [(4,)]

    def test_order_by_multiple_keys(self, people):
        result = people.execute(
            "SELECT id FROM people ORDER BY age DESC, name ASC"
        )
        # NULL age sorts last with ascending... here DESC: nulls position
        ids = [row[0] for row in result.rows]
        assert set(ids) == {1, 2, 3, 4}
        assert ids.index(1) < ids.index(3)  # same age: ann before cat

    def test_order_by_unprojected_column(self, people):
        result = people.execute("SELECT name FROM people ORDER BY id DESC")
        assert [r[0] for r in result.rows] == ["dan", "cat", "bob", "ann"]

    def test_limit(self, people):
        assert len(people.execute("SELECT id FROM people LIMIT 2").rows) == 2
        assert people.execute("SELECT id FROM people LIMIT 0").rows == []

    def test_distinct(self, people):
        result = people.execute("SELECT DISTINCT age FROM people")
        assert sorted(
            (row[0] for row in result.rows), key=lambda v: (v is None, v)
        ) == [25, 30, None]

    def test_between_and_in(self, people):
        result = people.execute(
            "SELECT id FROM people WHERE age BETWEEN 26 AND 31 "
            "AND name IN ('ann', 'cat')"
        )
        assert sorted(row[0] for row in result.rows) == [1, 3]


class TestAggregates:
    def test_global_aggregates(self, people):
        result = people.execute(
            "SELECT count(*), count(age), sum(age), avg(score), "
            "min(age), max(age) FROM people"
        )
        assert result.rows == [(4, 3, 85.0, 2.5, 25, 30)]

    def test_group_by(self, people):
        result = people.execute(
            "SELECT age, count(*) AS n FROM people GROUP BY age ORDER BY n DESC"
        )
        by_age = {row[0]: row[1] for row in result.rows}
        assert by_age == {30: 2, 25: 1, None: 1}

    def test_count_distinct(self, people):
        assert people.execute(
            "SELECT count(DISTINCT age) FROM people"
        ).scalar() == 2

    def test_aggregate_on_empty_input(self, people):
        result = people.execute(
            "SELECT count(*), sum(age) FROM people WHERE id > 100"
        )
        assert result.rows == [(0, None)]

    def test_group_by_empty_input_no_rows(self, people):
        result = people.execute(
            "SELECT age, count(*) FROM people WHERE id > 100 GROUP BY age"
        )
        assert result.rows == []

    def test_non_grouped_column_rejected(self, people):
        with pytest.raises(PlanError, match="GROUP BY"):
            people.execute(
                "SELECT name, count(*) FROM people GROUP BY age"
            )


class TestJoins:
    @pytest.fixture
    def orders(self, people):
        people.execute("CREATE TABLE orders (pid INT, amount FLOAT)")
        people.execute(
            "INSERT INTO orders VALUES (1, 10.0), (1, 20.0), (3, 5.0), (9, 1.0)"
        )
        return people

    def test_inner_join(self, orders):
        result = orders.execute(
            "SELECT p.name, o.amount FROM people p JOIN orders o "
            "ON p.id = o.pid ORDER BY o.amount"
        )
        assert result.rows == [
            ("cat", 5.0), ("ann", 10.0), ("ann", 20.0)
        ]

    def test_comma_join_with_where(self, orders):
        result = orders.execute(
            "SELECT count(*) FROM people p, orders o WHERE p.id = o.pid"
        )
        assert result.scalar() == 3

    def test_cross_join_cardinality(self, orders):
        assert orders.execute(
            "SELECT count(*) FROM people, orders"
        ).scalar() == 16

    def test_self_join_needs_aliases(self, orders):
        result = orders.execute(
            "SELECT count(*) FROM people a, people b WHERE a.id < b.id"
        )
        assert result.scalar() == 6

    def test_duplicate_alias_rejected(self, orders):
        with pytest.raises(PlanError, match="duplicate"):
            orders.execute("SELECT 1 FROM people p, orders p")

    def test_join_aggregation(self, orders):
        result = orders.execute(
            "SELECT p.name, sum(o.amount) AS total FROM people p "
            "JOIN orders o ON p.id = o.pid GROUP BY p.name "
            "ORDER BY total DESC"
        )
        assert result.rows == [("ann", 30.0), ("cat", 5.0)]


class TestDML:
    def test_update_returns_rowcount(self, people):
        result = people.execute("UPDATE people SET age = age + 1 WHERE age = 30")
        assert result.rowcount == 2
        assert people.execute(
            "SELECT count(*) FROM people WHERE age = 31"
        ).scalar() == 2

    def test_update_all_rows(self, people):
        people.execute("UPDATE people SET score = 0.0")
        assert people.execute(
            "SELECT count(*) FROM people WHERE score = 0.0"
        ).scalar() == 4

    def test_delete(self, people):
        assert people.execute("DELETE FROM people WHERE age = 30").rowcount == 2
        assert people.execute("SELECT count(*) FROM people").scalar() == 2

    def test_delete_all(self, people):
        people.execute("DELETE FROM people")
        assert people.execute("SELECT count(*) FROM people").scalar() == 0

    def test_insert_with_column_subset(self, people):
        people.execute("INSERT INTO people (id, name) VALUES (10, 'eve')")
        result = people.execute("SELECT age, score FROM people WHERE id = 10")
        assert result.rows == [(None, None)]

    def test_not_null_enforced(self, people):
        with pytest.raises(RecordError, match="NOT NULL"):
            people.execute("INSERT INTO people (name) VALUES ('ghost')")

    def test_insert_arity_mismatch(self, people):
        with pytest.raises(PlanError):
            people.execute("INSERT INTO people (id, name) VALUES (1)")


class TestDDL:
    def test_drop_table(self, people):
        people.execute("DROP TABLE people")
        with pytest.raises(CatalogError):
            people.execute("SELECT * FROM people")

    def test_duplicate_table(self, people):
        with pytest.raises(PlanError, match="already exists"):
            people.execute("CREATE TABLE people (x INT)")

    def test_index_used_and_correct(self, people):
        people.execute("CREATE INDEX people_id ON people(id)")
        assert people.execute(
            "SELECT name FROM people WHERE id = 3"
        ).scalar() == "cat"
        assert people.execute(
            "SELECT count(*) FROM people WHERE id BETWEEN 2 AND 3"
        ).scalar() == 2
        # Index maintained across DML.
        people.execute("INSERT INTO people VALUES (7, 'gil', 1, 1.0)")
        people.execute("DELETE FROM people WHERE id = 2")
        assert people.execute(
            "SELECT name FROM people WHERE id = 7"
        ).scalar() == "gil"
        assert people.execute(
            "SELECT count(*) FROM people WHERE id = 2"
        ).scalar() == 0

    def test_index_on_non_int_rejected(self, people):
        with pytest.raises(PlanError, match="INT"):
            people.execute("CREATE INDEX people_name ON people(name)")


class TestPersistence:
    def test_reopen_preserves_data_and_udfs(self, db_path):
        from repro.database import Database

        with Database(db_path) as db:
            db.execute("CREATE TABLE t (id INT, blob BYTEARRAY)")
            db.execute("INSERT INTO t VALUES (1, patbytes(5000, 1))")
            db.execute(
                "CREATE FUNCTION inc(int) RETURNS int LANGUAGE JAGUAR "
                "DESIGN SANDBOX AS 'def inc(x: int) -> int: return x + 1'"
            )
            db.flush()
            original = db.execute("SELECT length(blob) FROM t").scalar()

        with Database(db_path) as db:
            assert db.execute("SELECT length(blob) FROM t").scalar() == original
            assert db.execute("SELECT inc(id) FROM t").scalar() == 2

    def test_lob_roundtrip_through_reopen(self, db_path):
        from repro.database import Database
        from repro.bench.workload import pattern_bytes

        payload = pattern_bytes(20000, 3)
        with Database(db_path) as db:
            db.execute("CREATE TABLE t (id INT, blob BYTEARRAY)")
            table = db.catalog.get_table("t")
            db.insert_row(table, [1, payload])
            db.flush()

        with Database(db_path) as db:
            db.execute(
                "CREATE FUNCTION blobsum(bytes, int, int, int) RETURNS int "
                "LANGUAGE NATIVE DESIGN INTEGRATED "
                "AS 'repro.core.generic_udf:generic_native'"
            )
            got = db.execute("SELECT blobsum(blob, 0, 1, 0) FROM t").scalar()
            assert got == sum(payload)
