"""Tiering parity: tier-1 kernels must never change query results.

Tiered execution is only ever an optimization: with ``tiering=True``
and an aggressive threshold (0, so every eligible UDF promotes on its
first batch), every query result must stay bit-identical to the seed
tier-0 run across all six designs, batch sizes 1 and 64, and
parallelism 1 and 2.  That includes error semantics — a UDF that traps
mid-batch deopts and re-raises exactly what tier 0 would have raised —
and the default: ``Database()`` without ``tiering`` runs the seed code
paths untouched.
"""

import pytest

from repro.core.designs import Design
from repro.database import Database
from repro.errors import ArithmeticFault

BATCH_SIZES = (1, 64)
PARALLELISM_LEVELS = (1, 2)


# -- native payloads (module-level so worker processes can import them) -------

def triple_native(x):
    return x * 3 + 1


def clip_native(x):
    return x if x < 50 else 50


# -- fixtures -----------------------------------------------------------------

SETUP = """
CREATE TABLE stocks (id INT, price INT, type TEXT);
INSERT INTO stocks VALUES (1, 10, 'tech');
INSERT INTO stocks VALUES (2, NULL, 'oil');
INSERT INTO stocks VALUES (3, 10, 'tech');
INSERT INTO stocks VALUES (4, -5, NULL);
INSERT INTO stocks VALUES (5, 7, 'oil');
INSERT INTO stocks VALUES (6, 10, 'gas');
INSERT INTO stocks VALUES (7, NULL, 'tech');
INSERT INTO stocks VALUES (8, 7, 'gas');
INSERT INTO stocks VALUES (9, 0, 'oil');
INSERT INTO stocks VALUES (10, 3, 'tech');
"""

#: ``arith`` is the prime tier-1 target: pure, typed, constant-bound
#: arithmetic.  ``clip`` is branchy (both kernel block forms).  The
#: native designs run host payloads — never promoted, the control.
JAGUAR_ARITH = "def arith(x: int) -> int:\n    return x * 3 + 1\n"
JAGUAR_CLIP = (
    "def clip(x: int) -> int:\n"
    "    if x < 50:\n"
    "        return x\n"
    "    return 50\n"
)
#: Traps when ``x == 4`` (the only row where ``price`` is negative):
#: a forced mid-batch deopt whose tier-0 rerun re-raises the fault.
JAGUAR_TRAPPY = (
    "def trappy(x: int) -> int:\n"
    "    return 100 // (x + 5)\n"
)

DESIGN_SQL = {
    Design.NATIVE_INTEGRATED: "INTEGRATED",
    Design.NATIVE_SFI: "SFI",
    Design.NATIVE_ISOLATED: "ISOLATED",
    Design.SANDBOX_JIT: "SANDBOX",
    Design.SANDBOX_INTERP: "SANDBOX_INTERP",
    Design.SANDBOX_ISOLATED: "SANDBOX_ISOLATED",
}

NATIVE = (
    Design.NATIVE_INTEGRATED, Design.NATIVE_SFI, Design.NATIVE_ISOLATED,
)

QUERIES = [
    "SELECT id, arith(id) FROM stocks ORDER BY id",
    "SELECT id FROM stocks WHERE arith(id) > 12 AND type <> 'gas' "
    "ORDER BY id",
    "SELECT type, count(*), sum(arith(price)) FROM stocks "
    "GROUP BY type ORDER BY type",
    "SELECT id, clip(arith(id)) FROM stocks ORDER BY id",
]

#: Isolated designs spawn worker processes per UDF query, so the matrix
#: runs a representative subset for them.
ISOLATED_QUERIES = [QUERIES[0], QUERIES[3]]

IN_PROCESS = (
    Design.NATIVE_INTEGRATED,
    Design.NATIVE_SFI,
    Design.SANDBOX_JIT,
    Design.SANDBOX_INTERP,
)
ISOLATED = (Design.NATIVE_ISOLATED, Design.SANDBOX_ISOLATED)


def _fresh_db(design, tiering):
    db = Database(tiering=tiering, tier1_threshold=0)
    for statement in SETUP.strip().split(";"):
        if statement.strip():
            db.execute(statement)
    sql = DESIGN_SQL[design]
    if design in NATIVE:
        db.execute(
            f"CREATE FUNCTION arith(int) RETURNS int LANGUAGE NATIVE "
            f"DESIGN {sql} AS "
            f"'tests.sql.test_tier_parity:triple_native'"
        )
        db.execute(
            f"CREATE FUNCTION clip(int) RETURNS int LANGUAGE NATIVE "
            f"DESIGN {sql} AS 'tests.sql.test_tier_parity:clip_native'"
        )
    else:
        db.execute(
            f"CREATE FUNCTION arith(int) RETURNS int LANGUAGE JAGUAR "
            f"DESIGN {sql} AS '{JAGUAR_ARITH}'"
        )
        db.execute(
            f"CREATE FUNCTION clip(int) RETURNS int LANGUAGE JAGUAR "
            f"DESIGN {sql} AS '{JAGUAR_CLIP}'"
        )
    return db


def _snapshot(db, queries):
    rows = {}
    for batch_size in BATCH_SIZES:
        for level in PARALLELISM_LEVELS:
            db.batch_size = batch_size
            db.parallelism = level
            for sql in queries:
                rows[(sql, batch_size, level)] = db.query(sql)
    return rows


class TestTierParity:
    @pytest.mark.parametrize("design", IN_PROCESS)
    def test_in_process_designs(self, design):
        with _fresh_db(design, tiering=False) as db:
            baseline = _snapshot(db, QUERIES)
        with _fresh_db(design, tiering=True) as db:
            # Warm across the matrix twice: the first pass promotes,
            # the second runs fully tier 1.  Both must match tier 0.
            first = _snapshot(db, QUERIES)
            second = _snapshot(db, QUERIES)
        assert first == baseline
        assert second == baseline

    @pytest.mark.parametrize("design", ISOLATED)
    def test_isolated_designs(self, design):
        with _fresh_db(design, tiering=False) as db:
            baseline = _snapshot(db, ISOLATED_QUERIES)
        with _fresh_db(design, tiering=True) as db:
            assert _snapshot(db, ISOLATED_QUERIES) == baseline

    @pytest.mark.parametrize(
        "design", (Design.SANDBOX_JIT, Design.SANDBOX_INTERP)
    )
    def test_forced_mid_batch_deopt_error_parity(self, design):
        # Row id=4 has price=-5: trappy(-5) divides by zero mid-batch.
        # The kernel deopts, the tier-0 rerun re-raises the same fault
        # the untried baseline raises.
        sql = DESIGN_SQL[design]
        query = "SELECT trappy(price) FROM stocks WHERE price IS NOT NULL"

        def outcome(tiering):
            with Database(tiering=tiering, tier1_threshold=0) as db:
                for statement in SETUP.strip().split(";"):
                    if statement.strip():
                        db.execute(statement)
                db.execute(
                    f"CREATE FUNCTION trappy(int) RETURNS int "
                    f"LANGUAGE JAGUAR DESIGN {sql} AS '{JAGUAR_TRAPPY}'"
                )
                with pytest.raises(ArithmeticFault) as exc:
                    db.query(query)
                return str(exc.value)

        assert outcome(True) == outcome(False)

    def test_tiering_actually_promoted(self):
        # Guard against the parity suite silently testing tier 0 twice.
        with _fresh_db(Design.SANDBOX_JIT, tiering=True) as db:
            _snapshot(db, QUERIES)
            executor = db.registry.executor_for_query("arith")
            assert executor._tier is not None
            assert executor._tier.promotions == 1
            assert executor._tier.tier1_batches > 0

    def test_default_is_off(self):
        with Database() as db:
            assert db.tiering is False
        with _fresh_db(Design.SANDBOX_JIT, tiering=False) as db:
            _snapshot(db, QUERIES)
            executor = db.registry.executor_for_query("arith")
            assert executor._tier is None  # tier machinery never touched
