"""Large-object lifecycle through SQL DML (spill, free, update)."""

import pytest

from repro.database import Database
from repro.storage.heapfile import HeapFile
from repro.storage.lob import LOBRef
from repro.storage.record import deserialize_record


@pytest.fixture
def small_threshold_db():
    # Tiny threshold so spills are easy to trigger.
    database = Database(lob_threshold=64)
    database.execute("CREATE TABLE t (id INT, blob BYTEARRAY)")
    yield database
    database.close()


def stored_value(db, table_name, row_id):
    table = db.catalog.get_table(table_name)
    heap = HeapFile(db.pool, table.first_page)
    for __, record in heap.scan():
        row = deserialize_record(record, table.column_types())
        if row[0] == row_id:
            return row[1]
    raise AssertionError(f"row {row_id} not found")


class TestSpill:
    def test_small_value_stays_inline(self, small_threshold_db):
        db = small_threshold_db
        db.execute("INSERT INTO t VALUES (1, zerobytes(10))")
        assert isinstance(stored_value(db, "t", 1), bytes)

    def test_large_value_spills(self, small_threshold_db):
        db = small_threshold_db
        db.execute("INSERT INTO t VALUES (1, zerobytes(1000))")
        ref = stored_value(db, "t", 1)
        assert isinstance(ref, LOBRef)
        assert ref.length == 1000
        assert db.lobs.read(ref) == bytes(1000)

    def test_length_on_lob_without_materializing(self, small_threshold_db):
        db = small_threshold_db
        db.execute("INSERT INTO t VALUES (1, zerobytes(5000))")
        assert db.execute("SELECT length(blob) FROM t").scalar() == 5000


class TestLifecycle:
    def test_delete_frees_lob_pages(self, small_threshold_db):
        db = small_threshold_db
        db.execute("INSERT INTO t VALUES (1, zerobytes(50000))")
        pages_after_insert = db.disk.num_pages
        db.execute("DELETE FROM t WHERE id = 1")
        db.execute("INSERT INTO t VALUES (2, zerobytes(50000))")
        # The freed chain was reused: no significant growth.
        assert db.disk.num_pages <= pages_after_insert + 2

    def test_update_replaces_lob(self, small_threshold_db):
        db = small_threshold_db
        db.execute("INSERT INTO t VALUES (1, zerobytes(2000))")
        old_ref = stored_value(db, "t", 1)
        db.execute("UPDATE t SET blob = patbytes(3000, 9) WHERE id = 1")
        new_ref = stored_value(db, "t", 1)
        assert isinstance(new_ref, LOBRef)
        assert new_ref.length == 3000
        assert new_ref.first_page != old_ref.first_page or True
        from repro.sql.expressions import _patbytes

        assert db.lobs.read(new_ref) == _patbytes(3000, 9)

    def test_update_shrinks_to_inline(self, small_threshold_db):
        db = small_threshold_db
        db.execute("INSERT INTO t VALUES (1, zerobytes(2000))")
        db.execute("UPDATE t SET blob = zerobytes(8) WHERE id = 1")
        assert isinstance(stored_value(db, "t", 1), bytes)

    def test_drop_table_frees_lobs(self, small_threshold_db):
        db = small_threshold_db
        for i in range(5):
            db.execute(f"INSERT INTO t VALUES ({i}, zerobytes(20000))")
        pages_full = db.disk.num_pages
        db.execute("DROP TABLE t")
        db.execute("CREATE TABLE t2 (id INT, blob BYTEARRAY)")
        for i in range(5):
            db.execute(f"INSERT INTO t2 VALUES ({i}, zerobytes(20000))")
        assert db.disk.num_pages <= pages_full + 3


class TestUDFOverLobs:
    def test_by_value_udf_reads_lob(self, small_threshold_db):
        db = small_threshold_db
        db.execute("INSERT INTO t VALUES (1, patbytes(4000, 2))")
        db.execute(
            "CREATE FUNCTION total(bytes) RETURNS int LANGUAGE JAGUAR "
            "DESIGN SANDBOX AS "
            "'def total(d: bytes) -> int:\n"
            "    s: int = 0\n"
            "    for i in range(len(d)):\n"
            "        s = s + d[i]\n"
            "    return s'"
        )
        from repro.sql.expressions import _patbytes

        assert db.execute(
            "SELECT total(blob) FROM t"
        ).scalar() == sum(_patbytes(4000, 2))

    def test_handle_udf_range_reads_lob(self, small_threshold_db):
        db = small_threshold_db
        db.execute("INSERT INTO t VALUES (1, patbytes(4000, 2))")
        db.execute(
            "CREATE FUNCTION head(handle) RETURNS int LANGUAGE JAGUAR "
            "DESIGN SANDBOX CALLBACKS 'cb_lob_read' AS "
            "'def head(h: int) -> int:\n"
            "    chunk: bytes = cb_lob_read(h, 0, 10)\n"
            "    s: int = 0\n"
            "    for i in range(len(chunk)):\n"
            "        s = s + chunk[i]\n"
            "    return s'"
        )
        from repro.sql.expressions import _patbytes

        assert db.execute(
            "SELECT head(blob) FROM t"
        ).scalar() == sum(_patbytes(4000, 2)[:10])
