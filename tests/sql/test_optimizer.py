"""Optimizer rewrites: pushdown, expensive-predicate ordering, indexes."""

import pytest

from repro.core.udf import CostHints
from repro.sql import ast_nodes as A
from repro.sql.optimizer import CostOracle, optimize
from repro.sql.parser import parse_statement
from repro.sql.planner import (
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    plan_select,
    split_conjuncts,
)
from repro.storage.catalog import Catalog, Column, IndexInfo, TableInfo
from repro.storage.record import ColumnType


def make_catalog():
    catalog = Catalog()
    catalog.add_table(
        TableInfo(
            name="t",
            columns=[
                Column("id", ColumnType.INT),
                Column("v", ColumnType.INT),
                Column("arr", ColumnType.BYTES),
            ],
            first_page=2,
        )
    )
    catalog.add_table(
        TableInfo(
            name="u",
            columns=[Column("id", ColumnType.INT),
                     Column("w", ColumnType.INT)],
            first_page=3,
        )
    )
    catalog.add_table(
        TableInfo(
            name="indexed",
            columns=[Column("k", ColumnType.INT)],
            first_page=4,
            indexes=[IndexInfo("idx_k", "k", 9)],
        )
    )
    return catalog


class FakeOracle(CostOracle):
    """Treats 'expensive_udf' as a known UDF with given hints."""

    def __init__(self, hints):
        self.hints = hints

    def udf_hints(self, name):
        return self.hints.get(name)


def plan(sql, catalog=None):
    return plan_select(parse_statement(sql), catalog or make_catalog())


def find_scans(node, out=None):
    out = out if out is not None else []
    if isinstance(node, LogicalScan):
        out.append(node)
    for attr in ("child", "left", "right"):
        child = getattr(node, attr, None)
        if child is not None:
            find_scans(child, out)
    return out


class TestSplitConjuncts:
    def test_flattens_nested_ands(self):
        where = parse_statement(
            "SELECT id FROM t WHERE id = 1 AND v = 2 AND v = 3"
        ).where
        assert len(split_conjuncts(where)) == 3

    def test_or_not_split(self):
        where = parse_statement(
            "SELECT id FROM t WHERE id = 1 OR v = 2"
        ).where
        assert len(split_conjuncts(where)) == 1


class TestPushdown:
    def test_single_table_filter_reaches_scan(self):
        optimized = optimize(plan("SELECT id FROM t WHERE v = 2 AND id > 1"))
        scans = find_scans(optimized)
        assert len(scans) == 1
        assert len(scans[0].predicates) == 2
        # The filter node disappears entirely.
        node = optimized
        while node is not None:
            assert not isinstance(node, LogicalFilter)
            node = getattr(node, "child", None)

    def test_join_predicates_split_by_side(self):
        optimized = optimize(
            plan(
                "SELECT t.id FROM t, u "
                "WHERE t.v = 1 AND u.w = 2 AND t.id = u.id"
            )
        )
        scans = {scan.alias: scan for scan in find_scans(optimized)}
        assert len(scans["t"].predicates) == 1
        assert len(scans["u"].predicates) == 1
        joins = [
            node for node in _walk(optimized) if isinstance(node, LogicalJoin)
        ]
        assert len(joins) == 1
        assert len(joins[0].predicates) == 1  # the cross-table conjunct

    def test_unqualified_columns_pushed_after_qualification(self):
        optimized = optimize(plan("SELECT id FROM t WHERE v = 2"))
        assert len(find_scans(optimized)[0].predicates) == 1


class TestPredicateOrdering:
    def test_cheap_selective_before_expensive_udf(self):
        hints = {"expensive_udf": CostHints(cost_per_call=10000.0,
                                            selectivity=0.5)}
        catalog = make_catalog()
        statement = parse_statement(
            "SELECT id FROM t WHERE expensive_udf(arr) > 5 AND id = 3"
        )

        class Resolver:
            def resolve_udf(self, name):
                if name == "expensive_udf":
                    return _FakeExecutor(), ("bytes",)
                return None

        logical = plan_select(statement, catalog, Resolver())
        optimized = optimize(logical, FakeOracle(hints))
        predicates = find_scans(optimized)[0].predicates
        assert len(predicates) == 2
        # The id = 3 conjunct must come first (lower rank).
        first = predicates[0]
        assert isinstance(first, A.BinaryOp) and first.op == "="
        assert isinstance(first.left, A.ColumnRef)

    def test_highly_selective_udf_can_run_first(self):
        # rank = (sel - 1) / cost: a nearly-always-false cheap UDF
        # (rank ~ -0.67) should beat an unselective builtin (rank -0.5).
        hints = {"expensive_udf": CostHints(cost_per_call=0.5,
                                            selectivity=0.0)}
        statement = parse_statement(
            "SELECT id FROM t WHERE expensive_udf(arr) > 5 "
            "AND v IS NOT NULL"
        )

        class Resolver:
            def resolve_udf(self, name):
                if name == "expensive_udf":
                    return _FakeExecutor(), ("bytes",)
                return None

        logical = plan_select(statement, make_catalog(), Resolver())
        optimized = optimize(logical, FakeOracle(hints))
        predicates = find_scans(optimized)[0].predicates
        assert isinstance(predicates[0], A.BinaryOp)
        assert predicates[0].op == ">"  # the UDF comparison


class TestIndexSelection:
    def test_equality_uses_index(self):
        optimized = optimize(plan("SELECT k FROM indexed WHERE k = 5"))
        scan = find_scans(optimized)[0]
        assert scan.index is not None
        assert (scan.index_lo, scan.index_hi) == (5, 5)
        assert scan.predicates == []  # conjunct absorbed

    def test_range_uses_index(self):
        optimized = optimize(plan("SELECT k FROM indexed WHERE k >= 10"))
        scan = find_scans(optimized)[0]
        assert (scan.index_lo, scan.index_hi) == (10, None)

    def test_between_uses_index(self):
        optimized = optimize(
            plan("SELECT k FROM indexed WHERE k BETWEEN 3 AND 7")
        )
        scan = find_scans(optimized)[0]
        assert (scan.index_lo, scan.index_hi) == (3, 7)

    def test_flipped_literal_comparison(self):
        optimized = optimize(plan("SELECT k FROM indexed WHERE 5 = k"))
        scan = find_scans(optimized)[0]
        assert (scan.index_lo, scan.index_hi) == (5, 5)

    def test_strict_bounds_tightened(self):
        optimized = optimize(plan("SELECT k FROM indexed WHERE k < 10"))
        scan = find_scans(optimized)[0]
        assert (scan.index_lo, scan.index_hi) == (None, 9)

    def test_unindexed_column_untouched(self):
        optimized = optimize(plan("SELECT id FROM t WHERE id = 5"))
        scan = find_scans(optimized)[0]
        assert scan.index is None
        assert len(scan.predicates) == 1

    def test_residual_predicates_kept(self):
        optimized = optimize(
            plan("SELECT k FROM indexed WHERE k = 5 AND k % 2 = 1")
        )
        scan = find_scans(optimized)[0]
        assert scan.index is not None
        assert len(scan.predicates) == 1


class _FakeExecutor:
    class definition:
        class signature:
            param_types = ("bytes",)
            ret_type = "float"


def _walk(node):
    yield node
    for attr in ("child", "left", "right"):
        child = getattr(node, attr, None)
        if child is not None:
            yield from _walk(child)
