"""Information-flow certification: taint, escape, trap safety, the gate."""

import json
from pathlib import Path

import pytest

from repro.analysis.flows import analyze_flows
from repro.analysis.lint import flows_main, main, report_main
from repro.core.callbacks import (
    READ_ONLY_CALLBACKS,
    SINK_CALLBACKS,
    standard_callback_signatures,
    standard_sink_callbacks,
)
from repro.errors import SecurityViolation
from repro.vm.compiler import compile_source
from repro.vm.machine import JaguarVM
from repro.vm.security import Permissions, SecurityManager
from repro.vm.verifier import self_resolver, verify_class

CALLBACKS = dict(standard_callback_signatures())

LEAKY = (
    "def leak(x: int) -> int:\n"
    "    disguised: int = x * 31 + 7\n"
    "    logged: int = cb_log(disguised)\n"
    "    return logged\n"
)

CLEAN_LOGGER = (
    "def heartbeat(x: int) -> int:\n"
    "    ok: int = cb_log(1)\n"
    "    return ok\n"
)


def flows_of(source, name="C"):
    cls = compile_source(source, name, callbacks=CALLBACKS)
    resolver = self_resolver(cls, callbacks=CALLBACKS)
    verify_class(cls, resolver)
    # The resolver matters: without callback signatures the passes
    # cannot attribute per-argument taint (the classloader always
    # supplies one).
    return analyze_flows(cls, resolver=resolver)


def cert_of(source, func="f", name="C"):
    return flows_of(source, name=name).functions[func]


class TestTaint:
    def test_argument_reaches_return(self):
        cert = cert_of("def f(x: int) -> int:\n    return x + 1\n")
        assert cert.return_sources == ("arg0",)

    def test_constant_return_is_untainted(self):
        cert = cert_of("def f(x: int) -> int:\n    return 42\n")
        assert cert.return_sources == ()

    def test_callback_result_gets_cb_label(self):
        cert = cert_of(
            "def f(x: int) -> int:\n    return cb_lob_length(x)\n"
        )
        assert cert.return_sources == ("cb:cb_lob_length",)
        (flow,) = cert.callback_flows
        assert flow.callback == "cb_lob_length"
        assert flow.arg_sources == (("arg0",),)
        assert flow.tainted == ("arg0",)

    def test_untainted_callback_argument(self):
        cert = cert_of(CLEAN_LOGGER, func="heartbeat")
        (flow,) = cert.callback_flows
        assert flow.tainted == ()

    def test_taint_survives_arithmetic_disguise(self):
        cert = cert_of(LEAKY, func="leak")
        (flow,) = cert.callback_flows
        assert flow.callback == "cb_log"
        assert flow.tainted == ("arg0",)

    def test_substitution_through_intra_class_call(self):
        # ``outer`` passes its own parameter into ``inner``; the callee's
        # ``arg0`` labels must be rewritten into the caller's frame.
        flows = flows_of(
            "def inner(a: int) -> int:\n"
            "    return a\n"
            "def outer(y: int) -> int:\n"
            "    z: int = inner(y) + inner(3)\n"
            "    return z\n"
        )
        assert flows.functions["outer"].return_sources == ("arg0",)

    def test_callee_callback_flow_imported_into_caller(self):
        # ``inner`` logs its argument; the caller feeds it tuple data, so
        # the caller's certificate must show a tainted cb_log flow even
        # though the CALLBACK instruction lives in the callee.
        flows = flows_of(
            "def inner(a: int) -> int:\n"
            "    return cb_log(a)\n"
            "def outer(y: int) -> int:\n"
            "    return inner(y)\n"
        )
        outer = flows.functions["outer"]
        assert any(
            flow.callback == "cb_log" and "arg0" in flow.tainted
            for flow in outer.callback_flows
        )
        # A constant at the call site keeps the imported flow clean.
        clean = flows_of(
            "def inner(a: int) -> int:\n"
            "    return cb_log(a)\n"
            "def outer(y: int) -> int:\n"
            "    return inner(7)\n"
        ).functions["outer"]
        assert all(flow.tainted == () for flow in clean.callback_flows)


class TestEscape:
    def test_read_only_bytes_param(self):
        cert = cert_of("def f(data: bytes) -> int:\n    return len(data)\n")
        assert cert.readonly_params == (0,)

    def test_mutation_kills_readonly(self):
        cert = cert_of(
            "def f(data: bytes) -> int:\n"
            "    data[0] = 1\n"
            "    return len(data)\n"
        )
        assert cert.readonly_params == ()

    def test_returned_param_is_not_readonly(self):
        cert = cert_of("def f(data: bytes) -> bytes:\n    return data\n")
        assert cert.readonly_params == ()

    def test_scalar_params_are_not_listed(self):
        cert = cert_of("def f(x: int) -> int:\n    return x\n")
        assert cert.readonly_params == ()

    def test_local_allocation_is_arena_safe(self):
        cert = cert_of(
            "def f(n: int) -> int:\n"
            "    buf: bytes = bytearray(8)\n"
            "    return len(buf)\n"
        )
        assert cert.local_allocs
        assert cert.escaping_allocs == ()
        assert cert.arena_safe

    def test_returned_allocation_escapes(self):
        cert = cert_of(
            "def f(n: int) -> bytes:\n"
            "    buf: bytes = bytearray(8)\n"
            "    return buf\n"
        )
        assert cert.escaping_allocs
        assert not cert.arena_safe


class TestTrapSafety:
    def test_plain_arithmetic_is_trap_free(self):
        cert = cert_of("def f(x: int) -> int:\n    return x + 1\n")
        assert cert.trap_free

    def test_division_by_nonzero_constant_is_trap_free(self):
        cert = cert_of("def f(x: int) -> int:\n    return x // 3\n")
        assert cert.trap_free

    def test_division_by_argument_may_trap(self):
        cert = cert_of("def f(x: int) -> int:\n    return 10 // x\n")
        assert not cert.trap_free
        assert cert.trap_pcs

    def test_unproven_index_may_trap(self):
        cert = cert_of("def f(data: bytes) -> int:\n    return data[0]\n")
        assert not cert.trap_free


class TestRecursionFallback:
    def test_recursive_function_gets_conservative_certificate(self):
        cert = cert_of(
            "def f(x: int) -> int:\n"
            "    if x <= 0:\n"
            "        return 0\n"
            "    return f(x - 1) + 1\n"
        )
        assert "arg0" in cert.return_sources
        assert cert.readonly_params == ()
        assert not cert.trap_free

    def test_unverified_class_is_refused(self):
        cls = compile_source(
            "def f(x: int) -> int:\n    return x\n", "C",
            callbacks=CALLBACKS,
        )
        with pytest.raises(ValueError):
            analyze_flows(cls)


class TestSinkPolicy:
    def test_policy_constants(self):
        assert "cb_log" in SINK_CALLBACKS
        assert standard_sink_callbacks() == SINK_CALLBACKS
        assert not (SINK_CALLBACKS & READ_ONLY_CALLBACKS)

    def test_check_flows_denial_and_audit(self):
        flows = flows_of(LEAKY, name="udf_leak")
        manager = SecurityManager(
            class_name="udf_leak",
            permissions=Permissions(
                callbacks=frozenset({"cb_log"}),
                sinks=frozenset({"cb_log"}),
            ),
        )
        with pytest.raises(SecurityViolation) as exc:
            manager.check_flows(flows)
        assert "tuple-derived data" in str(exc.value)
        assert "cb_log" in str(exc.value)
        (record,) = [r for r in manager.audit_log if not r.allowed]
        assert record.action == "static:flows"
        assert "arg0" in record.target

    def test_check_flows_allows_clean_sink_and_records_it(self):
        flows = flows_of(CLEAN_LOGGER, name="udf_heartbeat")
        manager = SecurityManager(
            class_name="udf_heartbeat",
            permissions=Permissions(
                callbacks=frozenset({"cb_log"}),
                sinks=frozenset({"cb_log"}),
            ),
        )
        manager.check_flows(flows)
        (record,) = manager.audit_log
        assert record.action == "static:flows"
        assert record.allowed

    def test_non_sink_callbacks_are_not_gated(self):
        flows = flows_of(
            "def f(x: int) -> int:\n    return cb_lob_length(x)\n"
        )
        manager = SecurityManager(
            class_name="C",
            permissions=Permissions(
                callbacks=frozenset({"cb_lob_length"}),
                sinks=standard_sink_callbacks(),
            ),
        )
        manager.check_flows(flows)  # tainted, but not a sink: fine
        assert manager.audit_log == []


class TestMachineLoadGate:
    def _load(self, source, name):
        machine = JaguarVM(use_jit=False)
        cls = compile_source(source, f"udf_{name}", callbacks=CALLBACKS)
        return machine.load_udf(
            name,
            [cls.to_bytes()],
            permissions=Permissions(
                callbacks=frozenset({"cb_log"}),
                sinks=standard_sink_callbacks(),
            ),
        )

    def test_exfiltrating_udf_refused_at_load(self):
        with pytest.raises(SecurityViolation) as exc:
            self._load(LEAKY, "leak")
        assert "tuple-derived data" in str(exc.value)
        assert "rejected at load" in str(exc.value)

    def test_clean_logger_loads(self):
        loaded = self._load(CLEAN_LOGGER, "heartbeat")
        assert loaded is not None


class TestFlowsCli:
    def _write(self, tmp_path, name, text):
        path = tmp_path / name
        path.write_text(text)
        return path

    def test_refuse_and_accept_verdicts(self, tmp_path, capsys):
        leaky = self._write(tmp_path, "leaky.jag", LEAKY)
        clean = self._write(tmp_path, "clean.jag", CLEAN_LOGGER)
        assert flows_main([str(leaky), str(clean)]) == 0
        out = capsys.readouterr().out
        assert "verdict: refuse (static:flows)" in out
        assert "verdict: accept" in out
        assert "trap" in out  # describe() lines are printed

    def test_strict_fails_on_refusal(self, tmp_path, capsys):
        leaky = self._write(tmp_path, "leaky.jag", LEAKY)
        assert flows_main(["--strict", str(leaky)]) == 1
        clean = self._write(tmp_path, "clean.jag", CLEAN_LOGGER)
        assert flows_main(["--strict", str(clean)]) == 0

    def test_json_document(self, tmp_path, capsys):
        leaky = self._write(tmp_path, "leaky.jag", LEAKY)
        assert main(["flows", "--json", str(leaky)]) == 0
        doc = json.loads(capsys.readouterr().out)
        (entry,) = doc["classes"]
        assert entry["verdict"] == "refuse"
        assert entry["leaks"]
        cert = entry["functions"]["leak"]
        assert cert["callback_flows"][0]["callback"] == "cb_log"
        assert cert["features"]["callback_sites"] == 1
        assert doc["failures"] == []

    def test_unloadable_target_exits_two(self, tmp_path, capsys):
        bad = self._write(tmp_path, "bad.jag", "def broken(:::\n")
        assert flows_main([str(bad)]) == 2
        assert flows_main(["--strict", str(bad)]) == 2

    def test_examples_partition(self, capsys):
        examples = Path(__file__).resolve().parents[2] / "examples"
        assert flows_main([str(examples)]) == 0
        out = capsys.readouterr().out
        # The tree holds both the exfiltrating payload and clean ones.
        assert "verdict: refuse (static:flows)" in out
        assert "verdict: accept" in out


class TestReportCli:
    def test_single_document_covers_every_certificate(self, tmp_path, capsys):
        target = tmp_path / "probe.jag"
        target.write_text("def probe(data: bytes) -> int:\n    return len(data)\n")
        assert report_main([str(target)]) == 0
        doc = json.loads(capsys.readouterr().out)
        (entry,) = doc["classes"]
        report = entry["functions"]["probe"]
        assert set(report) >= {"effects", "bounds", "cost", "inline", "flows"}
        assert report["effects"]["pure"] is True
        assert report["bounds"]["fuel_bound"] == "3"
        assert report["cost"]["derived"] is True
        assert report["flows"]["readonly_params"] == [0]
        assert report["flows"]["trap_free"] is True
        assert entry["flow_verdict"] == "accept"

    def test_report_flags_leak(self, tmp_path, capsys):
        target = tmp_path / "leaky.jag"
        target.write_text(LEAKY)
        assert main(["report", str(target)]) == 0
        doc = json.loads(capsys.readouterr().out)
        (entry,) = doc["classes"]
        assert entry["flow_verdict"] == "refuse"

    def test_unloadable_target_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.jag"
        bad.write_text("def broken(:::\n")
        assert report_main([str(bad)]) == 2
