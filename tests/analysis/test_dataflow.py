"""The shared worklist dataflow engine: unit tests for both directions,
widening, the visit cap — and the migration-parity pin proving the
bounds certifier emits bit-identical ResourceCertificates now that its
fixpoint runs on the engine."""

import pytest

from repro.analysis import bounds, dataflow
from repro.analysis.bounds import certify_class
from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import (
    BACKWARD,
    FORWARD,
    DataflowProblem,
    block_transfer,
    solve,
)

from tests.analysis.test_bounds import (
    ARG_ALLOC,
    ARG_LOOP,
    BRANCHY,
    CALLER,
    CONST_ALLOC_LOOP,
    CONST_LOOP,
    DATA_LOOP,
    RECURSIVE,
    SPIN,
    STRAIGHT,
    compiled,
)

CORPUS = {
    "STRAIGHT": STRAIGHT,
    "CONST_LOOP": CONST_LOOP,
    "ARG_LOOP": ARG_LOOP,
    "DATA_LOOP": DATA_LOOP,
    "SPIN": SPIN,
    "CONST_ALLOC_LOOP": CONST_ALLOC_LOOP,
    "ARG_ALLOC": ARG_ALLOC,
    "CALLER": CALLER,
    "RECURSIVE": RECURSIVE,
    "BRANCHY": BRANCHY,
}


# ---------------------------------------------------------------------------
# Engine unit tests on toy lattices
# ---------------------------------------------------------------------------

def _cfg_for(source, func="f"):
    cls = compiled(source)
    fn = cls.functions[func]
    return fn, build_cfg(fn.code)


class TestForward:
    def test_straightline_reaches_every_block(self):
        fn, cfg = _cfg_for(STRAIGHT)
        # Trivial "reachable" lattice: state is True, join is or.
        result = solve(
            cfg,
            DataflowProblem(
                entry=True,
                transfer=lambda index, state: state,
                join=lambda a, b: a or b,
            ),
        )
        assert all(state is True for state in result.in_states)

    def test_loop_converges_by_join(self):
        # Instruction-count-mod-nothing lattice: the in-state of the
        # loop header is the join of the preheader and the back edge;
        # a monotone finite lattice converges without widening.
        fn, cfg = _cfg_for(CONST_LOOP)
        result = solve(
            cfg,
            DataflowProblem(
                entry=frozenset([0]),
                transfer=lambda index, state: state | frozenset([index]),
                join=lambda a, b: a | b,
            ),
        )
        headers = {loop.header for loop in cfg.loops}
        assert headers, "CONST_LOOP must contain a loop"
        for header in headers:
            # The header's fixpoint state includes its own body blocks,
            # proving the back edge was propagated.
            body = cfg.loops[0].body
            assert any(b in result.in_states[header] for b in body)

    def test_visit_cap_forces_top(self):
        # A deliberately non-converging transfer (always grows) must be
        # cut off by the visit cap + top coercion rather than diverge.
        fn, cfg = _cfg_for(CONST_LOOP)
        TOP = frozenset(["top"])
        result = solve(
            cfg,
            DataflowProblem(
                entry=frozenset(),
                transfer=lambda index, state: (
                    state
                    if state == TOP
                    else frozenset(state | {len(state)})
                ),
                join=lambda a, b: a | b,
                top=lambda state: TOP,
                widen_points=frozenset(),   # disable header widening
            ),
            max_visits=4,
        )
        assert TOP.issubset(
            set().union(*(s for s in result.in_states if s is not None))
        )

    def test_widening_applied_at_headers_only(self):
        fn, cfg = _cfg_for(CONST_LOOP)
        widened_at = []

        def widen(old, new):
            widened_at.append(True)
            return new | frozenset(["widened"])

        result = solve(
            cfg,
            DataflowProblem(
                entry=frozenset([0]),
                transfer=lambda index, state: state | frozenset([index]),
                join=lambda a, b: a | b,
                widen=widen,
            ),
        )
        assert widened_at, "widen hook never fired at the loop header"
        header = cfg.loops[0].header
        assert "widened" in result.in_states[header]

    def test_unreachable_blocks_stay_none(self):
        # Hand-built bytecode with a dead block the jump skips over.
        from repro.vm.opcodes import Instr, Op

        code = (
            Instr(Op.ICONST, 1),
            Instr(Op.JMP, 3),
            Instr(Op.POP, None),   # dead
            Instr(Op.RET, None),
        )
        cfg = build_cfg(code)
        result = solve(
            cfg,
            DataflowProblem(
                entry=True,
                transfer=lambda index, state: state,
                join=lambda a, b: a or b,
            ),
        )
        assert None in result.in_states


class TestBackward:
    def test_exit_reachability(self):
        # Backward "may reach an exit" analysis: every block of a
        # straight-line function can reach the RET block.
        fn, cfg = _cfg_for(BRANCHY)
        result = solve(
            cfg,
            DataflowProblem(
                entry=True,
                transfer=lambda index, state: state,
                join=lambda a, b: a or b,
                direction=BACKWARD,
            ),
        )
        assert all(state is True for state in result.in_states)

    def test_spin_body_cannot_reach_exit(self):
        fn, cfg = _cfg_for(SPIN)
        result = solve(
            cfg,
            DataflowProblem(
                entry=True,
                transfer=lambda index, state: state,
                join=lambda a, b: a or b,
                direction=BACKWARD,
            ),
        )
        # The infinite loop's blocks never reach an exit block, so the
        # backward propagation leaves them at None.
        assert None in result.in_states

    def test_liveness_style_union(self):
        # A block's backward in-state unions the facts of everything
        # downstream of it; the entry block sees all exit facts.
        fn, cfg = _cfg_for(BRANCHY)
        result = solve(
            cfg,
            DataflowProblem(
                entry=frozenset(),
                transfer=lambda index, state: state | frozenset([index]),
                join=lambda a, b: a | b,
                direction=BACKWARD,
            ),
        )
        entry_out = result.out_states[0]
        exits = {
            i for i, b in enumerate(cfg.blocks) if not b.successors
        }
        assert exits & entry_out

    def test_bad_direction_rejected(self):
        fn, cfg = _cfg_for(STRAIGHT)
        with pytest.raises(ValueError):
            solve(
                cfg,
                DataflowProblem(
                    entry=True,
                    transfer=lambda index, state: state,
                    join=lambda a, b: a or b,
                    direction="sideways",
                ),
            )


class TestBlockTransfer:
    def test_matches_manual_walk(self):
        fn, cfg = _cfg_for(STRAIGHT)
        seen = []

        def step(pc, ins, locals_, stack):
            seen.append(pc)

        transfer = block_transfer(cfg, fn.code, step)
        transfer(0, ((), ()))
        assert seen == list(cfg.blocks[0].pcs)


# ---------------------------------------------------------------------------
# Migration parity: bounds on the shared engine == the legacy fixpoint
# ---------------------------------------------------------------------------

class _LegacyCertifier(bounds._FunctionCertifier):
    """The pre-engine fixpoint loop, verbatim, as the golden reference."""

    def _fixpoint(self):
        headers = {loop.header for loop in self.cfg.loops}
        visits = [0] * len(self.cfg.blocks)
        self.in_states[0] = self.entry_state
        worklist = [0]
        while worklist:
            index = worklist.pop()
            state = self.in_states[index]
            if state is None:
                continue
            visits[index] += 1
            if visits[index] > bounds._MAX_VISITS:
                state = self._top_state(state)
                self.in_states[index] = state
            out = self._run_block(index, state)
            self.out_states[index] = out
            for succ in self.cfg.blocks[index].successors:
                old = self.in_states[succ]
                if old is None:
                    self.in_states[succ] = out
                    worklist.append(succ)
                    continue
                joined = self._join_state(old, out)
                if succ in headers:
                    joined = self._widen_state(old, joined)
                if joined != old:
                    self.in_states[succ] = joined
                    worklist.append(succ)


@pytest.mark.parametrize("label", sorted(CORPUS))
def test_certificates_bit_identical_to_legacy_fixpoint(label, monkeypatch):
    source = CORPUS[label]
    engine_certs = certify_class(compiled(source)).functions
    monkeypatch.setattr(bounds, "_FunctionCertifier", _LegacyCertifier)
    legacy_certs = certify_class(compiled(source)).functions
    assert set(engine_certs) == set(legacy_certs)
    for name in engine_certs:
        got, want = engine_certs[name], legacy_certs[name]
        assert got == want, f"{label}.{name} diverged from legacy fixpoint"
        # Bit-identical also in the human renderings consumed by
        # EXPLAIN and the lint CLI.
        assert repr(got) == repr(want)
        assert got.describe() == want.describe()


@pytest.mark.parametrize("label", sorted(CORPUS))
def test_fixpoint_states_identical_to_legacy(label):
    cls_a = compiled(CORPUS[label])
    cls_b = compiled(CORPUS[label])
    from repro.vm.verifier import self_resolver

    for name, func in cls_a.functions.items():
        new = bounds._FunctionCertifier(
            cls_a, func, self_resolver(cls_a), {}, None
        )
        new._fixpoint()
        old = _LegacyCertifier(
            cls_b, cls_b.functions[name], self_resolver(cls_b), {}, None
        )
        old._fixpoint()
        assert new.in_states == old.in_states
        assert new.out_states == old.out_states
