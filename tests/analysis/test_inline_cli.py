"""The ``python -m repro.analysis inline`` subcommand."""

from pathlib import Path

from repro.analysis.lint import inline_main, main

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def _write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text)
    return path


class TestInlineSubcommand:
    def test_inlinable_udf_prints_lifted_sql(self, tmp_path, capsys):
        target = _write(
            tmp_path, "plus1.jag",
            "def plus1(x: int) -> int:\n    return x + 1\n",
        )
        assert main(["inline", str(target)]) == 0
        out = capsys.readouterr().out
        assert "plus1: inlinable" in out
        assert "($1 + 1)" in out

    def test_branch_prints_case(self, tmp_path, capsys):
        target = _write(
            tmp_path, "clip.jag",
            "def clip(x: int) -> int:\n"
            "    if x < 0:\n"
            "        return 0\n"
            "    return x\n",
        )
        assert inline_main([str(target)]) == 0
        out = capsys.readouterr().out
        assert "CASE WHEN ($1 < 0) THEN 0 ELSE $1 END" in out

    def test_refused_udf_prints_reason_code(self, tmp_path, capsys):
        target = _write(
            tmp_path, "loop.jag",
            "def s(n: int) -> int:\n"
            "    total: int = 0\n"
            "    i: int = 0\n"
            "    while i < n:\n"
            "        total = total + i\n"
            "        i = i + 1\n"
            "    return total\n",
        )
        assert inline_main([str(target)]) == 0
        out = capsys.readouterr().out
        assert "s: refused (loop)" in out

    def test_callback_refusal(self, tmp_path, capsys):
        target = _write(
            tmp_path, "cb.jag",
            "def ping(x: int) -> int:\n"
            "    cb_noop()\n"
            "    return x\n",
        )
        assert inline_main([str(target)]) == 0
        out = capsys.readouterr().out
        assert "ping: refused (callback)" in out

    def test_directory_target_covers_examples(self, capsys):
        assert inline_main([str(EXAMPLES)]) == 0
        out = capsys.readouterr().out
        # At least one real example lifts and at least one refuses.
        assert "inlinable" in out
        assert "refused (" in out

    def test_load_failure_exits_two(self, tmp_path, capsys):
        bad = _write(tmp_path, "bad.jag", "def broken(:::\n")
        # Unanalyzable input is never a clean run: exit 2, strict or not
        # (the shared CLI exit-code convention).
        assert inline_main([str(bad)]) == 2
        assert inline_main(["--strict", str(bad)]) == 2
        out = capsys.readouterr().out
        assert "cannot load" in out

    def test_refusals_do_not_fail_strict(self, tmp_path):
        target = _write(
            tmp_path, "loop.jag",
            "def spin(n: int) -> int:\n"
            "    total: int = 0\n"
            "    i: int = 0\n"
            "    while i < n:\n"
            "        total = total + 1\n"
            "        i = i + 1\n"
            "    return total\n",
        )
        assert inline_main(["--strict", str(target)]) == 0

    def test_python_file_with_embedded_payload(self, tmp_path, capsys):
        target = _write(
            tmp_path, "app.py",
            'PAYLOAD = "def dbl(x: int) -> int:\\n    return x * 2"\n',
        )
        assert inline_main([str(target)]) == 0
        out = capsys.readouterr().out
        assert "dbl: inlinable" in out
        assert "($1 * 2)" in out
