"""Decompiler unit tests: bytecode -> expected expression trees.

Each sample compiles a JagScript body, verifies and analyzes it the way
the class loader would, and checks the decompiler's output structurally
(known bytecode maps to a known tree) and semantically (substituting
literal arguments into the template and evaluating the compiled SQL
expression matches invoking the VM).
"""

import pytest

from repro.analysis.decompile import (
    REASON_CALLBACK,
    REASON_LOOP,
    REASON_TOO_LARGE,
    REASON_UNSUPPORTED,
    InlineRefusal,
    InlineTemplate,
    decompile_class,
)
from repro.analysis.effects import analyze_class
from repro.sql import ast_nodes as A
from repro.sql.expressions import compile_expr
from repro.sql.types import RowSchema
from repro.vm.compiler import compile_source
from repro.vm.interpreter import run_function, single_class_context
from repro.vm.verifier import self_resolver, verify_class

CALLBACKS = {"cb_noop": ((), None)}

_EMPTY = RowSchema([])


def _vm_invoke(cls, name, args):
    return run_function(
        cls, cls.functions[name], args, single_class_context(cls)
    )


def _decompile(source, class_name="T"):
    cls = compile_source(source, class_name, callbacks=CALLBACKS)
    verify_class(cls, self_resolver(cls, callbacks=CALLBACKS))
    analyze_class(cls)
    return cls, decompile_class(cls)


def _template(source, name):
    __, results = _decompile(source)
    result = results[name]
    assert isinstance(result, InlineTemplate), result
    return result


def _substitute(expr, args):
    if isinstance(expr, A.ParamRef):
        return A.Literal(args[expr.index])
    import dataclasses

    if isinstance(expr, A.BinaryOp):
        return dataclasses.replace(
            expr,
            left=_substitute(expr.left, args),
            right=_substitute(expr.right, args),
        )
    if isinstance(expr, A.UnaryOp):
        return dataclasses.replace(
            expr, operand=_substitute(expr.operand, args)
        )
    if isinstance(expr, A.FuncCall):
        return dataclasses.replace(
            expr, args=tuple(_substitute(a, args) for a in expr.args)
        )
    if isinstance(expr, A.Case):
        return dataclasses.replace(
            expr,
            whens=tuple(
                (_substitute(c, args), _substitute(v, args))
                for c, v in expr.whens
            ),
            default=(
                _substitute(expr.default, args)
                if expr.default is not None else None
            ),
        )
    return expr


def _lifted_value(template, args):
    """Evaluate the lifted expression over literal arguments."""
    fn = compile_expr(_substitute(template.expr, list(args)), _EMPTY)
    return fn([])


class TestStraightLine:
    def test_plus1_is_binary_add(self):
        template = _template(
            "def plus1(x: int) -> int:\n    return x + 1", "plus1"
        )
        assert template.expr == A.BinaryOp("+", A.ParamRef(0), A.Literal(1))
        assert template.param_kinds == ("int",)
        assert template.ret_kind == "int"

    def test_constant_function_folds_to_literal(self):
        template = _template(
            "def k() -> int:\n    return 6 * 7", "k"
        )
        assert template.expr == A.Literal(42)

    def test_locals_thread_through(self):
        template = _template(
            "def f(x: int) -> int:\n"
            "    y: int = x * 2\n"
            "    z: int = y + 3\n"
            "    return z - x",
            "f",
        )
        assert _lifted_value(template, [10]) == 10 * 2 + 3 - 10

    def test_float_arithmetic(self):
        template = _template(
            "def scale(x: float) -> float:\n    return x * 2.0 + 0.5",
            "scale",
        )
        assert template.param_kinds == ("float",)
        assert _lifted_value(template, [3.0]) == 6.5

    def test_integer_division_lowers_to_vm_builtin(self):
        # SQL // floors; the VM truncates toward zero.  The template
        # must use the VM-faithful idiv builtin, never SQL division.
        template = _template(
            "def half(x: int) -> int:\n    return x // 2", "half"
        )
        assert template.expr == A.FuncCall(
            "idiv", (A.ParamRef(0), A.Literal(2))
        )
        assert _lifted_value(template, [-7]) == -3  # floor would give -4

    def test_modulo_truncates_toward_zero(self):
        template = _template(
            "def rem(x: int) -> int:\n    return x % 3", "rem"
        )
        assert _lifted_value(template, [-7]) == -1  # Python % gives 2


class TestBranches:
    def test_if_else_becomes_case(self):
        template = _template(
            "def clip(x: int) -> int:\n"
            "    if x < 0:\n"
            "        return 0\n"
            "    return x",
            "clip",
        )
        assert isinstance(template.expr, A.Case)
        ((cond, value),) = template.expr.whens
        assert cond == A.BinaryOp("<", A.ParamRef(0), A.Literal(0))
        assert value == A.Literal(0)
        assert template.expr.default == A.ParamRef(0)

    def test_nested_branches(self):
        source = (
            "def sign(x: int) -> int:\n"
            "    if x > 0:\n"
            "        return 1\n"
            "    if x < 0:\n"
            "        return 0 - 1\n"
            "    return 0"
        )
        template = _template(source, "sign")
        for value in (-5, 0, 9):
            expected = (value > 0) - (value < 0)
            assert _lifted_value(template, [value]) == expected


class TestLoopUnrolling:
    SOURCE = (
        "def tri(x: int) -> int:\n"
        "    total: int = 0\n"
        "    i: int = 0\n"
        "    while i < 5:\n"
        "        total = total + x + i\n"
        "        i = i + 1\n"
        "    return total"
    )

    def test_constant_trip_count_unrolls(self):
        template = _template(self.SOURCE, "tri")
        assert _lifted_value(template, [7]) == 5 * 7 + 10

    def test_unrolled_matches_vm(self):
        cls, results = _decompile(self.SOURCE)
        template = results["tri"]
        for value in (-3, 0, 11):
            vm = _vm_invoke(cls, "tri", [value])
            assert _lifted_value(template, [value]) == vm


class TestIntraClassCalls:
    def test_callee_inlines(self):
        source = (
            "def twice(x: int) -> int:\n"
            "    return x * 2\n"
            "def f(x: int) -> int:\n"
            "    return twice(x) + twice(x + 1)"
        )
        template = _template(source, "f")
        assert _lifted_value(template, [10]) == 20 + 22


class TestRefusals:
    def _refusal(self, source, name):
        __, results = _decompile(source)
        result = results[name]
        assert isinstance(result, InlineRefusal), result
        return result

    def test_symbolic_loop_refuses_loop(self):
        refusal = self._refusal(
            "def s(n: int) -> int:\n"
            "    total: int = 0\n"
            "    i: int = 0\n"
            "    while i < n:\n"
            "        total = total + i\n"
            "        i = i + 1\n"
            "    return total",
            "s",
        )
        assert refusal.reason == REASON_LOOP

    def test_recursion_refuses_loop(self):
        refusal = self._refusal(
            "def fact(n: int) -> int:\n"
            "    if n <= 1:\n"
            "        return 1\n"
            "    return n * fact(n - 1)",
            "fact",
        )
        assert refusal.reason == REASON_LOOP

    def test_callback_refuses_callback(self):
        refusal = self._refusal(
            "def ping(x: int) -> int:\n"
            "    cb_noop()\n"
            "    return x",
            "ping",
        )
        assert refusal.reason == REASON_CALLBACK
        assert "cb_noop" in refusal.detail

    def test_native_refuses_unsupported(self):
        refusal = self._refusal(
            "def root(x: float) -> float:\n"
            "    return sqrt(x)",
            "root",
        )
        assert refusal.reason == REASON_UNSUPPORTED
        assert "sqrt" in refusal.detail

    def test_array_arguments_refuse(self):
        refusal = self._refusal(
            "def first(data: bytes) -> int:\n"
            "    return data[0]",
            "first",
        )
        assert refusal.reason == REASON_UNSUPPORTED

    def test_giant_expression_refuses_too_large(self):
        terms = " + ".join(
            f"x * {i}" for i in range(1, 200)
        )
        refusal = self._refusal(
            f"def big(x: int) -> int:\n    return {terms}", "big"
        )
        assert refusal.reason == REASON_TOO_LARGE

    def test_describe_mentions_reason(self):
        refusal = InlineRefusal("f", REASON_LOOP, "recursive")
        assert "loop" in refusal.describe()
        assert "recursive" in refusal.describe()


class TestVMParity:
    """Lifted expressions compute the same bits the interpreter does."""

    SAMPLES = [
        ("def f(x: int) -> int:\n    return (x + 3) * (x - 2)",
         "f", [(-10,), (0,), (17,)]),
        ("def f(x: int, y: int) -> int:\n"
         "    if x > y:\n"
         "        return x - y\n"
         "    return y - x",
         "f", [(3, 9), (9, 3), (4, 4)]),
        ("def f(x: float) -> float:\n    return x / 4.0 - 1.5",
         "f", [(10.0,), (-2.0,)]),
        ("def f(x: int) -> bool:\n    return x % 2 == 0 and x > 0",
         "f", [(-4,), (3,), (8,)]),
        ("def f(s: str) -> int:\n    return len(s) + 1",
         "f", [("",), ("abc",)]),
    ]

    @pytest.mark.parametrize("source,name,argsets", SAMPLES)
    def test_matches_interpreter(self, source, name, argsets):
        cls, results = _decompile(source)
        template = results[name]
        assert isinstance(template, InlineTemplate), template
        for args in argsets:
            assert _lifted_value(template, args) == _vm_invoke(
                cls, name, list(args)
            )
