"""Resource-bound certification: the abstract interpreter, its consumers
(load gate, metering elision, admission control, optimizer, EXPLAIN),
and the ``python -m repro.analysis bounds`` CLI."""

import threading

import pytest

from repro.analysis.bounds import certify_class, constant_bound
from repro.analysis.intervals import Bound, Interval, describe_bound
from repro.analysis.lint import main as lint_main
from repro.core.callbacks import standard_callback_signatures
from repro.errors import (
    AccountRevoked,
    AdmissionRefused,
    FuelExhausted,
    SecurityViolation,
)
from repro.vm.compiler import compile_source
from repro.vm.machine import JaguarVM
from repro.vm.resources import DEFAULT_POLICY, QuotaPolicy
from repro.vm.security import Permissions, SecurityManager
from repro.vm.threadgroups import ThreadGroup, ThreadGroupRegistry
from repro.vm.verifier import self_resolver, verify_class


def compiled(source, name="T"):
    callbacks = dict(standard_callback_signatures())
    cls = compile_source(source, name, callbacks=callbacks)
    verify_class(cls, self_resolver(cls, callbacks=callbacks))
    return cls


def certified(source, func="f", name="T"):
    return certify_class(compiled(source, name)).functions[func]


STRAIGHT = "def f(x: int) -> int:\n    return x + x\n"

CONST_LOOP = (
    "def f(x: int) -> int:\n"
    "    s: int = 0\n"
    "    for i in range(10):\n"
    "        s = s + x\n"
    "    return s\n"
)

ARG_LOOP = (
    "def f(n: int) -> int:\n"
    "    s: int = 0\n"
    "    for i in range(n):\n"
    "        s = s + 1\n"
    "    return s\n"
)

DATA_LOOP = (
    "def f(data: bytes) -> int:\n"
    "    s: int = 0\n"
    "    for i in range(len(data)):\n"
    "        s = s + data[i]\n"
    "    return s\n"
)

SPIN = (
    "def f(x: int) -> int:\n"
    "    while True:\n"
    "        pass\n"
)

CONST_ALLOC_LOOP = (
    "def f(x: int) -> int:\n"
    "    s: int = 0\n"
    "    for i in range(1000):\n"
    "        buf: bytes = bytearray(1048576)\n"
    "        s = s + len(buf)\n"
    "    return s\n"
)

ARG_ALLOC = (
    "def f(x: int) -> int:\n"
    "    buf: bytes = bytearray(x)\n"
    "    return len(buf)\n"
)

CALLER = (
    "def helper(x: int) -> int:\n"
    "    s: int = 0\n"
    "    for i in range(5):\n"
    "        s = s + x\n"
    "    return s\n"
    "def f(x: int) -> int:\n"
    "    return helper(x) + helper(x)\n"
)

RECURSIVE = (
    "def f(x: int) -> int:\n"
    "    if x <= 0:\n"
    "        return 0\n"
    "    return f(x - 1) + 1\n"
)

# Bound takes the then-branch worst case; x = 0 executes a handful of
# instructions.  The gap between the two is what the fallback tests use.
BRANCHY = (
    "def f(x: int) -> int:\n"
    "    s: int = 0\n"
    "    if x > 0:\n"
    "        for i in range(1000):\n"
    "            s = s + 1\n"
    "    return s\n"
)


# ---------------------------------------------------------------------------
# Abstract domains
# ---------------------------------------------------------------------------

class TestInterval:
    def test_const_arithmetic(self):
        v = Interval.const(3).add(Interval.const(4))
        assert v.lo == 7 and v.hi == 7

    def test_mul(self):
        v = Interval.const(3).mul(Interval.const(-2))
        assert v.lo == -6 and v.hi == -6

    def test_join_spans_both(self):
        v = Interval.const(1).join(Interval.const(5))
        assert v.lo == 1 and v.hi == 5

    def test_widen_blows_moving_bounds_to_top(self):
        grown = Interval.const(1).join(Interval.const(2))
        widened = Interval.const(1).widen(grown)
        assert widened.hi == float("inf")

    def test_top_is_top(self):
        assert Interval.top().is_top


class TestBound:
    def test_polynomial_evaluation(self):
        b = Bound.atom("len0", 2.0) + Bound.const(3.0)
        assert b.evaluate(lambda atom: 5.0) == 13.0

    def test_product_of_atoms(self):
        b = Bound.atom("len0") * Bound.atom("pos1")
        assert b.evaluate(lambda atom: 4.0) == 16.0

    def test_join_is_pointwise_max(self):
        j = (Bound.const(3.0)).join(Bound.const(8.0))
        assert j.evaluate(lambda atom: 0.0) == 8.0

    def test_as_python_renders_expression(self):
        b = Bound.atom("len0", 3.0) + Bound.const(2.0)
        expr = b.as_python(lambda atom: "len(L0)")
        assert eval(expr, {"L0": b"abcd"}) == 14

    def test_describe_top(self):
        assert describe_bound(None) == "⊤"

    def test_constant_bound(self):
        assert constant_bound(Bound.const(42.0)) == 42
        assert constant_bound(Bound.atom("len0")) is None
        assert constant_bound(None) is None


# ---------------------------------------------------------------------------
# The certifier
# ---------------------------------------------------------------------------

class TestCertify:
    def test_straight_line_is_exactly_bounded(self):
        cert = certified(STRAIGHT)
        assert cert.fully_bounded
        assert constant_bound(cert.fuel_bound) == cert.min_fuel
        assert constant_bound(cert.mem_bound) == 0
        assert cert.depth_bound == 1

    def test_constant_loop_trip_bound(self):
        cert = certified(CONST_LOOP)
        assert cert.fully_bounded
        assert len(cert.loops) == 1
        loop = cert.loops[0]
        assert constant_bound(loop.trip_bound) == 10
        assert loop.trip_min == 10
        assert constant_bound(cert.fuel_bound) >= 10

    def test_argument_loop_is_symbolic(self):
        cert = certified(ARG_LOOP)
        assert cert.fully_bounded
        assert not cert.fuel_bound.is_constant
        assert cert.fuel_charge([100]) > cert.fuel_charge([0])
        # Trip count could be zero, so the minimum is input-free.
        assert cert.min_fuel <= cert.fuel_charge([0])

    def test_data_loop_scales_with_input_length(self):
        cert = certified(DATA_LOOP)
        assert cert.fully_bounded
        assert "len0" in cert.fuel_bound.atoms
        assert cert.fuel_charge([b"12345678"]) > cert.fuel_charge([b""])

    def test_spin_loop_is_unbounded_with_zero_minimum(self):
        cert = certified(SPIN)
        assert not cert.fully_bounded
        assert cert.fuel_bound is None
        assert cert.fuel_charge([1]) is None
        assert cert.min_fuel < 100

    def test_constant_allocation_loop_has_provable_minimum(self):
        cert = certified(CONST_ALLOC_LOOP)
        assert cert.min_memory >= 1000 * 1048576
        assert constant_bound(cert.mem_bound) >= cert.min_memory

    def test_argument_allocation_has_no_minimum(self):
        cert = certified(ARG_ALLOC)
        assert cert.min_memory == 0
        assert cert.mem_bound is None or not cert.mem_bound.is_constant

    def test_call_costs_are_transitive(self):
        certs = certify_class(compiled(CALLER)).functions
        helper, caller = certs["helper"], certs["f"]
        # f pays for both helper activations on top of its own code.
        assert caller.fuel_charge([1]) > 2 * helper.fuel_charge([1])
        # The local bound (CALL = 1) is what the JIT charges per method.
        assert caller.local_fuel_charge([1]) < caller.fuel_charge([1])
        assert caller.depth_bound == helper.depth_bound + 1

    def test_recursion_is_top(self):
        cert = certified(RECURSIVE)
        assert cert.fuel_bound is None
        assert cert.depth_bound is None

    def test_certificates_attach_to_class(self):
        cls = compiled(CONST_LOOP)
        rollup = certify_class(cls)
        assert cls.certificates is rollup
        assert cls.functions["f"].certificate is rollup.functions["f"]

    def test_describe_mentions_bounds(self):
        text = certified(DATA_LOOP).describe()
        assert "fuel≤" in text and "mem≤" in text and "min_fuel=" in text


# ---------------------------------------------------------------------------
# QuotaPolicy (satellite: no more mutated globals)
# ---------------------------------------------------------------------------

class TestQuotaPolicy:
    def test_overrides_derive_without_mutating(self):
        derived = DEFAULT_POLICY.with_overrides(fuel=1234)
        assert derived.fuel == 1234
        assert derived.memory == DEFAULT_POLICY.memory
        assert DEFAULT_POLICY.fuel != 1234

    def test_rejects_nonpositive_quotas(self):
        with pytest.raises(ValueError):
            QuotaPolicy(fuel=0)

    def test_account_is_funded_to_policy(self):
        account = QuotaPolicy(fuel=77, memory=88, max_depth=9).account()
        assert account.fuel == 77
        assert account.memory == 88
        assert account.max_depth == 9

    def test_vm_policy_not_touched_by_per_udf_override(self):
        vm = JaguarVM(use_jit=False)
        vm.load_udf("tiny", [compiled(STRAIGHT, "A")], fuel=5000)
        assert vm.policy.fuel == DEFAULT_POLICY.fuel
        assert vm._udfs["tiny"].policy.fuel == 5000


class TestAccountRevoked:
    def test_revoked_account_raises_distinct_error(self):
        account = DEFAULT_POLICY.account()
        account.revoke()
        with pytest.raises(AccountRevoked):
            account.out_of_fuel()

    def test_account_revoked_is_fuel_exhausted(self):
        assert issubclass(AccountRevoked, FuelExhausted)


# ---------------------------------------------------------------------------
# Layer 1: the load gate
# ---------------------------------------------------------------------------

class TestLoadGate:
    def test_provable_overconsumption_rejected_at_load(self):
        vm = JaguarVM(use_jit=False)
        with pytest.raises(SecurityViolation, match="rejected at load"):
            vm.load_udf(
                "bomb", [compiled(CONST_ALLOC_LOOP, "Bomb")],
                memory=64 * 1024 * 1024,
            )

    def test_audit_log_records_static_bounds(self):
        rollup = certify_class(compiled(CONST_ALLOC_LOOP, "Bomb"))
        security = SecurityManager(
            class_name="Bomb", permissions=Permissions.none()
        )
        with pytest.raises(SecurityViolation):
            security.check_resource_bounds(
                rollup, fuel=10**9, memory=64 * 1024 * 1024
            )
        denied = [r for r in security.audit_log
                  if r.action == "static:bounds" and not r.allowed]
        assert denied and "min_mem" in denied[0].target

    def test_input_dependent_consumption_is_admitted(self):
        vm = JaguarVM(use_jit=False)
        udf = vm.load_udf(
            "stretchy", [compiled(ARG_ALLOC, "Stretchy")],
            memory=1024,
        )
        # Proven minimum is zero, so the gate admits it; the dynamic
        # memory meter still kills an over-quota run.
        from repro.errors import MemoryQuotaExceeded
        with pytest.raises(MemoryQuotaExceeded):
            udf.invoke("f", [1_000_000])

    def test_generous_quota_admits_the_same_class(self):
        vm = JaguarVM(use_jit=False)
        udf = vm.load_udf(
            "big", [compiled(CONST_ALLOC_LOOP, "Big")],
            fuel=10**9, memory=2 * 1000 * 1048576,
        )
        assert udf.main_class.certificates is not None


# ---------------------------------------------------------------------------
# Layer 2: metering elision (interpreter + JIT)
# ---------------------------------------------------------------------------

def load_variant(vm, source, name, strip):
    udf = vm.load_udf(name, [compiled(source, name.title())])
    if strip:
        for func in udf.main_class.functions.values():
            func.certificate = None
        udf.main_class.certificates = None
    return udf


class TestInterpreterElision:
    def test_certified_run_prepays_the_bound(self):
        vm = JaguarVM(use_jit=False)
        udf = load_variant(vm, DATA_LOOP, "certified", strip=False)
        cert = udf.main_class.functions["f"].certificate
        ctx = udf.make_context()
        assert udf.invoke("f", [b"abc"], context=ctx) == sum(b"abc")
        used = ctx.account.fuel_limit - ctx.account.fuel
        assert used == cert.fuel_charge([b"abc"])

    def test_stripped_run_meters_dynamically(self):
        vm = JaguarVM(use_jit=False)
        bounded = load_variant(vm, BRANCHY, "bounded", strip=False)
        dynamic = load_variant(vm, BRANCHY, "dynamic", strip=True)
        cert = bounded.main_class.functions["f"].certificate
        ctx = dynamic.make_context()
        assert dynamic.invoke("f", [0], context=ctx) == 0
        used = ctx.account.fuel_limit - ctx.account.fuel
        # The not-taken branch costs far less than the certified worst
        # case the elided mode would have prepaid.
        assert used < cert.fuel_charge([0])

    def test_tight_quota_falls_back_to_dynamic_metering(self):
        vm = JaguarVM(use_jit=False)
        udf = vm.load_udf(
            "tight", [compiled(BRANCHY, "Tight")], fuel=100
        )
        cert = udf.main_class.functions["f"].certificate
        assert cert.fuel_charge([0]) > 100  # bound exceeds the quota...
        ctx = udf.make_context()
        assert udf.invoke("f", [0], context=ctx) == 0  # ...actual fits
        used = ctx.account.fuel_limit - ctx.account.fuel
        assert 0 < used <= 100

    def test_tight_quota_still_kills_the_expensive_path(self):
        vm = JaguarVM(use_jit=False)
        udf = vm.load_udf(
            "tight2", [compiled(BRANCHY, "Tight2")], fuel=100
        )
        with pytest.raises(FuelExhausted):
            udf.invoke("f", [1])

    def test_revoked_account_dies_despite_certificate(self):
        vm = JaguarVM(use_jit=False)
        udf = load_variant(vm, CONST_LOOP, "revokable", strip=False)
        ctx = udf.make_context()
        ctx.account.revoke()
        with pytest.raises(AccountRevoked):
            udf.invoke("f", [1], context=ctx)


class TestJitElision:
    def test_certified_and_stripped_agree(self):
        vm = JaguarVM(use_jit=True)
        certified_udf = load_variant(vm, DATA_LOOP, "jcert", strip=False)
        dynamic_udf = load_variant(vm, DATA_LOOP, "jdyn", strip=True)
        data = bytes(range(50))
        assert (certified_udf.invoke("f", [data])
                == dynamic_udf.invoke("f", [data]) == sum(data))

    def test_certified_jit_charges_the_method_bound(self):
        vm = JaguarVM(use_jit=True)
        udf = load_variant(vm, DATA_LOOP, "jpay", strip=False)
        cert = udf.main_class.functions["f"].certificate
        ctx = udf.make_context()
        udf.invoke("f", [b"xyz"], context=ctx)
        used = ctx.account.fuel_limit - ctx.account.fuel
        assert used == cert.local_fuel_charge([b"xyz"])

    def test_revoked_account_dies_despite_certificate(self):
        vm = JaguarVM(use_jit=True)
        udf = load_variant(vm, CONST_LOOP, "jrevoke", strip=False)
        ctx = udf.make_context()
        ctx.account.revoke()
        with pytest.raises(AccountRevoked):
            udf.invoke("f", [1], context=ctx)


# ---------------------------------------------------------------------------
# Layer 3: thread-group admission control
# ---------------------------------------------------------------------------

class TestAdmissionControl:
    def test_reserve_within_budget(self):
        group = ThreadGroup("g", fuel_budget=100)
        group.reserve(60, 0)
        assert group.reserved["fuel"] == 60
        group.release(60, 0)
        assert group.reserved["fuel"] == 0

    def test_overcommit_refused(self):
        group = ThreadGroup("g", fuel_budget=100)
        group.reserve(60, 0)
        with pytest.raises(AdmissionRefused):
            group.reserve(50, 0)

    def test_claim_over_total_budget_refused_even_with_wait(self):
        group = ThreadGroup("g", fuel_budget=100)
        with pytest.raises(AdmissionRefused, match="outright"):
            group.reserve(150, 0, wait=True, timeout=5.0)

    def test_wait_queues_until_release(self):
        group = ThreadGroup("g", fuel_budget=100)
        group.reserve(80, 0)
        admitted = threading.Event()

        def waiter():
            group.reserve(50, 0, wait=True, timeout=5.0)
            admitted.set()

        t = threading.Thread(target=waiter)
        t.start()
        assert not admitted.wait(0.05)
        group.release(80, 0)
        assert admitted.wait(5.0)
        t.join()

    def test_wait_timeout_refused(self):
        group = ThreadGroup("g", fuel_budget=100)
        group.reserve(80, 0)
        with pytest.raises(AdmissionRefused):
            group.reserve(50, 0, wait=True, timeout=0.05)

    def test_killed_group_refuses_with_security_violation(self):
        group = ThreadGroup("g", fuel_budget=100)
        group.kill()
        with pytest.raises(SecurityViolation):
            group.reserve(10, 0)

    def test_memory_budget_enforced_independently(self):
        group = ThreadGroup("g", memory_budget=1000)
        group.reserve(10**9, 900)  # no fuel budget -> fuel unconstrained
        with pytest.raises(AdmissionRefused):
            group.reserve(0, 200)

    def test_registry_set_budget(self):
        registry = ThreadGroupRegistry()
        group = registry.set_budget("udfx", fuel=42, memory=84)
        assert group is registry.group_for("udfx")
        assert group.fuel_budget == 42 and group.memory_budget == 84


class TestAdmissionEndToEnd:
    def test_unbounded_udf_refused_when_budget_is_tight(self, db):
        db.execute("CREATE TABLE t (v INT)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute(
            "CREATE FUNCTION spin(int) RETURNS int LANGUAGE JAGUAR "
            "DESIGN SANDBOX AS 'def spin(x: int) -> int:\n"
            "    while True:\n        pass\n'"
        )
        # No certificate bound -> the claim is the full account quota,
        # which cannot fit a 10k budget; refused before the UDF runs.
        db.thread_groups.set_budget("spin", fuel=10_000)
        with pytest.raises(AdmissionRefused):
            db.query("SELECT spin(v) FROM t")

    def test_certified_udf_admitted_under_same_budget(self, db):
        db.execute("CREATE TABLE t (v INT)")
        db.execute("INSERT INTO t VALUES (3)")
        db.execute(
            "CREATE FUNCTION small(int) RETURNS int LANGUAGE JAGUAR "
            "DESIGN SANDBOX AS 'def small(x: int) -> int:\n"
            "    return x + x'"
        )
        db.thread_groups.set_budget("small", fuel=10_000)
        assert db.query("SELECT small(v) FROM t") == [(6,)]
        # The reservation is returned after the query.
        assert db.thread_groups.group_for("small").reserved["fuel"] == 0


# ---------------------------------------------------------------------------
# Layer 4: optimizer + EXPLAIN, and the CREATE FUNCTION gate
# ---------------------------------------------------------------------------

class TestSqlIntegration:
    def test_explain_shows_bounded_annotation(self, db):
        db.execute("CREATE TABLE t (v INT)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute(
            "CREATE FUNCTION sq(int) RETURNS int LANGUAGE JAGUAR "
            "DESIGN SANDBOX AS 'def sq(x: int) -> int:\n    return x * x'"
        )
        text = "\n".join(
            row[0] for row in
            db.query("EXPLAIN SELECT v FROM t WHERE sq(v) > 0")
        )
        assert "bounded(fuel≤" in text and "mem≤" in text

    def test_certified_constant_bound_caps_derived_cost(self, db):
        db.execute(
            "CREATE FUNCTION sq(int) RETURNS int LANGUAGE JAGUAR "
            "DESIGN SANDBOX AS 'def sq(x: int) -> int:\n    return x * x'"
        )
        definition = db.registry.get("sq")
        fuel_const = constant_bound(definition.certificate.fuel_bound)
        assert fuel_const is not None
        assert definition.cost.cost_per_call <= max(float(fuel_const), 1.0)

    def test_alloc_bomb_rejected_at_create_function(self, db):
        with pytest.raises(SecurityViolation, match="provably allocates"):
            db.execute(
                "CREATE FUNCTION bomb(int) RETURNS int LANGUAGE JAGUAR "
                "DESIGN SANDBOX AS 'def bomb(x: int) -> int:\n"
                "    s: int = 0\n"
                "    for i in range(1000000):\n"
                "        buf: bytes = bytearray(1048576)\n"
                "        s = s + len(buf)\n"
                "    return s'"
            )
        assert not db.registry.has("bomb")


# ---------------------------------------------------------------------------
# The bounds CLI
# ---------------------------------------------------------------------------

class TestBoundsCli:
    def test_prints_certificates(self, tmp_path, capsys):
        target = tmp_path / "ok.jag"
        target.write_text(DATA_LOOP)
        assert lint_main(["bounds", str(target)]) == 0
        out = capsys.readouterr().out
        assert "fuel≤" in out and "trips" in out

    def test_unbounded_function_reported_not_failed(self, tmp_path, capsys):
        target = tmp_path / "spin.jag"
        target.write_text(SPIN)
        assert lint_main(["bounds", str(target), "--strict"]) == 0
        assert "fuel≤⊤" in capsys.readouterr().out

    def test_unloadable_target_exits_two(self, tmp_path):
        target = tmp_path / "broken.jag"
        target.write_text("def f(:\n")
        # The shared CLI convention: load/verify failures exit 2 with or
        # without --strict.
        assert lint_main(["bounds", str(target)]) == 2
        assert lint_main(["bounds", str(target), "--strict"]) == 2

    def test_directory_target_expands_members(self, tmp_path, capsys):
        (tmp_path / "a.jag").write_text(STRAIGHT)
        (tmp_path / "b.jag").write_text(CONST_LOOP)
        assert lint_main(["bounds", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "a.jag" in out and "b.jag" in out


# ---------------------------------------------------------------------------
# Satellite: lint CLI exit codes (PR 1's CLI, previously untested)
# ---------------------------------------------------------------------------

class TestLintCliExitCodes:
    def test_strict_clean_input_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "clean.jag"
        target.write_text(STRAIGHT)
        assert lint_main([str(target), "--strict"]) == 0
        assert "clean: no findings" in capsys.readouterr().out

    def test_strict_warning_only_input_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "warn.jag"
        target.write_text(CONST_ALLOC_LOOP)
        assert lint_main([str(target), "--strict"]) == 0
        assert "alloc-in-loop" in capsys.readouterr().out

    def test_strict_error_input_exits_one(self, tmp_path, capsys):
        target = tmp_path / "err.jag"
        target.write_text(SPIN)
        assert lint_main([str(target), "--strict"]) == 1
        assert "unbounded-loop" in capsys.readouterr().out

    def test_error_input_without_strict_exits_zero(self, tmp_path):
        target = tmp_path / "err.jag"
        target.write_text(SPIN)
        assert lint_main([str(target)]) == 0

    def test_unloadable_input_exits_two(self, tmp_path):
        target = tmp_path / "broken.jag"
        target.write_text("def f(:\n")
        assert lint_main([str(target), "--strict"]) == 2
