"""CFG construction and natural-loop detection on hand-built code."""

import pytest

from repro.analysis import build_cfg
from repro.vm.compiler import compile_source
from repro.vm.opcodes import Instr, Op


def instrs(*pairs):
    return tuple(Instr(op, arg) for op, arg in pairs)


class TestBasicBlocks:
    def test_straight_line_is_one_block(self):
        cfg = build_cfg(instrs(
            (Op.ICONST, 1), (Op.ICONST, 2), (Op.IADD, None), (Op.RET, None),
        ))
        assert len(cfg.blocks) == 1
        assert cfg.blocks[0].pcs == range(0, 4)
        assert cfg.loops == []
        assert cfg.max_loop_depth == 0

    def test_branch_splits_blocks(self):
        # 0: JZ 3 / 1: ICONST / 2: RET / 3: ICONST / 4: RET
        cfg = build_cfg(instrs(
            (Op.JZ, 3), (Op.ICONST, 1), (Op.RET, None),
            (Op.ICONST, 2), (Op.RET, None),
        ))
        assert [block.start for block in cfg.blocks] == [0, 1, 3]
        entry = cfg.blocks[0]
        assert sorted(entry.successors) == [1, 2]
        # RET terminates: no fallthrough edge out of block 1.
        assert cfg.blocks[1].successors == []
        assert cfg.loops == []

    def test_empty_code_rejected(self):
        with pytest.raises(ValueError):
            build_cfg(())

    def test_block_of_maps_every_pc(self):
        cfg = build_cfg(instrs(
            (Op.JZ, 2), (Op.RET, None), (Op.RET, None),
        ))
        assert len(cfg.block_of) == 3
        for pc, block_index in enumerate(cfg.block_of):
            assert pc in cfg.blocks[block_index].pcs


class TestLoopDetection:
    def test_bounded_loop(self):
        # 0: ICONST / 1: JZ 5 (exit) / 2: ICONST / 3: POP / 4: JMP 0
        # 5: ICONST / 6: RET
        cfg = build_cfg(instrs(
            (Op.ICONST, 10), (Op.JZ, 5),
            (Op.ICONST, 1), (Op.POP, None), (Op.JMP, 0),
            (Op.ICONST, 0), (Op.RET, None),
        ))
        assert len(cfg.loops) == 1
        loop = cfg.loops[0]
        assert not loop.unbounded
        assert cfg.blocks[loop.header].start == 0
        # Everything in the loop is at depth 1, the tail at depth 0.
        assert cfg.loop_depth[:5] == [1, 1, 1, 1, 1]
        assert cfg.loop_depth[5:] == [0, 0]

    def test_unbounded_self_loop(self):
        cfg = build_cfg(instrs((Op.JMP, 0),))
        assert len(cfg.loops) == 1
        assert cfg.loops[0].unbounded

    def test_nested_loops_and_depth(self):
        # outer: 0: JZ 6 / inner: 1: JZ 4 / 2: ICONST / 3: JMP 1
        #        4: ICONST / 5: JMP 0 / 6: RET
        cfg = build_cfg(instrs(
            (Op.JZ, 6), (Op.JZ, 4), (Op.ICONST, 0), (Op.JMP, 1),
            (Op.ICONST, 0), (Op.JMP, 0), (Op.RET, None),
        ))
        assert len(cfg.loops) == 2
        assert all(not loop.unbounded for loop in cfg.loops)
        headers = sorted(cfg.blocks[loop.header].start for loop in cfg.loops)
        assert headers == [0, 1]
        assert cfg.max_loop_depth == 2
        # The inner body sits inside both loops; the exit block in none.
        assert cfg.depth_at(2) == 2
        assert cfg.depth_at(0) == 1
        assert cfg.depth_at(6) == 0

    def test_two_back_edges_one_header_merge(self):
        # Both JMP 0s target the same header: one merged loop, not two.
        cfg = build_cfg(instrs(
            (Op.JZ, 3), (Op.ICONST, 0), (Op.JMP, 0),
            (Op.JZ, 6), (Op.JMP, 0),
            (Op.ICONST, 0), (Op.RET, None),
        ))
        assert len(cfg.loops) == 1
        body_pcs = {
            pc
            for block_index in cfg.loops[0].body
            for pc in cfg.blocks[block_index].pcs
        }
        assert {0, 1, 2, 3, 4} <= body_pcs

    def test_loop_with_no_exit_after_merge(self):
        # 0: JZ 2 / 1: JMP 0 / 2: JMP 0 — every successor stays inside.
        cfg = build_cfg(instrs((Op.JZ, 2), (Op.JMP, 0), (Op.JMP, 0)))
        assert len(cfg.loops) == 1
        assert cfg.loops[0].unbounded


class TestCompiledSources:
    """The compiler's loop shapes are recognized, not just synthetic ones."""

    def test_while_true_is_unbounded(self):
        cls = compile_source(
            "def spin() -> int:\n    while True:\n        pass\n", "S"
        )
        cfg = build_cfg(cls.functions["spin"].code)
        assert any(loop.unbounded for loop in cfg.loops)

    def test_range_loop_is_bounded(self):
        cls = compile_source(
            "def total(n: int) -> int:\n"
            "    s: int = 0\n"
            "    for i in range(n):\n"
            "        s = s + i\n"
            "    return s\n",
            "T",
        )
        cfg = build_cfg(cls.functions["total"].code)
        assert len(cfg.loops) == 1
        assert not cfg.loops[0].unbounded

    def test_nested_source_loops(self):
        cls = compile_source(
            "def grid(n: int) -> int:\n"
            "    s: int = 0\n"
            "    for i in range(n):\n"
            "        for j in range(n):\n"
            "            s = s + 1\n"
            "    return s\n",
            "G",
        )
        cfg = build_cfg(cls.functions["grid"].code)
        assert len(cfg.loops) == 2
        assert cfg.max_loop_depth == 2
