"""Effect/purity summaries: unit shapes plus every example UDF."""

from pathlib import Path

import pytest

from repro.analysis import analyze_class, derive_cost_hints
from repro.analysis.lint import load_targets
from repro.core.callbacks import standard_callback_signatures
from repro.core.generic_udf import GENERIC_JAGSCRIPT, generic_definition
from repro.core.designs import Design
from repro.vm.compiler import compile_source
from repro.vm.verifier import self_resolver, verify_class

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

CALLBACKS = dict(standard_callback_signatures())


def analyzed(source, name="C", callbacks=None):
    cbs = CALLBACKS if callbacks is None else callbacks
    cls = compile_source(source, name, callbacks=cbs)
    verify_class(cls, self_resolver(cls, callbacks=cbs))
    return analyze_class(cls)


class TestSummaryShapes:
    def test_arithmetic_is_pure(self):
        summary = analyzed(
            "def double(x: int) -> int:\n    return x + x\n"
        ).functions["double"]
        assert summary.pure
        assert summary.reads_args_only
        assert not summary.allocates
        assert not summary.may_not_terminate
        assert summary.cost_units >= 1.0

    def test_callback_breaks_purity(self):
        summary = analyzed(
            "def ping(x: int) -> int:\n    return cb_noop()\n"
        ).functions["ping"]
        assert not summary.pure
        assert summary.callbacks == frozenset({"cb_noop"})

    def test_native_stays_pure(self):
        summary = analyzed(
            "def root(x: float) -> float:\n    return sqrt(x)\n"
        ).functions["root"]
        assert summary.pure
        assert summary.natives == frozenset({"sqrt"})

    def test_allocation_flagged(self):
        summary = analyzed(
            "def buf(n: int) -> int:\n"
            "    a: bytes = bytearray(n)\n"
            "    return len(a)\n"
        ).functions["buf"]
        assert summary.allocates

    def test_loop_sets_may_not_terminate(self):
        summary = analyzed(
            "def total(n: int) -> int:\n"
            "    s: int = 0\n"
            "    for i in range(n):\n"
            "        s = s + i\n"
            "    return s\n"
        ).functions["total"]
        assert summary.may_not_terminate
        assert not summary.has_unbounded_loop
        assert summary.loop_count == 1

    def test_while_true_is_unbounded(self):
        summary = analyzed(
            "def spin() -> int:\n    while True:\n        pass\n"
        ).functions["spin"]
        assert summary.has_unbounded_loop
        assert summary.may_not_terminate

    def test_effects_propagate_through_calls(self):
        summary = analyzed(
            "def helper(x: int) -> int:\n"
            "    return cb_noop()\n"
            "\n"
            "def caller(x: int) -> int:\n"
            "    return helper(x) + 1\n"
        )
        assert not summary.functions["caller"].pure
        assert summary.functions["caller"].callbacks == frozenset({"cb_noop"})

    def test_recursion_flagged_and_costed(self):
        summary = analyzed(
            "def fact(n: int) -> int:\n"
            "    if n <= 1:\n"
            "        return 1\n"
            "    return n * fact(n - 1)\n"
        ).functions["fact"]
        assert summary.recursive
        assert summary.may_not_terminate
        assert summary.pure  # recursion alone does not break purity
        # The RECURSION_FACTOR makes the cycle markedly pricier than a
        # straight-line body of the same length.
        assert summary.cost_units > 100

    def test_loops_multiply_cost(self):
        flat = analyzed(
            "def flat(x: int) -> int:\n    return x + 1\n"
        ).functions["flat"]
        looped = analyzed(
            "def looped(x: int) -> int:\n"
            "    s: int = 0\n"
            "    for i in range(x):\n"
            "        s = s + 1\n"
            "    return s\n"
        ).functions["looped"]
        assert looped.cost_units > 10 * flat.cost_units

    def test_class_rollup_unions_functions(self):
        summary = analyzed(
            "def a(x: int) -> int:\n    return cb_noop()\n"
            "\n"
            "def b(x: float) -> float:\n    return sqrt(x)\n"
        )
        assert summary.callbacks == frozenset({"cb_noop"})
        assert summary.natives == frozenset({"sqrt"})

    def test_unverified_class_rejected(self):
        cls = compile_source("def f() -> int:\n    return 1\n", "U")
        with pytest.raises(ValueError, match="verified"):
            analyze_class(cls)

    def test_summaries_attached_to_functions(self):
        cbs = CALLBACKS
        cls = compile_source(
            "def f() -> int:\n    return 1\n", "A", callbacks=cbs
        )
        verify_class(cls, self_resolver(cls, callbacks=cbs))
        rollup = analyze_class(cls)
        assert cls.analysis is rollup
        assert cls.functions["f"].summary is rollup.functions["f"]


def example_summaries():
    """func name -> list of FunctionSummary across all example scripts."""
    out = {}
    for path in sorted(EXAMPLES.glob("*.py")):
        for _label, cls in load_targets(path):
            verify_class(cls, self_resolver(cls, callbacks=CALLBACKS))
            rollup = analyze_class(cls)
            for name, summary in rollup.functions.items():
                out.setdefault(name, []).append(summary)
    return out


class TestExampleUDFs:
    """Every UDF shipped in examples/ gets the expected summary."""

    @pytest.fixture(scope="class")
    def summaries(self):
        return example_summaries()

    def test_every_example_udf_summarized(self, summaries):
        # The examples embed at least these UDFs; each must analyze.
        expected = {
            "score", "investval", "investloop", "redness", "redness_h",
            "cpu_bomb", "mem_bomb", "snoop", "ema_last",
        }
        assert expected <= set(summaries)
        for name, entries in summaries.items():
            for summary in entries:
                assert summary.cost_units >= 1.0, name

    def test_pure_example_udfs(self, summaries):
        for name in ("score", "investval", "ema_last", "redness"):
            for summary in summaries[name]:
                assert summary.pure, name

    def test_investval_uses_sqrt_native(self, summaries):
        (investval,) = summaries["investval"]
        assert investval.natives == frozenset({"sqrt"})

    def test_handle_redness_needs_lob_callbacks(self, summaries):
        (redness_h,) = summaries["redness_h"]
        assert not redness_h.pure
        assert redness_h.callbacks == frozenset(
            {"cb_lob_length", "cb_lob_read"}
        )

    def test_malicious_cpu_bomb_never_terminates(self, summaries):
        (cpu_bomb,) = summaries["cpu_bomb"]
        assert cpu_bomb.has_unbounded_loop

    def test_malicious_mem_bomb_allocates_in_loop(self, summaries):
        (mem_bomb,) = summaries["mem_bomb"]
        assert mem_bomb.allocates
        assert mem_bomb.loop_count >= 1

    def test_malicious_snoop_reaches_for_lob_callback(self, summaries):
        (snoop,) = summaries["snoop"]
        assert not snoop.pure
        assert snoop.callbacks == frozenset({"cb_lob_length"})

    def test_unbounded_example_loops_flagged(self, summaries):
        (investloop,) = summaries["investloop"]
        assert investloop.has_unbounded_loop


class TestDerivedVersusDeclared:
    """The analyzer's estimate agrees with the hand-declared hints."""

    def test_generic_udf_costs_agree(self):
        declared = generic_definition(Design.SANDBOX_JIT).cost
        summary = analyzed(GENERIC_JAGSCRIPT, "G").functions["generic"]
        derived = derive_cost_hints(summary)
        # Same order of magnitude: the declared 1000-unit figure and the
        # static estimate must agree that this UDF is orders of
        # magnitude dearer than a built-in comparison.
        ratio = derived.cost_per_call / declared.cost_per_call
        assert 0.1 <= ratio <= 10.0
        assert derived.selectivity == declared.selectivity
        assert derived.derived and not declared.derived

    def test_derived_hints_floor_at_one_unit(self):
        summary = analyzed(
            "def unit() -> int:\n    return 1\n"
        ).functions["unit"]
        hints = derive_cost_hints(summary)
        assert hints.cost_per_call >= 1.0
        assert hints.derived


class TestEdgeCases:
    """Shapes the effect analyzer must not lose: loops, trap paths,
    conditional callbacks, and mutual recursion."""

    def test_callback_in_loop_recorded_and_costed_per_iteration(self):
        flat = analyzed(
            "def once(x: int) -> int:\n    return cb_noop()\n"
        ).functions["once"]
        looped = analyzed(
            "def churn(n: int) -> int:\n"
            "    s: int = 0\n"
            "    for i in range(n):\n"
            "        s = s + cb_noop()\n"
            "    return s\n"
        ).functions["churn"]
        assert looped.callbacks == frozenset({"cb_noop"})
        assert not looped.pure
        assert looped.may_not_terminate
        # A looped callback is charged per expected iteration, not once.
        assert looped.cost_units > 10 * flat.cost_units

    def test_effects_on_trap_path_still_recorded(self):
        # The division may trap before the callback ever runs; the
        # summary must still over-approximate and keep the callback.
        summary = analyzed(
            "def risky(x: int) -> int:\n"
            "    y: int = 10 // x\n"
            "    return y + cb_noop()\n"
        ).functions["risky"]
        assert summary.callbacks == frozenset({"cb_noop"})
        assert not summary.pure

    def test_callback_on_single_branch_breaks_purity(self):
        summary = analyzed(
            "def maybe(x: int) -> int:\n"
            "    if x > 0:\n"
            "        return cb_noop()\n"
            "    return 0\n"
        ).functions["maybe"]
        assert summary.callbacks == frozenset({"cb_noop"})
        assert not summary.pure

    def test_mutual_recursion_unions_effects_across_the_cycle(self):
        rollup = analyzed(
            "def ping(n: int) -> int:\n"
            "    if n <= 0:\n"
            "        return 0\n"
            "    return pong(n - 1)\n"
            "def pong(n: int) -> int:\n"
            "    return ping(n - 1) + cb_noop()\n"
        )
        ping, pong = rollup.functions["ping"], rollup.functions["pong"]
        assert ping.recursive and pong.recursive
        assert ping.may_not_terminate and pong.may_not_terminate
        # The callback lives in pong, but the SCC closure must charge
        # the whole cycle with it.
        assert ping.callbacks == frozenset({"cb_noop"})
        assert pong.callbacks == frozenset({"cb_noop"})
        assert not ping.pure
