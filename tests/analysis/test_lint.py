"""Lint findings and the ``python -m repro.analysis`` CLI."""

from pathlib import Path

import pytest

from repro.analysis import lint_class, report
from repro.analysis.lint import ERROR, NOTE, WARNING, load_targets, main
from repro.core.callbacks import standard_callback_signatures
from repro.vm.classfile import K_CALLBACK, PoolEntry
from repro.vm.compiler import compile_source
from repro.vm.verifier import self_resolver, verify_class

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

CALLBACKS = dict(standard_callback_signatures())


def verified(source, name="L"):
    cls = compile_source(source, name, callbacks=CALLBACKS)
    verify_class(cls, self_resolver(cls, callbacks=CALLBACKS))
    return cls


def kinds(findings):
    return {finding.kind for finding in findings}


class TestFindings:
    def test_clean_function_has_no_findings(self):
        cls = verified("def f(x: int) -> int:\n    return x + 1\n")
        assert lint_class(cls) == []

    def test_unbounded_loop_is_an_error(self):
        cls = verified("def spin() -> int:\n    while True:\n        pass\n")
        findings = lint_class(cls)
        assert kinds(findings) == {"unbounded-loop"}
        (finding,) = findings
        assert finding.level == ERROR
        assert finding.pc is not None

    def test_alloc_in_loop_warns(self):
        cls = verified(
            "def churn(n: int) -> int:\n"
            "    s: int = 0\n"
            "    for i in range(n):\n"
            "        a: bytes = bytearray(16)\n"
            "        s = s + len(a)\n"
            "    return s\n"
        )
        findings = [f for f in lint_class(cls) if f.kind == "alloc-in-loop"]
        assert findings
        assert all(f.level == WARNING for f in findings)

    def test_callback_in_loop_warns(self):
        cls = verified(
            "def chatty(n: int) -> int:\n"
            "    s: int = 0\n"
            "    for i in range(n):\n"
            "        s = s + cb_noop()\n"
            "    return s\n"
        )
        findings = [f for f in lint_class(cls) if f.kind == "callback-in-loop"]
        assert len(findings) == 1
        assert "cb_noop" in findings[0].message

    def test_callback_outside_loop_is_not_flagged(self):
        cls = verified("def once() -> int:\n    return cb_noop()\n")
        assert "callback-in-loop" not in kinds(lint_class(cls))

    def test_recursion_is_a_note(self):
        cls = verified(
            "def fact(n: int) -> int:\n"
            "    if n <= 1:\n"
            "        return 1\n"
            "    return n * fact(n - 1)\n"
        )
        findings = [f for f in lint_class(cls) if f.kind == "recursive"]
        assert len(findings) == 1
        assert findings[0].level == NOTE

    def test_dead_callback_pool_entry_warns(self):
        cls = verified("def f() -> int:\n    return 1\n")
        # A hand-added pool entry no instruction references: requested
        # attack surface that buys nothing.
        cls.pool.append(PoolEntry(kind=K_CALLBACK, value=("cb_lob_read",)))
        findings = [f for f in lint_class(cls) if f.kind == "dead-callback"]
        assert len(findings) == 1
        assert "cb_lob_read" in findings[0].message

    def test_findings_sorted_errors_first(self):
        cls = verified(
            "def bomb(n: int) -> int:\n"
            "    for i in range(n):\n"
            "        a: bytes = bytearray(16)\n"
            "    while True:\n"
            "        pass\n"
        )
        findings = lint_class(cls)
        assert findings[0].level == ERROR

    def test_report_includes_summary_lines(self):
        cls = verified("def f(x: int) -> int:\n    return x\n")
        lines = report(cls)
        assert any("pure" in line for line in lines)
        assert any("clean" in line for line in lines)


class TestTargetLoading:
    def test_classfile_bytes(self, tmp_path):
        cls = compile_source("def f() -> int:\n    return 1\n", "Bin")
        target = tmp_path / "f.jagc"
        target.write_bytes(cls.to_bytes())
        ((label, loaded),) = load_targets(target)
        assert label == "f.jagc"
        assert loaded.name == "Bin"

    def test_jagscript_source(self, tmp_path):
        target = tmp_path / "my_udf.jag"
        target.write_text("def f(x: int) -> int:\n    return x\n")
        ((_, loaded),) = load_targets(target)
        assert "f" in loaded.functions

    def test_python_file_with_embedded_payloads(self, tmp_path):
        target = tmp_path / "script.py"
        target.write_text(
            'SQL = ("CREATE FUNCTION g(int) RETURNS int LANGUAGE JAGUAR '
            "DESIGN SANDBOX AS 'def g(x: int) -> int:\\n    return x'\")\n"
        )
        classes = load_targets(target)
        assert len(classes) == 1
        assert "g" in classes[0][1].functions

    def test_examples_all_load(self):
        total = 0
        for path in sorted(EXAMPLES.glob("*.py")):
            total += len(load_targets(path))
        assert total >= 9  # the examples embed at least nine UDF payloads


class TestCli:
    def test_exit_zero_despite_findings(self, capsys):
        code = main([str(EXAMPLES / "malicious_udfs.py")])
        out = capsys.readouterr().out
        assert code == 0
        assert "unbounded-loop" in out
        assert "alloc-in-loop" in out

    def test_strict_fails_on_errors(self, capsys):
        assert main(["--strict", str(EXAMPLES / "malicious_udfs.py")]) == 1

    def test_strict_passes_clean_target(self, tmp_path, capsys):
        target = tmp_path / "ok.jag"
        target.write_text("def f(x: int) -> int:\n    return x + 1\n")
        assert main(["--strict", str(target)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_missing_file_is_a_load_error(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.jag")]) == 2

    def test_summaries_printed_per_function(self, capsys):
        code = main([str(EXAMPLES / "stock_investval.py")])
        out = capsys.readouterr().out
        assert code == 0
        assert "investval" in out
        assert "natives:sqrt" in out
