"""End-to-end payoffs of load-time analysis: derived hints in EXPLAIN,
constant folding, memoization, and rejection at CREATE FUNCTION."""

import pytest

from repro.core.sandbox import SandboxExecutor
from repro.errors import SecurityViolation

TWICE = (
    "CREATE FUNCTION twice(int) RETURNS int LANGUAGE JAGUAR "
    "DESIGN SANDBOX AS 'def twice(x: int) -> int:\n    return x + x'"
)


def plan_text(db, sql):
    return "\n".join(row[0] for row in db.query("EXPLAIN " + sql))


@pytest.fixture
def table(db):
    db.execute("CREATE TABLE t (id INT, v INT)")
    db.execute("INSERT INTO t VALUES (1, 10), (2, 10), (3, 20)")
    return db


class TestDerivedCostHints:
    def test_registration_without_hints_derives_them(self, table):
        table.execute(TWICE)
        definition = table.registry.get("twice")
        assert definition.cost is not None
        assert definition.cost.derived
        assert definition.cost.cost_per_call >= 1.0
        assert definition.cost.selectivity == 0.5

    def test_declared_hints_win_over_derivation(self, table):
        table.execute(
            "CREATE FUNCTION pricey(int) RETURNS int LANGUAGE JAGUAR "
            "DESIGN SANDBOX COST 5000 SELECTIVITY 0.2 "
            "AS 'def pricey(x: int) -> int:\n    return x'"
        )
        definition = table.registry.get("pricey")
        assert not definition.cost.derived
        assert definition.cost.cost_per_call == 5000.0

    def test_explain_annotates_derived_purity_and_cost(self, table):
        table.execute(TWICE)
        text = plan_text(table, "SELECT id FROM t WHERE twice(v) > 15")
        assert "udf twice: pure" in text
        assert "(derived)" in text
        assert "sel=0.50" in text

    def test_explain_annotates_declared_hints(self, table):
        table.execute(
            "CREATE FUNCTION pricey(int) RETURNS int LANGUAGE JAGUAR "
            "DESIGN SANDBOX COST 5000 SELECTIVITY 0.2 "
            "AS 'def pricey(x: int) -> int:\n    return x'"
        )
        text = plan_text(table, "SELECT id FROM t WHERE pricey(v) > 15")
        assert "cost≈5000 (declared)" in text
        assert "sel=0.20" in text

    def test_explain_marks_impure_udfs(self, table):
        table.execute(
            "CREATE FUNCTION chatty(int) RETURNS int LANGUAGE JAGUAR "
            "DESIGN SANDBOX CALLBACKS 'cb_noop' "
            "AS 'def chatty(x: int) -> int:\n    return x + cb_noop()'"
        )
        text = plan_text(table, "SELECT id FROM t WHERE chatty(v) > 15")
        assert "udf chatty: impure" in text


class TestConstantFolding:
    def test_pure_udf_over_literals_folds_at_plan_time(self, table):
        table.execute(TWICE)
        text = plan_text(table, "SELECT id FROM t WHERE twice(3) > v")
        assert "(6 > t.v)" in text
        assert "twice" not in text

    def test_folded_query_returns_correct_rows(self, table):
        table.execute(TWICE)
        rows = table.query(
            "SELECT id FROM t WHERE twice(8) > v ORDER BY id"
        )
        assert rows == [(1,), (2,)]  # 16 > 10 twice, 16 > 20 never

    def test_non_literal_args_do_not_fold(self, table):
        table.execute(TWICE)
        text = plan_text(table, "SELECT id FROM t WHERE twice(v) > 15")
        assert "twice(t.v)" in text

    def test_impure_udf_never_folds(self, table):
        table.execute(
            "CREATE FUNCTION chatty(int) RETURNS int LANGUAGE JAGUAR "
            "DESIGN SANDBOX CALLBACKS 'cb_noop' "
            "AS 'def chatty(x: int) -> int:\n    return x + cb_noop()'"
        )
        text = plan_text(table, "SELECT id FROM t WHERE chatty(3) > v")
        assert "chatty(3)" in text

    def test_null_literal_folds_to_null_without_invoking(self, table):
        table.execute(TWICE)
        text = plan_text(table, "SELECT id FROM t WHERE twice(NULL) > v")
        assert "twice" not in text

    def test_folding_in_projection(self, table):
        table.execute(TWICE)
        rows = table.query("SELECT twice(21) FROM t WHERE id = 1")
        assert rows == [(42,)]


def _count_invocations(monkeypatch):
    """Record every UDF invocation, through either entry point.

    The executor crosses into the sandbox via ``invoke`` (per tuple) or
    ``invoke_batch`` (per batch); memoization counts are about *UDF
    invocations*, so both paths are tallied per argument tuple.
    """
    calls = []
    original_invoke = SandboxExecutor.invoke
    original_batch = SandboxExecutor.invoke_batch

    def counting(self, args):
        calls.append(tuple(args))
        return original_invoke(self, args)

    def counting_batch(self, args_list):
        calls.extend(tuple(args) for args in args_list)
        return original_batch(self, args_list)

    monkeypatch.setattr(SandboxExecutor, "invoke", counting)
    monkeypatch.setattr(SandboxExecutor, "invoke_batch", counting_batch)
    return calls


class TestMemoization:
    def test_pure_udf_invoked_once_per_distinct_args(
        self, table, monkeypatch
    ):
        table.execute(TWICE)
        calls = _count_invocations(monkeypatch)
        rows = table.query("SELECT id FROM t WHERE twice(v) > 25 ORDER BY id")
        assert rows == [(3,)]
        # Three rows, two distinct v values: the memo absorbs the dupe.
        assert len(calls) == 2

    def test_impure_udf_not_memoized(self, table, monkeypatch):
        table.execute(
            "CREATE FUNCTION chatty(int) RETURNS int LANGUAGE JAGUAR "
            "DESIGN SANDBOX CALLBACKS 'cb_noop' "
            "AS 'def chatty(x: int) -> int:\n    return x + x + cb_noop()'"
        )
        calls = _count_invocations(monkeypatch)
        table.query("SELECT id FROM t WHERE chatty(v) > 15")
        assert len(calls) == 3  # one per row, no memo


class TestStaticSecurityPreCheck:
    def test_ungranted_callback_rejected_at_create(self, table):
        with pytest.raises(SecurityViolation, match="rejected at load"):
            table.execute(
                "CREATE FUNCTION snoop(int) RETURNS int LANGUAGE JAGUAR "
                "DESIGN SANDBOX AS "
                "'def snoop(x: int) -> int:\n    return cb_lob_length(x)'"
            )
        assert not table.registry.has("snoop")

    def test_granted_callback_loads_and_runs(self, table):
        table.execute(
            "CREATE FUNCTION fine(int) RETURNS int LANGUAGE JAGUAR "
            "DESIGN SANDBOX CALLBACKS 'cb_noop' "
            "AS 'def fine(x: int) -> int:\n    return x + cb_noop()'"
        )
        rows = table.query("SELECT fine(1) FROM t WHERE id = 1")
        assert rows == [(1,)]

    def test_rejection_leaves_catalog_reusable(self, table):
        with pytest.raises(SecurityViolation):
            table.execute(
                "CREATE FUNCTION snoop(int) RETURNS int LANGUAGE JAGUAR "
                "DESIGN SANDBOX AS "
                "'def snoop(x: int) -> int:\n    return cb_lob_length(x)'"
            )
        # The name is free: a corrected registration succeeds.
        table.execute(
            "CREATE FUNCTION snoop(int) RETURNS int LANGUAGE JAGUAR "
            "DESIGN SANDBOX AS 'def snoop(x: int) -> int:\n    return x'"
        )
        assert table.registry.has("snoop")
