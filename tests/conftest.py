"""Shared fixtures."""

import pytest

from repro.database import Database


@pytest.fixture
def db():
    """A fresh in-memory database per test."""
    database = Database()
    yield database
    database.close()


@pytest.fixture
def db_path(tmp_path):
    return str(tmp_path / "dbdir")
