"""B+-tree: correctness against a sorted-list model, incl. property test."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.btree import BPlusTree
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager
from repro.storage.heapfile import RID


def make_tree(page_size=256):
    pool = BufferPool(DiskManager(None, page_size=page_size), capacity=256)
    return BPlusTree.create(pool)


def rid_for(key, salt=0):
    return RID(page_id=key + 1 + salt, slot=(key + salt) % 50)


class TestBasics:
    def test_empty_tree(self):
        tree = make_tree()
        assert tree.search(1) == []
        assert list(tree.items()) == []
        tree.check_invariants()

    def test_insert_and_search(self):
        tree = make_tree()
        tree.insert(5, rid_for(5))
        assert tree.search(5) == [rid_for(5)]
        assert tree.search(6) == []

    def test_many_inserts_with_splits(self):
        tree = make_tree()
        keys = list(range(3000))
        random.Random(7).shuffle(keys)
        for key in keys:
            tree.insert(key, rid_for(key))
        tree.check_invariants()
        assert [k for k, __ in tree.items()] == list(range(3000))
        for probe in (0, 1, 1499, 2998, 2999):
            assert tree.search(probe) == [rid_for(probe)]

    def test_negative_keys(self):
        tree = make_tree()
        for key in (-5, -1, 0, 3, -100):
            tree.insert(key, RID(abs(key) + 1, 0))
        assert [k for k, __ in tree.items()] == [-100, -5, -1, 0, 3]

    def test_duplicates_all_returned(self):
        tree = make_tree()
        for salt in range(300):
            tree.insert(42, rid_for(42, salt))
        for key in range(200):
            tree.insert(key, rid_for(key, 999))
        found = tree.search(42)
        assert len(found) == 300 + 1  # 300 dups + key 42 itself
        tree.check_invariants()

    def test_range_scan(self):
        tree = make_tree()
        for key in range(0, 1000, 3):
            tree.insert(key, rid_for(key))
        got = [k for k, __ in tree.range_scan(100, 200)]
        assert got == [k for k in range(0, 1000, 3) if 100 <= k <= 200]

    def test_open_ranges(self):
        tree = make_tree()
        for key in range(50):
            tree.insert(key, rid_for(key))
        assert [k for k, __ in tree.range_scan(None, 5)] == list(range(6))
        assert [k for k, __ in tree.range_scan(45, None)] == list(range(45, 50))

    def test_delete(self):
        tree = make_tree()
        for key in range(500):
            tree.insert(key, rid_for(key))
        assert tree.delete(250, rid_for(250))
        assert tree.search(250) == []
        assert not tree.delete(250, rid_for(250))  # already gone
        assert not tree.delete(9999, rid_for(1))
        tree.check_invariants()

    def test_delete_specific_duplicate(self):
        tree = make_tree()
        tree.insert(7, rid_for(7, 1))
        tree.insert(7, rid_for(7, 2))
        assert tree.delete(7, rid_for(7, 2))
        assert tree.search(7) == [rid_for(7, 1)]

    def test_root_split_updates_root_page(self):
        tree = make_tree()
        original_root = tree.root_page
        for key in range(2000):
            tree.insert(key, rid_for(key))
        assert tree.root_page != original_root

    def test_reopen_by_root_page(self):
        tree = make_tree()
        for key in range(800):
            tree.insert(key, rid_for(key))
        reopened = BPlusTree(tree.pool, tree.root_page)
        assert reopened.search(400) == [rid_for(400)]


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete"]),
            st.integers(min_value=-100, max_value=100),
        ),
        max_size=200,
    )
)
def test_model_equivalence(operations):
    """Against a multiset model: same members, sorted iteration."""
    tree = make_tree()
    model = []
    for action, key in operations:
        rid = RID(abs(key) + 1, 0)
        if action == "insert":
            tree.insert(key, rid)
            model.append(key)
        else:
            removed = tree.delete(key, rid)
            if key in model:
                assert removed
                model.remove(key)
            else:
                assert not removed
    assert [k for k, __ in tree.items()] == sorted(model)
    tree.check_invariants()
