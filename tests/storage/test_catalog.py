"""System catalog: CRUD and persistence."""

import os

import pytest

from repro.errors import CatalogError
from repro.storage.catalog import (
    Catalog,
    Column,
    IndexInfo,
    TableInfo,
    UDFInfo,
)
from repro.storage.record import ColumnType


def sample_table(name="t"):
    return TableInfo(
        name=name,
        columns=[
            Column("id", ColumnType.INT, nullable=False),
            Column("data", ColumnType.BYTES),
        ],
        first_page=3,
        indexes=[IndexInfo("t_id", "id", 9)],
    )


def sample_udf(name="f"):
    return UDFInfo(
        name=name,
        language="jaguar",
        design="sandbox_jit",
        entry="f",
        payload=b"def f(x: int) -> int:\n    return x",
        param_types=["int"],
        ret_type="int",
        callbacks=["cb_noop"],
    )


class TestTables:
    def test_add_get(self):
        catalog = Catalog()
        catalog.add_table(sample_table())
        table = catalog.get_table("T")  # case-insensitive
        assert table.columns[0].name == "id"
        assert table.column_index("data") == 1

    def test_duplicate_rejected(self):
        catalog = Catalog()
        catalog.add_table(sample_table())
        with pytest.raises(CatalogError, match="already exists"):
            catalog.add_table(sample_table())

    def test_unknown_raises(self):
        with pytest.raises(CatalogError, match="unknown table"):
            Catalog().get_table("nope")

    def test_drop(self):
        catalog = Catalog()
        catalog.add_table(sample_table())
        catalog.drop_table("t")
        assert not catalog.has_table("t")

    def test_unknown_column(self):
        with pytest.raises(CatalogError, match="no column"):
            sample_table().column_index("ghost")


class TestUDFs:
    def test_add_get_drop(self):
        catalog = Catalog()
        catalog.add_udf(sample_udf())
        assert catalog.get_udf("F").design == "sandbox_jit"
        catalog.drop_udf("f")
        assert not catalog.has_udf("f")

    def test_duplicate_rejected(self):
        catalog = Catalog()
        catalog.add_udf(sample_udf())
        with pytest.raises(CatalogError):
            catalog.add_udf(sample_udf())


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "catalog.json")
        catalog = Catalog(path)
        catalog.add_table(sample_table())
        catalog.add_udf(sample_udf())

        reloaded = Catalog(path)
        table = reloaded.get_table("t")
        assert [c.name for c in table.columns] == ["id", "data"]
        assert table.columns[0].col_type is ColumnType.INT
        assert not table.columns[0].nullable
        assert table.indexes[0].root_page == 9
        udf = reloaded.get_udf("f")
        assert udf.payload == sample_udf().payload
        assert udf.callbacks == ["cb_noop"]

    def test_save_is_atomic_replace(self, tmp_path):
        path = str(tmp_path / "catalog.json")
        catalog = Catalog(path)
        catalog.add_table(sample_table("a"))
        catalog.add_table(sample_table("b"))
        assert not os.path.exists(path + ".tmp")

    def test_memory_catalog_never_touches_disk(self):
        catalog = Catalog(None)
        catalog.add_table(sample_table())
        catalog.save()  # no-op, no error
