"""Deterministic fault-injection harness for WAL crash-recovery tests.

The storage layer funnels every file write and fsync through a
:class:`repro.storage.wal.FaultPoint`; this module provides the
implementations the recovery suites drive:

* :class:`OpTrace` — counts the storage operations a workload performs
  (the "fault schedule"): each armed write/fsync gets an index, so a
  crash can later be injected at *every* one of them.
* :class:`CrashPoint` — kills the storage layer at exactly one
  operation index, in one of three ways: ``kill`` (the write never
  happens), ``torn`` (a partial prefix of the write reaches the file),
  or ``fsync`` (the fsync reports failure, after which the engine must
  refuse to acknowledge the commit).

Both stay disarmed during database setup (schema, UDFs, seed rows) and
are armed for the workload proper, so every run of the same workload
sees the identical operation schedule.

The checking protocol (:func:`run_crash_check`) is the acceptance
criterion of the durability issue, verified *bit-identically*:

1. Run the workload against a fresh database until the injected crash.
   Count the statements that completed (``acked``) — including ones
   that failed logically, whose partial effects commit deterministically.
2. Reopen the crashed directory (recovery runs), optionally first
   truncating ``wal.log`` to the last fsynced offset (``lose_tail`` —
   the OS page cache died with the process).  Recovery reports ``R``
   committed statements; require ``acked <= R <= attempted`` (an
   appended-but-unacknowledged commit may legitimately survive when the
   tail does).
3. Close the recovered database (checkpoint) and fingerprint its files.
4. Serially replay the first ``R`` workload statements on a fresh
   database, close, fingerprint, and require byte equality: no
   committed statement lost, no uncommitted statement visible.
"""

from __future__ import annotations

import os
import struct

from repro.database import Database
from repro.errors import SimulatedCrash, WALError
from repro.storage.disk import NO_PAGE
from repro.storage.wal import FaultPoint


class OpTrace(FaultPoint):
    """Permits everything; records the armed operation schedule."""

    def __init__(self) -> None:
        self.armed = False
        self.ops = []  # (kind, site) per armed operation, in order

    def write(self, site: str, size: int) -> int:
        if self.armed:
            self.ops.append(("write", site))
        return size

    def fsync(self, site: str) -> bool:
        if self.armed:
            self.ops.append(("fsync", site))
        return True


class CrashPoint(FaultPoint):
    """Crash at armed operation index ``at`` with the given ``mode``.

    ``mode``:
      - ``"kill"``  — the write at ``at`` lands 0 bytes (process died
        just before the syscall); only meaningful at a write op.
      - ``"torn"``  — the write lands roughly half its bytes (power cut
        mid-write); only meaningful at a write op.
      - ``"fsync"`` — the fsync at ``at`` fails; only meaningful at an
        fsync op.

    ``durable`` tracks the WAL *file* offset covered by the last
    successful WAL fsync (via :meth:`note_durable`, armed or not) — the
    ``lose_tail`` reopen variant truncates the log there to model an OS
    page cache that died with the process.
    """

    def __init__(self, at: int, mode: str) -> None:
        assert mode in ("kill", "torn", "fsync")
        self.at = at
        self.mode = mode
        self.armed = False
        self.count = 0
        self.durable = 0

    def write(self, site: str, size: int) -> int:
        if not self.armed:
            return size
        index = self.count
        self.count += 1
        if index == self.at:
            if self.mode == "kill":
                return 0
            if self.mode == "torn":
                return max(1, size // 2) if size > 1 else 0
        return size

    def fsync(self, site: str) -> bool:
        if not self.armed:
            return True
        index = self.count
        self.count += 1
        return not (index == self.at and self.mode == "fsync")

    def note_durable(self, site: str, offset: int) -> None:
        if site == "wal.fsync":
            self.durable = offset


def apply_statements(db: Database, statements) -> tuple:
    """Run statements until done or crashed.

    Returns ``(acked, crashed)``: ``acked`` counts statements that
    completed — returned a result *or* failed logically (their partial
    effects commit deterministically); an injected crash stops the run.
    """
    acked = 0
    for sql in statements:
        try:
            db.execute(sql)
        except (SimulatedCrash, WALError):
            return acked, True
        except Exception:
            pass  # logical failure: still one committed statement
        acked += 1
    return acked, False


def check_free_list(db: Database) -> list:
    """Walk the free list and assert it is structurally sound.

    Every entry must be a valid page id, the chain must be acyclic and
    terminate at ``NO_PAGE`` — the invariants a commit record carrying
    another statement's uncommitted ``free_head`` would break after a
    crash (stale table bytes read as a chain pointer).  Returns the
    free page ids in chain order.
    """
    npages, head = db.disk.geometry()
    seen = []
    page_id = head
    while page_id != NO_PAGE:
        assert 1 <= page_id < npages, (
            f"free list entry {page_id} outside [1, {npages})"
        )
        assert page_id not in seen, (
            f"free list cycles back to page {page_id}"
        )
        seen.append(page_id)
        assert len(seen) <= npages, "free list longer than the file"
        with db.pool.pinned(page_id) as data:
            (page_id,) = struct.unpack_from("<I", data, 0)
    return seen


def fingerprint(path: str) -> dict:
    """Byte content of a *closed* database directory's durable files."""
    out = {}
    for name in ("data.pages", "catalog.json"):
        full = os.path.join(path, name)
        with open(full, "rb") as handle:
            out[name] = handle.read()
    return out


def build_db(path: str, setup, faults=None) -> Database:
    """Create a database and run the (unarmed) setup statements."""
    db = Database(path, faults=faults)
    for sql in setup:
        db.execute(sql)
    return db


def trace_ops(base: str, setup, statements) -> list:
    """The armed operation schedule one run of the workload performs."""
    trace = OpTrace()
    db = build_db(os.path.join(base, "trace"), setup, faults=trace)
    trace.armed = True
    acked, crashed = apply_statements(db, statements)
    assert not crashed and acked == len(statements)
    trace.armed = False
    db.close()
    return trace.ops

def replay_fingerprint(path: str, setup, statements, n: int) -> dict:
    """Fingerprint of a fresh database after ``setup`` + the first
    ``n`` workload statements and a clean close."""
    db = build_db(path, setup)
    acked, crashed = apply_statements(db, statements[:n])
    assert not crashed and acked == n
    db.close()
    return fingerprint(path)


def run_crash_check(
    base: str,
    setup,
    statements,
    at: int,
    mode: str,
    lose_tail: bool,
    replays: dict,
) -> int:
    """Crash one run at operation ``at``; verify recovery bit-exactly.

    ``base`` is a scratch directory; ``replays`` caches serial-replay
    fingerprints keyed by committed-prefix length (shared across crash
    points of the same workload).  Returns ``R``, the number of
    statements recovery found committed.
    """
    crash_dir = os.path.join(base, f"crash-{mode}-{at}-{int(lose_tail)}")
    point = CrashPoint(at, mode)
    db = build_db(crash_dir, setup, faults=point)
    point.armed = True
    acked, crashed = apply_statements(db, statements)
    point.armed = False
    assert crashed, (
        f"op {at} ({mode}) did not crash the workload "
        f"(acked {acked}/{len(statements)})"
    )
    # The process is dead: drop the handles without close/checkpoint.
    # (Isolated-design UDF worker processes would die with it; reap them
    # explicitly so crash sweeps don't leak subprocesses.)
    try:
        db.registry.close()
    except Exception:
        pass
    del db

    if lose_tail:
        # The un-fsynced log tail dies with the OS page cache.
        wal_path = os.path.join(crash_dir, "wal.log")
        size = os.path.getsize(wal_path)
        keep = min(point.durable, size)
        with open(wal_path, "r+b") as handle:
            handle.truncate(keep)

    recovered = Database(crash_dir)
    # The log holds everything since the database was created, setup
    # included; the workload prefix is what comes after it.
    r = recovered.wal.recovered_statements - len(setup)
    recovered.close()
    assert acked <= r <= len(statements), (
        f"op {at} ({mode}, lose_tail={lose_tail}): acked {acked} but "
        f"recovered {r} of {len(statements)}"
    )

    if r not in replays:
        replays[r] = replay_fingerprint(
            os.path.join(base, f"replay-{r}"), setup, statements, r
        )
    got = fingerprint(crash_dir)
    want = replays[r]
    assert got == want, (
        f"op {at} ({mode}, lose_tail={lose_tail}): recovered state "
        f"differs from serial replay of {r} committed statements"
    )
    return r
