"""MVCC-lite snapshot store: versions, copy-on-write installs, GC."""

import pytest

from repro.database import Database
from repro.errors import StorageError
from repro.storage.mvcc import SnapshotManager


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE t (id INT, v FLOAT)")
    database.execute("INSERT INTO t VALUES (1, 1.5), (2, 2.5), (3, NULL)")
    yield database
    database.close()


def enabled(db):
    db.snapshots.enable(db)
    return db.snapshots


class TestLifecycle:
    def test_disabled_pin_raises(self, db):
        with pytest.raises(StorageError):
            db.snapshots.pin()

    def test_disabled_install_is_noop(self, db):
        db.execute("INSERT INTO t VALUES (4, 4.0)")
        assert db.snapshots.stats()["installs"] == 0
        assert db.snapshots.version_of("t") == 0

    def test_enable_builds_initial_images(self, db):
        manager = enabled(db)
        assert manager.version_of("t") == 1
        with manager.pin() as snapshot:
            image = snapshot.image_for("t")
            assert image is not None
            assert len(list(image.records())) == 3

    def test_enable_is_idempotent(self, db):
        manager = enabled(db)
        manager.enable(db)
        assert manager.version_of("t") == 1


class TestWriterInstalls:
    def test_write_bumps_version(self, db):
        manager = enabled(db)
        db.execute("INSERT INTO t VALUES (4, 4.0)")
        assert manager.version_of("t") == 2
        db.execute("UPDATE t SET v = 9.0 WHERE id = 1")
        assert manager.version_of("t") == 3
        db.execute("DELETE FROM t WHERE id = 2")
        assert manager.version_of("t") == 4

    def test_create_table_installs_image(self, db):
        manager = enabled(db)
        db.execute("CREATE TABLE u (a INT)")
        assert manager.version_of("u") == 1

    def test_drop_table_forgets(self, db):
        manager = enabled(db)
        db.execute("DROP TABLE t")
        assert manager.version_of("t") == 0

    def test_unchanged_pages_shared_by_reference(self, db):
        manager = enabled(db)
        # Grow the table onto several pages, reinstalling each time;
        # only the tail page mutates, so earlier pages must be reused.
        db.insert_rows(
            "t", [(100 + i, float(i)) for i in range(2000)]
        )
        before = manager.stats()
        db.execute("INSERT INTO t VALUES (9999, 9.0)")
        after = manager.stats()
        assert after["installs"] == before["installs"] + 1
        assert after["pages_reused"] > before["pages_reused"]
        # The append dirtied one page (maybe two across a boundary).
        assert after["pages_copied"] - before["pages_copied"] <= 2

    def test_programmatic_insert_rows_installs(self, db):
        manager = enabled(db)
        db.insert_rows("t", [(10, 1.0), (11, 2.0)])
        assert manager.version_of("t") == 2


class TestSnapshotIsolation:
    def test_pinned_snapshot_ignores_later_writes(self, db):
        manager = enabled(db)
        snapshot = manager.pin()
        db.execute("INSERT INTO t VALUES (4, 4.0)")
        db.execute("UPDATE t SET v = 0.0 WHERE id = 1")
        image = snapshot.image_for("t")
        assert len(list(image.records())) == 3  # still the old rows
        assert snapshot.versions()["t"] == 1
        snapshot.release()
        with manager.pin() as fresh:
            assert len(list(fresh.image_for("t").records())) == 4

    def test_retired_image_retained_while_pinned_then_dropped(self, db):
        manager = enabled(db)
        snapshot = manager.pin()
        db.execute("INSERT INTO t VALUES (4, 4.0)")
        assert manager.retained_count() == 1
        snapshot.release()
        assert manager.retained_count() == 0

    def test_release_is_idempotent(self, db):
        manager = enabled(db)
        snapshot = manager.pin()
        snapshot.release()
        snapshot.release()
        assert manager.retained_count() == 0

    def test_current_image_survives_unpinned(self, db):
        manager = enabled(db)
        with manager.pin():
            pass
        # The current image is kept regardless of pins.
        with manager.pin() as snapshot:
            assert snapshot.image_for("t") is not None

    def test_table_created_after_pin_reads_live(self, db):
        manager = enabled(db)
        snapshot = manager.pin()
        db.execute("CREATE TABLE late (a INT)")
        assert snapshot.image_for("late") is None
        snapshot.release()


class TestSnapshotQueries:
    def test_execute_read_matches_serial(self, db):
        enabled(db)
        sql = "SELECT id, v FROM t WHERE id >= 2 ORDER BY id"
        assert db.execute_read(sql).rows == db.execute(sql).rows

    def test_index_scan_under_snapshot(self, db):
        db.execute("CREATE INDEX idx_t_id ON t (id)")
        enabled(db)
        sql = "SELECT id FROM t WHERE id >= 2 ORDER BY id"
        serial = db.execute(sql).rows
        assert db.execute_read(sql).rows == serial

    def test_read_after_write_sees_new_rows(self, db):
        enabled(db)
        db.execute("INSERT INTO t VALUES (4, 4.0)")
        assert db.execute_read("SELECT count(*) FROM t").rows == [(4,)]


class TestManagerStats:
    def test_stats_shape(self, db):
        manager = enabled(db)
        stats = manager.stats()
        assert stats["enabled"] is True
        assert stats["installs"] >= 1
        assert stats["versions"] == {"t": 1}
        assert isinstance(SnapshotManager().stats()["enabled"], bool)
