"""Record serialization: round trips (incl. property-based) and errors."""

from array import array

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import RecordError
from repro.storage.lob import LOBRef
from repro.storage.record import (
    ColumnType,
    deserialize_record,
    serialize_record,
)

ALL_TYPES = [
    ColumnType.INT,
    ColumnType.FLOAT,
    ColumnType.BOOL,
    ColumnType.STRING,
    ColumnType.BYTES,
    ColumnType.FLOATARR,
]


def roundtrip(values, types):
    return deserialize_record(serialize_record(values, types), types)


class TestRoundTrips:
    def test_full_row(self):
        row = [42, 2.5, True, "héllo", b"\x00\xff", array("d", [1.0, -2.0])]
        assert roundtrip(row, ALL_TYPES) == row

    def test_all_nulls(self):
        row = [None] * 6
        assert roundtrip(row, ALL_TYPES) == row

    def test_mixed_nulls(self):
        row = [1, None, False, None, b"", None]
        assert roundtrip(row, ALL_TYPES) == row

    def test_lob_reference(self):
        row = [LOBRef(first_page=7, length=123456)]
        assert roundtrip(row, [ColumnType.BYTES]) == row

    def test_int_extremes(self):
        for value in (-(2 ** 63), 2 ** 63 - 1, 0):
            assert roundtrip([value], [ColumnType.INT]) == [value]

    def test_float_promotion_of_int(self):
        assert roundtrip([3], [ColumnType.FLOAT]) == [3.0]

    def test_empty_string_and_bytes(self):
        assert roundtrip(["", b""], [ColumnType.STRING, ColumnType.BYTES]) == ["", b""]

    def test_wide_row(self):
        types = [ColumnType.INT] * 40
        row = list(range(40))
        assert roundtrip(row, types) == row


class TestErrors:
    def test_arity_mismatch(self):
        with pytest.raises(RecordError):
            serialize_record([1, 2], [ColumnType.INT])

    def test_type_mismatches(self):
        cases = [
            ("x", ColumnType.INT),
            (True, ColumnType.INT),
            (b"x", ColumnType.STRING),
            ("x", ColumnType.BYTES),
            (1, ColumnType.BOOL),
            ("x", ColumnType.FLOATARR),
        ]
        for value, col_type in cases:
            with pytest.raises(RecordError):
                serialize_record([value], [col_type])

    def test_truncated_record(self):
        data = serialize_record([12345], [ColumnType.INT])
        with pytest.raises(RecordError):
            deserialize_record(data[:-2], [ColumnType.INT])

    def test_trailing_garbage(self):
        data = serialize_record([1], [ColumnType.INT])
        with pytest.raises(RecordError):
            deserialize_record(data + b"!", [ColumnType.INT])

    def test_empty_input(self):
        with pytest.raises(RecordError):
            deserialize_record(b"", [ColumnType.INT])


_value_strategies = {
    ColumnType.INT: st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1),
    ColumnType.FLOAT: st.floats(allow_nan=False),
    ColumnType.BOOL: st.booleans(),
    ColumnType.STRING: st.text(max_size=50),
    ColumnType.BYTES: st.binary(max_size=100),
    ColumnType.FLOATARR: st.lists(
        st.floats(allow_nan=False, allow_infinity=False), max_size=10
    ).map(lambda xs: array("d", xs)),
}


@st.composite
def typed_rows(draw):
    types = draw(
        st.lists(st.sampled_from(ALL_TYPES), min_size=1, max_size=8)
    )
    values = [
        draw(st.one_of(st.none(), _value_strategies[t])) for t in types
    ]
    return types, values


@settings(
    max_examples=150,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(typed_rows())
def test_roundtrip_property(case):
    types, values = case
    result = roundtrip(values, types)
    assert len(result) == len(values)
    for out, original in zip(result, values):
        if isinstance(original, array):
            assert isinstance(out, array) and list(out) == list(original)
        else:
            assert out == original
