"""Slotted pages: operations, compaction, and a model-based property test."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PageError
from repro.storage.page import HEADER_SIZE, SLOT_SIZE, SlottedPage


def fresh(size=512):
    return SlottedPage.format(bytearray(size))


class TestBasics:
    def test_insert_get(self):
        page = fresh()
        slot = page.insert(b"hello")
        assert page.get(slot) == b"hello"

    def test_multiple_records_stable(self):
        page = fresh()
        slots = [page.insert(f"rec{i}".encode()) for i in range(10)]
        for i, slot in enumerate(slots):
            assert page.get(slot) == f"rec{i}".encode()

    def test_delete_then_get_raises(self):
        page = fresh()
        slot = page.insert(b"x")
        page.delete(slot)
        with pytest.raises(PageError, match="deleted"):
            page.get(slot)

    def test_double_delete_raises(self):
        page = fresh()
        slot = page.insert(b"x")
        page.delete(slot)
        with pytest.raises(PageError):
            page.delete(slot)

    def test_slot_out_of_range(self):
        page = fresh()
        with pytest.raises(PageError):
            page.get(0)

    def test_tombstone_slot_reused(self):
        page = fresh()
        first = page.insert(b"a")
        page.insert(b"b")
        page.delete(first)
        reused = page.insert(b"c")
        assert reused == first
        assert page.num_slots == 2

    def test_full_page_returns_none(self):
        page = fresh(128)
        inserted = 0
        while page.insert(b"0123456789") is not None:
            inserted += 1
        assert inserted > 0
        assert page.insert(b"0123456789") is None

    def test_oversized_record_raises(self):
        page = fresh(128)
        with pytest.raises(PageError, match="cannot fit"):
            page.insert(bytes(128))

    def test_empty_record_allowed(self):
        page = fresh()
        slot = page.insert(b"")
        assert page.get(slot) == b""


class TestUpdate:
    def test_shrinking_update_in_place(self):
        page = fresh()
        slot = page.insert(b"longrecord")
        assert page.update(slot, b"short")
        assert page.get(slot) == b"short"

    def test_growing_update(self):
        page = fresh()
        slot = page.insert(b"ab")
        assert page.update(slot, b"much longer record")
        assert page.get(slot) == b"much longer record"

    def test_growing_update_fails_when_full(self):
        page = fresh(64)
        slot = page.insert(b"x" * 20)
        assert not page.update(slot, b"y" * 60)
        assert page.get(slot) == b"x" * 20  # restored

    def test_update_survives_compaction_of_neighbours(self):
        page = fresh(256)
        a = page.insert(b"a" * 50)
        b = page.insert(b"b" * 50)
        c = page.insert(b"c" * 50)
        page.delete(a)
        page.delete(c)
        # Growing b beyond contiguous free space forces compaction.
        assert page.update(b, b"B" * 120)
        assert page.get(b) == b"B" * 120


class TestCompaction:
    def test_compact_reclaims_holes(self):
        page = fresh(256)
        slots = [page.insert(bytes([i]) * 20) for i in range(8)]
        for slot in slots[::2]:
            page.delete(slot)
        # A record larger than any single hole still fits post-compaction.
        big = page.insert(b"z" * 60)
        assert big is not None
        for index in range(1, 8, 2):
            assert page.get(slots[index]) == bytes([index]) * 20


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.one_of(
            st.tuples(st.just("insert"), st.binary(max_size=40)),
            st.tuples(st.just("delete"), st.integers(min_value=0, max_value=30)),
            st.tuples(st.just("update"), st.integers(min_value=0, max_value=30),
                      st.binary(max_size=40)),
        ),
        max_size=60,
    )
)
def test_model_equivalence(operations):
    """The page behaves like a dict slot -> bytes under random ops."""
    page = fresh(1024)
    model = {}
    live_slots = []
    for operation in operations:
        if operation[0] == "insert":
            record = operation[1]
            slot = page.insert(record)
            if slot is not None:
                model[slot] = record
                live_slots.append(slot)
        elif operation[0] == "delete" and live_slots:
            slot = live_slots[operation[1] % len(live_slots)]
            page.delete(slot)
            del model[slot]
            live_slots.remove(slot)
        elif operation[0] == "update" and live_slots:
            slot = live_slots[operation[1] % len(live_slots)]
            if page.update(slot, operation[2]):
                model[slot] = operation[2]
    assert dict(page.records()) == model
