"""Heap files and large-object storage."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager
from repro.storage.heapfile import HeapFile, RID
from repro.storage.lob import LOBManager


@pytest.fixture
def pool():
    return BufferPool(DiskManager(None, page_size=512), capacity=64)


class TestHeapFile:
    def test_insert_get_scan(self, pool):
        heap = HeapFile.create(pool)
        rids = [heap.insert(f"r{i}".encode()) for i in range(100)]
        assert heap.get(rids[57]) == b"r57"
        scanned = dict(heap.scan())
        assert len(scanned) == 100
        assert scanned[rids[3]] == b"r3"

    def test_spans_pages(self, pool):
        heap = HeapFile.create(pool)
        for i in range(100):
            heap.insert(bytes(100))
        assert len(list(heap.pages())) > 1
        assert heap.count() == 100

    def test_delete(self, pool):
        heap = HeapFile.create(pool)
        rid = heap.insert(b"bye")
        heap.delete(rid)
        assert heap.count() == 0

    def test_update_in_place_keeps_rid(self, pool):
        heap = HeapFile.create(pool)
        rid = heap.insert(b"0123456789")
        assert heap.update(rid, b"short") == rid
        assert heap.get(rid) == b"short"

    def test_update_move_returns_new_rid(self, pool):
        heap = HeapFile.create(pool)
        rid = heap.insert(b"x")
        for __ in range(30):
            heap.insert(b"y" * 100)  # fill the record's page
        new_rid = heap.update(rid, b"z" * 400)
        assert heap.get(new_rid) == b"z" * 400

    def test_record_too_big(self, pool):
        heap = HeapFile.create(pool)
        with pytest.raises(StorageError, match="LOB"):
            heap.insert(bytes(5000))

    def test_reopen_by_first_page(self, pool):
        heap = HeapFile.create(pool)
        rid = heap.insert(b"persisted")
        again = HeapFile(pool, heap.first_page)
        assert again.get(rid) == b"persisted"

    def test_drop_frees_pages(self, pool):
        heap = HeapFile.create(pool)
        for __ in range(50):
            heap.insert(bytes(100))
        before = pool.disk.num_pages
        heap.drop()
        fresh = HeapFile.create(pool)
        for __ in range(50):
            fresh.insert(bytes(100))
        # Freed pages were reused: no growth beyond the original extent.
        assert pool.disk.num_pages <= before + 1


class TestLOB:
    def test_roundtrip_various_sizes(self, pool):
        lobs = LOBManager(pool)
        for size in (0, 1, 505, 506, 507, 2000, 10000):
            data = bytes((i * 13) % 256 for i in range(size))
            ref = lobs.write(data)
            assert ref.length == size
            assert lobs.read(ref) == data

    def test_read_range(self, pool):
        lobs = LOBManager(pool)
        data = bytes(range(256)) * 20  # 5120 bytes across pages
        ref = lobs.write(data)
        assert lobs.read_range(ref, 0, 10) == data[:10]
        assert lobs.read_range(ref, 500, 600) == data[500:1100]
        assert lobs.read_range(ref, 5000, 1000) == data[5000:]
        assert lobs.read_range(ref, 9999, 10) == b""
        assert lobs.read_range(ref, 100, 0) == b""

    def test_read_range_negative_raises(self, pool):
        lobs = LOBManager(pool)
        ref = lobs.write(b"abc")
        with pytest.raises(StorageError):
            lobs.read_range(ref, -1, 2)

    def test_handle_interface(self, pool):
        lobs = LOBManager(pool)
        ref = lobs.write(b"hello world")
        handle = lobs.handle(ref)
        assert handle.length() == 11
        assert handle.read_range(6, 5) == b"world"
        assert handle.read_all() == b"hello world"

    def test_free_releases_pages(self, pool):
        lobs = LOBManager(pool)
        ref = lobs.write(bytes(3000))
        before = pool.disk.num_pages
        lobs.free(ref)
        ref2 = lobs.write(bytes(3000))
        assert pool.disk.num_pages == before  # pages reused

    @settings(max_examples=30, deadline=None)
    @given(
        data=st.binary(max_size=3000),
        offset=st.integers(min_value=0, max_value=3500),
        length=st.integers(min_value=0, max_value=3500),
    )
    def test_read_range_matches_slicing(self, data, offset, length):
        pool = BufferPool(DiskManager(None, page_size=256), capacity=64)
        lobs = LOBManager(pool)
        ref = lobs.write(data)
        expected = data[offset:offset + length]
        assert lobs.read_range(ref, offset, length) == expected
