"""WAL crash recovery, verified bit-identically at every fault point.

The acceptance criterion of the durability issue: for *every* injected
crash point — kill-at-write, torn append, failed fsync — reopening the
database recovers exactly the committed-statement prefix, byte-for-byte
equal to a serial replay of those statements on a fresh database.  The
sweep runs across all six UDF execution designs (their CREATE FUNCTION
payloads and catalog blobs differ), plus group-commit behaviour, the
``db.stats()["wal"]`` counters, and the clean-shutdown checkpoint.

The harness lives in :mod:`tests.storage.faults`; see its module
docstring for the checking protocol.
"""

import os
import shutil
import tempfile
import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.designs import Design
from repro.database import Database
from repro.errors import SimulatedCrash, WALError
from repro.server.client import Client
from repro.server.server import DatabaseServer
from tests.storage.faults import (
    CrashPoint,
    apply_statements,
    build_db,
    fingerprint,
    run_crash_check,
    trace_ops,
)

SETUP = [
    "CREATE TABLE items (id INT, name STRING, data BYTEARRAY)",
    "CREATE TABLE totals (id INT, v INT)",
    "CREATE INDEX totals_id ON totals(id)",
    "INSERT INTO items VALUES (1, 'a', zerobytes(16)), "
    "(2, 'b', zerobytes(2000))",
    "INSERT INTO totals VALUES (1, 100), (2, 200), (3, 300)",
]

#: The exhaustive-sweep workload: multi-row DML, an index-maintaining
#: UPDATE, DDL (catalog record), a LOB spill, a logical failure whose
#: partial effects must replay deterministically, and a LOB-freeing
#: DELETE.
WORKLOAD = [
    "INSERT INTO totals VALUES (10, 1000), (11, 1100)",
    "UPDATE totals SET v = v + 7 WHERE id <= 2",
    "CREATE FUNCTION plus2(int) RETURNS int LANGUAGE JAGUAR "
    "DESIGN SANDBOX AS 'def plus2(x: int) -> int: return x + 2'",
    "INSERT INTO items VALUES (3, 'c', zerobytes(5000))",
    "INSERT INTO totals VALUES (1)",   # arity error: logical failure
    "DELETE FROM items WHERE id = 2",  # frees LOB pages
    "UPDATE totals SET v = plus2(v) WHERE id = 10",
]


def mode_for(ops, index):
    """Pick the crash mode matching the op kind at ``index`` (writes
    alternate kill/torn so both get swept; fsyncs fail)."""
    kind = ops[index][0]
    if kind == "fsync":
        return "fsync"
    return "kill" if index % 2 == 0 else "torn"


def triple_native(x):
    return x * 3 + 1


DESIGN_SQL = {
    Design.NATIVE_INTEGRATED:
        "LANGUAGE NATIVE DESIGN INTEGRATED AS "
        "'tests.storage.test_wal_recovery:triple_native'",
    Design.NATIVE_SFI:
        "LANGUAGE NATIVE DESIGN SFI AS "
        "'tests.storage.test_wal_recovery:triple_native'",
    Design.NATIVE_ISOLATED:
        "LANGUAGE NATIVE DESIGN ISOLATED AS "
        "'tests.storage.test_wal_recovery:triple_native'",
    Design.SANDBOX_JIT:
        "LANGUAGE JAGUAR DESIGN SANDBOX AS "
        "'def arith(x: int) -> int:\n    return x * 3 + 1'",
    Design.SANDBOX_INTERP:
        "LANGUAGE JAGUAR DESIGN SANDBOX_INTERP AS "
        "'def arith(x: int) -> int:\n    return x * 3 + 1'",
    Design.SANDBOX_ISOLATED:
        "LANGUAGE JAGUAR DESIGN SANDBOX_ISOLATED AS "
        "'def arith(x: int) -> int:\n    return x * 3 + 1'",
}


# -- the tentpole: every crash point recovers bit-identically -----------------

class TestCrashSweep:
    @pytest.mark.parametrize("lose_tail", [False, True],
                             ids=["keep-tail", "lose-tail"])
    def test_every_fault_point_recovers_committed_prefix(
        self, tmp_path, lose_tail
    ):
        """Sweep a crash over every storage write and fsync the workload
        performs; each recovered state must equal the serial replay of
        its committed prefix, byte for byte."""
        base = str(tmp_path)
        ops = trace_ops(base, SETUP, WORKLOAD)
        assert len(ops) > len(WORKLOAD)  # pages + commits + fsyncs
        replays = {}
        recovered = []
        for index in range(len(ops)):
            recovered.append(run_crash_check(
                base, SETUP, WORKLOAD,
                at=index, mode=mode_for(ops, index),
                lose_tail=lose_tail, replays=replays,
            ))
        # The sweep exercised real prefixes, not just all-or-nothing.
        assert min(recovered) < max(recovered)

    def test_crash_points_cover_wal_and_disk_sites(self, tmp_path):
        ops = trace_ops(str(tmp_path), SETUP, WORKLOAD)
        sites = {site for __, site in ops}
        assert "wal.append" in sites
        assert "wal.fsync" in sites

    def test_recovery_is_idempotent(self, tmp_path):
        """Reopening a recovered database recovers nothing further and
        leaves the files byte-identical."""
        base = str(tmp_path)
        path = os.path.join(base, "db")
        ops = trace_ops(base, SETUP, WORKLOAD)
        # A write op past the midpoint, so real statements committed.
        at = next(
            i for i, (kind, __) in enumerate(ops)
            if kind == "write" and i >= len(ops) // 2
        )
        point = CrashPoint(at=at, mode="torn")
        db = build_db(path, SETUP, faults=point)
        point.armed = True
        __, crashed = apply_statements(db, WORKLOAD)
        assert crashed
        db.registry.close()
        del db

        first = Database(path)
        assert first.wal.recovered_statements > 0
        first.close()
        state = fingerprint(path)
        second = Database(path)
        assert second.wal.recovered_statements == 0
        second.close()
        assert fingerprint(path) == state


# -- all six designs ----------------------------------------------------------

class TestAllDesignsRecover:
    @pytest.mark.parametrize("design", list(DESIGN_SQL),
                             ids=lambda d: d.value)
    def test_design_workload_recovers_at_every_op(self, tmp_path, design):
        """A workload whose catalog blob and UDF execution differ per
        design: crash at every op (lost tail — the strictest variant)
        and require bit-identical recovery."""
        workload = [
            f"CREATE FUNCTION arith(int) RETURNS int {DESIGN_SQL[design]}",
            "UPDATE totals SET v = arith(v) WHERE id <= 2",
            "INSERT INTO totals VALUES (12, 1200)",
        ]
        base = str(tmp_path)
        ops = trace_ops(base, SETUP, workload)
        replays = {}
        for index in range(len(ops)):
            run_crash_check(
                base, SETUP, workload,
                at=index, mode=mode_for(ops, index),
                lose_tail=True, replays=replays,
            )


# -- property suite: random statement sequences -------------------------------

POOL = [
    "INSERT INTO totals VALUES (20, 2000), (21, 2100)",
    "UPDATE totals SET v = v + 7 WHERE id <= 2",
    "DELETE FROM totals WHERE id = 2",
    "INSERT INTO items VALUES (9, 'z', zerobytes(3000))",
    "DELETE FROM items WHERE id = 2",
    "CREATE FUNCTION fx(int) RETURNS int LANGUAGE JAGUAR "
    "DESIGN SANDBOX AS 'def fx(x: int) -> int: return x + 2'",
    "INSERT INTO totals VALUES (1)",    # arity error
    "CREATE INDEX bad ON items(name)",  # non-INT column: logical failure
]


class TestRecoveryProperty:
    @settings(
        max_examples=6, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        picks=st.lists(
            st.integers(min_value=0, max_value=len(POOL) - 1),
            min_size=2, max_size=4,
        ),
        lose_tail=st.booleans(),
    )
    def test_random_sequences_crash_at_every_point(self, picks, lose_tail):
        """Random statement sequences (duplicates become deterministic
        logical failures), crashed at every fault point: the recovered
        database equals the committed prefix, bit-identically."""
        statements = [POOL[i] for i in picks]
        base = tempfile.mkdtemp(prefix="walprop-")
        try:
            ops = trace_ops(base, SETUP, statements)
            replays = {}
            for index in range(len(ops)):
                run_crash_check(
                    base, SETUP, statements,
                    at=index, mode=mode_for(ops, index),
                    lose_tail=lose_tail, replays=replays,
                )
        finally:
            shutil.rmtree(base, ignore_errors=True)


# -- failed fsync semantics ---------------------------------------------------

class TestFailedFsync:
    def test_failed_fsync_refuses_commit_then_stops_accepting(
        self, tmp_path
    ):
        """A failed fsync must surface as WALError (the commit is not
        acknowledged) and the engine must refuse further writes rather
        than silently lose data."""
        path = str(tmp_path / "db")
        ops = trace_ops(str(tmp_path), SETUP, WORKLOAD[:1])
        fsync_index = next(
            i for i, (kind, __) in enumerate(ops) if kind == "fsync"
        )
        point = CrashPoint(at=fsync_index, mode="fsync")
        db = build_db(path, SETUP, faults=point)
        point.armed = True
        with pytest.raises(WALError):
            db.execute(WORKLOAD[0])
        with pytest.raises((SimulatedCrash, WALError)):
            db.execute("INSERT INTO totals VALUES (30, 3000)")
        db.registry.close()
        del db
        # Recovery: the un-acknowledged statement may or may not survive
        # in the log tail; either way the state equals a committed
        # prefix (the full sweep asserts bit-identity — here we pin the
        # user-visible contract).
        recovered = Database(path)
        rows = recovered.query("SELECT id FROM totals WHERE id = 30")
        assert rows == []
        recovered.close()


# -- group commit -------------------------------------------------------------

class TestGroupCommit:
    def test_concurrent_writers_share_fsyncs(self, tmp_path):
        """Writers on disjoint tables landing within the group window
        retire on a shared fsync: fewer fsyncs than statements, batch
        sizes > 1 in the stats."""
        db = Database(str(tmp_path / "db"), group_commit_window=0.2)
        names = [f"w{i}" for i in range(4)]
        for name in names:
            db.execute(f"CREATE TABLE {name} (id INT, v INT)")
        before = db.stats()["wal"]["fsyncs"]
        barrier = threading.Barrier(len(names))
        errors = []

        def writer(name):
            try:
                barrier.wait(5)
                db.execute(f"INSERT INTO {name} VALUES (1, 10)")
            except Exception as exc:  # pragma: no cover - fail loud
                errors.append((name, exc))

        threads = [
            threading.Thread(target=writer, args=(n,)) for n in names
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert not errors, errors
        stats = db.stats()["wal"]
        fsyncs = stats["fsyncs"] - before
        assert fsyncs < len(names)
        assert stats["max_batch"] >= 2
        assert stats["grouped_commits"] >= 2
        db.close()

    def test_window_zero_syncs_each_statement(self, tmp_path):
        db = Database(str(tmp_path / "db"))
        assert db.group_commit_window == 0.0
        db.execute("CREATE TABLE t (id INT)")
        before = db.stats()["wal"]["fsyncs"]
        for i in range(3):
            db.execute(f"INSERT INTO t VALUES ({i})")
        assert db.stats()["wal"]["fsyncs"] == before + 3
        db.close()

    def test_window_is_mutable_at_runtime(self, tmp_path):
        db = Database(str(tmp_path / "db"))
        db.group_commit_window = 0.005
        assert db.group_commit_window == 0.005
        db.close()

    def test_in_memory_database_has_no_wal(self):
        db = Database()
        try:
            assert db.wal is None
            assert "wal" not in db.stats()
            with pytest.raises(ValueError):
                db.group_commit_window = 0.01
        finally:
            db.close()


# -- stats counters -----------------------------------------------------------

class TestWalStats:
    def test_counters_move_and_recovery_is_counted(self, tmp_path):
        path = str(tmp_path / "db")
        db = build_db(path, SETUP)
        stats = db.stats()["wal"]
        assert stats["statements_logged"] == len(SETUP)
        assert stats["appends"] > stats["statements_logged"]
        assert stats["fsyncs"] >= len(SETUP)
        assert stats["bytes_appended"] > 0
        assert stats["recovered_statements"] == 0
        db.registry.close()
        del db  # crash: no checkpoint

        recovered = Database(path)
        stats = recovered.stats()["wal"]
        assert stats["recovered_statements"] == len(SETUP)
        recovered.close()

    def test_commit_batches_accounting(self, tmp_path):
        db = build_db(str(tmp_path / "db"), SETUP)
        stats = db.stats()["wal"]
        # Serial writers: every batch has exactly one statement.
        assert stats["commit_batches"] >= len(SETUP)
        assert stats["max_batch"] == 1
        assert stats["mean_batch"] == 1.0
        assert stats["grouped_commits"] == 0
        db.close()


# -- clean shutdown -----------------------------------------------------------

class TestCleanShutdown:
    def test_close_checkpoints_and_truncates_the_log(self, tmp_path):
        path = str(tmp_path / "db")
        db = build_db(path, SETUP)
        assert db.wal.size() > 0
        db.close()
        assert os.path.getsize(os.path.join(path, "wal.log")) == 0
        reopened = Database(path)
        assert reopened.wal.recovered_statements == 0
        assert reopened.query("SELECT count(*) FROM totals") == [(3,)]
        assert reopened.stats()["wal"]["checkpoints"] == 0
        reopened.close()

    def test_server_stop_then_close_checkpoints(self, tmp_path):
        """The ``stop()`` regression: server drains, database closes,
        and the log is empty — a restart recovers nothing and loses
        nothing."""
        path = str(tmp_path / "db")
        database = Database(path)
        with DatabaseServer(database, trust_all_clients=True) as server:
            with Client(server.host, server.port) as client:
                client.execute("CREATE TABLE t (id INT, v INT)")
                client.execute("INSERT INTO t VALUES (1, 10), (2, 20)")
                stats = client.execute("SELECT count(*) FROM t").scalar()
                assert stats == 2
            server.stop()
        database.close()
        assert os.path.getsize(os.path.join(path, "wal.log")) == 0
        reopened = Database(path)
        assert reopened.wal.recovered_statements == 0
        assert reopened.query("SELECT id, v FROM t ORDER BY id") == [
            (1, 10), (2, 20)
        ]
        stats = reopened.stats()["wal"]
        assert stats["statements_logged"] == 0  # nothing replayed
        reopened.close()
