"""WAL crash recovery, verified bit-identically at every fault point.

The acceptance criterion of the durability issue: for *every* injected
crash point — kill-at-write, torn append, failed fsync — reopening the
database recovers exactly the committed-statement prefix, byte-for-byte
equal to a serial replay of those statements on a fresh database.  The
sweep runs across all six UDF execution designs (their CREATE FUNCTION
payloads and catalog blobs differ), plus group-commit behaviour, the
``db.stats()["wal"]`` counters, and the clean-shutdown checkpoint.

The harness lives in :mod:`tests.storage.faults`; see its module
docstring for the checking protocol.
"""

import os
import shutil
import tempfile
import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.designs import Design
from repro.database import Database
from repro.errors import SimulatedCrash, WALError
from repro.server.client import Client
from repro.server.server import DatabaseServer
from repro.storage.wal import FaultPoint
from tests.storage.faults import (
    CrashPoint,
    apply_statements,
    build_db,
    check_free_list,
    fingerprint,
    run_crash_check,
    trace_ops,
)

SETUP = [
    "CREATE TABLE items (id INT, name STRING, data BYTEARRAY)",
    "CREATE TABLE totals (id INT, v INT)",
    "CREATE INDEX totals_id ON totals(id)",
    "INSERT INTO items VALUES (1, 'a', zerobytes(16)), "
    "(2, 'b', zerobytes(2000))",
    "INSERT INTO totals VALUES (1, 100), (2, 200), (3, 300)",
]

#: The exhaustive-sweep workload: multi-row DML, an index-maintaining
#: UPDATE, DDL (catalog record), a LOB spill, a logical failure whose
#: partial effects must replay deterministically, and a LOB-freeing
#: DELETE.
WORKLOAD = [
    "INSERT INTO totals VALUES (10, 1000), (11, 1100)",
    "UPDATE totals SET v = v + 7 WHERE id <= 2",
    "CREATE FUNCTION plus2(int) RETURNS int LANGUAGE JAGUAR "
    "DESIGN SANDBOX AS 'def plus2(x: int) -> int: return x + 2'",
    "INSERT INTO items VALUES (3, 'c', zerobytes(5000))",
    "INSERT INTO totals VALUES (1)",   # arity error: logical failure
    "DELETE FROM items WHERE id = 2",  # frees LOB pages
    "UPDATE totals SET v = plus2(v) WHERE id = 10",
]


def mode_for(ops, index):
    """Pick the crash mode matching the op kind at ``index`` (writes
    alternate kill/torn so both get swept; fsyncs fail)."""
    kind = ops[index][0]
    if kind == "fsync":
        return "fsync"
    return "kill" if index % 2 == 0 else "torn"


def triple_native(x):
    return x * 3 + 1


DESIGN_SQL = {
    Design.NATIVE_INTEGRATED:
        "LANGUAGE NATIVE DESIGN INTEGRATED AS "
        "'tests.storage.test_wal_recovery:triple_native'",
    Design.NATIVE_SFI:
        "LANGUAGE NATIVE DESIGN SFI AS "
        "'tests.storage.test_wal_recovery:triple_native'",
    Design.NATIVE_ISOLATED:
        "LANGUAGE NATIVE DESIGN ISOLATED AS "
        "'tests.storage.test_wal_recovery:triple_native'",
    Design.SANDBOX_JIT:
        "LANGUAGE JAGUAR DESIGN SANDBOX AS "
        "'def arith(x: int) -> int:\n    return x * 3 + 1'",
    Design.SANDBOX_INTERP:
        "LANGUAGE JAGUAR DESIGN SANDBOX_INTERP AS "
        "'def arith(x: int) -> int:\n    return x * 3 + 1'",
    Design.SANDBOX_ISOLATED:
        "LANGUAGE JAGUAR DESIGN SANDBOX_ISOLATED AS "
        "'def arith(x: int) -> int:\n    return x * 3 + 1'",
}


# -- the tentpole: every crash point recovers bit-identically -----------------

class TestCrashSweep:
    @pytest.mark.parametrize("lose_tail", [False, True],
                             ids=["keep-tail", "lose-tail"])
    def test_every_fault_point_recovers_committed_prefix(
        self, tmp_path, lose_tail
    ):
        """Sweep a crash over every storage write and fsync the workload
        performs; each recovered state must equal the serial replay of
        its committed prefix, byte for byte."""
        base = str(tmp_path)
        ops = trace_ops(base, SETUP, WORKLOAD)
        assert len(ops) > len(WORKLOAD)  # pages + commits + fsyncs
        replays = {}
        recovered = []
        for index in range(len(ops)):
            recovered.append(run_crash_check(
                base, SETUP, WORKLOAD,
                at=index, mode=mode_for(ops, index),
                lose_tail=lose_tail, replays=replays,
            ))
        # The sweep exercised real prefixes, not just all-or-nothing.
        assert min(recovered) < max(recovered)

    def test_crash_points_cover_wal_and_disk_sites(self, tmp_path):
        ops = trace_ops(str(tmp_path), SETUP, WORKLOAD)
        sites = {site for __, site in ops}
        assert "wal.append" in sites
        assert "wal.fsync" in sites

    def test_recovery_is_idempotent(self, tmp_path):
        """Reopening a recovered database recovers nothing further and
        leaves the files byte-identical."""
        base = str(tmp_path)
        path = os.path.join(base, "db")
        ops = trace_ops(base, SETUP, WORKLOAD)
        # A write op past the midpoint, so real statements committed.
        at = next(
            i for i, (kind, __) in enumerate(ops)
            if kind == "write" and i >= len(ops) // 2
        )
        point = CrashPoint(at=at, mode="torn")
        db = build_db(path, SETUP, faults=point)
        point.armed = True
        __, crashed = apply_statements(db, WORKLOAD)
        assert crashed
        db.registry.close()
        del db

        first = Database(path)
        assert first.wal.recovered_statements > 0
        first.close()
        state = fingerprint(path)
        second = Database(path)
        assert second.wal.recovered_statements == 0
        second.close()
        assert fingerprint(path) == state


# -- all six designs ----------------------------------------------------------

class TestAllDesignsRecover:
    @pytest.mark.parametrize("design", list(DESIGN_SQL),
                             ids=lambda d: d.value)
    def test_design_workload_recovers_at_every_op(self, tmp_path, design):
        """A workload whose catalog blob and UDF execution differ per
        design: crash at every op (lost tail — the strictest variant)
        and require bit-identical recovery."""
        workload = [
            f"CREATE FUNCTION arith(int) RETURNS int {DESIGN_SQL[design]}",
            "UPDATE totals SET v = arith(v) WHERE id <= 2",
            "INSERT INTO totals VALUES (12, 1200)",
        ]
        base = str(tmp_path)
        ops = trace_ops(base, SETUP, workload)
        replays = {}
        for index in range(len(ops)):
            run_crash_check(
                base, SETUP, workload,
                at=index, mode=mode_for(ops, index),
                lose_tail=True, replays=replays,
            )


# -- property suite: random statement sequences -------------------------------

POOL = [
    "INSERT INTO totals VALUES (20, 2000), (21, 2100)",
    "UPDATE totals SET v = v + 7 WHERE id <= 2",
    "DELETE FROM totals WHERE id = 2",
    "INSERT INTO items VALUES (9, 'z', zerobytes(3000))",
    "DELETE FROM items WHERE id = 2",
    "CREATE FUNCTION fx(int) RETURNS int LANGUAGE JAGUAR "
    "DESIGN SANDBOX AS 'def fx(x: int) -> int: return x + 2'",
    "INSERT INTO totals VALUES (1)",    # arity error
    "CREATE INDEX bad ON items(name)",  # non-INT column: logical failure
]


class TestRecoveryProperty:
    @settings(
        max_examples=6, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        picks=st.lists(
            st.integers(min_value=0, max_value=len(POOL) - 1),
            min_size=2, max_size=4,
        ),
        lose_tail=st.booleans(),
    )
    def test_random_sequences_crash_at_every_point(self, picks, lose_tail):
        """Random statement sequences (duplicates become deterministic
        logical failures), crashed at every fault point: the recovered
        database equals the committed prefix, bit-identically."""
        statements = [POOL[i] for i in picks]
        base = tempfile.mkdtemp(prefix="walprop-")
        try:
            ops = trace_ops(base, SETUP, statements)
            replays = {}
            for index in range(len(ops)):
                run_crash_check(
                    base, SETUP, statements,
                    at=index, mode=mode_for(ops, index),
                    lose_tail=lose_tail, replays=replays,
                )
        finally:
            shutil.rmtree(base, ignore_errors=True)


# -- failed fsync semantics ---------------------------------------------------

class TestFailedFsync:
    def test_failed_fsync_refuses_commit_then_stops_accepting(
        self, tmp_path
    ):
        """A failed fsync must surface as WALError (the commit is not
        acknowledged) and the engine must refuse further writes rather
        than silently lose data."""
        path = str(tmp_path / "db")
        ops = trace_ops(str(tmp_path), SETUP, WORKLOAD[:1])
        fsync_index = next(
            i for i, (kind, __) in enumerate(ops) if kind == "fsync"
        )
        point = CrashPoint(at=fsync_index, mode="fsync")
        db = build_db(path, SETUP, faults=point)
        point.armed = True
        with pytest.raises(WALError):
            db.execute(WORKLOAD[0])
        with pytest.raises((SimulatedCrash, WALError)):
            db.execute("INSERT INTO totals VALUES (30, 3000)")
        db.registry.close()
        del db
        # Recovery: the un-acknowledged statement may or may not survive
        # in the log tail; either way the state equals a committed
        # prefix (the full sweep asserts bit-identity — here we pin the
        # user-visible contract).
        recovered = Database(path)
        rows = recovered.query("SELECT id FROM totals WHERE id = 30")
        assert rows == []
        recovered.close()


# -- group commit -------------------------------------------------------------

class TestGroupCommit:
    def test_concurrent_writers_share_fsyncs(self, tmp_path):
        """Writers on disjoint tables landing within the group window
        retire on a shared fsync: fewer fsyncs than statements, batch
        sizes > 1 in the stats."""
        db = Database(str(tmp_path / "db"), group_commit_window=0.2)
        names = [f"w{i}" for i in range(4)]
        for name in names:
            db.execute(f"CREATE TABLE {name} (id INT, v INT)")
        before = db.stats()["wal"]["fsyncs"]
        barrier = threading.Barrier(len(names))
        errors = []

        def writer(name):
            try:
                barrier.wait(5)
                db.execute(f"INSERT INTO {name} VALUES (1, 10)")
            except Exception as exc:  # pragma: no cover - fail loud
                errors.append((name, exc))

        threads = [
            threading.Thread(target=writer, args=(n,)) for n in names
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert not errors, errors
        stats = db.stats()["wal"]
        fsyncs = stats["fsyncs"] - before
        assert fsyncs < len(names)
        assert stats["max_batch"] >= 2
        assert stats["grouped_commits"] >= 2
        db.close()

    def test_window_zero_syncs_each_statement(self, tmp_path):
        db = Database(str(tmp_path / "db"))
        assert db.group_commit_window == 0.0
        db.execute("CREATE TABLE t (id INT)")
        before = db.stats()["wal"]["fsyncs"]
        for i in range(3):
            db.execute(f"INSERT INTO t VALUES ({i})")
        assert db.stats()["wal"]["fsyncs"] == before + 3
        db.close()

    def test_window_is_mutable_at_runtime(self, tmp_path):
        db = Database(str(tmp_path / "db"))
        db.group_commit_window = 0.005
        assert db.group_commit_window == 0.005
        db.close()

    def test_in_memory_database_has_no_wal(self):
        db = Database()
        try:
            assert db.wal is None
            assert "wal" not in db.stats()
            with pytest.raises(ValueError):
                db.group_commit_window = 0.01
        finally:
            db.close()


# -- stats counters -----------------------------------------------------------

class TestWalStats:
    def test_counters_move_and_recovery_is_counted(self, tmp_path):
        path = str(tmp_path / "db")
        db = build_db(path, SETUP)
        stats = db.stats()["wal"]
        assert stats["statements_logged"] == len(SETUP)
        assert stats["appends"] > stats["statements_logged"]
        assert stats["fsyncs"] >= len(SETUP)
        assert stats["bytes_appended"] > 0
        assert stats["recovered_statements"] == 0
        db.registry.close()
        del db  # crash: no checkpoint

        recovered = Database(path)
        stats = recovered.stats()["wal"]
        assert stats["recovered_statements"] == len(SETUP)
        recovered.close()

    def test_commit_batches_accounting(self, tmp_path):
        db = build_db(str(tmp_path / "db"), SETUP)
        stats = db.stats()["wal"]
        # Serial writers: every batch has exactly one statement.
        assert stats["commit_batches"] >= len(SETUP)
        assert stats["max_batch"] == 1
        assert stats["mean_batch"] == 1.0
        assert stats["grouped_commits"] == 0
        db.close()


# -- free list is commit-granular ---------------------------------------------

class TestCommitGranularFreeList:
    def test_uncommitted_free_never_reaches_shared_state(self, tmp_path):
        """A statement's page frees stay buffered in its tracker until
        it publishes: a concurrent committer's geometry must not carry
        the uncommitted ``free_head``, and after a crash the free list
        must not thread through the in-flight statement's pages."""
        path = str(tmp_path / "db")
        db = build_db(path, SETUP)
        head_before = db.disk.geometry()[1]
        ready = threading.Event()
        release = threading.Event()
        state = {}

        def inflight():
            # Simulates a write statement paused mid-flight after
            # freeing pages (e.g. a DELETE dropping a LOB chain).
            tracker = db.pool.begin_tracking()
            ref = db.lobs.write(b"y" * 20000)  # three LOB pages
            db.lobs.free(ref)
            state["first_page"] = ref.first_page
            state["buffered"] = list(tracker.freed)
            ready.set()
            release.wait(10)
            db.pool.end_tracking(tracker)

        thread = threading.Thread(target=inflight)
        thread.start()
        assert ready.wait(10)
        # The frees are buffered, not applied: the shared head is
        # untouched, so an allocator can never be handed these pages.
        assert len(state["buffered"]) == 3
        assert db.disk.geometry()[1] == head_before
        # A concurrent committer on another table logs its geometry —
        # which must not name the uncommitted frees.
        db.execute("INSERT INTO totals VALUES (40, 4000)")
        assert db.disk.geometry()[1] == head_before
        # Crash before the in-flight statement ever publishes.
        release.set()
        thread.join(10)
        db.registry.close()
        del db

        recovered = Database(path)
        free = check_free_list(recovered)
        assert state["first_page"] not in free
        assert recovered.query(
            "SELECT v FROM totals WHERE id = 40"
        ) == [(4000,)]
        # Allocation and freeing on the recovered free list work.
        recovered.execute(
            "INSERT INTO items VALUES (7, 'q', zerobytes(5000))"
        )
        recovered.execute("DELETE FROM items WHERE id = 7")
        check_free_list(recovered)
        recovered.close()
        reopened = Database(path)
        check_free_list(reopened)
        reopened.close()

    @pytest.mark.parametrize("at", [6, 14, 26])
    def test_concurrent_free_and_commit_crash_keeps_free_list_sound(
        self, tmp_path, at
    ):
        """Two writers — one churning LOB allocations/frees, one
        inserting on a disjoint table — crashed mid-run: the recovered
        free list must be structurally sound and reusable."""
        path = str(tmp_path / f"db{at}")
        point = CrashPoint(at=at, mode="torn")
        db = build_db(path, SETUP, faults=point)
        point.armed = True

        def churn_items():
            try:
                for i in range(20):
                    db.execute(
                        f"INSERT INTO items VALUES "
                        f"({100 + i}, 'x', zerobytes(4000))"
                    )
                    db.execute(f"DELETE FROM items WHERE id = {100 + i}")
            except Exception:
                pass  # crashed (or post-crash refusal): expected

        def churn_totals():
            try:
                for i in range(40):
                    db.execute(
                        f"INSERT INTO totals VALUES ({500 + i}, {i})"
                    )
            except Exception:
                pass

        threads = [
            threading.Thread(target=churn_items),
            threading.Thread(target=churn_totals),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        point.armed = False
        db.registry.close()
        del db

        recovered = Database(path)
        check_free_list(recovered)
        recovered.query("SELECT count(*) FROM items")
        recovered.query("SELECT count(*) FROM totals")
        # The recovered free list hands out usable pages.
        recovered.execute(
            "INSERT INTO items VALUES (900, 'w', zerobytes(4000))"
        )
        recovered.close()
        reopened = Database(path)
        check_free_list(reopened)
        assert reopened.query(
            "SELECT count(*) FROM items WHERE id = 900"
        ) == [(1,)]
        reopened.close()


# -- dead-WAL shutdown must not write the header ------------------------------

class _FailWalFsync(FaultPoint):
    """Fail WAL fsyncs once armed; data-file syncs stay healthy (the
    scenario where the log dies but the disk manager would happily
    persist its poisoned in-memory header on close)."""

    def __init__(self) -> None:
        self.armed = False

    def fsync(self, site: str) -> bool:
        return not (self.armed and site == "wal.fsync")


class TestDeadWalClose:
    def test_close_after_dead_wal_leaves_header_alone(self, tmp_path):
        """After a failed commit fsync, ``close()`` must not sync the
        data file: the in-memory header holds the crashed statement's
        free list, and with the log tail lost there is no committed
        record to restore the header from on reopen."""
        path = str(tmp_path / "db")
        fault = _FailWalFsync()
        db = build_db(path, SETUP, faults=fault)
        db.checkpoint()  # empty log: recovery will have nothing to redo
        before = fingerprint(path)
        fault.armed = True
        with pytest.raises(WALError):
            db.execute("DELETE FROM items WHERE id = 2")  # frees LOBs
        fault.armed = False
        db.close()  # dead WAL: must skip checkpoint AND header sync
        # The never-fsynced log tail dies with the OS page cache.
        wal_path = os.path.join(path, "wal.log")
        with open(wal_path, "r+b") as handle:
            handle.truncate(0)
        assert fingerprint(path) == before, (
            "close() persisted state the WAL never made durable"
        )

        recovered = Database(path)
        assert recovered.wal.recovered_statements == 0
        # The unacknowledged DELETE vanished; the free list is sound.
        assert recovered.query("SELECT count(*) FROM items") == [(2,)]
        check_free_list(recovered)
        recovered.execute(
            "INSERT INTO items VALUES (5, 'e', zerobytes(3000))"
        )
        recovered.close()


# -- statements larger than the buffer pool -----------------------------------

class TestPoolBoundedStatements:
    def test_insert_rows_chunks_into_pool_sized_commit_units(
        self, tmp_path
    ):
        """A bulk batch far larger than the buffer pool commits in
        chunks instead of dying with every frame pending."""
        db = Database(str(tmp_path / "db"), buffer_capacity=16)
        db.execute("CREATE TABLE big (id INT, data BYTEARRAY)")
        logged_before = db.stats()["wal"]["statements_logged"]
        rows = [(i, b"z" * 3000) for i in range(120)]  # one LOB page each
        assert db.insert_rows("big", rows) == 120
        assert db.query("SELECT count(*) FROM big") == [(120,)]
        chunks = db.stats()["wal"]["statements_logged"] - logged_before
        assert chunks > 1  # genuinely chunked...
        assert chunks < 120  # ...but far coarser than row-at-a-time
        db.close()
        reopened = Database(str(tmp_path / "db"))
        assert reopened.query("SELECT count(*) FROM big") == [(120,)]
        reopened.close()

    def test_oversize_statement_fails_with_explicit_error(self, tmp_path):
        """A single SQL statement that dirties more pages than the pool
        holds fails with the working-set error (not a misleading
        'all frames pinned'), and the engine stays usable."""
        db = Database(str(tmp_path / "db"), buffer_capacity=16)
        db.execute("CREATE TABLE big (id INT, data BYTEARRAY)")
        values = ", ".join(
            f"({i}, zerobytes(3000))" for i in range(40)
        )
        with pytest.raises(Exception) as excinfo:
            db.execute(f"INSERT INTO big VALUES {values}")
        assert "working set exceeds the buffer pool" in str(excinfo.value)
        # Partial effects committed deterministically; engine healthy.
        db.execute("INSERT INTO big VALUES (900, zerobytes(2000))")
        assert db.query(
            "SELECT count(*) FROM big WHERE id = 900"
        ) == [(1,)]
        db.close()


# -- clean shutdown -----------------------------------------------------------

class TestCleanShutdown:
    def test_close_checkpoints_and_truncates_the_log(self, tmp_path):
        path = str(tmp_path / "db")
        db = build_db(path, SETUP)
        assert db.wal.size() > 0
        db.close()
        assert os.path.getsize(os.path.join(path, "wal.log")) == 0
        reopened = Database(path)
        assert reopened.wal.recovered_statements == 0
        assert reopened.query("SELECT count(*) FROM totals") == [(3,)]
        assert reopened.stats()["wal"]["checkpoints"] == 0
        reopened.close()

    def test_server_stop_then_close_checkpoints(self, tmp_path):
        """The ``stop()`` regression: server drains, database closes,
        and the log is empty — a restart recovers nothing and loses
        nothing."""
        path = str(tmp_path / "db")
        database = Database(path)
        with DatabaseServer(database, trust_all_clients=True) as server:
            with Client(server.host, server.port) as client:
                client.execute("CREATE TABLE t (id INT, v INT)")
                client.execute("INSERT INTO t VALUES (1, 10), (2, 20)")
                stats = client.execute("SELECT count(*) FROM t").scalar()
                assert stats == 2
            server.stop()
        database.close()
        assert os.path.getsize(os.path.join(path, "wal.log")) == 0
        reopened = Database(path)
        assert reopened.wal.recovered_statements == 0
        assert reopened.query("SELECT id, v FROM t ORDER BY id") == [
            (1, 10), (2, 20)
        ]
        stats = reopened.stats()["wal"]
        assert stats["statements_logged"] == 0  # nothing replayed
        reopened.close()
