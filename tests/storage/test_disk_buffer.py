"""Disk manager and buffer pool."""

import os

import pytest

from repro.errors import BufferPoolError, DiskError
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager, NO_PAGE


class TestDiskManager:
    def test_in_memory_allocate_read_write(self):
        disk = DiskManager(None, page_size=256)
        page = disk.allocate_page()
        disk.write_page(page, b"a" * 256)
        assert disk.read_page(page) == b"a" * 256

    def test_page_zero_is_reserved(self):
        disk = DiskManager(None, page_size=256)
        with pytest.raises(DiskError):
            disk.read_page(0)

    def test_out_of_range(self):
        disk = DiskManager(None, page_size=256)
        with pytest.raises(DiskError):
            disk.read_page(99)

    def test_wrong_size_write(self):
        disk = DiskManager(None, page_size=256)
        page = disk.allocate_page()
        with pytest.raises(DiskError):
            disk.write_page(page, b"short")

    def test_free_list_reuse(self):
        disk = DiskManager(None, page_size=256)
        first = disk.allocate_page()
        second = disk.allocate_page()
        disk.free_page(first)
        assert disk.allocate_page() == first
        assert disk.allocate_page() == disk.num_pages - 1
        assert second == 2

    def test_freed_page_zeroed_on_reuse(self):
        disk = DiskManager(None, page_size=256)
        page = disk.allocate_page()
        disk.write_page(page, b"x" * 256)
        disk.free_page(page)
        reused = disk.allocate_page()
        assert reused == page
        assert disk.read_page(reused) == bytes(256)

    def test_persistence_roundtrip(self, tmp_path):
        path = str(tmp_path / "pages.db")
        with DiskManager(path, page_size=256) as disk:
            page = disk.allocate_page()
            disk.write_page(page, b"p" * 256)
        with DiskManager(path, page_size=256) as disk:
            assert disk.read_page(page) == b"p" * 256

    def test_free_list_persisted(self, tmp_path):
        path = str(tmp_path / "pages.db")
        with DiskManager(path, page_size=256) as disk:
            a = disk.allocate_page()
            disk.allocate_page()
            disk.free_page(a)
        with DiskManager(path, page_size=256) as disk:
            assert disk.allocate_page() == a

    def test_bad_magic_rejected(self, tmp_path):
        path = str(tmp_path / "junk.db")
        with open(path, "wb") as handle:
            handle.write(b"not a database at all" * 20)
        with pytest.raises(DiskError, match="magic"):
            DiskManager(path, page_size=256)

    def test_page_size_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "pages.db")
        DiskManager(path, page_size=256).close()
        with pytest.raises(DiskError, match="page size"):
            DiskManager(path, page_size=512)


class TestBufferPool:
    def make(self, capacity=4):
        disk = DiskManager(None, page_size=128)
        return disk, BufferPool(disk, capacity=capacity)

    def test_fetch_caches(self):
        disk, pool = self.make()
        page, data = pool.new_page()
        data[:4] = b"abcd"
        pool.unpin(page, dirty=True)
        assert bytes(pool.fetch(page)[:4]) == b"abcd"
        pool.unpin(page)
        assert pool.hits >= 1

    def test_eviction_writes_back(self):
        disk, pool = self.make(capacity=2)
        pages = []
        for index in range(5):
            page, data = pool.new_page()
            data[0] = index
            pool.unpin(page, dirty=True)
            pages.append(page)
        # Early pages were evicted; their contents must be on disk.
        for index, page in enumerate(pages):
            with pool.pinned(page) as data:
                assert data[0] == index
        assert pool.evictions > 0

    def test_pinned_pages_not_evicted(self):
        disk, pool = self.make(capacity=2)
        page_a, __ = pool.new_page()
        page_b, __ = pool.new_page()
        with pytest.raises(BufferPoolError, match="pinned"):
            pool.new_page()  # both frames pinned
        pool.unpin(page_a)
        pool.unpin(page_b)
        pool.new_page()  # now fine

    def test_unpin_without_pin_raises(self):
        disk, pool = self.make()
        page, __ = pool.new_page()
        pool.unpin(page)
        with pytest.raises(BufferPoolError):
            pool.unpin(page)

    def test_flush_all(self):
        disk, pool = self.make()
        page, data = pool.new_page()
        data[:2] = b"zz"
        pool.unpin(page, dirty=True)
        pool.flush_all()
        assert disk.read_page(page)[:2] == b"zz"

    def test_drop_pinned_page_refused(self):
        disk, pool = self.make()
        page, __ = pool.new_page()
        with pytest.raises(BufferPoolError):
            pool.drop_page(page)

    def test_hit_rate(self):
        disk, pool = self.make()
        page, __ = pool.new_page()
        pool.unpin(page)
        for __ in range(9):
            pool.fetch(page)
            pool.unpin(page)
        assert pool.hit_rate > 0.5
