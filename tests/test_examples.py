"""Every example script must run clean end-to-end (deliverable b)."""

import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

FAST_EXAMPLES = [
    "examples/quickstart.py",
    "examples/stock_investval.py",
    "examples/image_redness.py",
    "examples/malicious_udfs.py",
    "examples/client_server_portability.py",
    "examples/client_vs_server_udfs.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, script],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "example produced no output"


def test_malicious_example_reports_all_attacks_stopped():
    completed = subprocess.run(
        [sys.executable, "examples/malicious_udfs.py"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert "All seven attacks neutralized." in completed.stdout
    assert "stopped" in completed.stdout
    assert "contained" in completed.stdout
    # The provable allocation bomb must be refused at registration by
    # the static bounds certifier, not killed mid-query.
    assert "stopped at CREATE FUNCTION" in completed.stdout
    assert "provably allocates" in completed.stdout
    # The exfiltrating UDF must be refused by the information-flow pass
    # at registration, while the constant-argument logger is admitted.
    assert "passes tuple-derived data" in completed.stdout
    assert "sink callback 'cb_log'" in completed.stdout
    assert "constant-argument cb_log UDF accepted" in completed.stdout


def test_bench_cli_runs_table1():
    completed = subprocess.run(
        [sys.executable, "-m", "repro.bench", "--figures", "table1"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0, completed.stderr
    assert "Design space" in completed.stdout


def test_bench_cli_runs_tiny_figure():
    completed = subprocess.run(
        [
            sys.executable, "-m", "repro.bench",
            "--figures", "5", "--cardinality", "40",
            "--invocations", "20", "--repeat", "1",
        ],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert "fig5" in completed.stdout
    assert "JNI" in completed.stdout
