"""Crash context: a dead pool worker names itself and its shard.

``UDFCrashed`` raised for a worker that died mid-batch must carry which
worker index died and which half-open ``(start, stop)`` slice of the
input batch it was executing — with or without metrics enabled.
"""

import os

import pytest

from repro.core.designs import Design
from repro.core.isolated import RemoteExecutor
from repro.database import Database
from repro.errors import UDFCrashed


def die42(x):
    """Hard-crash the worker with a recognizable exit status."""
    os._exit(42)


_PAYLOAD = "tests.obs.test_crash_context:die42"


def _definition():
    from repro.core.udf import UDFDefinition, UDFSignature

    return UDFDefinition(
        name="dies",
        signature=UDFSignature(("int",), "int"),
        design=Design.NATIVE_ISOLATED,
        payload=_PAYLOAD.encode(),
        entry="die42",
    )


@pytest.fixture
def env():
    from repro.core.callbacks import CallbackBroker
    from repro.core.udf import ServerEnvironment
    from repro.vm.machine import JaguarVM

    broker = CallbackBroker()
    return ServerEnvironment(vm=JaguarVM(broker.signatures()), broker=broker)


class TestCrashContext:
    def test_single_invoke_names_the_worker(self, env):
        executor = RemoteExecutor(_definition(), env, parallelism=2)
        try:
            executor.begin_query(env.broker.bind())
            with pytest.raises(UDFCrashed) as excinfo:
                executor.invoke((1,))
            exc = excinfo.value
            assert isinstance(exc.worker_index, int)
            assert 0 <= exc.worker_index < 2
            # A one-row invoke has no shard slice to report.
            assert exc.shard is None
        finally:
            executor.close()

    def test_unsharded_batch_reports_full_slice(self, env):
        # 4 rows < 2 * _MIN_SHARD_ROWS: the batch stays on one worker,
        # so its shard is the whole input range.
        executor = RemoteExecutor(_definition(), env, parallelism=2)
        try:
            executor.begin_query(env.broker.bind())
            with pytest.raises(UDFCrashed) as excinfo:
                executor.invoke_batch([(x,) for x in range(4)])
            exc = excinfo.value
            assert isinstance(exc.worker_index, int)
            assert 0 <= exc.worker_index < 2
            assert exc.shard == (0, 4)
        finally:
            executor.close()

    def test_sharded_batch_reports_crashing_slice(self, env):
        # 16 rows across 2 workers: shards (0, 8) and (8, 16).  Every
        # worker dies; the raised error is the lowest shard's, so the
        # slice is well-defined and within the batch.
        executor = RemoteExecutor(_definition(), env, parallelism=2)
        try:
            executor.begin_query(env.broker.bind())
            with pytest.raises(UDFCrashed) as excinfo:
                executor.invoke_batch([(x,) for x in range(16)])
            exc = excinfo.value
            assert isinstance(exc.worker_index, int)
            assert 0 <= exc.worker_index < 2
            start, stop = exc.shard
            assert (start, stop) == (0, 8)
        finally:
            executor.close()

    def test_crash_context_with_profile_attached(self, env):
        """Metrics on: same attributes, plus a crash count recorded."""
        from repro.obs import MetricsRegistry, QueryProfile

        executor = RemoteExecutor(_definition(), env, parallelism=2)
        try:
            profile = QueryProfile(MetricsRegistry())
            executor.profile = profile.udf("dies", "native_isolated")
            executor.begin_query(env.broker.bind())
            with pytest.raises(UDFCrashed) as excinfo:
                executor.invoke_batch([(x,) for x in range(16)])
            assert excinfo.value.shard == (0, 8)
            assert executor.profile.crashes.value == 1
        finally:
            executor.profile = None
            executor.close()

    def test_query_level_crash_carries_context(self):
        """The attributes survive the full SQL execution path."""
        with Database(parallelism=2) as db:
            db.execute("CREATE TABLE t (id INT)")
            for i in range(4):
                db.execute(f"INSERT INTO t VALUES ({i})")
            db.execute(
                "CREATE FUNCTION dies(int) RETURNS int LANGUAGE NATIVE "
                f"DESIGN ISOLATED AS '{_PAYLOAD}'"
            )
            with pytest.raises(UDFCrashed) as excinfo:
                db.query("SELECT dies(id) FROM t")
            exc = excinfo.value
            assert exc.worker_index is not None
            assert exc.shard is not None
