"""EXPLAIN ANALYZE: actual operator cardinalities and per-UDF profiles.

Accuracy contract: the ``(actual rows=...)`` annotations must equal the
true cardinalities each operator produced — scans after their residual
predicates, joins after their join predicates, the root after
everything — and a per-UDF profile section must appear for every
executor design with the exact invocation count.
"""

import re

import pytest

from repro.core.designs import Design
from repro.database import Database

from tests.sql.test_batch_parity import SETUP, UDF_BY_DESIGN


def _setup(db, design=None):
    for statement in SETUP.strip().split(";"):
        if statement.strip():
            db.execute(statement)
    if design is not None:
        db.execute(UDF_BY_DESIGN[design])


def _analyze(db, sql):
    return [line for (line,) in db.execute("EXPLAIN ANALYZE " + sql)]


def _actual_rows(lines, head):
    """The actual row count on the first line whose head matches."""
    for line in lines:
        if head in line:
            match = re.search(r"actual rows=(\d+)", line)
            assert match is not None, line
            return int(match.group(1))
    raise AssertionError(f"no line matching {head!r} in {lines}")


class TestOperatorActuals:
    def test_scan_actuals_are_table_cardinality(self):
        with Database() as db:
            _setup(db)
            lines = _analyze(db, "SELECT id FROM stocks")
            assert _actual_rows(lines, "SeqScan stocks") == 10
            assert _actual_rows(lines, "Project") == 10

    def test_filtered_scan_actuals_are_surviving_rows(self):
        with Database() as db:
            _setup(db)
            survivors = len(db.query("SELECT id FROM stocks WHERE price > 5"))
            assert survivors == 5
            lines = _analyze(db, "SELECT id FROM stocks WHERE price > 5")
            # Pushdown applies the predicate inside the scan, so the
            # scan's actuals are the rows that survived it.
            assert _actual_rows(lines, "SeqScan stocks") == survivors

    def test_join_actuals_are_match_cardinality(self):
        with Database() as db:
            _setup(db)
            sql = (
                "SELECT a.id, b.id FROM stocks a, stocks b "
                "WHERE a.id = b.id"
            )
            matches = len(db.query(sql))
            assert matches == 10
            lines = _analyze(db, sql)
            assert _actual_rows(lines, "NestedLoopJoin") == matches

    def test_time_and_batches_are_reported(self):
        with Database() as db:
            _setup(db)
            lines = _analyze(db, "SELECT id FROM stocks")
            assert re.search(r"batches=\d+ time=\d+\.\d+ ms", lines[0])

    def test_plain_explain_has_no_actuals(self):
        with Database() as db:
            _setup(db)
            lines = [
                line
                for (line,) in db.execute("EXPLAIN SELECT id FROM stocks")
            ]
            assert not any("actual" in line for line in lines)
            assert not any("UDF profiles" in line for line in lines)


class TestUDFProfileSection:
    @pytest.mark.parametrize(
        "design,tag",
        [
            (Design.NATIVE_INTEGRATED, "native_integrated"),
            (Design.NATIVE_SFI, "native_sfi"),
            (Design.NATIVE_ISOLATED, "native_isolated"),
            (Design.SANDBOX_JIT, "sandbox_jit"),
        ],
    )
    def test_profile_line_per_design(self, design, tag):
        """All four executor classes surface per-UDF profile lines."""
        with Database() as db:
            _setup(db, design)
            lines = _analyze(db, "SELECT t1(id) FROM stocks")
            assert "-- UDF profiles --" in lines
            profile_line = next(
                line for line in lines if line.startswith(f"udf t1 [{tag}]")
            )
            # One invocation per row actually reached the UDF.
            assert "calls=10" in profile_line

    def test_sandbox_profile_reports_fuel(self):
        with Database() as db:
            _setup(db, Design.SANDBOX_JIT)
            lines = _analyze(db, "SELECT t1(id) FROM stocks")
            profile_line = next(
                line for line in lines if line.startswith("udf t1 [")
            )
            match = re.search(r"fuel=(\d+)", profile_line)
            assert match is not None and int(match.group(1)) > 0

    def test_isolated_profile_reports_pool_latencies(self):
        with Database() as db:
            _setup(db, Design.NATIVE_ISOLATED)
            lines = _analyze(db, "SELECT t1(id) FROM stocks")
            profile_line = next(
                line for line in lines if line.startswith("udf t1 [")
            )
            assert "queue_wait_p50=" in profile_line
            assert "round_trip_p50=" in profile_line

    def test_analyze_profiles_are_per_run(self):
        """The rendered numbers are one run's, not cumulative."""
        with Database() as db:
            _setup(db, Design.SANDBOX_JIT)
            first = _analyze(db, "SELECT t1(id) FROM stocks")
            second = _analyze(db, "SELECT t1(id) FROM stocks")
            line_1 = next(l for l in first if l.startswith("udf t1 ["))
            line_2 = next(l for l in second if l.startswith("udf t1 ["))
            assert "calls=10" in line_1
            assert "calls=10" in line_2


class TestChannelStats:
    def test_channel_stats_gain_latency_summaries_under_profile(self):
        from repro.core.isolated import RemoteExecutor
        from repro.obs import MetricsRegistry, QueryProfile

        from tests.sql.test_batch_parity import triple  # noqa: F401
        from repro.core.udf import (
            ServerEnvironment,
            UDFDefinition,
            UDFSignature,
        )
        from repro.core.callbacks import CallbackBroker
        from repro.vm.machine import JaguarVM

        broker = CallbackBroker()
        env = ServerEnvironment(
            vm=JaguarVM(broker.signatures()), broker=broker
        )
        definition = UDFDefinition(
            name="t1",
            signature=UDFSignature(("int",), "int"),
            design=Design.NATIVE_ISOLATED,
            payload=b"tests.sql.test_batch_parity:triple",
            entry="triple",
        )
        executor = RemoteExecutor(definition, env, parallelism=1)
        try:
            # Without a profile: the seed keys only.
            stats = executor.channel_stats()
            assert "queue_wait_ns" not in stats
            profile = QueryProfile(MetricsRegistry())
            executor.profile = profile.udf("t1", "native_isolated")
            executor.begin_query(broker.bind())
            assert executor.invoke_batch([(x,) for x in range(8)]) == [
                x * 3 for x in range(8)
            ]
            stats = executor.channel_stats()
            assert stats["queue_wait_ns"]["count"] >= 1
            assert stats["round_trip_ns"]["count"] >= 1
        finally:
            executor.profile = None
            executor.close()
