"""Adaptive cost feedback: observed costs must correct wrong hints.

Each test registers a UDF whose *declared* cost hint is wrong (a busy
loop declared ``COST 1``) and checks that, after enough observed calls,
the optimizer's decisions — Exchange placement, predicate order — flip
to what the measured cost implies, while ``adaptive=False`` databases
keep planning statically forever.
"""

import time

from repro.database import Database

#: Busy-loop JagScript body: roughly half a millisecond per call under
#: the sandbox, dwarfing the ~1-unit static hint it is declared with.
_SLOW_BODY = (
    "def slow(x: int) -> int:\n"
    "    total = 0\n"
    "    for i in range(2000):\n"
    "        total = total + i\n"
    "    return x + total - total"
)

_SLOW_DDL = (
    "CREATE FUNCTION slow(int) RETURNS int LANGUAGE JAGUAR "
    "DESIGN SANDBOX COST 1 SELECTIVITY 0.9 AS '" + _SLOW_BODY + "'"
)


def _make_table(db, rows):
    db.execute("CREATE TABLE t (id INT, v INT)")
    for i in range(rows):
        db.execute(f"INSERT INTO t VALUES ({i}, {i})")


def _explain(db, sql):
    return [line for (line,) in db.execute("EXPLAIN " + sql)]


class TestExchangeFlip:
    def test_observed_cost_flips_exchange_placement(self):
        """A UDF lying about its cost gets parallelized once measured."""
        sql = "SELECT slow(v) FROM t"
        with Database(parallelism=2, adaptive=True) as db:
            _make_table(db, 40)
            db.execute(_SLOW_DDL)
            # Statically COST 1 is far below the parallel threshold:
            # the planner keeps the query serial.
            before = _explain(db, sql)
            assert not any("Exchange" in line for line in before)
            db.query(sql)
            db.query(sql)
            feedback = db.observability.adaptive
            observed = feedback.observed_cost("slow")
            assert observed is not None and observed > 50.0
            after = _explain(db, sql)
            assert any("Exchange [parallel=2]" in line for line in after)

    def test_static_database_never_flips(self):
        sql = "SELECT slow(v) FROM t"
        with Database(parallelism=2, adaptive=False) as db:
            _make_table(db, 40)
            db.execute(_SLOW_DDL)
            db.query(sql)
            db.query(sql)
            after = _explain(db, sql)
            assert not any("Exchange" in line for line in after)
            assert db.stats()["adaptive"] is None

    def test_below_call_threshold_stays_static(self):
        """Fewer than MIN_CALLS observations leave the hint in charge."""
        sql = "SELECT slow(v) FROM t"
        with Database(parallelism=2, adaptive=True) as db:
            _make_table(db, 8)  # one run = 8 calls < MIN_CALLS (32)
            db.execute(_SLOW_DDL)
            db.query(sql)
            feedback = db.observability.adaptive
            assert feedback.observed_cost("slow") is None
            entry = db.stats()["adaptive"]["udfs"]["slow"]
            assert entry["calls"] == 8
            assert entry["trusted"] is False
            after = _explain(db, sql)
            assert not any("Exchange" in line for line in after)


class TestPredicateReorder:
    SQL = "SELECT id FROM t WHERE slow(id) > 0 AND id <= 5"
    DDL = (
        "CREATE FUNCTION slow(int) RETURNS int LANGUAGE JAGUAR "
        "DESIGN SANDBOX COST 0.1 SELECTIVITY 0.2 AS '" + _SLOW_BODY + "'"
    )

    @staticmethod
    def _filter_order(lines):
        return [line.strip() for line in lines if "filter[" in line]

    def test_observed_cost_reorders_conjuncts(self):
        """The falsely-cheap, falsely-selective UDF predicate loses its
        front-of-queue slot once its real cost is measured."""
        with Database(adaptive=True) as db:
            _make_table(db, 40)
            db.execute(self.DDL)
            before = self._filter_order(_explain(db, self.SQL))
            # Static ranks: udf (0.2-1)/1.1 < range (0.3-1)/1.0, so the
            # "cheap" UDF predicate runs first.
            assert "slow" in before[0]
            assert "id <= 5" in before[1]
            first = sorted(db.query(self.SQL))
            db.query(self.SQL)
            after = self._filter_order(_explain(db, self.SQL))
            assert "id <= 5" in after[0]
            assert "slow" in after[1]
            assert "(observed)" in after[1]
            # The replanned query still returns the same rows.
            assert sorted(db.query(self.SQL)) == first

    def test_observed_selectivity_is_reported(self):
        with Database(adaptive=True) as db:
            _make_table(db, 40)
            db.execute(self.DDL)
            db.query(self.SQL)
            db.query(self.SQL)
            predicates = db.stats()["adaptive"]["predicates"]
            # Keys are the predicates' fully-qualified rendered text.
            entry = predicates["(slow(t.id) > 0)"]
            assert entry["rows_in"] >= 40
            # slow(id) = id, so every row with id > 0 passes.
            assert 0.9 <= entry["selectivity"] <= 1.0
            range_entry = predicates["(t.id <= 5)"]
            assert range_entry["trusted"] is True
            assert range_entry["selectivity"] < 0.2


class TestCostConvergence:
    def test_observed_cost_within_2x_of_wall_clock(self):
        """Learned per-call cost tracks the measured mean wall time."""
        sql = "SELECT slow(v) FROM t"
        calls = 64
        with Database(adaptive=True) as db:
            _make_table(db, calls)
            db.execute(_SLOW_DDL)
            started = time.perf_counter_ns()
            db.query(sql)
            elapsed_us = (time.perf_counter_ns() - started) / 1000.0
            mean_wall_us = elapsed_us / calls
            observed = db.observability.adaptive.observed_cost("slow")
            assert observed is not None
            # Observed cost excludes engine overhead, so it sits below
            # the wall-clock mean but — with a ~0.5 ms busy loop
            # dwarfing per-row overhead — well within a factor of two.
            assert mean_wall_us / 2.0 <= observed <= mean_wall_us * 2.0
