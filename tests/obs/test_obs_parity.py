"""Observability parity: metrics must never change what a query does.

The full matrix the issue pins down: all six designs x batch size
{1, 64} x parallelism {1, 2}, run with metrics enabled and disabled,
asserting identical query results and identical (non-ANALYZE) EXPLAIN
plans.  Instrumentation must be observation only — same rows, same row
order, same plan shape, bit for bit.
"""

import pytest

from repro.core.designs import Design
from repro.database import Database

from tests.sql.test_batch_parity import SETUP, UDF_BY_DESIGN

BATCH_SIZES = (1, 64)
PARALLELISM_LEVELS = (1, 2)

IN_PROCESS = (
    Design.NATIVE_INTEGRATED,
    Design.NATIVE_SFI,
    Design.SANDBOX_JIT,
    Design.SANDBOX_INTERP,
)
ISOLATED = (Design.NATIVE_ISOLATED, Design.SANDBOX_ISOLATED)

IN_PROCESS_QUERIES = (
    "SELECT id, t1(id) FROM stocks ORDER BY id",
    "SELECT id FROM stocks WHERE t1(id) > 12 AND type <> 'gas' ORDER BY id",
    "SELECT type, count(*), sum(t1(price)) FROM stocks "
    "GROUP BY type ORDER BY type",
)

#: Isolated designs spawn worker processes per UDF query; one
#: representative query keeps the 2x2x2 matrix affordable.
ISOLATED_QUERIES = (
    "SELECT id FROM stocks WHERE t1(id) > 12 AND type <> 'gas' ORDER BY id",
)


def _run_matrix(design, queries, batch_size, parallelism, metrics):
    """Rows and EXPLAIN lines for every query under one configuration."""
    with Database(
        batch_size=batch_size, parallelism=parallelism, metrics=metrics
    ) as db:
        for statement in SETUP.strip().split(";"):
            if statement.strip():
                db.execute(statement)
        db.execute(UDF_BY_DESIGN[design])
        observed = {}
        for sql in queries:
            observed[sql] = {
                "rows": db.query(sql),
                "plan": [line for (line,) in db.execute("EXPLAIN " + sql)],
            }
        if metrics:
            # Collection really happened: the UDF shows up in stats.
            counters = db.stats()["metrics"]["counters"]
            assert any(key.startswith("udf.t1.") for key in counters)
        else:
            assert db.stats()["metrics"] is None
        return observed


class TestMetricsParity:
    @pytest.mark.parametrize("parallelism", PARALLELISM_LEVELS)
    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    @pytest.mark.parametrize("design", IN_PROCESS)
    def test_in_process_designs(self, design, batch_size, parallelism):
        plain = _run_matrix(
            design, IN_PROCESS_QUERIES, batch_size, parallelism,
            metrics=False,
        )
        metered = _run_matrix(
            design, IN_PROCESS_QUERIES, batch_size, parallelism,
            metrics=True,
        )
        assert metered == plain

    @pytest.mark.parametrize("parallelism", PARALLELISM_LEVELS)
    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    @pytest.mark.parametrize("design", ISOLATED)
    def test_isolated_designs(self, design, batch_size, parallelism):
        plain = _run_matrix(
            design, ISOLATED_QUERIES, batch_size, parallelism,
            metrics=False,
        )
        metered = _run_matrix(
            design, ISOLATED_QUERIES, batch_size, parallelism,
            metrics=True,
        )
        assert metered == plain


class TestExplainAnalyzeParity:
    def test_analyze_rowcounts_match_plain_execution(self):
        """EXPLAIN ANALYZE executes the same plan the query runs."""
        with Database(metrics=True) as db:
            for statement in SETUP.strip().split(";"):
                if statement.strip():
                    db.execute(statement)
            db.execute(UDF_BY_DESIGN[Design.SANDBOX_JIT])
            sql = (
                "SELECT id FROM stocks WHERE t1(id) > 12 "
                "AND type <> 'gas' ORDER BY id"
            )
            rows = db.query(sql)
            lines = [
                line for (line,) in db.execute("EXPLAIN ANALYZE " + sql)
            ]
            # The root operator's actual row count is the result size.
            assert f"actual rows={len(rows)}" in lines[0]
