"""Accuracy tests for the metrics primitives.

Histogram quantiles use the nearest-rank definition and are *exact*
while fewer than ``sample_cap`` observations exist, so they can be
pinned against known synthetic samples.
"""

import pytest

from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    Span,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(41)
        assert counter.value == 42


class TestHistogramQuantiles:
    def test_exact_nearest_rank_on_1_to_100(self):
        histogram = Histogram("h")
        for value in range(1, 101):
            histogram.observe(value)
        assert histogram.quantile(0.50) == 50
        assert histogram.quantile(0.95) == 95
        assert histogram.quantile(0.99) == 99
        assert histogram.quantile(1.00) == 100

    def test_insertion_order_does_not_matter(self):
        histogram = Histogram("h")
        for value in (9, 1, 7, 3, 5, 2, 8, 4, 6, 10):
            histogram.observe(value)
        assert histogram.quantile(0.5) == 5
        assert histogram.quantile(0.9) == 9

    def test_single_sample_is_every_quantile(self):
        histogram = Histogram("h")
        histogram.observe(7.5)
        for q in (0.01, 0.5, 0.99, 1.0):
            assert histogram.quantile(q) == 7.5

    def test_empty_histogram_has_no_quantiles(self):
        histogram = Histogram("h")
        assert histogram.quantile(0.5) is None
        assert histogram.mean is None
        summary = histogram.summary()
        assert summary["count"] == 0
        assert summary["p50"] is None

    def test_known_small_sample(self):
        # Nearest rank over [10, 20, 30, 40]: p50 -> ceil(0.5*4)=2nd.
        histogram = Histogram("h")
        for value in (40, 10, 30, 20):
            histogram.observe(value)
        assert histogram.quantile(0.50) == 20
        assert histogram.quantile(0.75) == 30
        assert histogram.quantile(0.76) == 40

    def test_moments_are_exact(self):
        histogram = Histogram("h")
        for value in (2.0, 4.0, 6.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == 12.0
        assert histogram.min == 2.0
        assert histogram.max == 6.0
        assert histogram.mean == 4.0


class TestHistogramRing:
    def test_ring_keeps_recent_window(self):
        histogram = Histogram("h", sample_cap=4)
        for value in range(1, 9):  # 1..8; ring retains the last 4
            histogram.observe(value)
        assert histogram.quantile(1.0) == 8
        assert histogram.quantile(0.25) == 5
        # Aggregate moments still cover everything ever observed.
        assert histogram.count == 8
        assert histogram.min == 1
        assert histogram.max == 8


class TestRegistry:
    def test_get_or_create_returns_same_handle(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("y") is registry.histogram("y")
        assert registry.counter("x") is not registry.counter("z")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("calls").inc(3)
        registry.histogram("lat").observe(5.0)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"calls": 3}
        assert snapshot["histograms"]["lat"]["count"] == 1
        assert snapshot["histograms"]["lat"]["p50"] == 5.0

    def test_span_times_into_histogram(self):
        registry = MetricsRegistry()
        with registry.span("phase"):
            pass
        histogram = registry.histogram("phase")
        assert histogram.count == 1
        assert histogram.min >= 0
