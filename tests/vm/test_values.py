"""VM value model: wrapping, classification, marshalling."""

from array import array

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import VMRuntimeError
from repro.vm.values import (
    INT_MAX,
    INT_MIN,
    VMType,
    coerce_argument,
    default_value,
    host_type_of,
    type_by_name,
    wrap_int,
)


class TestWrapInt:
    def test_identity_in_range(self):
        assert wrap_int(0) == 0
        assert wrap_int(42) == 42
        assert wrap_int(-42) == -42
        assert wrap_int(INT_MAX) == INT_MAX
        assert wrap_int(INT_MIN) == INT_MIN

    def test_positive_overflow_wraps_negative(self):
        assert wrap_int(INT_MAX + 1) == INT_MIN

    def test_negative_overflow_wraps_positive(self):
        assert wrap_int(INT_MIN - 1) == INT_MAX

    def test_large_multiple_wraps(self):
        assert wrap_int(2 ** 64) == 0
        assert wrap_int(2 ** 64 + 5) == 5

    @given(st.integers(min_value=-(2 ** 200), max_value=2 ** 200))
    def test_always_in_range(self, value):
        wrapped = wrap_int(value)
        assert INT_MIN <= wrapped <= INT_MAX

    @given(st.integers(min_value=INT_MIN, max_value=INT_MAX))
    def test_fixpoint_in_range(self, value):
        assert wrap_int(value) == value

    @given(st.integers(), st.integers())
    def test_addition_homomorphism(self, a, b):
        assert wrap_int(wrap_int(a) + wrap_int(b)) == wrap_int(a + b)


class TestHostTypeOf:
    def test_bool_before_int(self):
        assert host_type_of(True) is VMType.BOOL
        assert host_type_of(1) is VMType.INT

    def test_all_types(self):
        assert host_type_of(1.5) is VMType.FLOAT
        assert host_type_of("x") is VMType.STR
        assert host_type_of(bytearray(b"ab")) is VMType.ARR
        assert host_type_of(b"ab") is VMType.ARR
        assert host_type_of(array("d", [1.0])) is VMType.FARR

    def test_unknown_raises(self):
        with pytest.raises(VMRuntimeError):
            host_type_of(object())


class TestCoerce:
    def test_int_strict(self):
        assert coerce_argument(5, VMType.INT) == 5
        with pytest.raises(VMRuntimeError):
            coerce_argument(1.5, VMType.INT)
        with pytest.raises(VMRuntimeError):
            coerce_argument(True, VMType.INT)

    def test_int_wraps(self):
        assert coerce_argument(2 ** 63, VMType.INT) == INT_MIN

    def test_float_accepts_int(self):
        assert coerce_argument(3, VMType.FLOAT) == 3.0
        assert isinstance(coerce_argument(3, VMType.FLOAT), float)

    def test_bytes_copied_not_aliased(self):
        source = bytearray(b"abc")
        result = coerce_argument(bytes(source), VMType.ARR)
        assert isinstance(result, bytearray)
        result[0] = ord("z")
        assert source == b"abc"

    def test_bytearray_passed_through(self):
        source = bytearray(b"abc")
        assert coerce_argument(source, VMType.ARR) is source

    def test_farr_from_list(self):
        result = coerce_argument([1, 2.5], VMType.FARR)
        assert isinstance(result, array)
        assert list(result) == [1.0, 2.5]

    def test_mismatches(self):
        with pytest.raises(VMRuntimeError):
            coerce_argument("x", VMType.ARR)
        with pytest.raises(VMRuntimeError):
            coerce_argument(1, VMType.BOOL)
        with pytest.raises(VMRuntimeError):
            coerce_argument(b"x", VMType.STR)


class TestDefaults:
    @pytest.mark.parametrize(
        "vm_type, expected",
        [
            (VMType.INT, 0),
            (VMType.FLOAT, 0.0),
            (VMType.BOOL, False),
            (VMType.STR, ""),
        ],
    )
    def test_scalar_defaults(self, vm_type, expected):
        assert default_value(vm_type) == expected

    def test_array_defaults_fresh(self):
        assert default_value(VMType.ARR) == bytearray()
        assert len(default_value(VMType.FARR)) == 0

    def test_void_has_no_default(self):
        with pytest.raises(ValueError):
            default_value(VMType.VOID)


def test_type_by_name_roundtrip():
    for vm_type in VMType:
        assert type_by_name(vm_type.value) is vm_type
    with pytest.raises(ValueError):
        type_by_name("quux")
