"""Interpreter semantics: traps, wrapping, bounds, calls, callbacks."""

import pytest

from repro.errors import (
    ArithmeticFault,
    BoundsError,
    LinkError,
    SecurityViolation,
    StackOverflowFault,
    VMRuntimeError,
)
from repro.vm import (
    compile_source,
    run_function,
    single_class_context,
    verify_class,
)
from repro.vm.interpreter import ExecutionContext
from repro.vm.resources import ResourceAccount
from repro.vm.values import INT_MAX, INT_MIN


def build(source, name="T", callbacks=None):
    cls = compile_source(source, name, callbacks=callbacks)
    if callbacks:
        from repro.vm.verifier import self_resolver

        verify_class(cls, self_resolver(cls, callbacks=callbacks))
    else:
        verify_class(cls)
    return cls


def run(source, func, *args, account=None, handlers=None, callbacks=None):
    cls = build(source, callbacks=callbacks)
    ctx = single_class_context(
        cls, account=account, callbacks=handlers,
        **({"callback_signatures": callbacks} if callbacks else {}),
    )
    return run_function(cls, cls.functions[func], list(args), ctx)


class TestArithmeticSemantics:
    def test_division_truncates_toward_zero(self):
        src = "def f(a: int, b: int) -> int:\n    return a // b"
        assert run(src, "f", 7, 2) == 3
        assert run(src, "f", -7, 2) == -3   # Java semantics, not Python's -4
        assert run(src, "f", 7, -2) == -3
        assert run(src, "f", -7, -2) == 3

    def test_modulo_sign_follows_dividend(self):
        src = "def f(a: int, b: int) -> int:\n    return a % b"
        assert run(src, "f", 7, 3) == 1
        assert run(src, "f", -7, 3) == -1  # Java semantics, not Python's 2
        assert run(src, "f", 7, -3) == 1

    def test_division_by_zero_traps(self):
        src = "def f(a: int) -> int:\n    return 1 // a"
        with pytest.raises(ArithmeticFault, match="division by zero"):
            run(src, "f", 0)

    def test_modulo_by_zero_traps(self):
        src = "def f(a: int) -> int:\n    return 1 % a"
        with pytest.raises(ArithmeticFault):
            run(src, "f", 0)

    def test_float_division_by_zero_traps(self):
        src = "def f(x: float) -> float:\n    return 1.0 / x"
        with pytest.raises(ArithmeticFault):
            run(src, "f", 0.0)

    def test_int_overflow_wraps(self):
        src = "def f(a: int) -> int:\n    return a + 1"
        assert run(src, "f", INT_MAX) == INT_MIN

    def test_mul_overflow_wraps(self):
        src = "def f(a: int) -> int:\n    return a * a"
        assert run(src, "f", 2 ** 32) == 0

    def test_neg_min_wraps(self):
        src = "def f(a: int) -> int:\n    return -a"
        assert run(src, "f", INT_MIN) == INT_MIN

    def test_idiv_min_by_minus_one_wraps(self):
        src = "def f(a: int, b: int) -> int:\n    return a // b"
        assert run(src, "f", INT_MIN, -1) == INT_MIN

    def test_shift_counts_masked(self):
        src = "def f(a: int, s: int) -> int:\n    return a << s"
        assert run(src, "f", 1, 64) == 1  # 64 & 63 == 0
        assert run(src, "f", 1, 65) == 2

    def test_f2i_traps_on_overflow(self):
        src = "def f(x: float) -> int:\n    return int(x)"
        with pytest.raises(ArithmeticFault):
            run(src, "f", 1e30)

    def test_sqrt_negative_traps(self):
        src = "def f(x: float) -> float:\n    return sqrt(x)"
        with pytest.raises(ArithmeticFault):
            run(src, "f", -1.0)


class TestBounds:
    def test_array_read_out_of_range(self):
        src = "def f(a: bytes, i: int) -> int:\n    return a[i]"
        assert run(src, "f", b"abc", 2) == ord("c")
        with pytest.raises(BoundsError):
            run(src, "f", b"abc", 3)
        with pytest.raises(BoundsError):
            run(src, "f", b"abc", -1)  # no Python negative indexing

    def test_array_write_out_of_range(self):
        src = "def f(a: bytes, i: int) -> int:\n    a[i] = 1\n    return 0"
        with pytest.raises(BoundsError):
            run(src, "f", b"abc", 3)

    def test_string_index_bounds(self):
        src = "def f(s: str, i: int) -> int:\n    return s[i]"
        with pytest.raises(BoundsError):
            run(src, "f", "ab", 5)

    def test_substring_bounds(self):
        src = "def f(s: str, a: int, b: int) -> str:\n    return s[a:b]"
        assert run(src, "f", "hello", 1, 3) == "el"
        with pytest.raises(BoundsError):
            run(src, "f", "hello", 3, 99)
        with pytest.raises(BoundsError):
            run(src, "f", "hello", 3, 1)  # start > end is a trap, not empty

    def test_negative_array_size(self):
        src = "def f(n: int) -> int:\n    a: bytes = bytearray(n)\n    return len(a)"
        with pytest.raises(BoundsError):
            run(src, "f", -1)

    def test_farr_bounds(self):
        src = "def f(h: farr, i: int) -> float:\n    return h[i]"
        with pytest.raises(BoundsError):
            run(src, "f", [1.0], 1)


class TestCalls:
    def test_recursion_depth_limited(self):
        src = (
            "def f(n: int) -> int:\n"
            "    if n <= 0:\n"
            "        return 0\n"
            "    return f(n - 1) + 1"
        )
        account = ResourceAccount(max_depth=64)
        with pytest.raises(StackOverflowFault):
            run(src, "f", 1000, account=account)
        assert run(src, "f", 30, account=ResourceAccount(max_depth=64)) == 30

    def test_wrong_arity_at_boundary(self):
        src = "def f(a: int) -> int:\n    return a"
        cls = build(src)
        ctx = single_class_context(cls)
        with pytest.raises(VMRuntimeError, match="expects 1"):
            run_function(cls, cls.functions["f"], [1, 2], ctx)

    def test_callbacks_flow_values(self):
        from repro.vm.values import VMType as T

        sigs = {"cb_add": ((T.INT, T.INT), T.INT)}
        src = "def f(a: int) -> int:\n    return cb_add(a, 10)"
        result = run(
            src, "f", 5,
            callbacks=sigs, handlers={"cb_add": lambda x, y: x + y},
        )
        assert result == 15

    def test_callback_missing_handler_is_link_error(self):
        from repro.vm.values import VMType as T

        sigs = {"cb_gone": ((), T.INT)}
        src = "def f() -> int:\n    return cb_gone()"
        with pytest.raises(LinkError):
            run(src, "f", callbacks=sigs, handlers={})

    def test_callback_result_type_checked(self):
        from repro.vm.values import VMType as T

        sigs = {"cb_bad": ((), T.INT)}
        src = "def f() -> int:\n    return cb_bad()"
        with pytest.raises(VMRuntimeError):
            run(src, "f", callbacks=sigs, handlers={"cb_bad": lambda: "oops"})

    def test_callback_requires_permission_via_manager(self):
        from repro.vm.security import Permissions, SecurityManager
        from repro.vm.values import VMType as T

        sigs = {"cb_x": ((), T.INT)}
        cls = build("def f() -> int:\n    return cb_x()", callbacks=sigs)
        ctx = single_class_context(
            cls,
            callbacks={"cb_x": lambda: 1},
            security=SecurityManager("T", Permissions.none()),
            callback_signatures=sigs,
        )
        with pytest.raises(SecurityViolation):
            run_function(cls, cls.functions["f"], [], ctx)


class TestMutation:
    def test_caller_bytearray_mutated_in_place(self):
        src = "def f(a: bytes) -> int:\n    a[0] = 42\n    return a[0]"
        buffer = bytearray(b"\x00\x01")
        assert run(src, "f", buffer) == 42
        assert buffer[0] == 42  # bytearray is the VM's native representation

    def test_bytes_argument_copied(self):
        src = "def f(a: bytes) -> int:\n    a[0] = 42\n    return a[0]"
        frozen = b"\x00\x01"
        assert run(src, "f", frozen) == 42  # original untouched (immutable)
