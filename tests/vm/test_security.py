"""Security manager: least privilege + the audit trail the paper wanted."""

import pytest

from repro.errors import SecurityViolation
from repro.vm.security import Permissions, SecurityManager, open_manager


class TestCallbackChecks:
    def test_granted_callback_allowed(self):
        manager = SecurityManager(
            "udf_a", Permissions.with_callbacks("cb_noop")
        )
        manager.check_callback("cb_noop")  # no raise

    def test_ungranted_callback_denied(self):
        manager = SecurityManager(
            "udf_a", Permissions.with_callbacks("cb_noop")
        )
        with pytest.raises(SecurityViolation, match="cb_lob_read"):
            manager.check_callback("cb_lob_read")

    def test_default_is_no_callbacks(self):
        manager = SecurityManager("udf_a")
        with pytest.raises(SecurityViolation):
            manager.check_callback("cb_noop")


class TestNativeChecks:
    def test_default_grants_whole_stdlib(self):
        SecurityManager("udf_a").check_native("sqrt")

    def test_restricted_natives(self):
        manager = SecurityManager(
            "udf_a", Permissions(natives=frozenset({"iabs"}))
        )
        manager.check_native("iabs")
        with pytest.raises(SecurityViolation):
            manager.check_native("sqrt")


class TestThreads:
    def test_spawn_denied_by_default(self):
        with pytest.raises(SecurityViolation):
            SecurityManager("udf_a").check_spawn_thread()

    def test_spawn_grantable(self):
        manager = SecurityManager(
            "udf_a", Permissions(may_spawn_threads=True)
        )
        manager.check_spawn_thread()


class TestAudit:
    def test_denials_recorded_and_attributed(self):
        """Section 6.1 complains Java had 'no mechanism to trace the
        responsible UDF classes'; ours records every denial."""
        manager = SecurityManager(
            "udf_evil", Permissions.with_callbacks("cb_noop")
        )
        manager.check_callback("cb_noop")
        for __ in range(3):
            with pytest.raises(SecurityViolation):
                manager.check_callback("cb_lob_read")
        denials = manager.denials()
        assert len(denials) == 3
        assert all(r.class_name == "udf_evil" for r in denials)
        assert all(r.target == "cb_lob_read" for r in denials)
        allowed = [r for r in manager.audit_log if r.allowed]
        assert len(allowed) == 1

    def test_native_denials_logged(self):
        manager = SecurityManager(
            "udf_x", Permissions(natives=frozenset())
        )
        with pytest.raises(SecurityViolation):
            manager.check_native("sqrt")
        assert manager.denials()[0].action == "native"


class TestOpenManager:
    def test_allows_everything(self):
        manager = open_manager()
        manager.check_callback("anything")
        manager.check_native("whatever")
        manager.check_spawn_thread()
