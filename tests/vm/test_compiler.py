"""JagScript compiler: language features and rejection of bad source."""

import pytest

from repro.errors import CompileError
from repro.vm import compile_source, run_function, single_class_context, verify_class
from repro.vm.values import VMType


def run(source: str, func: str, *args, callbacks=None, handlers=None):
    cls = compile_source(source, "Test", callbacks=callbacks)
    verify_class(cls)
    ctx = single_class_context(cls, callbacks=handlers)
    return run_function(cls, cls.functions[func], list(args), ctx)


class TestBasics:
    def test_arithmetic(self):
        src = "def f(a: int, b: int) -> int:\n    return a * b + a - b"
        assert run(src, "f", 7, 3) == 25

    def test_float_division_promotes(self):
        src = "def f(a: int, b: int) -> float:\n    return a / b"
        assert run(src, "f", 7, 2) == 3.5

    def test_floor_division_stays_int(self):
        src = "def f(a: int, b: int) -> int:\n    return a // b"
        assert run(src, "f", 7, 2) == 3

    def test_mixed_int_float(self):
        src = "def f(a: int, x: float) -> float:\n    return a + x * 2.0"
        assert run(src, "f", 1, 0.5) == 2.0

    def test_int_op_float_right(self):
        src = "def f(a: int) -> float:\n    return a * 0.5"
        assert run(src, "f", 9) == 4.5

    def test_unary_minus(self):
        src = "def f(a: int) -> int:\n    return -a"
        assert run(src, "f", 3) == -3

    def test_bitwise(self):
        src = ("def f(a: int, b: int) -> int:\n"
               "    return (a & b) | (a ^ b) + (a << 1) - (a >> 1)")
        assert run(src, "f", 12, 10) == ((12 & 10) | ((12 ^ 10) + (12 << 1) - (12 >> 1)))

    def test_string_concat_and_compare(self):
        src = ('def f(s: str) -> str:\n'
               '    if s == "a":\n'
               '        return s + "!"\n'
               '    return s')
        assert run(src, "f", "a") == "a!"
        assert run(src, "f", "b") == "b"

    def test_string_index_gives_code(self):
        src = "def f(s: str) -> int:\n    return s[1]"
        assert run(src, "f", "AB") == ord("B")

    def test_string_slice(self):
        src = "def f(s: str) -> str:\n    return s[1:3]"
        assert run(src, "f", "hello") == "el"

    def test_conditional_expression(self):
        src = "def f(a: int) -> str:\n    return 'pos' if a > 0 else 'neg'"
        assert run(src, "f", 5) == "pos"
        assert run(src, "f", -5) == "neg"

    def test_bool_logic_short_circuit(self):
        # The right operand would trap (division by zero) if evaluated.
        src = ("def f(a: int) -> bool:\n"
               "    return a == 0 or 10 // a > 2")
        assert run(src, "f", 0) is True
        assert run(src, "f", 3) is True
        assert run(src, "f", 10) is False

    def test_augmented_assign(self):
        src = ("def f(n: int) -> int:\n"
               "    s: int = 0\n"
               "    for i in range(n):\n"
               "        s += i\n"
               "    return s")
        assert run(src, "f", 10) == 45

    def test_augmented_subscript(self):
        src = ("def f(data: bytes) -> int:\n"
               "    data[0] += 5\n"
               "    return data[0]")
        assert run(src, "f", bytes([10])) == 15


class TestControlFlow:
    def test_while_with_break_continue(self):
        src = (
            "def f(n: int) -> int:\n"
            "    s: int = 0\n"
            "    i: int = 0\n"
            "    while True:\n"
            "        i = i + 1\n"
            "        if i > n:\n"
            "            break\n"
            "        if i % 2 == 0:\n"
            "            continue\n"
            "        s = s + i\n"
            "    return s"
        )
        assert run(src, "f", 10) == 1 + 3 + 5 + 7 + 9

    def test_for_range_variants(self):
        src = (
            "def f(a: int, b: int) -> int:\n"
            "    s: int = 0\n"
            "    for i in range(a, b):\n"
            "        s = s + i\n"
            "    for j in range(3):\n"
            "        s = s + 100\n"
            "    for k in range(10, 0, -2):\n"
            "        s = s + k\n"
            "    return s"
        )
        assert run(src, "f", 2, 5) == (2 + 3 + 4) + 300 + (10 + 8 + 6 + 4 + 2)

    def test_nested_loops(self):
        src = (
            "def f(n: int) -> int:\n"
            "    s: int = 0\n"
            "    for i in range(n):\n"
            "        for j in range(i):\n"
            "            s = s + 1\n"
            "    return s"
        )
        assert run(src, "f", 5) == 10

    def test_early_return_in_loop(self):
        src = (
            "def f(data: bytes, needle: int) -> int:\n"
            "    for i in range(len(data)):\n"
            "        if data[i] == needle:\n"
            "            return i\n"
            "    return -1"
        )
        assert run(src, "f", bytes([5, 7, 9]), 7) == 1
        assert run(src, "f", bytes([5, 7, 9]), 8) == -1

    def test_recursion(self):
        src = (
            "def fact(n: int) -> int:\n"
            "    if n <= 1:\n"
            "        return 1\n"
            "    return n * fact(n - 1)"
        )
        assert run(src, "fact", 10) == 3628800

    def test_mutual_helpers(self):
        src = (
            "def helper(x: int) -> int:\n"
            "    return x * 2\n"
            "def f(x: int) -> int:\n"
            "    return helper(x) + helper(x + 1)"
        )
        assert run(src, "f", 5) == 10 + 12

    def test_void_function(self):
        src = (
            "def side(data: bytes) -> None:\n"
            "    data[0] = 9\n"
            "def f(data: bytes) -> int:\n"
            "    side(data)\n"
            "    return data[0]"
        )
        assert run(src, "f", bytes([1])) == 9


class TestArrays:
    def test_bytearray_alloc_and_fill(self):
        src = (
            "def f(n: int) -> int:\n"
            "    a: bytes = bytearray(n)\n"
            "    for i in range(n):\n"
            "        a[i] = i * 3\n"
            "    s: int = 0\n"
            "    for i in range(len(a)):\n"
            "        s = s + a[i]\n"
            "    return s"
        )
        assert run(src, "f", 10) == sum((i * 3) & 0xFF for i in range(10))

    def test_byte_store_masks_to_255(self):
        src = (
            "def f() -> int:\n"
            "    a: bytes = bytearray(1)\n"
            "    a[0] = 300\n"
            "    return a[0]"
        )
        assert run(src, "f") == 300 & 0xFF

    def test_float_arrays(self):
        src = (
            "def f(h: farr) -> float:\n"
            "    total: float = 0.0\n"
            "    for i in range(len(h)):\n"
            "        total = total + h[i]\n"
            "    return total / float(len(h))"
        )
        assert run(src, "f", [1.0, 2.0, 3.0]) == 2.0

    def test_farr_alloc(self):
        src = (
            "def f(n: int) -> float:\n"
            "    a: farr = farr(n)\n"
            "    a[0] = 1.5\n"
            "    return a[0] + a[1]"
        )
        assert run(src, "f", 2) == 1.5

    def test_bytearray_copy(self):
        src = (
            "def f(a: bytes) -> int:\n"
            "    b: bytes = bytearray(a)\n"
            "    b[0] = 99\n"
            "    return a[0] + b[0]"
        )
        assert run(src, "f", bytes([1, 2])) == 100


class TestBuiltins:
    def test_abs_min_max(self):
        src = (
            "def f(a: int, x: float) -> float:\n"
            "    return float(abs(a) + max(a, 3) + min(a, 3)) + abs(x) "
            "+ fmax(x, 0.5)"
        )
        assert run(src, "f", -4, -1.5) == float(4 + 3 + (-4)) + 1.5 + 0.5

    def test_math_natives(self):
        src = "def f(x: float) -> float:\n    return sqrt(x) + floor(x) + ceil(x)"
        assert run(src, "f", 2.25) == 1.5 + 2.0 + 3.0

    def test_str_conversion(self):
        src = "def f(a: int) -> str:\n    return 'n=' + str(a)"
        assert run(src, "f", 42) == "n=42"

    def test_int_float_conversion(self):
        src = "def f(x: float) -> int:\n    return int(x) + int(-x)"
        assert run(src, "f", 2.7) == 0  # 2 + (-2): truncation toward zero


class TestCallbacks:
    def test_callback_compiles_and_runs(self):
        from repro.vm.values import VMType as T

        sigs = {"cb_get": ((T.INT,), T.INT)}
        src = "def f(x: int) -> int:\n    return cb_get(x) * 2"
        cls = compile_source(src, "Test", callbacks=sigs)
        from repro.vm.verifier import self_resolver, verify_class as vc

        vc(cls, self_resolver(cls, callbacks=sigs))
        from repro.vm.interpreter import ExecutionContext

        def resolve(cn, fn):
            return cls, cls.functions[fn]

        ctx = ExecutionContext(
            resolve,
            callbacks={"cb_get": lambda x: x + 100},
            callback_signatures=sigs,
        )
        from repro.vm import run_function as rf

        assert rf(cls, cls.functions["f"], [1], ctx) == 202


class TestRejections:
    @pytest.mark.parametrize(
        "source, fragment",
        [
            ("x = 1", "function definitions"),
            ("def f(a) -> int:\n    return 1", "annotation"),
            ("def f(a: int):\n    return a", "return type"),
            ("def f(a: frozenset) -> int:\n    return 1", "unknown type"),
            ("def f(*args: int) -> int:\n    return 1", "positional"),
            ("def f(a: int = 3) -> int:\n    return a", "default"),
            ("def f(a: int) -> int:\n    import os\n    return a", "unsupported statement"),
            ("def f(a: int) -> int:\n    return unknown(a)", "unknown function"),
            ("def f(a: int) -> int:\n    return b", "undefined variable"),
            ("def f(a: int) -> int:\n    a = 'x'\n    return a", "cannot assign"),
            ("def f(a: int) -> str:\n    return a", "return type"),
            ("def f(a: int) -> int:\n    if a > 0:\n        return 1",
             "control may reach the end"),
            ("def f(a: int) -> int:\n    return a < 1 < 2", "chained"),
            ("def f(s: str) -> int:\n    return s - s", "only + is defined"),
            ("def f(a: int) -> int:\n    while a > 0:\n        a = a - 1\n    else:\n        a = 2\n    return a",
             "while-else"),
            ("def f(a: int) -> int:\n    for x in [1]:\n        a = a + 1\n    return a",
             "range"),
            ("def f(a: int) -> int:\n    break\n    return a", "break outside"),
            ("def f(a: int) -> int:\n    return 1\n    return 2", "unreachable"),
            ("def f(a: bool) -> bool:\n    return a == True", "comparing bools"),
            ("def f() -> int:\n    return len(3)", "len() of int"),
        ],
    )
    def test_rejected(self, source, fragment):
        with pytest.raises(CompileError) as info:
            compile_source(source, "Bad")
        assert fragment.lower() in str(info.value).lower()

    def test_duplicate_function(self):
        src = "def f() -> int:\n    return 1\ndef f() -> int:\n    return 2"
        with pytest.raises(CompileError, match="duplicate"):
            compile_source(src, "Bad")

    def test_syntax_error_reported(self):
        with pytest.raises(CompileError, match="syntax"):
            compile_source("def f(:", "Bad")

    def test_no_functions(self):
        with pytest.raises(CompileError, match="no functions"):
            compile_source("'just a docstring'", "Bad")


class TestCompiledShape:
    def test_signature_recorded(self):
        cls = compile_source(
            "def f(a: int, x: float, s: str, b: bytes, h: farr, "
            "q: bool) -> float:\n    return x",
            "Sig",
        )
        func = cls.functions["f"]
        assert func.param_types == (
            VMType.INT, VMType.FLOAT, VMType.STR, VMType.ARR,
            VMType.FARR, VMType.BOOL,
        )
        assert func.ret_type is VMType.FLOAT

    def test_docstrings_skipped(self):
        src = '"""module doc"""\ndef f() -> int:\n    "fn doc"\n    return 1'
        cls = compile_source(src, "Doc")
        verify_class(cls)
