"""JIT correctness: bit-identical behaviour with the interpreter.

The JIT must preserve every safety property and every semantic detail —
wrapping arithmetic, trap conditions, bounds checks, fuel accounting.
These tests run the same programs both ways and require agreement,
including via hypothesis-generated inputs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    ArithmeticFault,
    BoundsError,
    FuelExhausted,
    VMError,
)
from repro.vm import compile_source, run_function, single_class_context, verify_class
from repro.vm.jit import JitCompiler, invoke_jit
from repro.vm.resources import ResourceAccount

CORPUS = '''
def arith(a: int, b: int) -> int:
    return (a + b) * (a - b) + a // (b + 1000000) + (a % 97) + (a ^ b) + (a & b) + (a | b)

def shifty(a: int, s: int) -> int:
    return (a << s) + (a >> s)

def floaty(x: float, y: float) -> float:
    return (x + y) * (x - y) / (y * y + 1.0) + fmax(x, y) - fmin(x, y)

def mixed(a: int, x: float) -> float:
    return a * x + a / (x * x + 1.0) + float(a) - x

def loopy(n: int) -> int:
    s: int = 0
    for i in range(n):
        if i % 3 == 0:
            s = s + i
        elif i % 3 == 1:
            s = s - i
        else:
            s = s * 2
    return s

def scan(data: bytes, passes: int) -> int:
    s: int = 0
    for p in range(passes):
        for i in range(len(data)):
            s = s + data[i]
    return s

def build(n: int) -> int:
    a: bytes = bytearray(n)
    for i in range(n):
        a[i] = i * 7
    s: int = 0
    for i in range(len(a)):
        s = s + a[i]
    return s

def stringy(s: str, t: str) -> str:
    u: str = s + ":" + t
    if s == t:
        u = u + "=eq"
    return u + str(len(u))

def deep(n: int) -> int:
    if n <= 1:
        return 1
    return deep(n - 1) + deep(n - 2)

def whilst(a: int) -> int:
    count: int = 0
    while a != 1:
        if a % 2 == 0:
            a = a // 2
        else:
            a = 3 * a + 1
        count = count + 1
        if count > 200:
            break
    return count

def boolsy(a: int, b: int) -> bool:
    return (a > 0 and b > 0) or (a < 0 and b < 0) or not (a != b)

def ternary(a: int) -> int:
    return (a * 2 if a > 10 else a + 100) - (1 if a % 2 == 0 else 2)

def floats_sum(h: farr) -> float:
    total: float = 0.0
    for i in range(len(h)):
        total = total + h[i]
    return total
'''


@pytest.fixture(scope="module")
def corpus_class():
    cls = compile_source(CORPUS, "Corpus")
    verify_class(cls)
    return cls


def both_ways(cls, func_name, args):
    """Run both ways; return (interp outcome, jit outcome) where an
    outcome is ('ok', value) or ('err', exception type)."""

    def attempt(runner):
        ctx = single_class_context(cls)
        try:
            return ("ok", runner(cls, cls.functions[func_name], list(args), ctx))
        except VMError as exc:
            return ("err", type(exc))

    return attempt(run_function), attempt(invoke_jit)


CASES = [
    ("arith", (3, 4)),
    ("arith", (2 ** 62, -(2 ** 61))),
    ("arith", (-1, -1)),
    ("shifty", (123456789, 5)),
    ("shifty", (-9, 63)),
    ("floaty", (1.5, -2.25)),
    ("mixed", (7, 0.5)),
    ("loopy", (0,)),
    ("loopy", (100,)),
    ("scan", (bytes(range(50)), 3)),
    ("scan", (b"", 10)),
    ("build", (64,)),
    ("stringy", ("ab", "ab")),
    ("stringy", ("x", "y")),
    ("deep", (12,)),
    ("whilst", (27,)),
    ("boolsy", (1, 2)),
    ("boolsy", (-1, -2)),
    ("boolsy", (0, 0)),
    ("ternary", (4,)),
    ("ternary", (15,)),
    ("floats_sum", ([0.5, 1.5, -2.0],)),
]


@pytest.mark.parametrize("func_name, args", CASES)
def test_corpus_parity(corpus_class, func_name, args):
    interp, jit = both_ways(corpus_class, func_name, args)
    assert interp == jit
    assert interp[0] == "ok"


@settings(max_examples=120, deadline=None)
@given(a=st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1),
       b=st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1))
def test_arith_parity_hypothesis(corpus_class, a, b):
    interp, jit = both_ways(corpus_class, "arith", (a, b))
    assert interp == jit


@settings(max_examples=60, deadline=None)
@given(data=st.binary(max_size=64),
       passes=st.integers(min_value=0, max_value=4))
def test_scan_parity_hypothesis(corpus_class, data, passes):
    interp, jit = both_ways(corpus_class, "scan", (data, passes))
    assert interp == jit


@settings(max_examples=60, deadline=None)
@given(a=st.integers(min_value=1, max_value=10 ** 6))
def test_collatz_parity_hypothesis(corpus_class, a):
    interp, jit = both_ways(corpus_class, "whilst", (a,))
    assert interp == jit


class TestTrapParity:
    def run_both(self, source, func, args):
        cls = compile_source(source, "Trap")
        verify_class(cls)
        return both_ways(cls, func, args)

    def test_division_by_zero(self):
        interp, jit = self.run_both(
            "def f(a: int) -> int:\n    return 10 // a", "f", (0,)
        )
        assert interp == jit == ("err", ArithmeticFault)

    def test_bounds(self):
        interp, jit = self.run_both(
            "def f(a: bytes, i: int) -> int:\n    return a[i]", "f",
            (b"ab", 9),
        )
        assert interp == jit == ("err", BoundsError)

    def test_negative_index(self):
        interp, jit = self.run_both(
            "def f(a: bytes, i: int) -> int:\n    return a[i]", "f",
            (b"ab", -1),
        )
        assert interp == jit == ("err", BoundsError)

    def test_f2i_overflow(self):
        interp, jit = self.run_both(
            "def f(x: float) -> int:\n    return int(x)", "f", (1e40,)
        )
        assert interp == jit == ("err", ArithmeticFault)


class TestFuel:
    def test_jit_charges_fuel(self):
        src = (
            "def f(n: int) -> int:\n"
            "    s: int = 0\n"
            "    for i in range(n):\n"
            "        s = s + 1\n"
            "    return s"
        )
        cls = compile_source(src, "Fuel")
        verify_class(cls)
        rich = single_class_context(cls)
        rich.account = ResourceAccount(fuel=10 ** 9)
        assert invoke_jit(cls, cls.functions["f"], [1000], rich) == 1000
        used = rich.account.fuel_used
        assert used > 1000  # at least one unit per loop iteration

        poor = single_class_context(cls)
        poor.account = ResourceAccount(fuel=200)
        with pytest.raises(FuelExhausted):
            invoke_jit(cls, cls.functions["f"], [10 ** 6], poor)

    def test_infinite_loop_dies_promptly(self):
        src = (
            "def f() -> int:\n"
            "    while True:\n"
            "        pass\n"
        )
        # `while True: pass` never returns, so the function never needs
        # a return statement; the verifier accepts the terminal loop.
        # Fuel must kill it.
        cls = compile_source(src, "Loop")
        verify_class(cls)
        ctx = single_class_context(cls)
        ctx.account = ResourceAccount(fuel=10_000)
        with pytest.raises(FuelExhausted):
            invoke_jit(cls, cls.functions["f"], [], ctx)

    def test_memory_quota_enforced_by_jit(self):
        src = (
            "def f(n: int) -> int:\n"
            "    total: int = 0\n"
            "    for i in range(n):\n"
            "        a: bytes = bytearray(1000000)\n"
            "        total = total + len(a)\n"
            "    return total"
        )
        cls = compile_source(src, "Mem")
        verify_class(cls)
        from repro.errors import MemoryQuotaExceeded

        ctx = single_class_context(cls)
        ctx.account = ResourceAccount(memory=3_000_000)
        with pytest.raises(MemoryQuotaExceeded):
            invoke_jit(cls, cls.functions["f"], [100], ctx)


class TestJitCache:
    def test_compiled_once(self):
        src = "def f(a: int) -> int:\n    return a + 1"
        cls = compile_source(src, "Cache")
        verify_class(cls)
        compiler = JitCompiler(lambda name: cls)
        ctx = single_class_context(cls)
        first = compiler.get(cls, cls.functions["f"], ctx)
        second = compiler.get(cls, cls.functions["f"], ctx)
        assert first is second
