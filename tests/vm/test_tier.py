"""Tiered execution: eligibility, kernel correctness, and deopt paths.

Tier 1 is only ever an optimization: every batch must produce exactly
what the tier-0 loop would have produced, including when the kernel
bails out mid-batch (type-guard failure, quota edge) and the remainder
re-runs on tier 0.  These tests drive the executors directly so they
can force each deopt path and inspect the promotion state machine.
"""

import pytest

from repro.analysis.bounds import certify_class, constant_bound
from repro.analysis.effects import analyze_class
from repro.analysis.flows import analyze_flows
from repro.core.callbacks import standard_callback_signatures
from repro.core.isolated import (
    DEFAULT_BUFFER,
    MAX_BUFFER,
    RETAINED_BUFFER_CAP,
    _estimate_buffer_size,
)
from repro.core.udf import UDFDefinition, UDFSignature
from repro.core.designs import Design
from repro.database import Database
from repro.errors import FuelExhausted
from repro.vm.compiler import compile_source
from repro.vm.tier import (
    DEMOTION_DEOPTS,
    REFUSE_CALLBACK,
    REFUSE_MUTABLE_ARRAY,
    REFUSE_TRAP,
    REFUSE_UNBOUNDED,
    TierState,
    kernel_eligibility,
)
from repro.vm.values import INT_MAX
from repro.vm.verifier import self_resolver, verify_class

ARITH = "def arith(x: int) -> int:\n    return x * 3 + 1\n"
CHATTY = (
    "def chatty(x: int) -> int:\n"
    "    cb_noop()\n"
    "    return x + 1\n"
)
LOOPER = (
    "def looper(n: int) -> int:\n"
    "    total = 0\n"
    "    i = 0\n"
    "    while i < n:\n"
    "        total = total + i\n"
    "        i = i + 1\n"
    "    return total\n"
)
BLEN = "def blen(data: bytes) -> int:\n    return len(data)\n"
WRITER = (
    "def writer(data: bytes) -> int:\n"
    "    data[0] = 1\n"
    "    return 0\n"
)
DIVIDER = "def divider(x: int) -> int:\n    return 100 // x\n"
#: Cheap common path, expensive certified worst case: a fuel quota
#: between the two admits at load, completes on tier 0, and is short of
#: the kernel's per-row prepayment — the quota-edge deopt.
BRANCHY = (
    "def branchy(x: int) -> int:\n"
    "    if x < 0:\n"
    "        y = x * 3\n"
    "        y = y * 5 + 1\n"
    "        y = y * 7 + 2\n"
    "        y = y * 11 + 3\n"
    "        y = y * 13 + 4\n"
    "        y = y * 17 + 5\n"
    "        y = y * 19 + 6\n"
    "        y = y * 23 + 7\n"
    "        return y\n"
    "    return x + 1\n"
)


def _analyzed(source, name="Tier"):
    callbacks = dict(standard_callback_signatures())
    cls = compile_source(source, name, callbacks=callbacks)
    verify_class(cls, self_resolver(cls, callbacks=callbacks))
    analyze_class(cls)
    certify_class(cls)
    analyze_flows(cls, resolver=self_resolver(cls, callbacks=callbacks))
    return cls


def _func(source):
    cls = _analyzed(source)
    (func,) = cls.functions.values()
    return func


class TestEligibility:
    def test_pure_arithmetic_is_eligible(self):
        assert kernel_eligibility(_func(ARITH)) is None

    def test_callback_refused(self):
        assert kernel_eligibility(_func(CHATTY)) == REFUSE_CALLBACK

    def test_unbounded_loop_refused(self):
        assert kernel_eligibility(_func(LOOPER)) == REFUSE_UNBOUNDED

    def test_readonly_bytes_param_is_eligible(self):
        assert kernel_eligibility(_func(BLEN)) is None

    def test_written_bytes_param_refused(self):
        assert kernel_eligibility(_func(WRITER)) == REFUSE_MUTABLE_ARRAY

    def test_traps_need_a_flow_certificate(self):
        func = _func(DIVIDER)
        assert kernel_eligibility(func) is None
        assert kernel_eligibility(func, use_flows=False) == REFUSE_TRAP

    def test_stripping_flows_degrades_array_params_too(self):
        func = _func(BLEN)
        assert (
            kernel_eligibility(func, use_flows=False)
            == REFUSE_MUTABLE_ARRAY
        )

    def test_missing_function_refused(self):
        assert kernel_eligibility(None) is not None


def _sandbox_executor(db, source, name, signature="int", fuel=None,
                      callbacks=None):
    fuel_clause = f"FUEL {fuel} " if fuel else ""
    cb_clause = f"CALLBACKS '{callbacks}' " if callbacks else ""
    db.execute(
        f"CREATE FUNCTION {name}({signature}) RETURNS int LANGUAGE JAGUAR "
        f"DESIGN SANDBOX {cb_clause}{fuel_clause}AS '{source}'"
    )
    executor = db.registry.executor_for_query(name)
    executor.begin_query()
    return executor


class TestKernelExecution:
    def test_batch_results_match_tier0(self):
        batch = [(value,) for value in range(-40, 40)]
        with Database(tiering=False) as db:
            executor = _sandbox_executor(db, ARITH, "arith")
            baseline = executor.invoke_batch(batch)
            executor.end_query()
        with Database(tiering=True, tier1_threshold=0) as db:
            executor = _sandbox_executor(db, ARITH, "arith")
            assert executor.invoke_batch(batch) == baseline
            state = executor._tier
            assert state is not None and state.tier == 1
            assert state.promotions == 1
            assert state.deopts == 0
            executor.end_query()

    def test_kernel_is_compiled_once(self):
        with Database(tiering=True, tier1_threshold=0) as db:
            executor = _sandbox_executor(db, ARITH, "arith")
            executor.invoke_batch([(1,), (2,)])
            kernel = executor._tier.kernel
            executor.invoke_batch([(3,), (4,)])
            assert executor._tier.kernel is kernel
            executor.end_query()

    def test_promotion_waits_for_threshold(self):
        with Database(tiering=True, tier1_threshold=100) as db:
            executor = _sandbox_executor(db, ARITH, "arith")
            executor.invoke_batch([(value,) for value in range(64)])
            assert executor._tier.tier == 0
            executor.invoke_batch([(value,) for value in range(64)])
            assert executor._tier.tier == 1
            executor.end_query()


class TestDeoptPaths:
    def test_guard_failure_mid_batch_deopts(self):
        # INT_MAX + 1 fails the kernel's exact-range guard; tier 0
        # wraps it (coerce_argument semantics), so the batch still
        # completes — with results identical to never promoting.
        batch = [(7,), (INT_MAX + 1,), (9,)]
        with Database(tiering=False) as db:
            executor = _sandbox_executor(db, ARITH, "arith")
            baseline = executor.invoke_batch(batch)
            executor.end_query()
        with Database(tiering=True, tier1_threshold=0) as db:
            executor = _sandbox_executor(db, ARITH, "arith")
            assert executor.invoke_batch(batch) == baseline
            state = executor._tier
            assert state.deopts == 1
            assert not state.demoted
            executor.end_query()

    def test_quota_edge_inside_kernel_deopts(self):
        # Certify the worst case, then run with a quota below it: the
        # kernel cannot prepay a row and deopts; tier 0's dynamic meter
        # covers the cheap actual path and completes.
        bound = constant_bound(
            _func(BRANCHY).certificate.fuel_bound
        )
        assert bound is not None and bound > 8
        batch = [(value,) for value in range(16)]
        with Database(tiering=False) as db:
            executor = _sandbox_executor(
                db, BRANCHY, "branchy", fuel=bound - 1
            )
            baseline = executor.invoke_batch(batch)
            executor.end_query()
        with Database(tiering=True, tier1_threshold=0) as db:
            executor = _sandbox_executor(
                db, BRANCHY, "branchy", fuel=bound - 1
            )
            assert executor.invoke_batch(batch) == baseline
            assert executor._tier.deopts == 1
            executor.end_query()

    def test_true_exhaustion_raises_like_tier0(self):
        # A row that genuinely cannot finish within quota fails with
        # the same error whether or not the kernel ran first.
        bound = constant_bound(_func(BRANCHY).certificate.fuel_bound)
        fuel = bound // 2  # above the cheap path, below the expensive one
        batch = [(1,), (-5,), (2,)]  # -5 takes the expensive path
        with Database(tiering=True, tier1_threshold=0) as db:
            executor = _sandbox_executor(db, BRANCHY, "branchy", fuel=fuel)
            with pytest.raises(FuelExhausted):
                executor.invoke_batch(batch)
            executor.end_query()
        with Database(tiering=False) as db:
            executor = _sandbox_executor(db, BRANCHY, "branchy", fuel=fuel)
            with pytest.raises(FuelExhausted):
                executor.invoke_batch(batch)
            executor.end_query()

    def test_callback_udf_is_never_promoted(self):
        with Database(tiering=True, tier1_threshold=0) as db:
            executor = _sandbox_executor(
                db, CHATTY, "chatty", callbacks="cb_noop"
            )
            for _ in range(5):
                executor.invoke_batch([(value,) for value in range(32)])
            state = executor._tier
            assert state.tier == 0
            assert state.promotions == 0
            assert state.refusal == REFUSE_CALLBACK
            executor.end_query()

    def test_deopt_storm_demotes(self):
        poison = [(INT_MAX + 1,)]
        with Database(tiering=True, tier1_threshold=0) as db:
            executor = _sandbox_executor(db, ARITH, "arith")
            for _ in range(DEMOTION_DEOPTS):
                executor.invoke_batch(poison)
            state = executor._tier
            assert state.demoted
            assert state.tier == 0
            # Demoted executors still answer correctly on tier 0.
            assert executor.invoke_batch([(3,)]) == [10]
            assert state.deopts == DEMOTION_DEOPTS
            executor.end_query()


class TestTierStateMachine:
    def test_snapshot_round_trip(self):
        state = TierState(threshold=5)
        state.calls = 7
        snapshot = state.snapshot()
        assert snapshot["tier"] == 0
        assert snapshot["calls"] == 7
        assert snapshot["refusal"] is None
        assert not snapshot["demoted"]

    def test_threshold_zero_is_immediately_hot(self):
        assert TierState(threshold=0).hot
        assert not TierState(threshold=1).hot


class TestIsolatedTiering:
    def test_isolated_workers_promote_and_report(self):
        with Database(tiering=True, tier1_threshold=0) as db:
            db.execute(
                "CREATE FUNCTION arith(int) RETURNS int LANGUAGE JAGUAR "
                f"DESIGN SANDBOX_ISOLATED AS '{ARITH}'"
            )
            executor = db.registry.executor_for_query("arith")
            executor.begin_query()
            batch = [(value,) for value in range(64)]
            expected = [value * 3 + 1 for value in range(64)]
            assert executor.invoke_batch(batch) == expected
            stats = executor.channel_stats()
            assert stats["tier"]["tier"] == 1
            assert stats["tier"]["promotions"] == 1
            assert stats["tier"]["tier1_batches"] == 1
            executor.end_query()
            executor.close()

    def test_isolated_counters_reach_db_stats(self):
        with Database(
            tiering=True, tier1_threshold=0, metrics=True
        ) as db:
            db.execute("CREATE TABLE t (id INT)")
            db.insert_rows("t", [(value,) for value in range(64)])
            db.execute(
                "CREATE FUNCTION arith(int) RETURNS int LANGUAGE JAGUAR "
                f"DESIGN SANDBOX_ISOLATED AS '{ARITH}'"
            )
            rows = db.query("SELECT arith(id) FROM t")
            assert rows == [(value * 3 + 1,) for value in range(64)]
            counters = db.stats()["metrics"]["counters"]
            assert counters["udf.arith.promotions"] == 1
            assert counters["udf.arith.tier1_batches"] >= 1

    def test_isolated_without_tiering_keeps_seed_protocol(self):
        with Database(tiering=False) as db:
            db.execute(
                "CREATE FUNCTION arith(int) RETURNS int LANGUAGE JAGUAR "
                f"DESIGN SANDBOX_ISOLATED AS '{ARITH}'"
            )
            executor = db.registry.executor_for_query("arith")
            executor.begin_query()
            assert executor.invoke_batch([(2,)]) == [7]
            assert "tier" not in executor.channel_stats()
            executor.end_query()
            executor.close()


class TestRetainedBufferCap:
    """Regression: batch hints must not pin huge shm buffers."""

    def _definition(self, param="bytes"):
        return UDFDefinition(
            name="blob_udf",
            signature=UDFSignature((param,), "int"),
            design=Design.NATIVE_ISOLATED,
            payload=b"mod:func",
            entry="func",
        )

    def test_small_hint_gets_default_buffer(self):
        assert (
            _estimate_buffer_size(self._definition("int"), 64)
            == DEFAULT_BUFFER
        )

    def test_giant_hint_is_capped(self):
        size = _estimate_buffer_size(self._definition("bytes"), 100_000)
        assert size == RETAINED_BUFFER_CAP
        assert size < MAX_BUFFER

    def test_cap_ordering(self):
        assert DEFAULT_BUFFER <= RETAINED_BUFFER_CAP <= MAX_BUFFER

    def test_oversized_batches_still_flow_through_capped_buffer(self):
        # A payload bigger than the capped buffer must chunk, not fail:
        # end-to-end with a batch whose pickled size exceeds the hint
        # estimate's cap.
        with Database() as db:
            db.batch_size = 100_000  # giant hint at executor build time
            db.execute(
                "CREATE FUNCTION blen(bytes) RETURNS int LANGUAGE JAGUAR "
                f"DESIGN SANDBOX_ISOLATED AS '{BLEN}'"
            )
            executor = db.registry.executor_for_query("blen")
            executor.begin_query()
            try:
                payload = bytes(2 * 1024 * 1024)  # 2 MiB > 1 MiB cap
                assert executor.invoke_batch([(payload,)]) == [
                    len(payload)
                ]
                stats = executor.channel_stats()
                assert stats["buffer_size"] <= RETAINED_BUFFER_CAP
                assert stats["chunks_sent"] > stats["messages_sent"]
            finally:
                executor.end_query()
                executor.close()
