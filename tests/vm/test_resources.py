"""Resource accounts: the Section 6.2 quotas the 1998 JVM lacked."""

import pytest

from repro.errors import (
    FuelExhausted,
    MemoryQuotaExceeded,
    StackOverflowFault,
)
from repro.vm.resources import ResourceAccount, unmetered_account


class TestFuel:
    def test_charges_and_exhausts(self):
        account = ResourceAccount(fuel=100)
        account.charge_fuel(60)
        account.charge_fuel(40)
        assert account.fuel == 0
        with pytest.raises(FuelExhausted):
            account.charge_fuel(1)

    def test_fuel_used_reporting(self):
        account = ResourceAccount(fuel=100)
        account.charge_fuel(30)
        assert account.fuel_used == 30

    def test_hot_path_protocol(self):
        # The interpreter decrements the attribute directly.
        account = ResourceAccount(fuel=2)
        account.fuel -= 1
        assert account.fuel >= 0
        account.fuel -= 2
        assert account.fuel < 0
        with pytest.raises(FuelExhausted):
            account.out_of_fuel()


class TestMemory:
    def test_charge_and_exhaust(self):
        account = ResourceAccount(memory=1000)
        account.charge_memory(600)
        with pytest.raises(MemoryQuotaExceeded):
            account.charge_memory(500)

    def test_release_capped_at_limit(self):
        account = ResourceAccount(memory=1000)
        account.charge_memory(100)
        account.release_memory(5000)
        assert account.memory == 1000

    def test_negative_allocation_rejected(self):
        account = ResourceAccount()
        with pytest.raises(MemoryQuotaExceeded):
            account.charge_memory(-1)


class TestDepth:
    def test_enter_exit(self):
        account = ResourceAccount(max_depth=2)
        account.enter_call()
        account.enter_call()
        with pytest.raises(StackOverflowFault):
            account.enter_call()
        account.exit_call()
        account.exit_call()
        account.exit_call()
        account.enter_call()  # recovered


class TestRevocationAndReset:
    def test_revoke_kills_at_next_check(self):
        account = ResourceAccount(fuel=10 ** 9)
        account.revoke()
        with pytest.raises(FuelExhausted, match="revoked"):
            account.charge_fuel(1)

    def test_reset_refills(self):
        account = ResourceAccount(fuel=100, memory=100)
        account.charge_fuel(70)
        account.charge_memory(70)
        account.reset()
        assert account.fuel == 100
        assert account.memory == 100

    def test_reset_does_not_unrevoke(self):
        account = ResourceAccount(fuel=100)
        account.revoke()
        account.reset()
        with pytest.raises(FuelExhausted):
            account.charge_fuel(1)

    def test_snapshot(self):
        account = ResourceAccount(fuel=100, memory=200, max_depth=5)
        account.charge_fuel(10)
        account.charge_memory(20)
        snap = account.snapshot()
        assert snap["fuel_used"] == 10
        assert snap["memory_used"] == 20
        assert snap["revoked"] is False


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"fuel": 0}, {"fuel": -1}, {"memory": 0}, {"max_depth": 0},
    ])
    def test_bad_quotas_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ResourceAccount(**kwargs)

    def test_unmetered_is_huge(self):
        account = unmetered_account()
        account.charge_fuel(10 ** 12)
        account.charge_memory(10 ** 12)
