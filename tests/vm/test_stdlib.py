"""Trusted stdlib natives: totality (checked math) and signatures."""

import math

import pytest

from repro.errors import ArithmeticFault
from repro.vm.stdlib import NATIVE_IMPLS, NATIVE_SIGNATURES
from repro.vm.values import INT_MAX, INT_MIN, VMType


class TestSignatureTableConsistency:
    def test_every_native_has_both_entries(self):
        assert set(NATIVE_SIGNATURES) == set(NATIVE_IMPLS)

    def test_signatures_use_vm_types(self):
        for name, (params, ret) in NATIVE_SIGNATURES.items():
            for t in (*params, ret):
                assert isinstance(t, VMType), name


class TestCheckedMath:
    def test_sqrt(self):
        assert NATIVE_IMPLS["sqrt"](4.0) == 2.0
        with pytest.raises(ArithmeticFault):
            NATIVE_IMPLS["sqrt"](-1.0)

    def test_log(self):
        assert NATIVE_IMPLS["log"](math.e) == pytest.approx(1.0)
        with pytest.raises(ArithmeticFault):
            NATIVE_IMPLS["log"](0.0)
        with pytest.raises(ArithmeticFault):
            NATIVE_IMPLS["log"](-2.0)

    def test_exp_overflow_trapped(self):
        with pytest.raises(ArithmeticFault):
            NATIVE_IMPLS["exp"](1e9)
        assert NATIVE_IMPLS["exp"](0.0) == 1.0

    def test_pow_domain_trapped(self):
        assert NATIVE_IMPLS["pow"](2.0, 10.0) == 1024.0
        with pytest.raises(ArithmeticFault):
            NATIVE_IMPLS["pow"](-1.0, 0.5)
        with pytest.raises(ArithmeticFault):
            NATIVE_IMPLS["pow"](1e300, 10.0)

    def test_chr_range_trapped(self):
        assert NATIVE_IMPLS["chr"](65) == "A"
        with pytest.raises(ArithmeticFault):
            NATIVE_IMPLS["chr"](-1)
        with pytest.raises(ArithmeticFault):
            NATIVE_IMPLS["chr"](2 ** 32)


class TestIntNatives:
    def test_iabs_wraps_at_min(self):
        # abs(INT_MIN) overflows 64 bits; Java wraps, so do we.
        assert NATIVE_IMPLS["iabs"](INT_MIN) == INT_MIN
        assert NATIVE_IMPLS["iabs"](-5) == 5

    def test_min_max(self):
        assert NATIVE_IMPLS["imin"](3, -2) == -2
        assert NATIVE_IMPLS["imax"](3, -2) == 3
        assert NATIVE_IMPLS["fmin"](1.5, 2.5) == 1.5
        assert NATIVE_IMPLS["fmax"](1.5, 2.5) == 2.5

    def test_round_returns_int(self):
        assert NATIVE_IMPLS["round"](2.5) == 2  # banker's rounding
        assert NATIVE_IMPLS["round"](2.51) == 3
        assert isinstance(NATIVE_IMPLS["round"](2.5), int)

    def test_floor_ceil_return_float(self):
        assert NATIVE_IMPLS["floor"](2.7) == 2.0
        assert NATIVE_IMPLS["ceil"](2.1) == 3.0
        assert isinstance(NATIVE_IMPLS["floor"](2.7), float)


class TestNativesFromJagScript:
    def test_trap_propagates_as_vm_error(self):
        from repro.errors import VMError
        from repro.vm import (
            compile_source,
            run_function,
            single_class_context,
            verify_class,
        )

        cls = compile_source(
            "def f(x: float) -> float:\n    return sqrt(x)", "N"
        )
        verify_class(cls)
        ctx = single_class_context(cls)
        with pytest.raises(VMError):
            run_function(cls, cls.functions["f"], [-4.0], ctx)
