"""Classfile (de)serialization: round trips and hostile-input fuzzing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ClassFormatError
from repro.vm import compile_source
from repro.vm.classfile import (
    ClassFile,
    FunctionDef,
    MAX_CODE,
    PoolEntry,
)
from repro.vm.opcodes import Instr, Op
from repro.vm.values import VMType

SOURCE = '''
def helper(x: int) -> int:
    return x + 1

def main(data: bytes, n: int) -> int:
    s: int = 0
    for i in range(n):
        s = helper(s) + iabs(-1)
    msg: str = "total: " + str(s)
    return s + len(msg) + len(data)
'''


def compiled():
    return compile_source(SOURCE, "RoundTrip")


class TestRoundTrip:
    def test_identity(self):
        cls = compiled()
        data = cls.to_bytes()
        back = ClassFile.from_bytes(data)
        assert back.name == cls.name
        assert back.pool == cls.pool
        assert set(back.functions) == set(cls.functions)
        for name, func in cls.functions.items():
            other = back.functions[name]
            assert other.param_types == func.param_types
            assert other.ret_type == func.ret_type
            assert other.local_types == func.local_types
            assert other.code == func.code

    def test_reencode_stable(self):
        data = compiled().to_bytes()
        assert ClassFile.from_bytes(data).to_bytes() == data

    def test_verified_flag_not_serialized(self):
        from repro.vm import verify_class

        cls = compiled()
        verify_class(cls)
        assert cls.verified
        assert not ClassFile.from_bytes(cls.to_bytes()).verified

    def test_unicode_names_and_strings(self):
        cls = ClassFile(name="Ünïcødé")
        index = cls.pool_index(PoolEntry.string("héllo ▲ wörld"))
        cls.add_function(
            FunctionDef(
                name="f",
                param_types=(),
                ret_type=VMType.STR,
                local_types=(),
                code=(Instr(Op.SCONST, index), Instr(Op.RET, None)),
            )
        )
        back = ClassFile.from_bytes(cls.to_bytes())
        assert back.pool[index].value[0] == "héllo ▲ wörld"


class TestHostileInputs:
    def reject(self, data):
        with pytest.raises(ClassFormatError):
            ClassFile.from_bytes(data)

    def test_bad_magic(self):
        self.reject(b"NOPE" + compiled().to_bytes()[4:])

    def test_truncations_always_rejected(self):
        data = compiled().to_bytes()
        for cut in range(0, len(data) - 1, 7):
            self.reject(data[:cut])

    def test_trailing_garbage(self):
        self.reject(compiled().to_bytes() + b"\x00")

    def test_bad_version(self):
        data = bytearray(compiled().to_bytes())
        data[4] = 99
        self.reject(bytes(data))

    def test_duplicate_function_names(self):
        cls = ClassFile(name="Dup")
        func = FunctionDef(
            name="f", param_types=(), ret_type=VMType.INT,
            local_types=(),
            code=(Instr(Op.ICONST, 1), Instr(Op.RET, None)),
        )
        cls.add_function(func)
        with pytest.raises(ClassFormatError, match="duplicate"):
            cls.add_function(func)

    def test_locals_fewer_than_params_rejected(self):
        with pytest.raises(ClassFormatError, match="fewer locals"):
            FunctionDef(
                name="f",
                param_types=(VMType.INT,),
                ret_type=VMType.INT,
                local_types=(),
                code=(Instr(Op.ICONST, 1), Instr(Op.RET, None)),
            )

    def test_param_local_type_mismatch_rejected(self):
        with pytest.raises(ClassFormatError, match="does not match"):
            FunctionDef(
                name="f",
                param_types=(VMType.INT,),
                ret_type=VMType.INT,
                local_types=(VMType.FLOAT,),
                code=(Instr(Op.ICONST, 1), Instr(Op.RET, None)),
            )

    @settings(max_examples=200)
    @given(st.binary(min_size=0, max_size=400))
    def test_random_bytes_never_crash_decoder(self, data):
        """Decoder total: random input either parses or raises
        ClassFormatError — never any other exception."""
        try:
            ClassFile.from_bytes(data)
        except ClassFormatError:
            pass

    @settings(max_examples=150)
    @given(
        st.integers(min_value=0, max_value=600),
        st.binary(min_size=1, max_size=8),
    )
    def test_bitflips_never_crash_decoder(self, position, junk):
        """Corrupting a valid classfile is safe: parse or reject."""
        data = bytearray(compiled().to_bytes())
        position %= len(data)
        data[position:position + len(junk)] = junk
        try:
            ClassFile.from_bytes(bytes(data))
        except ClassFormatError:
            pass
