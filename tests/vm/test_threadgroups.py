"""Thread groups: killing one UDF's group leaves others untouched."""

import time

import pytest

from repro.errors import FuelExhausted, SecurityViolation
from repro.vm import compile_source, run_function, single_class_context, verify_class
from repro.vm.resources import ResourceAccount
from repro.vm.threadgroups import ThreadGroup, ThreadGroupRegistry

SPIN = (
    "def spin() -> int:\n"
    "    while True:\n"
    "        pass\n"
)

QUICK = "def quick(n: int) -> int:\n    return n * 2"


def make_runner(source, func, args, account):
    cls = compile_source(source, "TG")
    verify_class(cls)

    def runner():
        ctx = single_class_context(cls, account=account)
        return run_function(cls, cls.functions[func], args, ctx)

    return runner


class TestGroups:
    def test_kill_revokes_running_udf(self):
        group = ThreadGroup("spinner")
        account = group.adopt_account(ResourceAccount(fuel=2 ** 50))
        thread = group.spawn(make_runner(SPIN, "spin", [], account))
        time.sleep(0.05)
        assert thread.is_alive()
        group.kill()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert isinstance(thread.udf_error, FuelExhausted)

    def test_kill_does_not_affect_other_group(self):
        group_a = ThreadGroup("a")
        group_b = ThreadGroup("b")
        account_a = group_a.adopt_account(ResourceAccount(fuel=2 ** 50))
        account_b = group_b.adopt_account(ResourceAccount(fuel=2 ** 50))
        thread_a = group_a.spawn(make_runner(SPIN, "spin", [], account_a))
        thread_b = group_b.spawn(make_runner(SPIN, "spin", [], account_b))
        time.sleep(0.05)
        group_a.kill()
        thread_a.join(timeout=5.0)
        assert not thread_a.is_alive()
        assert thread_b.is_alive()  # B keeps running
        group_b.kill()
        thread_b.join(timeout=5.0)

    def test_killed_group_rejects_new_threads(self):
        group = ThreadGroup("dead")
        group.kill()
        with pytest.raises(SecurityViolation):
            group.spawn(lambda: None)

    def test_account_adopted_after_kill_is_born_revoked(self):
        group = ThreadGroup("dead")
        group.kill()
        account = group.adopt_account(ResourceAccount(fuel=100))
        with pytest.raises(FuelExhausted):
            account.charge_fuel(1)

    def test_successful_result_captured(self):
        group = ThreadGroup("ok")
        account = group.adopt_account(ResourceAccount())
        thread = group.spawn(make_runner(QUICK, "quick", [21], account))
        thread.join(timeout=5.0)
        assert thread.udf_error is None
        assert thread.udf_result == 42


class TestRegistry:
    def test_group_per_udf(self):
        registry = ThreadGroupRegistry()
        assert registry.group_for("a") is registry.group_for("a")
        assert registry.group_for("a") is not registry.group_for("b")

    def test_registry_kill(self):
        registry = ThreadGroupRegistry()
        group = registry.group_for("x")
        registry.kill("x")
        assert group.killed
        # A new group takes the name afterwards.
        assert registry.group_for("x") is not group
