"""The sandbox safety property, as a property-based test.

The core claim of the verify-then-trust architecture: **no classfile —
however constructed — can make the VM misbehave**.  Either the decoder
rejects it, the verifier rejects it, or it runs and any fault it raises
is a :class:`~repro.errors.VMError` confined to the sandbox.  Nothing
else (no host exceptions, no corruption) may escape.

Hypothesis attacks the pipeline with mutated real classfiles; mutations
that survive decode + verify are then *executed* under a small fuel
budget.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ClassFormatError, VerifyError, VMError
from repro.vm import compile_source, run_function, single_class_context
from repro.vm.classfile import ClassFile
from repro.vm.jit import invoke_jit
from repro.vm.resources import ResourceAccount
from repro.vm.verifier import verify_class

SOURCE = '''
def helper(a: int) -> int:
    return a * 3 - 1

def entry(data: bytes, n: int) -> int:
    s: int = 0
    for i in range(n):
        s = helper(s) + i
    for i in range(len(data)):
        s = s + data[i]
    if s > 1000:
        return s % 1000
    return s
'''

_BASE = compile_source(SOURCE, "Victim").to_bytes()

ARGS = (b"\x01\x02\x03", 5)


def exercise(data: bytes) -> None:
    """Decode -> verify -> execute; only sandbox errors may surface."""
    try:
        cls = ClassFile.from_bytes(data)
    except ClassFormatError:
        return
    try:
        verify_class(cls)
    except (VerifyError, ClassFormatError):
        # ClassFormatError can surface from pool-kind checks at link time.
        return
    for runner in (run_function, invoke_jit):
        func = cls.functions.get("entry")
        if func is None or len(func.param_types) != 2:
            continue
        ctx = single_class_context(cls)
        ctx.account = ResourceAccount(fuel=50_000, memory=1 << 20)
        try:
            runner(cls, func, list(ARGS), ctx)
        except VMError:
            pass  # confined fault: allowed


@settings(max_examples=300, deadline=None)
@given(
    position=st.integers(min_value=0, max_value=len(_BASE) - 1),
    junk=st.binary(min_size=1, max_size=6),
)
def test_byte_mutations_cannot_escape_sandbox(position, junk):
    mutated = bytearray(_BASE)
    mutated[position:position + len(junk)] = junk
    exercise(bytes(mutated))


@settings(max_examples=150, deadline=None)
@given(st.binary(min_size=0, max_size=300))
def test_random_blobs_cannot_escape_sandbox(data):
    exercise(data)


@settings(max_examples=100, deadline=None)
@given(
    cut=st.integers(min_value=0, max_value=len(_BASE)),
    extra=st.binary(max_size=20),
)
def test_truncation_with_padding_cannot_escape_sandbox(cut, extra):
    exercise(_BASE[:cut] + extra)
