"""Class loaders: parent delegation and per-UDF namespace isolation."""

import pytest

from repro.errors import LinkError, VerifyError
from repro.vm import compile_source
from repro.vm.classloader import SystemClassLoader, UDFClassLoader

HELPER = "def tw(x: int) -> int:\n    return x * 2"
MAIN_A = "def main(x: int) -> int:\n    return x + 1"
MAIN_B = "def main(x: int) -> int:\n    return x + 2"


class TestIsolation:
    def test_two_udfs_can_both_define_main(self):
        """Section 6.1: each UDF's loader isolates its namespace."""
        system = SystemClassLoader()
        loader_a = UDFClassLoader("a", system)
        loader_b = UDFClassLoader("b", system)
        loader_a.define_class(compile_source(MAIN_A, "Main"))
        loader_b.define_class(compile_source(MAIN_B, "Main"))
        cls_a = loader_a.resolve_class("Main")
        cls_b = loader_b.resolve_class("Main")
        assert cls_a is not cls_b

    def test_udf_cannot_see_siblings_classes(self):
        system = SystemClassLoader()
        loader_a = UDFClassLoader("a", system)
        loader_b = UDFClassLoader("b", system)
        loader_a.define_class(compile_source(MAIN_A, "SecretA"))
        with pytest.raises(LinkError):
            loader_b.resolve_class("SecretA")

    def test_parent_first_delegation(self):
        system = SystemClassLoader()
        shared = compile_source(HELPER, "Shared")
        system.define_class(shared)
        loader = UDFClassLoader("u", system)
        assert loader.resolve_class("Shared") is shared

    def test_udf_cannot_shadow_system_class(self):
        """Parent-first delegation means the system version wins even if
        the UDF defines a class with the same name."""
        system = SystemClassLoader()
        trusted = compile_source(HELPER, "Shared")
        system.define_class(trusted)
        loader = UDFClassLoader("u", system)
        impostor = compile_source("def tw(x: int) -> int:\n    return 0", "Shared")
        loader.define_class(impostor)
        assert loader.resolve_class("Shared") is trusted

    def test_duplicate_definition_rejected(self):
        system = SystemClassLoader()
        loader = UDFClassLoader("u", system)
        loader.define_class(compile_source(MAIN_A, "Main"))
        with pytest.raises(LinkError, match="already defines"):
            loader.define_class(compile_source(MAIN_B, "Main"))


class TestVerificationAtDefinition:
    def test_define_verifies(self):
        system = SystemClassLoader()
        loader = UDFClassLoader("u", system)
        cls = loader.define_class(compile_source(MAIN_A, "Main"))
        assert cls.verified

    def test_bad_class_not_admitted(self):
        from repro.vm.classfile import ClassFile, FunctionDef
        from repro.vm.opcodes import Instr, Op
        from repro.vm.values import VMType

        bad = ClassFile(name="Bad")
        bad.add_function(
            FunctionDef(
                name="f", param_types=(), ret_type=VMType.INT,
                local_types=(), code=(Instr(Op.IADD, None),),
            )
        )
        loader = UDFClassLoader("u", SystemClassLoader())
        with pytest.raises(VerifyError):
            loader.define_class(bad)
        with pytest.raises(LinkError):
            loader.resolve_class("Bad")

    def test_cross_class_call_resolves_through_loader(self):
        system = SystemClassLoader()
        system.define_class(compile_source(HELPER, "Lib"))
        loader = UDFClassLoader("u", system)
        # A class calling Lib.tw: build the call by hand.
        from repro.vm.classfile import ClassFile, FunctionDef, PoolEntry
        from repro.vm.opcodes import Instr, Op
        from repro.vm.values import VMType

        cls = ClassFile(name="Caller")
        ref = cls.pool_index(PoolEntry.funcref("Lib", "tw"))
        cls.add_function(
            FunctionDef(
                name="go", param_types=(VMType.INT,),
                ret_type=VMType.INT, local_types=(VMType.INT,),
                code=(
                    Instr(Op.LOAD, 0),
                    Instr(Op.CALL, ref),
                    Instr(Op.RET, None),
                ),
            )
        )
        loader.define_class(cls)
        from repro.vm.interpreter import ExecutionContext, run_function

        ctx = ExecutionContext(loader.resolve_function)
        caller = loader.resolve_class("Caller")
        result = run_function(caller, caller.functions["go"], [21], ctx)
        assert result == 42

    def test_unresolvable_foreign_call_rejected_eagerly(self):
        from repro.vm.classfile import ClassFile, FunctionDef, PoolEntry
        from repro.vm.opcodes import Instr, Op
        from repro.vm.values import VMType

        cls = ClassFile(name="Caller")
        ref = cls.pool_index(PoolEntry.funcref("NoSuchClass", "x"))
        cls.add_function(
            FunctionDef(
                name="go", param_types=(), ret_type=VMType.INT,
                local_types=(),
                code=(Instr(Op.CALL, ref), Instr(Op.RET, None)),
            )
        )
        loader = UDFClassLoader("u", SystemClassLoader())
        with pytest.raises(VerifyError, match="cannot resolve"):
            loader.define_class(cls)

    def test_hostile_bytes_path(self):
        loader = UDFClassLoader("u", SystemClassLoader())
        from repro.errors import ClassFormatError

        with pytest.raises(ClassFormatError):
            loader.define_class(b"JAGCgarbage")
        # Valid bytes load fine through the same path.
        data = compile_source(MAIN_A, "Main").to_bytes()
        cls = loader.define_class(data)
        assert cls.verified
