"""Bytecode verifier: accepts compiled output, rejects attacks.

These are the Section 6.1 guarantees: malformed or type-confused
bytecode never reaches the interpreter.  Each rejection test hand-builds
the kind of classfile a malicious client could upload.
"""

import pytest

from repro.errors import VerifyError
from repro.vm import compile_source, verify_class
from repro.vm.classfile import ClassFile, FunctionDef, PoolEntry
from repro.vm.opcodes import Instr, Op
from repro.vm.values import VMType

I = VMType.INT
F = VMType.FLOAT
B = VMType.BOOL
S = VMType.STR
A = VMType.ARR


def make_class(code, params=(), ret=I, locals_=None, pool=None, name="f"):
    cls = ClassFile(name="Evil", pool=list(pool or []))
    cls.add_function(
        FunctionDef(
            name=name,
            param_types=tuple(params),
            ret_type=ret,
            local_types=tuple(locals_ if locals_ is not None else params),
            code=tuple(code),
        )
    )
    return cls


class TestAccepts:
    def test_minimal_return(self):
        cls = make_class([Instr(Op.ICONST, 7), Instr(Op.RET, None)])
        verify_class(cls)
        assert cls.verified
        assert cls.functions["f"].max_stack == 1

    def test_compiled_programs_verify(self):
        source = (
            "def f(data: bytes, n: int) -> int:\n"
            "    s: int = 0\n"
            "    for p in range(n):\n"
            "        for i in range(len(data)):\n"
            "            s = s + data[i]\n"
            "    return s"
        )
        verify_class(compile_source(source, "OK"))

    def test_branch_join_with_equal_stacks(self):
        # cond ? 1 : 2, then return
        code = [
            Instr(Op.BCONST, 1),
            Instr(Op.JZ, 4),
            Instr(Op.ICONST, 1),
            Instr(Op.JMP, 5),
            Instr(Op.ICONST, 2),
            Instr(Op.RET, None),
        ]
        verify_class(make_class(code))

    def test_max_stack_computed(self):
        code = [
            Instr(Op.ICONST, 1),
            Instr(Op.ICONST, 2),
            Instr(Op.ICONST, 3),
            Instr(Op.IADD, None),
            Instr(Op.IADD, None),
            Instr(Op.RET, None),
        ]
        cls = make_class(code)
        verify_class(cls)
        assert cls.functions["f"].max_stack == 3


class TestRejects:
    def expect_reject(self, cls, fragment):
        with pytest.raises(VerifyError) as info:
            verify_class(cls)
        assert fragment in str(info.value)
        assert not cls.verified

    def test_empty_code(self):
        self.expect_reject(make_class([]), "empty code")

    def test_stack_underflow(self):
        self.expect_reject(
            make_class([Instr(Op.IADD, None), Instr(Op.ICONST, 0),
                        Instr(Op.RET, None)]),
            "underflow",
        )

    def test_type_confusion_int_as_array(self):
        # Push an int, then try to index it as an array.
        code = [
            Instr(Op.ICONST, 0),
            Instr(Op.ICONST, 0),
            Instr(Op.ALOAD, None),
            Instr(Op.RET, None),
        ]
        self.expect_reject(make_class(code), "expected arr")

    def test_float_int_confusion(self):
        code = [
            Instr(Op.FCONST, 1.0),
            Instr(Op.ICONST, 1),
            Instr(Op.IADD, None),
            Instr(Op.RET, None),
        ]
        self.expect_reject(make_class(code), "expected int")

    def test_branch_target_out_of_range(self):
        code = [Instr(Op.JMP, 99), Instr(Op.ICONST, 0), Instr(Op.RET, None)]
        self.expect_reject(make_class(code), "out of range")

    def test_fall_off_end(self):
        code = [Instr(Op.ICONST, 1), Instr(Op.POP, None)]
        self.expect_reject(make_class(code), "falls off end")

    def test_read_before_write(self):
        code = [Instr(Op.LOAD, 0), Instr(Op.RET, None)]
        self.expect_reject(
            make_class(code, params=(), locals_=[I]), "read before write"
        )

    def test_local_out_of_range(self):
        code = [Instr(Op.ICONST, 1), Instr(Op.STORE, 5),
                Instr(Op.ICONST, 0), Instr(Op.RET, None)]
        self.expect_reject(make_class(code, locals_=[I]), "out of range")

    def test_store_wrong_type(self):
        code = [Instr(Op.FCONST, 1.0), Instr(Op.STORE, 0),
                Instr(Op.ICONST, 0), Instr(Op.RET, None)]
        self.expect_reject(make_class(code, locals_=[I]), "expected int")

    def test_return_wrong_type(self):
        code = [Instr(Op.FCONST, 1.0), Instr(Op.RET, None)]
        self.expect_reject(make_class(code), "expected int")

    def test_return_with_dirty_stack(self):
        code = [Instr(Op.ICONST, 1), Instr(Op.ICONST, 2), Instr(Op.RET, None)]
        self.expect_reject(make_class(code), "not empty")

    def test_retv_in_nonvoid(self):
        code = [Instr(Op.RETV, None)]
        self.expect_reject(make_class(code), "RETV in a non-void")

    def test_ret_in_void(self):
        code = [Instr(Op.ICONST, 1), Instr(Op.RET, None)]
        self.expect_reject(
            make_class(code, ret=VMType.VOID), "RET in a void"
        )

    def test_inconsistent_join_stacks(self):
        # One path pushes an int, the other a float, then they join.
        code = [
            Instr(Op.BCONST, 1),
            Instr(Op.JZ, 4),
            Instr(Op.ICONST, 1),
            Instr(Op.JMP, 5),
            Instr(Op.FCONST, 2.0),
            Instr(Op.POP, None),
            Instr(Op.ICONST, 0),
            Instr(Op.RET, None),
        ]
        self.expect_reject(make_class(code), "inconsistent stack")

    def test_unreachable_code(self):
        code = [
            Instr(Op.ICONST, 1),
            Instr(Op.RET, None),
            Instr(Op.ICONST, 2),
            Instr(Op.RET, None),
        ]
        self.expect_reject(make_class(code), "unreachable")

    def test_pool_index_out_of_range(self):
        code = [Instr(Op.SCONST, 3), Instr(Op.POP, None),
                Instr(Op.ICONST, 0), Instr(Op.RET, None)]
        self.expect_reject(make_class(code), "out of range")

    def test_pool_kind_mismatch(self):
        pool = [PoolEntry.funcref("X", "y")]
        code = [Instr(Op.SCONST, 0), Instr(Op.POP, None),
                Instr(Op.ICONST, 0), Instr(Op.RET, None)]
        self.expect_reject(make_class(code, pool=pool), "kind")

    def test_unknown_call_target(self):
        pool = [PoolEntry.funcref("Evil", "missing")]
        code = [Instr(Op.CALL, 0), Instr(Op.ICONST, 0), Instr(Op.RET, None)]
        self.expect_reject(make_class(code, pool=pool), "unknown function")

    def test_call_arity_enforced(self):
        # f calls itself (needs 1 int) with an empty stack.
        pool = [PoolEntry.funcref("Evil", "f")]
        code = [Instr(Op.CALL, 0), Instr(Op.RET, None)]
        self.expect_reject(
            make_class(code, params=(I,), pool=pool), "underflow"
        )

    def test_unknown_native(self):
        pool = [PoolEntry.nativeref("system")]
        code = [Instr(Op.NATIVE, 0), Instr(Op.ICONST, 0), Instr(Op.RET, None)]
        self.expect_reject(make_class(code, pool=pool), "unknown native")

    def test_unknown_callback(self):
        pool = [PoolEntry.callbackref("cb_format_disk")]
        code = [Instr(Op.CALLBACK, 0), Instr(Op.ICONST, 0), Instr(Op.RET, None)]
        self.expect_reject(make_class(code, pool=pool), "unknown callback")

    def test_jz_needs_bool(self):
        code = [Instr(Op.ICONST, 1), Instr(Op.JZ, 0),
                Instr(Op.ICONST, 0), Instr(Op.RET, None)]
        self.expect_reject(make_class(code), "expected bool")

    def test_swap_needs_two(self):
        code = [Instr(Op.ICONST, 1), Instr(Op.SWAP, None),
                Instr(Op.RET, None)]
        self.expect_reject(make_class(code), "underflow")

    def test_infinite_empty_loop_is_legal_but_bounded_elsewhere(self):
        # A JMP-to-self is *verifiable* (fuel stops it at run time).
        code = [Instr(Op.JMP, 0)]
        verify_class(make_class(code, ret=VMType.VOID))


class TestExecutionRefusesUnverified:
    def test_interpreter_refuses(self):
        from repro.vm import run_function, single_class_context

        cls = make_class([Instr(Op.ICONST, 7), Instr(Op.RET, None)])
        ctx = single_class_context(cls)
        with pytest.raises(VerifyError, match="unverified"):
            run_function(cls, cls.functions["f"], [], ctx)

    def test_jit_refuses(self):
        from repro.vm import single_class_context
        from repro.vm.jit import invoke_jit

        cls = make_class([Instr(Op.ICONST, 7), Instr(Op.RET, None)])
        ctx = single_class_context(cls)
        with pytest.raises(VerifyError, match="unverified"):
            invoke_jit(cls, cls.functions["f"], [], ctx)

    def test_mutating_class_clears_verified(self):
        cls = make_class([Instr(Op.ICONST, 7), Instr(Op.RET, None)])
        verify_class(cls)
        cls.add_function(
            FunctionDef(
                name="g",
                param_types=(),
                ret_type=I,
                local_types=(),
                code=(Instr(Op.ICONST, 1), Instr(Op.RET, None)),
            )
        )
        assert not cls.verified
