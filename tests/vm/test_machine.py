"""JaguarVM facade: load/unload, quotas, JIT toggle, callback wiring."""

import pytest

from repro.errors import FuelExhausted, LinkError, SecurityViolation
from repro.vm import JaguarVM, Permissions, compile_source
from repro.vm.values import VMType

ADDER = "def add(a: int, b: int) -> int:\n    return a + b"
SPIN = "def spin() -> int:\n    while True:\n        pass\n"

CB_SIGS = {"cb_probe": ((), VMType.INT)}


@pytest.fixture
def vm():
    return JaguarVM(callback_signatures=CB_SIGS)


class TestLoadInvoke:
    def test_basic(self, vm):
        udf = vm.load_udf("adder", [compile_source(ADDER, "A")])
        assert udf.invoke("add", [2, 3]) == 5

    def test_from_bytes(self, vm):
        data = compile_source(ADDER, "A").to_bytes()
        udf = vm.load_udf("adder", [data])
        assert udf.invoke("add", [2, 3]) == 5

    def test_duplicate_name_rejected(self, vm):
        vm.load_udf("adder", [compile_source(ADDER, "A")])
        with pytest.raises(LinkError, match="already loaded"):
            vm.load_udf("adder", [compile_source(ADDER, "A")])

    def test_unload_frees_name(self, vm):
        vm.load_udf("adder", [compile_source(ADDER, "A")])
        vm.unload_udf("adder")
        vm.load_udf("adder", [compile_source(ADDER, "A")])

    def test_unknown_entry(self, vm):
        udf = vm.load_udf("adder", [compile_source(ADDER, "A")])
        with pytest.raises(LinkError, match="no function"):
            udf.invoke("missing", [])

    def test_no_classfiles_rejected(self, vm):
        with pytest.raises(LinkError):
            vm.load_udf("empty", [])

    def test_main_class_selection(self, vm):
        lib = compile_source("def one() -> int:\n    return 1", "Lib")
        app = compile_source(ADDER, "App")
        udf = vm.load_udf("multi", [lib, app], main_class="Lib")
        assert udf.invoke("one", []) == 1


class TestQuotasAndJit:
    def test_per_udf_fuel_quota(self, vm):
        udf = vm.load_udf("spin", [compile_source(SPIN, "S")], fuel=50_000)
        with pytest.raises(FuelExhausted):
            udf.invoke("spin", [])

    def test_interp_and_jit_agree(self):
        vm_jit = JaguarVM(CB_SIGS, use_jit=True)
        vm_interp = JaguarVM(CB_SIGS, use_jit=False)
        loaded_jit = vm_jit.load_udf("a", [compile_source(ADDER, "A")])
        loaded_interp = vm_interp.load_udf("a", [compile_source(ADDER, "A")])
        assert loaded_jit.invoke("add", [2, 3]) == loaded_interp.invoke("add", [2, 3])

    def test_context_reuse_across_invocations(self, vm):
        udf = vm.load_udf("adder", [compile_source(ADDER, "A")])
        ctx = udf.make_context()
        for index in range(10):
            assert udf.invoke("add", [index, 1], context=ctx) == index + 1


class TestCallbackPermissions:
    def test_callback_denied_without_grant(self, vm):
        # The static pre-check spots the ungranted CALLBACK in the
        # bytecode and rejects the load itself — the UDF never runs.
        src = "def f() -> int:\n    return cb_probe()"
        with pytest.raises(SecurityViolation, match="rejected at load"):
            vm.load_udf(
                "probe", [compile_source(src, "P", callbacks=CB_SIGS)],
                callbacks={"cb_probe": lambda: 7},
            )
        assert "probe" not in vm.loaded_udfs

    def test_callback_allowed_with_grant(self, vm):
        src = "def f() -> int:\n    return cb_probe()"
        udf = vm.load_udf(
            "probe", [compile_source(src, "P", callbacks=CB_SIGS)],
            permissions=Permissions.with_callbacks("cb_probe"),
            callbacks={"cb_probe": lambda: 7},
        )
        assert udf.invoke("f", []) == 7

    def test_per_invocation_callback_override(self, vm):
        src = "def f() -> int:\n    return cb_probe()"
        udf = vm.load_udf(
            "probe", [compile_source(src, "P", callbacks=CB_SIGS)],
            permissions=Permissions.with_callbacks("cb_probe"),
            callbacks={"cb_probe": lambda: 1},
        )
        assert udf.invoke("f", []) == 1
        assert udf.invoke("f", [], callbacks={"cb_probe": lambda: 2}) == 2
