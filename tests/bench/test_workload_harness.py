"""Benchmark harness: workload correctness and tiny smoke sweeps."""

import pytest

from repro.bench.figures import (
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_table1,
)
from repro.bench.harness import ExperimentResult, Timer, measure_udf_cost
from repro.bench.workload import (
    PAPER_DESIGNS,
    BenchmarkWorkload,
    pattern_bytes,
)
from repro.core.designs import Design


@pytest.fixture(scope="module")
def workload():
    with BenchmarkWorkload(cardinality=60, sizes=(1, 100, 1000)) as wl:
        yield wl


FAST_TIMER = Timer(repeat=1, warmup=0)


class TestWorkload:
    def test_tables_built(self, workload):
        for size in (1, 100, 1000):
            count = workload.db.execute(
                f"SELECT count(*) FROM rel{size}"
            ).scalar()
            assert count == 60

    def test_pattern_bytes_deterministic(self):
        assert pattern_bytes(32, 5) == pattern_bytes(32, 5)
        assert pattern_bytes(32, 5) != pattern_bytes(32, 6)

    def test_arrays_inline_not_lob(self, workload):
        # The workload keeps byte arrays inline (see module docstring).
        from repro.storage.lob import LOBRef

        table = workload.db.catalog.get_table("rel1000")
        from repro.storage.heapfile import HeapFile
        from repro.storage.record import deserialize_record

        heap = HeapFile(workload.db.pool, table.first_page)
        __, record = next(heap.scan())
        row = deserialize_record(record, table.column_types())
        assert not isinstance(row[1], LOBRef)

    def test_generic_udf_results_correct_per_design(self, workload):
        for design in PAPER_DESIGNS:
            udf = workload.generic_names[design]
            sql = workload.udf_query(100, udf, 1, num_indep=5, num_dep=2)
            got = workload.db.execute(sql).scalar()
            assert got == workload.expected_generic_result(0, 100, 5, 2, 0)

    def test_query_templates(self, workload):
        noop = workload.noop_names[Design.NATIVE_INTEGRATED]
        sql = workload.udf_query(1, noop, 10)
        assert workload.db.execute(sql).rowcount == 10
        assert workload.db.execute(workload.base_query(1, 10)).rowcount == 10


class TestHarness:
    def test_measure_udf_cost_nonnegative(self, workload):
        noop = workload.noop_names[Design.NATIVE_INTEGRATED]
        cost = measure_udf_cost(
            workload, 1, noop, 20, timer=FAST_TIMER
        )
        assert cost >= 0.0

    def test_base_cache_reused(self, workload):
        noop = workload.noop_names[Design.NATIVE_INTEGRATED]
        cache = {}
        measure_udf_cost(workload, 1, noop, 20, timer=FAST_TIMER,
                         base_cache=cache)
        assert (1, 20) in cache
        before = dict(cache)
        measure_udf_cost(workload, 1, noop, 20, timer=FAST_TIMER,
                         base_cache=cache)
        assert cache == before

    def test_relative_panel(self):
        result = ExperimentResult("x", "t", "n")
        result.add_point("A", 1, 2.0)
        result.add_point("A", 2, 4.0)
        result.add_point("B", 1, 4.0)
        result.add_point("B", 2, 4.0)
        relative = result.relative_to("A")
        assert dict(relative.series["B"]) == {1: 2.0, 2: 1.0}
        assert dict(relative.series["A"]) == {1: 1.0, 2: 1.0}


class TestFigureSmoke:
    """Each figure runs end-to-end at toy scale and produces the
    expected series structure."""

    def test_table1(self):
        result = run_table1()
        rows = result.meta["rows"]
        assert len(rows) == 6
        assert {row["design"] for row in rows} >= {"C++", "IC++", "JNI"}

    def test_fig4(self, workload):
        result = run_fig4(workload, invocation_counts=(5, 20),
                          timer=FAST_TIMER)
        assert set(result.series) == {"Rel1", "Rel100", "Rel1000"}
        for points in result.series.values():
            assert len(points) == 2

    def test_fig5(self, workload):
        result = run_fig5(workload, invocations=30, timer=FAST_TIMER)
        assert set(result.series) == {"C++", "IC++", "JNI"}

    def test_fig6(self, workload):
        result = run_fig6(
            workload, invocations=20, computation_sweep=(0, 50),
            size=100, timer=FAST_TIMER,
        )
        assert all(len(points) == 2 for points in result.series.values())

    def test_fig7(self, workload):
        result = run_fig7(
            workload, invocations=10, passes_sweep=(0, 2), size=1000,
            timer=FAST_TIMER,
        )
        assert "C++/bounds" in result.series

    def test_fig8(self, workload):
        result = run_fig8(
            workload, invocations=10, callback_sweep=(0, 3), size=1,
            timer=FAST_TIMER,
        )
        assert set(result.series) == {"C++", "IC++", "JNI"}

    def test_report_rendering(self, workload):
        from repro.bench.report import render

        result = run_fig5(workload, invocations=10, timer=FAST_TIMER)
        text = render(result)
        assert "fig5" in text
        assert "JNI" in text
        table1 = render(run_table1())
        assert "IC++" in table1
