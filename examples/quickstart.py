#!/usr/bin/env python3
"""Quickstart: an extensible database in five minutes.

Creates a table, registers the same UDF under three of the paper's
execution designs (Design 1 "C++", Design 2 "IC++", Design 3 "JNI"),
and runs it from SQL — showing that the *query* is oblivious to where
and how the UDF executes.

Run:  python examples/quickstart.py
"""

from repro import Database

JAGSCRIPT_UDF = """
def score(v: float, boost: int) -> float:
    total: float = v * 2.0 + float(boost)
    if total > 100.0:
        return 100.0
    return total
"""


def main() -> None:
    db = Database()  # in-memory; pass a path to persist

    db.execute("CREATE TABLE items (id INT, v FLOAT)")
    db.execute(
        "INSERT INTO items VALUES (1, 10.0), (2, 30.0), (3, 70.0)"
    )

    # Design 3 ("JNI"): sandboxed, verified, quota-policed — what the
    # paper recommends for untrusted web users.
    db.execute(
        "CREATE FUNCTION score(float, int) RETURNS float "
        "LANGUAGE JAGUAR DESIGN SANDBOX "
        f"AS '{JAGSCRIPT_UDF}'"
    )

    # Design 1 ("C++"): a host function, hard-wired into the server.
    # Trusted code only!  (module:function must be importable.)
    db.execute(
        "CREATE FUNCTION noop(bytes, int, int, int) RETURNS int "
        "LANGUAGE NATIVE DESIGN INTEGRATED "
        "AS 'repro.core.generic_udf:noop_native'"
    )

    # Design 2 ("IC++"): the same native code, but in an isolated
    # executor process wired up with shared memory + semaphores.
    db.execute(
        "CREATE FUNCTION noop_iso(bytes, int, int, int) RETURNS int "
        "LANGUAGE NATIVE DESIGN ISOLATED "
        "AS 'repro.core.generic_udf:noop_native'"
    )

    print("sandboxed UDF in a query:")
    for row in db.query(
        "SELECT id, score(v, 5) AS s FROM items WHERE score(v, 5) < 100.0 "
        "ORDER BY s DESC"
    ):
        print(" ", row)

    print("native + isolated designs answer identically:")
    print(" ", db.execute("SELECT noop(zerobytes(8), 0, 0, 0) FROM items LIMIT 1").scalar())
    print(" ", db.execute("SELECT noop_iso(zerobytes(8), 0, 0, 0) FROM items LIMIT 1").scalar())

    # Aggregation, joins, ordering — the full engine is there.
    db.execute("CREATE TABLE tags (item INT, tag STRING)")
    db.execute(
        "INSERT INTO tags VALUES (1, 'red'), (1, 'hot'), (2, 'red')"
    )
    print("join + group by:")
    for row in db.query(
        "SELECT t.tag, count(*) AS n, avg(i.v) FROM items i "
        "JOIN tags t ON i.id = t.item GROUP BY t.tag ORDER BY n DESC"
    ):
        print(" ", row)

    db.close()


if __name__ == "__main__":
    main()
