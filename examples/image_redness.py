#!/usr/bin/env python3
"""The paper's image scenario (Section 3.1): REDNESS over sunsets.

    "SELECT * FROM Sunsets S
     WHERE REDNESS(S.picture) > 0.7 and S.location = 'fingerlakes'"

Demonstrates the two large-object access strategies of Section 5.5:

* **by value** — the whole image ships into the UDF (one big argument
  copy, zero callbacks);
* **by handle** — the UDF receives a handle and fetches only the pixel
  ranges it needs through ``cb_lob_read`` callbacks (the Clip()/Lookup()
  pattern), which wins when it needs only a sample of the object.

"Should the UDF ask for the entire object (which is expensive), or
should it ask for a handle to the object and then perform callbacks?
Our experiments indicate the inherent costs in each approach."

Run:  python examples/image_redness.py
"""

import random
import time

from repro import Database

WIDTH = 120
HEIGHT = 80  # RGB triples, 28,800 bytes per image -> stored as a LOB

REDNESS_BY_VALUE = """
def redness(img: bytes) -> float:
    red: int = 0
    pixels: int = len(img) // 3
    if pixels == 0:
        return 0.0
    for p in range(pixels):
        r: int = img[p * 3]
        g: int = img[p * 3 + 1]
        b: int = img[p * 3 + 2]
        if r > 150 and r > g + b:
            red = red + 1
    return float(red) / float(pixels)
"""

# The handle version samples one row of pixels in ten, reading only
# those ranges from the server.
REDNESS_BY_HANDLE = """
def redness_h(img: int, row_bytes: int) -> float:
    size: int = cb_lob_length(img)
    rows: int = size // row_bytes
    red: int = 0
    sampled: int = 0
    for r0 in range(0, rows, 10):
        row: bytes = cb_lob_read(img, r0 * row_bytes, row_bytes)
        pixels: int = len(row) // 3
        for p in range(pixels):
            rv: int = row[p * 3]
            gv: int = row[p * 3 + 1]
            bv: int = row[p * 3 + 2]
            if rv > 150 and rv > gv + bv:
                red = red + 1
            sampled = sampled + 1
    if sampled == 0:
        return 0.0
    return float(red) / float(sampled)
"""


def synth_image(seed: int, red_fraction: float) -> bytes:
    rng = random.Random(seed)
    out = bytearray()
    for __ in range(WIDTH * HEIGHT):
        if rng.random() < red_fraction:
            out += bytes((rng.randrange(180, 256), rng.randrange(0, 60),
                          rng.randrange(0, 60)))
        else:
            out += bytes((rng.randrange(0, 120), rng.randrange(60, 180),
                          rng.randrange(120, 256)))
    return bytes(out)


def main() -> None:
    db = Database()
    db.execute(
        "CREATE TABLE sunsets (id INT, location STRING, picture BYTEARRAY)"
    )
    table = db.catalog.get_table("sunsets")
    scenes = [
        (1, "fingerlakes", 0.85),
        (2, "fingerlakes", 0.40),
        (3, "fingerlakes", 0.90),
        (4, "adirondacks", 0.95),
        (5, "fingerlakes", 0.10),
    ]
    for image_id, location, red in scenes:
        db.insert_row(table, [image_id, location, synth_image(image_id, red)])

    db.execute(
        "CREATE FUNCTION redness(bytes) RETURNS float "
        "LANGUAGE JAGUAR DESIGN SANDBOX COST 5000 SELECTIVITY 0.4 "
        f"AS '{REDNESS_BY_VALUE}'"
    )
    db.execute(
        "CREATE FUNCTION redness_h(handle, int) RETURNS float "
        "LANGUAGE JAGUAR DESIGN SANDBOX "
        "CALLBACKS 'cb_lob_length', 'cb_lob_read' "
        f"AS '{REDNESS_BY_HANDLE}'"
    )

    print("the paper's query (by-value REDNESS):")
    start = time.perf_counter()
    result = db.execute(
        "SELECT s.id FROM sunsets s "
        "WHERE redness(s.picture) > 0.7 AND s.location = 'fingerlakes'"
    )
    by_value_time = time.perf_counter() - start
    print(f"  bright sunsets: {[r[0] for r in result.rows]}"
          f"   ({by_value_time * 1000:.1f} ms)")

    print("same query via handle + callbacks (sampled rows only):")
    start = time.perf_counter()
    result = db.execute(
        f"SELECT s.id FROM sunsets s "
        f"WHERE redness_h(s.picture, {WIDTH * 3}) > 0.7 "
        f"AND s.location = 'fingerlakes'"
    )
    by_handle_time = time.perf_counter() - start
    print(f"  bright sunsets: {[r[0] for r in result.rows]}"
          f"   ({by_handle_time * 1000:.1f} ms)")

    print(
        "\nby-value ships {:.0f} KB per image; by-handle reads ~10% of "
        "it through callbacks".format(WIDTH * HEIGHT * 3 / 1024)
    )
    db.close()


if __name__ == "__main__":
    main()
