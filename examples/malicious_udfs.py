#!/usr/bin/env python3
"""Every attack from Section 1, launched against the server.

    "the DBMS must be wary of UDFs that might crash the database
    system, that modify its files or memory directly, circumventing the
    authorization mechanisms, or that monopolize CPU, memory or disk
    resources leading to a reduction in DBMS performance (i.e., denial
    of service)."

Each attack is attempted under the design that *stops* it (and the
narration notes which designs would not).

Run:  python examples/malicious_udfs.py
"""

from repro import Database
from repro.errors import (
    FuelExhausted,
    MemoryQuotaExceeded,
    SecurityViolation,
    UDFCrashed,
    VerifyError,
)


def attack(title):
    print(f"\n=== {title} ===")


def main() -> None:
    db = Database()
    db.execute("CREATE TABLE victims (id INT)")
    db.execute("INSERT INTO victims VALUES (1), (2), (3)")

    attack("CPU denial of service (infinite loop)")
    db.execute(
        "CREATE FUNCTION cpu_bomb(int) RETURNS int LANGUAGE JAGUAR "
        "DESIGN SANDBOX FUEL 200000 AS "
        "'def cpu_bomb(x: int) -> int:\n    while True:\n        pass\n'"
    )
    try:
        db.execute("SELECT cpu_bomb(id) FROM victims")
    except FuelExhausted as exc:
        print(f"  stopped: {exc}")
    print("  (a 1998 JVM had no such quota — Section 6.2; Design 1/2 still don't)")

    attack("memory denial of service (input-dependent allocation bomb)")
    # The allocation size depends on the argument, so no static bound
    # exists; the runtime quota is the defense that fires.
    db.execute(
        "CREATE FUNCTION mem_bomb(int) RETURNS int LANGUAGE JAGUAR "
        "DESIGN SANDBOX MEMORY 4194304 AS "
        "'def mem_bomb(x: int) -> int:\n"
        "    total: int = 0\n"
        "    for i in range(1000000):\n"
        "        a: bytes = bytearray(x * 1048576)\n"
        "        total = total + len(a)\n"
        "    return total\n'"
    )
    try:
        db.execute("SELECT mem_bomb(id) FROM victims")
    except MemoryQuotaExceeded as exc:
        print(f"  stopped: {exc}")

    attack("memory denial of service (provable allocation bomb)")
    # Here every quantity is a compile-time constant, so the bounds
    # certifier can *prove* the minimum heap consumption (1 TiB) exceeds
    # the quota before the UDF ever runs: the registration itself is
    # rejected, with a static:bounds entry in the audit log.
    try:
        db.execute(
            "CREATE FUNCTION alloc_bomb(int) RETURNS int LANGUAGE JAGUAR "
            "DESIGN SANDBOX MEMORY 4194304 AS "
            "'def alloc_bomb(x: int) -> int:\n"
            "    total: int = 0\n"
            "    for i in range(1000000):\n"
            "        a: bytes = bytearray(1048576)\n"
            "        total = total + len(a)\n"
            "    return total\n'"
        )
    except SecurityViolation as exc:
        print(f"  stopped at CREATE FUNCTION: {exc}")

    attack("unauthorized data access (callback without permission)")
    # The static analyzer sees the CALLBACK instruction in the verified
    # bytecode, so the security manager rejects the registration itself:
    # the snoop never reaches the catalog, let alone a query.
    try:
        db.execute(
            "CREATE FUNCTION snoop(int) RETURNS int LANGUAGE JAGUAR "
            "DESIGN SANDBOX AS "   # note: no CALLBACKS grant
            "'def snoop(x: int) -> int:\n    return cb_lob_length(x)\n'"
        )
    except SecurityViolation as exc:
        print(f"  stopped at CREATE FUNCTION: {exc}")

    attack("forged bytecode (type confusion via hand-built classfile)")
    from repro.vm.classfile import ClassFile, FunctionDef
    from repro.vm.opcodes import Instr, Op
    from repro.vm.values import VMType

    forged = ClassFile(name="udf_forged")
    forged.add_function(
        FunctionDef(
            name="forged",
            param_types=(VMType.INT,),
            ret_type=VMType.INT,
            local_types=(VMType.INT,),
            code=(
                Instr(Op.LOAD, 0),
                Instr(Op.ICONST, 0),
                Instr(Op.ALOAD, None),  # treat an int as an array!
                Instr(Op.RET, None),
            ),
        )
    )
    from repro.core.designs import Design
    from repro.core.udf import UDFDefinition, UDFSignature

    try:
        db.register_udf(
            UDFDefinition(
                name="forged",
                signature=UDFSignature(("int",), "int"),
                design=Design.SANDBOX_JIT,
                payload=forged.to_bytes(),
                entry="forged",
            )
        )
    except VerifyError as exc:
        print(f"  stopped by the verifier: {exc}")

    attack("hard crash of native code (Design 2 containment)")
    # ``os._exit`` is the closest Python analog of a C++ segfault.  In
    # Design 1 this would take the whole server down; Design 2 loses
    # only the executor process.
    db.execute(
        "CREATE FUNCTION crasher(int) RETURNS int LANGUAGE NATIVE "
        "DESIGN ISOLATED AS 'examples.malicious_udfs:hard_crash'"
    )
    try:
        db.execute("SELECT crasher(id) FROM victims")
    except UDFCrashed as exc:
        print(f"  contained: {exc}")
    print(
        "  server still answering queries:",
        db.execute("SELECT count(*) FROM victims").scalar(), "rows",
    )

    attack("data exfiltration (tuple values into a logging sink)")
    # The registration legitimately grants cb_log — logging callbacks
    # get handed out freely.  But cb_log is a policy-declared *sink*:
    # whatever reaches its argument leaves the confinement boundary
    # (log files are world-readable in a way tuples are not).  The
    # information-flow pass proves the tuple-derived parameter reaches
    # the sink argument — through the arithmetic disguise — so the
    # registration is refused with a static:flows audit entry, even
    # though every instruction is individually permitted.
    try:
        db.execute(
            "CREATE FUNCTION leak(int) RETURNS int LANGUAGE JAGUAR "
            "DESIGN SANDBOX CALLBACKS 'cb_log' AS "
            "'def leak(x: int) -> int:\n"
            "    disguised: int = x * 31 + 7\n"
            "    logged: int = cb_log(disguised)\n"
            "    return logged\n'"
        )
    except SecurityViolation as exc:
        print(f"  stopped at CREATE FUNCTION: {exc}")
    # The same callback with untainted arguments is fine: the flow
    # certifier refuses data-dependent sink traffic, not logging itself.
    db.execute(
        "CREATE FUNCTION heartbeat(int) RETURNS int LANGUAGE JAGUAR "
        "DESIGN SANDBOX CALLBACKS 'cb_log' AS "
        "'def heartbeat(x: int) -> int:\n"
        "    ok: int = cb_log(1)\n"
        "    return ok\n'"
    )
    print("  (constant-argument cb_log UDF accepted: the sink gate is flow-based)")

    db.close()
    print("\nAll seven attacks neutralized.")


def hard_crash(x):
    import os

    os._exit(77)


if __name__ == "__main__":
    import os
    import sys

    # Make this module importable as `examples.malicious_udfs` for the
    # isolated worker (it resolves the payload by module path).
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    main()
