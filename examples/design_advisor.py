#!/usr/bin/env python3
"""Section 5.6 made executable: a cost model + design advisor.

    "There is a tradeoff in the design of a UDF ... In fact, our
    experiments can help model the behavior of any UDF by splitting the
    work of the UDF into different components."

This script runs a small calibration (the generic UDF with varying
parameters under each design), fits the per-design cost model

    T = c_invoke + c_indep*NDI + c_dep*NDD*bytes + c_cb*NC + c_data*bytes

by least squares, and then *recommends a design* for several workload
shapes — requiring safety (so Design 1 is out), exactly the deployment
scenario of the paper's introduction.

Run:  python examples/design_advisor.py      (takes ~a minute)
"""

from repro.bench.harness import Timer, measure_udf_cost
from repro.bench.workload import BenchmarkWorkload
from repro.core.cost_model import fit_cost_model, recommend_design
from repro.core.designs import Design

DESIGNS = (
    Design.NATIVE_INTEGRATED,
    Design.NATIVE_ISOLATED,
    Design.SANDBOX_JIT,
    Design.SANDBOX_ISOLATED,
)

#: (bytes, NumDataIndepComps, NumDataDepComps, NumCallbacks) calibration grid.
GRID = [
    (1, 0, 0, 0),
    (100, 0, 0, 0),
    (10000, 0, 0, 0),
    (100, 2000, 0, 0),
    (100, 0, 0, 5),
    (100, 0, 0, 20),
    (10000, 0, 2, 0),
    (10000, 0, 6, 0),
    (10000, 2000, 1, 2),
]


def calibrate(workload, design, timer):
    invocations = min(200, workload.cardinality)
    samples = []
    for nbytes, ndi, ndd, nc in GRID:
        total = measure_udf_cost(
            workload, nbytes, workload.generic_names[design], invocations,
            num_indep=ndi, num_dep=ndd, num_callbacks=nc, timer=timer,
        )
        samples.append((nbytes, ndi, ndd, nc, total / invocations))
    return fit_cost_model(design, samples)


def main() -> None:
    print("building calibration workload ...")
    timer = Timer(repeat=2, warmup=1)
    with BenchmarkWorkload(cardinality=400) as workload:
        models = {}
        for design in DESIGNS:
            print(f"calibrating {design.paper_label} ...")
            models[design] = calibrate(workload, design, timer)

        print("\nfitted per-invocation cost models (seconds):")
        header = f"{'design':12s} {'invoke':>10s} {'per-indep':>11s} " \
                 f"{'per-dep-byte':>13s} {'per-callback':>13s} {'per-byte':>10s}"
        print(header)
        for design, model in models.items():
            d = model.as_dict()
            print(
                f"{design.paper_label:12s} {d['invoke']:10.2e} "
                f"{d['indep']:11.2e} {d['dep_byte']:13.2e} "
                f"{d['callback']:13.2e} {d['data_byte']:10.2e}"
            )

        print("\nrecommendations (safety required — Design 1 excluded):")
        scenarios = [
            ("tiny arithmetic predicate", (8, 50, 0, 0)),
            ("image transform (1 pass over 10KB)", (10000, 0, 1, 0)),
            ("clip/lookup (many callbacks)", (100, 0, 0, 50)),
            ("compute-heavy formula", (100, 50000, 0, 0)),
        ]
        for label, shape in scenarios:
            best, cost = recommend_design(models, *shape)
            print(
                f"  {label:38s} -> {best.paper_label:6s} "
                f"(~{cost * 1e6:8.1f} us/invocation)"
            )
    print("\n(The paper's Section 5.6 conclusion, automated.)")


if __name__ == "__main__":
    main()
