#!/usr/bin/env python3
"""The paper's motivating scenario (Section 1): InvestVal over stocks.

    "A valid user is any amateur investor with a web browser, a credit
    card, and an investment formula InvestVal:

        SELECT * FROM Stocks S
        WHERE S.type = 'tech' and InvestVal(S.history) > 5;"

The investor's formula is untrusted code, so it runs under Design 3:
compiled to JaguarVM bytecode, verified, and executed with quotas.  The
optimizer places the cheap ``type = 'tech'`` predicate before the
expensive UDF (Hellerstein's rank ordering), exactly as the paper's
benchmark queries assume.

Run:  python examples/stock_investval.py
"""

import math
import random

from repro import Database

# The amateur investor's formula: annualized momentum ratio — average
# of the last quarter vs the whole history, scaled by volatility.
INVEST_VAL = """
def investval(history: farr) -> float:
    n: int = len(history)
    if n < 8:
        return 0.0
    recent: float = 0.0
    quarter: int = n // 4
    for i in range(n - quarter, n):
        recent = recent + history[i]
    recent = recent / float(quarter)

    total: float = 0.0
    for i in range(n):
        total = total + history[i]
    mean: float = total / float(n)

    var: float = 0.0
    for i in range(n):
        d: float = history[i] - mean
        var = var + d * d
    vol: float = sqrt(var / float(n))
    if vol < 0.0001:
        return 0.0
    return (recent - mean) / vol * 10.0
"""


def price_history(seed: int, drift: float, days: int = 250) -> list:
    rng = random.Random(seed)
    price = 50.0
    series = []
    for __ in range(days):
        price = max(1.0, price * (1.0 + drift + rng.gauss(0, 0.02)))
        series.append(price)
    return series


def main() -> None:
    db = Database()
    db.execute(
        "CREATE TABLE stocks (id INT, name STRING, type STRING, "
        "history TIMESERIES)"
    )
    table = db.catalog.get_table("stocks")
    rows = [
        (1, "HOTCHIP", "tech", price_history(1, +0.004)),
        (2, "FLATSOFT", "tech", price_history(2, 0.0)),
        (3, "MEGAWEB", "tech", price_history(3, +0.006)),
        (4, "SLOWOIL", "oil", price_history(4, +0.004)),
        (5, "FADECOM", "tech", price_history(5, -0.004)),
    ]
    for row in rows:
        db.insert_row(table, list(row))

    # The investor registers their formula — sandboxed, with a cost
    # hint so the optimizer knows it is expensive and fairly selective.
    db.execute(
        "CREATE FUNCTION investval(farr) RETURNS float "
        "LANGUAGE JAGUAR DESIGN SANDBOX COST 2000 SELECTIVITY 0.3 "
        f"AS '{INVEST_VAL}'"
    )

    print("the paper's query:")
    result = db.execute(
        "SELECT s.id, s.name, investval(s.history) AS iv FROM stocks s "
        "WHERE s.type = 'tech' AND investval(s.history) > 5.0 "
        "ORDER BY iv DESC"
    )
    for row in result:
        print(f"  {row[0]}  {row[1]:10s}  InvestVal={row[2]:7.2f}")
    if not result.rows:
        print("  (no stock passed the formula today)")

    # Show the formula is really confined: a runaway variant dies by
    # fuel quota without hurting the server.
    db.execute(
        "CREATE FUNCTION investloop(farr) RETURNS float "
        "LANGUAGE JAGUAR DESIGN SANDBOX FUEL 100000 AS "
        "'def investloop(h: farr) -> float:\n"
        "    while True:\n"
        "        pass\n'"
    )
    try:
        db.execute("SELECT investloop(history) FROM stocks")
    except Exception as exc:
        print(f"runaway formula stopped by the server: {type(exc).__name__}: {exc}")
    print(
        "server still healthy:",
        db.execute("SELECT count(*) FROM stocks").scalar(),
        "stocks",
    )
    db.close()


if __name__ == "__main__":
    main()
