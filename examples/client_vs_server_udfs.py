#!/usr/bin/env python3
"""Section 3.1 quantified: data-shipping vs server-side UDF execution.

The paper motivates server-side UDFs with the sunsets query — if
REDNESS only exists at the client, every image must cross the network.
This script runs *both* strategies over a real client/server connection
and prints what each one cost in time and bytes:

    SELECT id FROM sunsets WHERE REDNESS(picture) > 0.5
                             AND location = 'fingerlakes'

Run:  python examples/client_vs_server_udfs.py
"""

import random

from repro import Database, DatabaseServer
from repro.server.client import Client, LocalUDFHarness
from repro.server.clientexec import ClientSideUDF, compare_strategies

REDNESS = """
def redness(img: bytes) -> float:
    red: int = 0
    n: int = len(img)
    if n == 0:
        return 0.0
    for i in range(n):
        if img[i] > 160:
            red = red + 1
    return float(red) / float(n)
"""

IMAGE_BYTES = 20000
IMAGES = 40


def synth_image(seed: int, red_fraction: float) -> bytes:
    rng = random.Random(seed)
    return bytes(
        rng.randrange(161, 256) if rng.random() < red_fraction
        else rng.randrange(0, 161)
        for __ in range(IMAGE_BYTES)
    )


def main() -> None:
    database = Database()
    database.execute(
        "CREATE TABLE sunsets (id INT, location STRING, picture BYTEARRAY)"
    )
    table = database.catalog.get_table("sunsets")
    rng = random.Random(7)
    for image_id in range(IMAGES):
        location = "fingerlakes" if image_id % 2 == 0 else "adirondacks"
        database.insert_row(
            table,
            [image_id, location, synth_image(image_id, rng.random())],
        )

    with DatabaseServer(database) as server:
        with Client(server.host, server.port) as client:
            udf = ClientSideUDF(
                client=client,
                harness=LocalUDFHarness(),
                name="redness",
                source=REDNESS,
                param_types=["bytes"],
                ret_type="float",
            )

            shipping = udf.run_data_shipping(
                table="sunsets",
                key_column="id",
                arg_columns=["picture"],
                predicate=lambda value: value > 0.5,
                where="location = 'fingerlakes'",
            )
            server_side = udf.run_server_side(
                table="sunsets",
                key_column="id",
                arg_columns=["picture"],
                predicate_sql="> 0.5",
                where="location = 'fingerlakes'",
            )

            print(
                f"{IMAGES} images x {IMAGE_BYTES // 1000} KB, "
                f"query touches half of them:\n"
            )
            print(compare_strategies(shipping, server_side))
            print(
                "\nThe paper's conclusion: 'a user-defined predicate could "
                "greatly reduce query execution time if applied at the "
                "early stages of a query evaluation plan at the server' — "
                "measured above."
            )

    database.close()


if __name__ == "__main__":
    main()
