#!/usr/bin/env python3
"""Section 6.4 end-to-end: develop at the client, test, migrate, run.

    "Our goal is to be able to allow users to easily define new Java
    UDFs, test them at the client, and migrate them to the server ...
    At both client and server, Java UDFs are invoked using the
    identical protocol ... This allows UDF code to be run without
    change at either site."

This script starts a real TCP server (one thread per client, as in
PREDATOR), connects a client, compiles a UDF locally, verifies and unit-
tests it in the client's own JaguarVM, then ships the *identical*
classfile bytes to the server and uses it from SQL.  It also shows the
server refusing what an untrusted web client must not do: register
native code into the server process.

Run:  python examples/client_server_portability.py
"""

from repro import Database, DatabaseServer
from repro.server.client import Client, LocalUDFHarness, ServerReportedError

# The user's UDF: a clipped exponential moving average of a series.
SOURCE = """
def ema_last(history: farr, alpha_pct: int) -> float:
    if len(history) == 0:
        return 0.0
    alpha: float = float(alpha_pct) / 100.0
    value: float = history[0]
    for i in range(1, len(history)):
        value = alpha * history[i] + (1.0 - alpha) * value
    return value
"""


def main() -> None:
    database = Database()
    database.execute("CREATE TABLE series (id INT, h TIMESERIES)")
    table = database.catalog.get_table("series")
    database.insert_row(table, [1, [10.0, 12.0, 11.0, 15.0, 18.0]])
    database.insert_row(table, [2, [5.0, 5.0, 5.0, 5.0, 5.0]])

    with DatabaseServer(database) as server:
        print(f"server listening on {server.host}:{server.port}")
        with Client(server.host, server.port) as client:
            print(f"connected; session {client.session_id}, "
                  f"trusted={client.trusted}")

            # 1. Develop & test locally — same compiler, same verifier,
            #    same execution semantics as the server.
            harness = LocalUDFHarness()
            print("compiling and unit-testing locally ...")
            classfile = harness.develop(
                SOURCE,
                "ema_last",
                test_vectors=[
                    (([10.0, 10.0, 10.0], 50), 10.0),
                    (([], 50), 0.0),
                ],
            )
            print(f"  classfile: {len(classfile)} bytes, tests green")

            # 2. Migrate: the identical bytes go to the server, which
            #    re-verifies before admitting them.
            client.register_udf_classfile(
                "ema_last", ["farr", "int"], "float", classfile
            )
            print("  migrated to the server (re-verified there)")

            # 3. Use from SQL over the wire.
            result = client.execute(
                "SELECT id, ema_last(h, 40) AS ema FROM series ORDER BY id"
            )
            for row in result:
                print(f"  id={row[0]}  ema={row[1]:.3f}")

            # 4. What an untrusted client may NOT do.
            print("attempting to register native code (should fail) ...")
            try:
                client.register_udf_classfile(
                    "backdoor", ["int"], "int",
                    b"os:system", design="native_integrated", entry="system",
                )
            except ServerReportedError as exc:
                print(f"  refused: {exc}")

    database.close()


if __name__ == "__main__":
    main()
