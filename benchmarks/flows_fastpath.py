#!/usr/bin/env python3
"""Flow-certificate fast paths vs the defensive baseline.

The flow certifier (``repro.analysis.flows``) proves three per-UDF
facts the executors turn into fast paths:

* **read-only parameters** — the marshalling layer skips the defensive
  per-call copy of BYTES arguments (the "JNI copies every byte array"
  tax of the paper's Figure 5), both in-process and on the worker side
  of the shm hop;
* **arena-safe allocations** — the sandbox executor refunds each call's
  memory charges instead of resetting the whole account per tuple;
* **trap freedom** — the inliner's CASE wrapper evaluates the lifted
  body over the full batch without short-circuit partitioning.

Each workload runs the identical invocation schedule twice: once with
the certificates attached (as CREATE FUNCTION left them) and once with
every ``definition.flows`` stripped, which restores the seed's
defensive baseline end to end (isolated workers receive the stripped
flag through their payload).  The marshalling workloads drive the
executor batch interface directly — the same layer Figure 5 meters — so
the per-invocation tax is not drowned in SQL engine overhead; the
trap-free CASE workload runs whole queries, since that fast path lives
in the expression compiler.  A native workload runs under the same
harness to show the machinery costs uncertified designs nothing.

Run::

    python benchmarks/flows_fastpath.py                # full sweep
    python benchmarks/flows_fastpath.py --smoke        # small (CI)
    python benchmarks/flows_fastpath.py --out out.json # machine output
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO))

from repro.database import Database  # noqa: E402

#: Cheap, read-only, trap-free probe over a BYTES argument: the work is
#: one length read, so the defensive copy dominates the baseline cost.
BLEN = "def blen(data: bytes) -> int:\n    return len(data)\n"

#: Branchy, pure, trap-free arithmetic: inlined at plan time, so the
#: certified run takes the unpartitioned CASE batch form.
T1 = (
    "def t1(x: int) -> int:\n"
    "    if x < 0:\n"
    "        return 0 - x\n"
    "    return x * 3\n"
)

#: Argument-dependent allocation that never escapes: without the
#: certificate no static memory bound exists and every call resets the
#: account; with it the arena refund suffices.
MASH = (
    "def mash(x: int) -> int:\n"
    "    buf: bytes = bytearray(x + 16)\n"
    "    buf[0] = 1\n"
    "    return len(buf)\n"
)


def blen_native(data):
    return len(data)


def _db_with(design_sql, language, name, signature, payload):
    db = Database()
    db.execute(
        f"CREATE FUNCTION {name}({signature}) RETURNS int "
        f"LANGUAGE {language} DESIGN {design_sql} AS '{payload}'"
    )
    return db


def _strip_flows(db):
    saved = {
        key: definition.flows
        for key, definition in db.registry._definitions.items()
    }
    for definition in db.registry._definitions.values():
        definition.flows = None
    return saved


def _restore_flows(db, saved):
    for key, definition in db.registry._definitions.items():
        definition.flows = saved[key]


def _time_executor(db, name, args_list, batches, repeats):
    """Best-of-``repeats`` wall time for ``batches`` executor batches."""
    executor = db.registry.executor_for_query(name)
    fresh = executor not in db.registry._shared_executors.values()
    try:
        executor.begin_query()
        executor.invoke_batch(args_list[:2])  # warm up (JIT / workers)
        best = float("inf")
        for __ in range(repeats):
            start = time.perf_counter()
            for __ in range(batches):
                executor.invoke_batch(args_list)
            best = min(best, time.perf_counter() - start)
        executor.end_query()
    finally:
        if fresh:
            executor.close()
    return best


def _executor_pair(db, name, args_list, batches, repeats):
    """(t_certified, t_baseline) at the executor batch interface."""
    t_certified = _time_executor(db, name, args_list, batches, repeats)
    saved = _strip_flows(db)
    try:
        t_baseline = _time_executor(db, name, args_list, batches, repeats)
    finally:
        _restore_flows(db, saved)
    return t_certified, t_baseline


def _query_pair(db, sql, repeats):
    """(t_certified, t_baseline) for one whole query."""

    def best_of():
        best = float("inf")
        for __ in range(repeats):
            start = time.perf_counter()
            db.query(sql)
            best = min(best, time.perf_counter() - start)
        return best

    t_certified = best_of()
    saved = _strip_flows(db)
    try:
        t_baseline = best_of()
    finally:
        _restore_flows(db, saved)
    return t_certified, t_baseline


def _point(name, t_certified, t_baseline):
    speedup = t_baseline / t_certified if t_certified > 0 else 0.0
    print(
        f"{name:32s} baseline {t_baseline * 1e3:8.2f} ms, "
        f"certified {t_certified * 1e3:8.2f} ms, speedup {speedup:5.2f}x"
    )
    return {
        "t_baseline_s": t_baseline,
        "t_certified_s": t_certified,
        "speedup": speedup,
    }


def run(smoke: bool = False) -> dict:
    blob_bytes = 65_536 if smoke else 262_144
    batch = 64
    batches = 4 if smoke else 16
    repeats = 3 if smoke else 5
    int_rows = 2_000 if smoke else 8_000
    results: dict = {"workloads": {}}

    # Copy elision: a read-only BYTES parameter.  The baseline pays one
    # defensive copy of ``blob_bytes`` per invocation.
    payload = bytes(range(256)) * (blob_bytes // 256)
    args_list = [[payload] for __ in range(batch)]
    copy_points = {}
    copy_designs = [("SANDBOX", "JAGUAR", BLEN),
                    ("SANDBOX_INTERP", "JAGUAR", BLEN)]
    if not smoke:
        copy_designs.append(("SANDBOX_ISOLATED", "JAGUAR", BLEN))
    for design_sql, language, body in copy_designs:
        with _db_with(design_sql, language, "blen", "bytes", body) as db:
            t_cert, t_base = _executor_pair(
                db, "blen", args_list, batches, repeats
            )
            copy_points[design_sql] = _point(
                f"copy-elision {design_sql}", t_cert, t_base
            )
    results["workloads"]["copy_elision"] = {
        "interface": "executor.invoke_batch",
        "blob_bytes": blob_bytes,
        "batch": batch,
        "batches": batches,
        "designs": copy_points,
    }

    # Arena reclamation: argument-dependent allocation sizes mean no
    # static memory bound, so the baseline resets the account per call.
    with _db_with("SANDBOX", "JAGUAR", "mash", "int", MASH) as db:
        mash_args = [[n % 512] for n in range(batch)]
        t_cert, t_base = _executor_pair(
            db, "mash", mash_args, batches, repeats
        )
        results["workloads"]["arena"] = {
            "interface": "executor.invoke_batch",
            "batch": batch, "batches": batches, "design": "SANDBOX",
            **_point("arena SANDBOX", t_cert, t_base),
        }

    # Trap-free CASE: whole queries with Froid inlining on, because the
    # fast path lives in the compiled expression tree of the inlined
    # body (the NULL-guard CASE skips its partition/scatter machinery).
    with Database(inlining=True) as db:
        db.execute(
            "CREATE FUNCTION t1(int) RETURNS int LANGUAGE JAGUAR "
            f"DESIGN SANDBOX AS '{T1}'"
        )
        db.execute("CREATE TABLE ints (n INT)")
        table = db.catalog.get_table("ints")
        for n in range(int_rows):
            db.insert_row(table, [n - int_rows // 2])
        t_cert, t_base = _query_pair(
            db, "SELECT t1(n) FROM ints", repeats
        )
        results["workloads"]["trapfree_case"] = {
            "interface": "db.query (inlining=True)",
            "query": "SELECT t1(n) FROM ints",
            "rows": int_rows, "design": "SANDBOX",
            **_point("trap-free CASE SANDBOX", t_cert, t_base),
        }

    # Native control: no certificates exist, so on-vs-off must be noise.
    with _db_with("INTEGRATED", "NATIVE", "blen", "bytes",
                  "benchmarks.flows_fastpath:blen_native") as db:
        t_cert, t_base = _executor_pair(
            db, "blen", args_list, batches, repeats
        )
        results["workloads"]["native_guard"] = {
            "interface": "executor.invoke_batch",
            "blob_bytes": blob_bytes,
            "batch": batch, "batches": batches,
            "design": "NATIVE_INTEGRATED",
            **_point("native guard INTEGRATED", t_cert, t_base),
        }
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small payloads, few repeats (CI sanity run)",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="write results as JSON to this path",
    )
    opts = parser.parse_args(argv)
    results = run(smoke=opts.smoke)
    if opts.out is not None:
        opts.out.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {opts.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
