"""Ablations beyond the paper's figures.

* **SFI overhead** (Section 4): the paper expected SFI-style
  instrumentation to cost ~25% on native UDFs; we measure the guarded
  buffer's factor on data-dependent work.
* **JIT** (Section 5.3's footing): interpreter vs JIT on the pure-
  computation workload — the claim that JIT technology closes the
  computation gap.
* **Design 4** (Section 3.2): "its behavior can be extrapolated as a
  combination of Design 2 and Design 3" — we check the extrapolation:
  IJNI's callback cost behaves like IC++ (process boundary), while its
  computation profile behaves like JNI (sandboxed execution).
* **Resource quotas** (Section 6.2): the cost of the fuel/memory
  instrumentation that makes DoS policing possible.
"""

import pytest
from conftest import CARDINALITY, once

from repro.bench.figures import run_fig6, run_fig8
from repro.bench.harness import Timer, measure_udf_cost
from repro.core.designs import Design

FAST = Timer(repeat=2, warmup=1)


class TestSFIOverhead:
    def test_sfi_costs_a_bounded_factor(self, workload, benchmark):
        def sweep():
            plain = measure_udf_cost(
                workload, 10000,
                workload.generic_names[Design.NATIVE_INTEGRATED],
                20, num_dep=4, timer=FAST,
            )
            guarded = measure_udf_cost(
                workload, 10000,
                workload.generic_names[Design.NATIVE_SFI],
                20, num_dep=4, timer=FAST,
            )
            return plain, guarded

        plain, guarded = once(benchmark, sweep)
        factor = guarded / max(plain, 1e-9)
        print(f"\nSFI factor on data-dependent work: {factor:.2f}x")
        # Python-level interposition costs more than binary SFI's 25%,
        # but it must stay a bounded small factor.
        assert 1.0 < factor < 40.0


class TestJITAblation:
    def test_jit_beats_interpreter_on_computation(self, workload, benchmark):
        def sweep():
            interp = measure_udf_cost(
                workload, 100,
                workload.generic_names[Design.SANDBOX_INTERP],
                20, num_indep=5000, timer=FAST,
            )
            jit = measure_udf_cost(
                workload, 100,
                workload.generic_names[Design.SANDBOX_JIT],
                20, num_indep=5000, timer=FAST,
            )
            return interp, jit

        interp, jit = once(benchmark, sweep)
        speedup = interp / max(jit, 1e-9)
        print(f"\nJIT speedup on pure computation: {speedup:.1f}x")
        assert speedup > 3.0


class TestDesign4Extrapolation:
    def test_ijni_callbacks_behave_like_icpp(self, workload, benchmark):
        designs = (
            Design.NATIVE_ISOLATED,
            Design.SANDBOX_JIT,
            Design.SANDBOX_ISOLATED,
        )
        result = once(
            benchmark,
            lambda: run_fig8(
                workload, invocations=50, callback_sweep=(0, 20),
                designs=designs, timer=FAST,
            ),
        )
        icpp = dict(result.series["IC++"])
        jni = dict(result.series["JNI"])
        ijni = dict(result.series["IJNI"])

        def marginal(series):
            return (series[20] - series[0]) / 20

        # Design 4 callbacks cross the process boundary: the marginal
        # callback cost is like Design 2's, far above Design 3's.
        assert marginal(ijni) > 3 * marginal(jni)
        assert marginal(ijni) > 0.3 * marginal(icpp)


class TestQuotaOverhead:
    def test_policing_is_affordable(self, workload, benchmark):
        """The fuel checks that stop DoS attacks ride along on every
        sandbox invocation; show the sandbox remains within a sane
        factor of raw native on mixed work."""

        def sweep():
            native = measure_udf_cost(
                workload, 100,
                workload.generic_names[Design.NATIVE_INTEGRATED],
                CARDINALITY, num_indep=50, num_dep=1, timer=FAST,
            )
            sandbox = measure_udf_cost(
                workload, 100,
                workload.generic_names[Design.SANDBOX_JIT],
                CARDINALITY, num_indep=50, num_dep=1, timer=FAST,
            )
            return native, sandbox

        native, sandbox = once(benchmark, sweep)
        factor = sandbox / max(native, 1e-9)
        print(f"\nSandbox total factor on mixed work: {factor:.2f}x")
        assert factor < 30.0
