"""Figure 8 — effect of callbacks.

The paper: "The isolated C++ design performs poorly because it faces the
most expensive boundary to cross.  For Java UDFs, the overhead imposed
by the Java native interface is not as significant ... Even for the
common case where there are a few callbacks, IC++ is significantly
slower than JNI."
"""

import pytest
from conftest import once

from repro.bench.figures import run_fig8
from repro.bench.report import render
from repro.bench.workload import PAPER_DESIGNS
from repro.core.designs import Design

INVOCATIONS = 100
SWEEP = (0, 1, 10, 50)


@pytest.mark.parametrize(
    "design", PAPER_DESIGNS, ids=lambda d: d.paper_label
)
@pytest.mark.parametrize("callbacks", [1, 10])
def test_callbacks(benchmark, workload, design, callbacks):
    udf = workload.generic_names[design]
    sql = workload.udf_query(
        100, udf, INVOCATIONS, num_callbacks=callbacks
    )
    rounds = 3 if design.is_isolated else 5
    benchmark.pedantic(
        workload.db.execute, args=(sql,), rounds=rounds, iterations=1
    )


def test_fig8_shape(benchmark, workload, timer):
    result = once(
        benchmark,
        lambda: run_fig8(
            workload, invocations=INVOCATIONS, callback_sweep=SWEEP,
            timer=timer,
        ),
    )
    print()
    print(render(result))
    print(render(result.relative_to("C++")))

    cpp = dict(result.series["C++"])
    icpp = dict(result.series["IC++"])
    jni = dict(result.series["JNI"])
    top = SWEEP[-1]

    # Per-callback marginal costs (seconds per callback per invocation).
    def marginal(series):
        return (series[top] - series[SWEEP[0]]) / top

    # IC++ pays the most expensive boundary per callback.
    assert marginal(icpp) > marginal(jni)
    assert marginal(icpp) > marginal(cpp)

    # "Even for ... a few callbacks, IC++ is significantly slower than
    # JNI": compare total times at 10 callbacks.
    assert icpp[10] > jni[10]

    # In-process native callbacks are nearly free by comparison.
    assert marginal(cpp) < marginal(icpp) / 3
