"""Figure 6 — effect of (data-independent) computation.

The paper: "JNI performs worse than both C++ options.  However, the
difference is a constant small invocation cost difference" — i.e. the
sandbox executes pure computation competitively thanks to the JIT, and
its *relative* penalty does not grow with the amount of computation.

Our JIT emits Python rather than machine code, so the sandbox carries a
modest constant *factor* (the inline wrap/fuel instrumentation) instead
of a constant additive gap; the claim that reproduces is that the
JNI/C++ ratio is bounded and flat as computation grows (see
EXPERIMENTS.md for the discussion).
"""

import pytest
from conftest import once

from repro.bench.figures import run_fig6
from repro.bench.report import render
from repro.bench.workload import PAPER_DESIGNS
from repro.core.designs import Design

INVOCATIONS = 50
SWEEP = (0, 100, 1000, 10000)


@pytest.mark.parametrize(
    "design", PAPER_DESIGNS, ids=lambda d: d.paper_label
)
@pytest.mark.parametrize("num_indep", [100, 10000])
def test_computation(benchmark, workload, design, num_indep):
    udf = workload.generic_names[design]
    sql = workload.udf_query(
        10000, udf, INVOCATIONS, num_indep=num_indep
    )
    rounds = 3 if design.is_isolated else 5
    benchmark.pedantic(
        workload.db.execute, args=(sql,), rounds=rounds, iterations=1
    )


def test_fig6_shape(benchmark, workload, timer):
    result = once(
        benchmark,
        lambda: run_fig6(
            workload, invocations=INVOCATIONS,
            computation_sweep=SWEEP, timer=timer,
        ),
    )
    print()
    print(render(result))
    print(render(result.relative_to("C++")))

    cpp = dict(result.series["C++"])
    jni = dict(result.series["JNI"])

    # Computation dominates at the top of the sweep for both designs.
    assert cpp[SWEEP[-1]] > 3 * cpp[SWEEP[1]]
    assert jni[SWEEP[-1]] > 3 * jni[SWEEP[1]]

    # The sandbox's relative penalty is bounded and does not explode
    # with computation (the paper's central Figure 6 claim).  Our JIT
    # emits instrumented Python, so the bounded factor is ~6-10x where
    # the paper's machine-code JIT saw ~1.1x; the *flatness* is what
    # carries over (see EXPERIMENTS.md).
    ratio_top = jni[SWEEP[-1]] / cpp[SWEEP[-1]]
    assert ratio_top < 14.0, f"JNI/C++ ratio {ratio_top:.2f} at {SWEEP[-1]}"
    ratio_mid = jni[SWEEP[2]] / cpp[SWEEP[2]]
    assert ratio_top < 2.5 * max(ratio_mid, 0.5), "penalty grows with work"
