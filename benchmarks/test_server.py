#!/usr/bin/env python3
"""Concurrent-server sweep: wire throughput vs number of clients.

A read-heavy sandboxed-UDF workload is issued over real TCP connections
against one :class:`~repro.server.aserver.AsyncDatabaseServer` at 1, 2,
4, and 8 clients.  Reads pin MVCC snapshots and run concurrently on the
worker pool, so on a multi-core host total throughput at 4+ clients
should be at least 2x the single-client throughput.  The sweep also
isolates the shared plan cache's effect: the same planning-heavy
statement is timed with the cache defeated (cleared before every
execution) and hitting — the hit must be measurably cheaper on *any*
host, single-core included, because it skips parse/plan/optimize
entirely.

The sweep records ``meta.cpu_count``.  **On a single-core host the
throughput gate is physically unattainable** (concurrent statements
time-slice one core); the script then reports honest ≈1.0x numbers and
exits 0 with a warning instead of failing, and the pytest gate skips.
CI runs this on a multi-core runner, which is the meaningful gate.
The plan-cache gate applies everywhere.

Run::

    python benchmarks/test_server.py                        # full sweep
    python benchmarks/test_server.py --smoke                # CI sanity run
    python benchmarks/test_server.py --out BENCH_server.json
    pytest benchmarks/test_server.py                        # assertions only
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.figures import run_server  # noqa: E402

#: Acceptance thresholds.
GATE_THROUGHPUT_C4 = 2.0   # multi-core hosts only
GATE_PLAN_CACHE = 0.9      # hit latency / miss latency, any host


def multicore() -> bool:
    return (os.cpu_count() or 1) >= 2


def run(smoke: bool = False) -> dict:
    """Execute the sweep and return a JSON-ready result dict."""
    result = run_server(
        cardinality=1000 if smoke else 2000,
        client_counts=(1, 2) if smoke else (1, 2, 4, 8),
        statements_per_client=20 if smoke else 60,
        scan_limit=128 if smoke else 256,
    )
    series = {
        label: [{"clients": x, "value": v} for x, v in points]
        for label, points in result.series.items()
    }
    throughput = dict(result.series["throughput stmt/s"])
    base = throughput.get(1) or 0.0
    scaling = {
        f"c{clients}": (value / base if base else 0.0)
        for clients, value in sorted(throughput.items())
        if clients != 1
    }
    out = {
        "experiment": "server",
        "cpu_count": os.cpu_count(),
        "meta": result.meta,
        "series": series,
        "throughput_vs_1_client": scaling,
    }
    for clients, value in sorted(throughput.items()):
        p95 = dict(result.series["p95 latency s"]).get(clients, 0.0)
        extra = (
            f"  ({scaling[f'c{clients}']:.2f}x vs 1 client)"
            if clients != 1 else ""
        )
        print(
            f"clients={clients}: {value:8.1f} stmt/s, "
            f"p95 {p95 * 1e3:7.2f} ms{extra}"
        )
    cache = result.meta["plan_cache_latency"]
    print(
        f"plan cache: miss {cache['miss_median_s'] * 1e3:.3f} ms, "
        f"hit {cache['hit_median_s'] * 1e3:.3f} ms "
        f"({cache['hit_over_miss']:.2f}x)"
    )
    return out


# -- pytest entry points ------------------------------------------------------

def test_throughput_scales_with_clients():
    """Acceptance: ≥2x total throughput at 4 clients vs 1 client."""
    if not multicore():
        import pytest

        pytest.skip("single-core host: concurrent speedup unattainable")
    results = run(smoke=False)
    assert (
        results["throughput_vs_1_client"]["c4"] >= GATE_THROUGHPUT_C4
    ), results["throughput_vs_1_client"]


def test_plan_cache_hit_is_measurably_cheaper():
    """A plan-cache hit skips parse/plan/optimize on any host."""
    results = run(smoke=True)
    cache = results["meta"]["plan_cache_latency"]
    assert cache["hit_over_miss"] <= GATE_PLAN_CACHE, cache


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="two client counts and a smaller workload (CI sanity run)",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="write results as JSON to this path",
    )
    opts = parser.parse_args(argv)
    results = run(smoke=opts.smoke)
    if opts.out is not None:
        opts.out.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {opts.out}")
    cache_ok = (
        results["meta"]["plan_cache_latency"]["hit_over_miss"]
        <= GATE_PLAN_CACHE
    )
    if not multicore():
        print(
            "WARNING: single-core host (cpu_count="
            f"{os.cpu_count()}); concurrent-client speedup is "
            "physically unattainable here, skipping the throughput "
            "gate.  Run on a multi-core machine (CI does) for the "
            "real numbers."
        )
        return 0 if cache_ok else 1
    top = max(
        (ratio for key, ratio in results["throughput_vs_1_client"].items()
         if key in ("c4", "c8")),
        default=0.0,
    )
    return 0 if cache_ok and top >= GATE_THROUGHPUT_C4 else 1


if __name__ == "__main__":
    sys.exit(main())
