"""Figure 7 — effect of data access.

The paper: sandboxed UDFs pay for run-time array bounds checking when
the computation is data-dependent — "there is a significant penalty
paid ... this is the price paid for security" — but compared with a
*bounds-checked* native UDF (the fair baseline) "JNI performs only 20%
worse".  We sweep NumDataDepComps over the 10,000-byte relation with
the C++/bounds variant included.
"""

import pytest
from conftest import once

from repro.bench.figures import run_fig7
from repro.bench.report import render
from repro.bench.workload import PAPER_DESIGNS
from repro.core.designs import Design

INVOCATIONS = 20
SWEEP = (0, 1, 4, 8)
DESIGNS = PAPER_DESIGNS + (Design.NATIVE_SFI,)


@pytest.mark.parametrize("design", DESIGNS, ids=lambda d: d.paper_label)
def test_data_access(benchmark, workload, design):
    udf = workload.generic_names[design]
    sql = workload.udf_query(10000, udf, INVOCATIONS, num_dep=4)
    rounds = 3 if design.is_isolated else 5
    benchmark.pedantic(
        workload.db.execute, args=(sql,), rounds=rounds, iterations=1
    )


def test_fig7_shape(benchmark, workload, timer):
    result = once(
        benchmark,
        lambda: run_fig7(
            workload, invocations=INVOCATIONS, passes_sweep=SWEEP,
            designs=DESIGNS, timer=timer,
        ),
    )
    print()
    print(render(result))
    print(render(result.relative_to("C++")))

    cpp = dict(result.series["C++"])
    bounds = dict(result.series["C++/bounds"])
    jni = dict(result.series["JNI"])
    top = SWEEP[-1]

    # Data access dominates as passes grow.
    assert jni[top] > 3 * max(jni[SWEEP[1]], 1e-6)

    # The sandbox pays a real penalty vs raw native access...
    assert jni[top] > cpp[top]

    # ...and the bounds-checked native variant pays a comparable tax:
    # instrumented access explains the gap, not interpretation.  The
    # paper saw JNI within ~1.2x of bounds-checked C++; we accept a
    # generous band around parity.
    ratio = jni[top] / max(bounds[top], 1e-9)
    assert 0.2 < ratio < 5.0, f"JNI / C++-bounds = {ratio:.2f}"

    # Bounds-checked native is itself slower than raw native.
    assert bounds[top] > cpp[top]
