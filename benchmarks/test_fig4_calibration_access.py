"""Figure 4 — calibration: table access costs.

The trivial integrated UDF over each relation, varying how many tuples
qualify.  These are the base system costs every later figure subtracts.
Per-cell pytest benchmarks give the raw numbers; the shape test checks
the paper's two visible trends: cost grows with the number of calls,
and bigger byte arrays make the scan dearer.
"""

import pytest
from conftest import CARDINALITY, once

from repro.bench.figures import run_fig4
from repro.bench.report import render
from repro.core.designs import Design


@pytest.mark.parametrize("size", [1, 100, 10000])
@pytest.mark.parametrize("calls_fraction", [0.1, 1.0])
def test_table_access_cost(benchmark, workload, size, calls_fraction):
    invocations = max(1, int(CARDINALITY * calls_fraction))
    noop = workload.noop_names[Design.NATIVE_INTEGRATED]
    sql = workload.udf_query(size, noop, invocations)
    benchmark(workload.db.execute, sql)


def test_fig4_shape(benchmark, workload, timer):
    counts = (
        max(1, CARDINALITY // 100),
        max(1, CARDINALITY // 10),
        CARDINALITY,
    )
    result = once(
        benchmark,
        lambda: run_fig4(workload, invocation_counts=counts, timer=timer),
    )
    print()
    print(render(result))

    # More invocations cost more (within each relation).
    for label, points in result.series.items():
        xs = [x for x, __ in points]
        ys = [y for __, y in points]
        assert ys[xs.index(max(xs))] > ys[xs.index(min(xs))]

    # At the full-scan point, larger byte arrays cost more to access.
    full = {
        label: dict(points)[CARDINALITY]
        for label, points in result.series.items()
    }
    assert full["Rel10000"] > full["Rel1"]
