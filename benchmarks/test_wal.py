#!/usr/bin/env python3
"""WAL commit-path sweep: per-statement fsync vs group commit.

Every committed statement must be fsynced to the log before it is
acknowledged, so with ``group_commit_window=0`` the commit rate is
bounded by the fsync rate.  Group commit amortizes: concurrent writers
arriving within the window share one fsync (the leader sleeps the
window, syncs once, and retires every pending commit the sync covered).

The sweep runs ``WRITERS`` threads, each appending rows to its own
table (the per-table write locks keep disjoint-table writers off each
other's critical path), once per mode:

* ``per_statement`` — ``group_commit_window=0``: one fsync per commit.
* ``group_commit``  — a small window: commits share fsyncs.

The *deterministic* gate is the fsync ledger: group commit must retire
the same number of statements with materially fewer fsyncs, and must
actually form multi-commit batches.  Wall-clock throughput is recorded
honestly (single host, possibly tmpfs-backed ``/tmp``, where fsync is
nearly free and the speedup is modest) but only softly gated: group
commit may not be *slower* than per-statement fsync by more than noise.

Run::

    python benchmarks/test_wal.py                  # full sweep
    python benchmarks/test_wal.py --smoke          # CI sanity run
    python benchmarks/test_wal.py --out BENCH_wal.json
    pytest benchmarks/test_wal.py                  # assertions only
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.database import Database  # noqa: E402

WRITERS = 4
GROUP_WINDOW = 0.002


def _run_mode(window: float, statements_per_writer: int) -> dict:
    """Time one mode; return throughput plus the WAL's own ledger."""
    base = tempfile.mkdtemp(prefix="bench-wal-")
    try:
        db = Database(str(Path(base) / "db"), group_commit_window=window)
        try:
            for n in range(WRITERS):
                db.execute(f"CREATE TABLE tab{n} (id INT, v INT)")
            setup_stats = db.stats()["wal"]
            setup_fsyncs = setup_stats["fsyncs"]
            barrier = threading.Barrier(WRITERS)
            errors = []

            def worker(n: int) -> None:
                try:
                    barrier.wait()
                    for i in range(statements_per_writer):
                        db.execute(
                            f"INSERT INTO tab{n} VALUES ({i}, {i * 7 + n})"
                        )
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(n,))
                for n in range(WRITERS)
            ]
            start = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            elapsed = time.perf_counter() - start
            if errors:
                raise errors[0]
            stats = db.stats()["wal"]
            committed = WRITERS * statements_per_writer
            return {
                "group_commit_window": window,
                "writers": WRITERS,
                "statements": committed,
                "seconds": round(elapsed, 4),
                "statements_per_second": round(committed / elapsed, 1),
                "fsyncs": stats["fsyncs"] - setup_fsyncs,
                "fsyncs_per_statement": round(
                    (stats["fsyncs"] - setup_fsyncs) / committed, 3
                ),
                "grouped_commits": stats["grouped_commits"],
                "max_batch": stats["max_batch"],
                "mean_batch": round(stats["mean_batch"], 2),
            }
        finally:
            db.close()
    finally:
        shutil.rmtree(base, ignore_errors=True)


def run(smoke: bool = False) -> dict:
    per_writer = 25 if smoke else 150
    modes = {
        "per_statement": _run_mode(0.0, per_writer),
        "group_commit": _run_mode(GROUP_WINDOW, per_writer),
    }
    out = {
        "experiment": "wal-group-commit",
        "writers": WRITERS,
        "statements_per_writer": per_writer,
        "group_commit_window": GROUP_WINDOW,
        "modes": modes,
        "fsync_reduction": round(
            modes["per_statement"]["fsyncs"]
            / max(modes["group_commit"]["fsyncs"], 1),
            2,
        ),
    }
    for name, mode in modes.items():
        print(
            f"{name:14s} {mode['statements']:5d} stmts in "
            f"{mode['seconds']:7.3f}s "
            f"({mode['statements_per_second']:8.1f}/s), "
            f"{mode['fsyncs']:5d} fsyncs "
            f"({mode['fsyncs_per_statement']:.3f}/stmt), "
            f"max batch {mode['max_batch']}"
        )
    print(f"fsync reduction: {out['fsync_reduction']:.2f}x")
    return out


def _check(results: dict) -> None:
    per = results["modes"]["per_statement"]
    grp = results["modes"]["group_commit"]
    # Per-statement mode: commits pay ~one fsync each.  (Not exactly
    # one: even with a zero window, a leader's fsync opportunistically
    # covers a concurrent commit appended just before the sync.)
    assert per["fsyncs"] >= per["statements"] * 0.8, results
    # Group commit retires the same statements with materially fewer
    # fsyncs, and genuinely batches concurrent committers.
    assert grp["fsyncs"] < per["fsyncs"] / 2, results
    assert grp["grouped_commits"] > 0, results
    assert grp["max_batch"] >= 2, results
    # Soft wall-clock gate: grouping must not cost throughput (beyond
    # noise) even where fsync is cheap.
    assert grp["seconds"] <= per["seconds"] * 2.0, results


def test_group_commit_amortizes_fsyncs():
    for attempt in range(3):
        try:
            _check(run(smoke=True))
            return
        except AssertionError:
            if attempt == 2:
                raise


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="fewer statements per writer (CI sanity run)",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="write results as JSON to this path",
    )
    parser.add_argument(
        "--attempts", type=int, default=3,
        help="re-measure up to N times if a gate misses",
    )
    opts = parser.parse_args(argv)
    results, ok = None, False
    for attempt in range(max(opts.attempts, 1)):
        results = run(smoke=opts.smoke)
        try:
            _check(results)
            ok = True
            break
        except AssertionError:
            print(f"gate missed (attempt {attempt + 1}), re-measuring...")
    if opts.out is not None:
        opts.out.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {opts.out}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
