"""Shared benchmark fixtures.

The workload scale is environment-tunable::

    REPRO_BENCH_CARDINALITY=2000 pytest benchmarks/ --benchmark-only

Defaults keep the whole suite to a few minutes; EXPERIMENTS.md records
the scale used for the reported numbers.
"""

import os

import pytest

from repro.bench.harness import Timer
from repro.bench.workload import BenchmarkWorkload

CARDINALITY = int(os.environ.get("REPRO_BENCH_CARDINALITY", "300"))


@pytest.fixture(scope="session")
def workload():
    with BenchmarkWorkload(cardinality=CARDINALITY) as wl:
        yield wl


@pytest.fixture(scope="session")
def timer():
    return Timer(repeat=1, warmup=1)


def once(benchmark, fn):
    """Run a whole sweep exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
