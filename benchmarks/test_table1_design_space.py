"""Table 1: the design space for server-side UDFs (qualitative)."""

from conftest import once

from repro.bench.figures import run_table1
from repro.bench.report import render


def test_table1_design_space(benchmark):
    result = once(benchmark, run_table1)
    rows = {row["design"]: row for row in result.meta["rows"]}
    print()
    print(render(result))

    # The paper's two axes: language and process.
    assert rows["C++"]["language"] == "native"
    assert rows["C++"]["process"] == "same"
    assert rows["IC++"]["process"] == "isolated"
    assert rows["JNI"]["language"] == "jaguar"

    # Security properties follow the axes.
    assert not rows["C++"]["crash_contained"]
    assert rows["IC++"]["crash_contained"]
    assert rows["JNI"]["crash_contained"]
    assert rows["JNI"]["portable"] and not rows["IC++"]["portable"]
    # Our Section 6.2 extension: only the sandbox polices resources.
    assert rows["JNI"]["resources_policed"]
    assert not rows["IC++"]["resources_policed"]
