"""Figure 5 — calibration: function invocation costs.

No-op UDFs under C++ / IC++ / JNI with the byte-array size swept.  The
paper's findings to reproduce:

* "the invocation cost of IC++ is higher than for JNI" at small
  payloads (process hand-off beats in-process marshalling);
* 10,000 invocations of a Java UDF incur "only a marginal cost";
* "for both JNI and IC++, the extra overhead is insignificant compared
  to the overall cost of the queries."
"""

import pytest
from conftest import CARDINALITY, once

from repro.bench.figures import run_fig5
from repro.bench.harness import time_query
from repro.bench.report import render
from repro.bench.workload import PAPER_DESIGNS
from repro.core.designs import Design


@pytest.mark.parametrize(
    "design", PAPER_DESIGNS, ids=lambda d: d.paper_label
)
@pytest.mark.parametrize("size", [1, 100, 10000])
def test_invocation_cost(benchmark, workload, design, size):
    udf = workload.noop_names[design]
    sql = workload.udf_query(size, udf, CARDINALITY)
    if design.is_isolated:
        # A fresh executor process per query, as in the paper; keep the
        # per-round cost bounded by using fewer rounds.
        benchmark.pedantic(
            workload.db.execute, args=(sql,), rounds=3, iterations=1
        )
    else:
        benchmark(workload.db.execute, sql)


def test_fig5_shape(benchmark, workload, timer):
    result = once(
        benchmark,
        lambda: run_fig5(workload, invocations=CARDINALITY, timer=timer),
    )
    print()
    print(render(result))
    cpp = dict(result.series["C++"])
    icpp = dict(result.series["IC++"])
    jni = dict(result.series["JNI"])

    # Finding 1: JNI invocation overhead < IC++ at small payloads.
    assert jni[1] < icpp[1]
    assert jni[100] < icpp[100]

    # Finding 2: the JNI overhead is small in absolute terms — within a
    # small multiple of the (already tiny) native overhead budget.
    base = time_query(workload, workload.base_query(1, CARDINALITY), timer)
    assert jni[1] < 5 * max(base, 1e-9) + 0.5

    # Finding 3: everything is dominated by the overall query cost at
    # the large size (where scanning 10 KB rows is the real work).
    base_big = time_query(
        workload, workload.base_query(10000, CARDINALITY), timer
    )
    assert icpp[10000] < 20 * max(base_big, 1e-9)
