#!/usr/bin/env python3
"""Parallel execution sweep: worker count × design × bytearray size.

Fig 5's no-op invocation-cost protocol re-run at several parallelism
levels (``db.parallelism``).  Design 2 (IC++) shards every
``invoke_batch`` across a pool of worker processes, so the per-call
marshalling and VM costs that batching already amortized now also
overlap in time: on a multi-core host the IC++ per-invocation cost
should drop ≥1.5x at parallelism 2 and ≥2.5x at parallelism 4.  The
in-process designs gain only where the optimizer places an Exchange
(pure, expensive UDFs) — a no-op sweep leaves them flat, which is the
point: parallelism must not tax serial paths.

The sweep records ``meta.cpu_count``.  **On a single-core host the
speedup gates are physically unattainable** (worker processes time-slice
one core); the script then reports honest ≈1.0x numbers and exits 0
with a warning instead of failing, and the pytest gate skips.  CI runs
this on a multi-core runner, which is the meaningful gate.

Run::

    python benchmarks/test_parallelism.py                        # full sweep
    python benchmarks/test_parallelism.py --smoke                # CI sanity run
    python benchmarks/test_parallelism.py --out BENCH_parallelism.json
    pytest benchmarks/test_parallelism.py                        # assertions only
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.figures import run_parallelism  # noqa: E402
from repro.bench.harness import Timer  # noqa: E402
from repro.bench.workload import BenchmarkWorkload  # noqa: E402
from repro.core.designs import Design  # noqa: E402

#: Series labels (design × relation) as emitted by ``run_parallelism``.
D2_LABEL = Design.NATIVE_ISOLATED.paper_label  # "IC++"

#: Acceptance thresholds (multi-core hosts only).
GATE_P2 = 1.5
GATE_P4 = 2.5


def multicore() -> bool:
    return (os.cpu_count() or 1) >= 2


def run(smoke: bool = False) -> dict:
    """Execute the sweep and return a JSON-ready result dict."""
    # The acceptance criterion names Rel100, so the sweep always covers
    # it; the per-call work is one no-op round trip, making the overlap
    # of marshalling/dispatch the whole measurement.
    cardinality = 1000 if smoke else 2000
    invocations = 1000
    levels = (1, 2) if smoke else (1, 2, 4)
    sizes = (100,)
    timer = Timer(repeat=1 if smoke else 3, warmup=1)
    with BenchmarkWorkload(
        cardinality=cardinality, sizes=sizes
    ) as workload:
        result = run_parallelism(
            workload,
            invocations=invocations,
            parallelism_levels=levels,
            sizes=sizes,
            timer=timer,
        )
    series = {
        label: [{"parallelism": x, "seconds": s} for x, s in points]
        for label, points in result.series.items()
    }
    speedups = {}
    for label, points in result.series.items():
        by_level = dict(points)
        t1 = by_level.get(1)
        if not t1:
            continue
        for level in levels[1:]:
            t = by_level.get(level)
            if t and t > 0:
                speedups.setdefault(label, {})[f"p{level}"] = t1 / t
    out = {
        "experiment": "parallelism",
        "cardinality": cardinality,
        "cpu_count": os.cpu_count(),
        "meta": result.meta,
        "series": series,
        "speedup_vs_p1": speedups,
    }
    for label, points in sorted(series.items()):
        line = ", ".join(
            f"p={p['parallelism']}: {p['seconds'] * 1e3:8.2f} ms"
            for p in points
        )
        extra = ""
        if label in speedups:
            extra = "  (" + ", ".join(
                f"{key}: {val:.2f}x"
                for key, val in sorted(speedups[label].items())
            ) + ")"
        print(f"{label:14s} {line}{extra}")
    return out


def d2_speedup(results: dict, level: int) -> float:
    """Design 2 no-op invocation speedup at a level, vs parallelism 1."""
    return results["speedup_vs_p1"].get(
        f"{D2_LABEL} Rel100", {}
    ).get(f"p{level}", 0.0)


# -- pytest entry points ------------------------------------------------------

def test_design2_noop_speedup_at_p2():
    """Acceptance: ≥1.5x on Design 2 no-op invocation at parallelism 2."""
    if not multicore():
        import pytest

        pytest.skip("single-core host: parallel speedup unattainable")
    results = run(smoke=True)
    assert d2_speedup(results, 2) >= GATE_P2, results["speedup_vs_p1"]


def test_pooled_batch_shards_across_workers():
    """One pooled batch should spread its messages across the workers."""
    from repro.bench.figures import measure_pool_channel_stats

    with BenchmarkWorkload(
        cardinality=64, sizes=(100,),
        designs=(Design.NATIVE_ISOLATED,), use_generic=False,
    ) as workload:
        stats = measure_pool_channel_stats(workload, 100, 2)
    assert stats["workers"] == 2
    assert len(stats["per_worker"]) == 2
    # Each worker handled one shard of the batch in a single hand-off.
    assert all(w["messages_sent"] == 1 for w in stats["per_worker"])
    assert stats["messages_sent"] == 2


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small cardinality and two levels (CI sanity run)",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="write results as JSON to this path",
    )
    opts = parser.parse_args(argv)
    results = run(smoke=opts.smoke)
    p2 = d2_speedup(results, 2)
    p4 = d2_speedup(results, 4)
    print(f"Design 2 (no-op, Rel100) speedup at parallelism 2: {p2:.2f}x")
    if p4:
        print(
            f"Design 2 (no-op, Rel100) speedup at parallelism 4: {p4:.2f}x"
        )
    if opts.out is not None:
        opts.out.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {opts.out}")
    if not multicore():
        print(
            "WARNING: single-core host (cpu_count="
            f"{os.cpu_count()}); parallel speedup is physically "
            "unattainable here, skipping the gate.  Run on a "
            "multi-core machine (CI does) for the real numbers."
        )
        return 0
    ok = p2 >= GATE_P2 and (not p4 or p4 >= GATE_P4)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
