#!/usr/bin/env python3
"""Froid-style inlining sweep: per-invocation cost, opaque vs inlined.

Fig 5's invocation-cost protocol re-run on a pure arithmetic UDF
(``x * 3 + 1``) under the paper's four designs.  With ``inlining=False``
every design pays its per-invocation overhead — call dispatch for C++,
the shared-memory round trip for IC++, the VM entry for JNI (with or
without the JIT).  With ``inlining=True`` the decompiler has lifted the
sandboxed bodies into plain SQL expressions, so the JNI curves collapse
onto the equivalent native SQL expression (``id * 3 + 1``); the native
designs carry opaque host code, refuse with ``impure``, and keep their
opaque cost.  ``meta.inline_status`` records the per-design verdict.

Run::

    python benchmarks/test_inlining.py                        # full sweep
    python benchmarks/test_inlining.py --smoke                # CI sanity run
    python benchmarks/test_inlining.py --out BENCH_inlining.json
    pytest benchmarks/test_inlining.py                        # assertions only
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.figures import INLINING_DESIGNS, run_inlining  # noqa: E402
from repro.bench.harness import Timer  # noqa: E402
from repro.bench.workload import BenchmarkWorkload  # noqa: E402
from repro.core.designs import Design  # noqa: E402

SANDBOXED = tuple(d for d in INLINING_DESIGNS if d.is_sandboxed)


def run(smoke: bool = False) -> dict:
    """Execute the sweep and return a JSON-ready result dict."""
    cardinality = 1000 if smoke else 2000
    invocations = 1000 if smoke else 2000
    sizes = (1,) if smoke else (1, 100, 10000)
    timer = Timer(repeat=1 if smoke else 5, warmup=1)
    with BenchmarkWorkload(
        cardinality=cardinality, sizes=sizes, use_generic=False,
        designs=INLINING_DESIGNS,
    ) as workload:
        result = run_inlining(
            workload, invocations=invocations, sizes=sizes, timer=timer
        )
    series = {
        label: [{"size": x, "seconds": s} for x, s in points]
        for label, points in result.series.items()
    }
    collapse = {}
    for design in INLINING_DESIGNS:
        opaque = dict(result.series[f"{design.paper_label} opaque"])
        inlined = dict(result.series[f"{design.paper_label} inlined"])
        collapse[design.paper_label] = {
            f"Rel{size}": (
                opaque[size] / inlined[size] if inlined[size] > 0
                else float("inf")
            )
            for size in opaque
        }
    out = {
        "experiment": "inlining",
        "cardinality": cardinality,
        "meta": result.meta,
        "series": series,
        "collapse_opaque_over_inlined": {
            label: {k: round(v, 2) for k, v in ratios.items()}
            for label, ratios in collapse.items()
        },
    }
    for label, points in sorted(series.items()):
        line = ", ".join(
            f"Rel{p['size']}: {p['seconds'] * 1e3:8.2f} ms" for p in points
        )
        print(f"{label:20s} {line}")
    return out


def _cost(results: dict, label: str, size: int) -> float:
    for point in results["series"][label]:
        if point["size"] == size:
            return point["seconds"]
    raise KeyError((label, size))


# -- pytest entry points ------------------------------------------------------

def test_sandboxed_designs_report_inlined():
    results = run(smoke=True)
    status = results["meta"]["inline_status"]
    for design in SANDBOXED:
        assert status[design.value] == "inlined", status
    for design in INLINING_DESIGNS:
        if not design.is_sandboxed:
            assert status[design.value] == "opaque(impure)", status


def test_inlined_within_2x_of_sql_expression():
    """Acceptance: inlined evaluation ≈ the equivalent SQL expression.

    Both paths are the same compiled expression over the same scan, so
    the comparison needs a floor: subtracting two nearly-equal timings
    leaves noise-dominated sub-millisecond residuals.  2x on costs
    clamped to ≥1ms is the issue's criterion with that guard.
    """
    results = run(smoke=True)
    floor = 1e-3
    sql = max(_cost(results, "SQL expr", 1), floor)
    for design in SANDBOXED:
        inlined = max(_cost(results, f"{design.paper_label} inlined", 1), floor)
        assert inlined <= 2.0 * sql, (design, inlined, sql, results)


def test_opaque_retains_invocation_overhead():
    """Opaque sandboxed execution stays well above its inlined twin."""
    results = run(smoke=True)
    for design in SANDBOXED:
        opaque = _cost(results, f"{design.paper_label} opaque", 1)
        inlined = _cost(results, f"{design.paper_label} inlined", 1)
        assert opaque >= 2.0 * max(inlined, 1e-4), (design, opaque, inlined)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small cardinality, Rel1 only (CI sanity run)",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="write results as JSON to this path",
    )
    opts = parser.parse_args(argv)
    results = run(smoke=opts.smoke)
    jni = Design.SANDBOX_JIT.paper_label
    ratio = results["collapse_opaque_over_inlined"][jni]["Rel1"]
    print(f"{jni} opaque/inlined collapse at Rel1: {ratio:.2f}x")
    print(f"inline status: {results['meta']['inline_status']}")
    if opts.out is not None:
        opts.out.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {opts.out}")
    return 0 if ratio >= 2.0 else 1


if __name__ == "__main__":
    sys.exit(main())
