#!/usr/bin/env python3
"""Batched execution sweep: batch size × design × bytearray size.

Fig 5's no-op invocation-cost protocol re-run at several executor batch
sizes (``db.batch_size``).  Per-invocation costs the paper's Section 5
decomposes as *fixed* — the shared-memory round trip of Design 2, the
VM entry of Design 3, the call dispatch of Design 1 — amortize across a
batch, so the isolated design's cost should collapse by well over 2x at
batch 64 while batch 1 reproduces the seed's tuple-at-a-time numbers.
``meta.shm_stats`` records the channel's chunk/message counters, showing
the pre-sized buffer moving a whole batch per hand-off.

Run::

    python benchmarks/test_batching.py                        # full sweep
    python benchmarks/test_batching.py --smoke                # CI sanity run
    python benchmarks/test_batching.py --out BENCH_batching.json
    pytest benchmarks/test_batching.py                        # assertions only
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.figures import run_batching  # noqa: E402
from repro.bench.harness import Timer  # noqa: E402
from repro.bench.workload import BenchmarkWorkload  # noqa: E402
from repro.core.designs import Design  # noqa: E402

#: Series labels (design × relation) as emitted by ``run_batching``.
D2_LABEL = Design.NATIVE_ISOLATED.paper_label  # "IC++"


def run(smoke: bool = False) -> dict:
    """Execute the sweep and return a JSON-ready result dict."""
    # Smoke still needs enough invocations that per-call IPC dominates
    # the constant per-query worker spawn Design 2 pays either way.
    cardinality = 1000 if smoke else 2000
    invocations = 1000 if smoke else 1000
    batch_sizes = (1, 64) if smoke else (1, 2, 8, 64)
    sizes = (1,) if smoke else (1, 100, 10000)
    timer = Timer(repeat=1 if smoke else 3, warmup=1)
    with BenchmarkWorkload(
        cardinality=cardinality, sizes=sizes
    ) as workload:
        result = run_batching(
            workload,
            invocations=invocations,
            batch_sizes=batch_sizes,
            sizes=sizes,
            timer=timer,
        )
    series = {
        label: [{"batch": x, "seconds": s} for x, s in points]
        for label, points in result.series.items()
    }
    speedups = {}
    for label, points in result.series.items():
        by_batch = dict(points)
        t1, t64 = by_batch.get(1), by_batch.get(max(batch_sizes))
        if t1 and t64 and t64 > 0:
            speedups[label] = t1 / t64
    out = {
        "experiment": "batching",
        "cardinality": cardinality,
        "meta": result.meta,
        "series": series,
        "speedup_batch_max_vs_1": speedups,
    }
    for label, points in sorted(series.items()):
        line = ", ".join(
            f"b={p['batch']}: {p['seconds'] * 1e3:8.2f} ms" for p in points
        )
        extra = (
            f"  ({speedups[label]:.2f}x)" if label in speedups else ""
        )
        print(f"{label:14s} {line}{extra}")
    return out


def d2_speedup(results: dict, size: int) -> float:
    """Design 2 no-op invocation speedup, largest batch vs batch 1."""
    return results["speedup_batch_max_vs_1"].get(
        f"{D2_LABEL} Rel{size}", 0.0
    )


# -- pytest entry points ------------------------------------------------------

def test_design2_noop_2x_at_batch64():
    """Acceptance: ≥2x on Design 2 no-op invocation at batch 64."""
    results = run(smoke=True)
    assert d2_speedup(results, 1) >= 2.0, results["speedup_batch_max_vs_1"]


def test_batch_payload_crosses_in_one_chunk():
    """The pre-sized buffer should move a small-payload batch whole."""
    results = run(smoke=True)
    stats = results["meta"]["shm_stats"]["batch=64,Rel1"]
    # One request message out; the worker's READY + one batch result in.
    assert stats["chunks_sent"] == stats["messages_sent"]
    assert stats["chunks_received"] == stats["messages_received"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small cardinality and two batch sizes (CI sanity run)",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="write results as JSON to this path",
    )
    opts = parser.parse_args(argv)
    results = run(smoke=opts.smoke)
    speedup = d2_speedup(results, 1)
    print(
        f"Design 2 (no-op, Rel1) speedup at batch "
        f"{max(results['meta']['batch_sizes'])}: {speedup:.2f}x"
    )
    if opts.out is not None:
        opts.out.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {opts.out}")
    return 0 if speedup >= 2.0 else 1


if __name__ == "__main__":
    sys.exit(main())
