#!/usr/bin/env python3
"""Certified-bound metering elision vs dynamic per-instruction metering.

The bounds certifier (``repro.analysis.bounds``) proves a worst-case
fuel bound for the paper's generic benchmark UDF, which lets the
interpreter charge the whole bound up front instead of decrementing the
fuel counter at every instruction (and lets the JIT skip its per-block
charge).  This benchmark measures that saving on the paper's
NumDataIndepComps sweep (Rel1 / Rel100 / Rel10000): the same verified
bytecode is loaded twice, once with its certificates attached (elided
metering) and once with them stripped (the dynamic baseline), and each
variant runs the identical invocation schedule.

Run::

    python benchmarks/bounds_metering.py                # full sweep
    python benchmarks/bounds_metering.py --smoke        # one point (CI)
    python benchmarks/bounds_metering.py --out out.json # machine output
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.callbacks import standard_callback_signatures  # noqa: E402
from repro.core.generic_udf import GENERIC_JAGSCRIPT  # noqa: E402
from repro.vm.compiler import compile_source  # noqa: E402
from repro.vm.machine import JaguarVM  # noqa: E402
from repro.vm.security import Permissions  # noqa: E402

#: The paper's data-independent computation sweep (Section 5.2's Rel1 /
#: Rel100 / Rel10000 relation naming).
SWEEP = (1, 100, 10_000)

DATA = bytes(64)


def _load_pair(use_jit: bool):
    """The generic UDF twice: certificates attached vs stripped."""
    signatures = standard_callback_signatures()
    vm = JaguarVM(callback_signatures=signatures, use_jit=use_jit)
    handlers = {"cb_noop": lambda: 0}
    pair = {}
    for variant in ("certified", "dynamic"):
        cls = compile_source(
            GENERIC_JAGSCRIPT, f"Gen_{variant}", callbacks=signatures
        )
        udf = vm.load_udf(
            name=variant,
            classfiles=[cls],
            permissions=Permissions.with_callbacks("cb_noop"),
            callbacks=handlers,
        )
        if variant == "dynamic":
            # Strip the certificates: this is the pre-certifier system,
            # metering every instruction (interpreter) / block (JIT).
            for func in udf.main_class.functions.values():
                func.certificate = None
            udf.main_class.certificates = None
        pair[variant] = udf
    return pair


def _time_invocations(udf, num_indep: int, invocations: int,
                      repeats: int) -> float:
    """Best-of-``repeats`` wall time for ``invocations`` generic calls."""
    context = udf.make_context()
    args = [DATA, num_indep, 1, 0]
    best = float("inf")
    for __ in range(repeats):
        start = time.perf_counter()
        for __ in range(invocations):
            context.account.reset()
            udf.invoke("generic", args, context=context)
        best = min(best, time.perf_counter() - start)
    return best


def run(smoke: bool = False) -> dict:
    sweep = SWEEP[1:2] if smoke else SWEEP
    invocations = 20 if smoke else 200
    repeats = 2 if smoke else 3
    modes = ("interpreter",) if smoke else ("interpreter", "jit")
    results = {"sweep_parameter": "NumDataIndepComps", "modes": {}}
    for mode in modes:
        pair = _load_pair(use_jit=(mode == "jit"))
        points = []
        for num_indep in sweep:
            t_dynamic = _time_invocations(
                pair["dynamic"], num_indep, invocations, repeats
            )
            t_certified = _time_invocations(
                pair["certified"], num_indep, invocations, repeats
            )
            speedup = t_dynamic / t_certified if t_certified > 0 else 0.0
            points.append({
                "num_indep": num_indep,
                "invocations": invocations,
                "t_dynamic_s": t_dynamic,
                "t_certified_s": t_certified,
                "speedup": speedup,
            })
            print(
                f"{mode:12s} NumDataIndepComps={num_indep:>6}: "
                f"dynamic {t_dynamic * 1e3:8.2f} ms, "
                f"certified {t_certified * 1e3:8.2f} ms, "
                f"speedup {speedup:5.2f}x"
            )
        results["modes"][mode] = points
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="one sweep point, few invocations (CI sanity run)",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="write results as JSON to this path",
    )
    opts = parser.parse_args(argv)
    results = run(smoke=opts.smoke)
    if opts.out is not None:
        opts.out.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {opts.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
