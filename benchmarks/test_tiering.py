#!/usr/bin/env python3
"""Tiered-execution sweep: arith UDF cost, tier 0 vs tier 1.

Fig 5's invocation-cost protocol (base table-access cost subtracted)
applied to the pure arithmetic UDF (``x * 3 + 1``) at batch size 64.
With ``tiering=False`` every design takes its seed execution path; with
``tiering=True`` and ``tier1_threshold=0`` the profile promotes each
eligible UDF to a type-specialized whole-batch kernel on its first
batch.  The in-process sandboxed designs (JNI, JNI-int) should speed up
by >=2x — guards, unboxing, and metering are hoisted out of the row
loop — while the native control (C++) has no bytecode to specialize and
stays ~1.00x.  ``meta.tier_status`` records the per-design tier state.

Run::

    python benchmarks/test_tiering.py                        # full sweep
    python benchmarks/test_tiering.py --smoke                # CI sanity run
    python benchmarks/test_tiering.py --out BENCH_tiering.json
    pytest benchmarks/test_tiering.py                        # assertions only
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.figures import TIERING_DESIGNS, run_tiering  # noqa: E402
from repro.bench.harness import Timer  # noqa: E402
from repro.bench.workload import BenchmarkWorkload  # noqa: E402
from repro.core.designs import Design  # noqa: E402

#: The designs the >=2x gate applies to: in-process sandboxed execution,
#: where the batch kernel replaces per-row VM entry.  The isolated
#: sandbox promotes too (inside its workers) but its cost is dominated
#: by the shared-memory round trip, so it is swept, not gated.
GATED = (Design.SANDBOX_JIT, Design.SANDBOX_INTERP)


def run(smoke: bool = False) -> dict:
    """Execute the sweep and return a JSON-ready result dict."""
    cardinality = 2000
    counts = (2000,) if smoke else (100, 1000, 2000)
    timer = Timer(repeat=3 if smoke else 9, warmup=1)
    with BenchmarkWorkload(
        cardinality=cardinality, sizes=(1,), use_generic=False,
        designs=TIERING_DESIGNS,
    ) as workload:
        result = run_tiering(workload, invocation_counts=counts, timer=timer)
    series = {
        label: [{"calls": x, "seconds": s} for x, s in points]
        for label, points in result.series.items()
    }
    gate_count = max(counts)
    floor = 5e-4  # subtracted timings can bottom out in scheduler noise
    speedup = {}
    for design in TIERING_DESIGNS:
        tier0 = dict(result.series[f"{design.paper_label} tier0"])
        tier1 = dict(result.series[f"{design.paper_label} tier1"])
        speedup[design.paper_label] = {
            str(count): round(
                max(tier0[count], floor) / max(tier1[count], floor), 2
            )
            for count in tier0
        }
    totals = result.meta["totals"][Design.NATIVE_INTEGRATED.value]
    control = totals["tier0"][gate_count] / totals["tier1"][gate_count]
    out = {
        "experiment": "tiering",
        "cardinality": cardinality,
        "gate_count": gate_count,
        "meta": result.meta,
        "series": series,
        "speedup_tier0_over_tier1": speedup,
        # End-to-end (un-subtracted) ratio for the native control: host
        # code has no tier 1, so total query time must be unchanged.
        "native_control_total_ratio": round(control, 3),
    }
    for label, points in sorted(series.items()):
        line = ", ".join(
            f"{p['calls']:>5d} calls: {p['seconds'] * 1e3:8.2f} ms"
            for p in points
        )
        print(f"{label:20s} {line}")
    return out


def _cost(results: dict, label: str, calls: int) -> float:
    for point in results["series"][label]:
        if point["calls"] == calls:
            return point["seconds"]
    raise KeyError((label, calls))


# -- pytest entry points ------------------------------------------------------

def _timing_gate(check, attempts: int = 3):
    """Re-measure on failure: wall-clock gates on a shared machine get a
    bounded number of fresh runs before the assertion counts."""
    for attempt in range(attempts):
        try:
            return check(run(smoke=True))
        except AssertionError:
            if attempt == attempts - 1:
                raise


def test_sandboxed_designs_speed_up_and_native_control_is_flat():
    def check(results):
        calls = results["gate_count"]
        for design in GATED:
            ratio = results["speedup_tier0_over_tier1"][design.paper_label]
            assert ratio[str(calls)] >= 2.0, (design, ratio, results)
        # ~1.00x: tiering adds no fast path to host code, only a counter.
        control = results["native_control_total_ratio"]
        assert 0.8 <= control <= 1.25, (control, results)

    _timing_gate(check)


def test_gap_to_integrated_narrows():
    """Tier 1 closes (part of) the sandbox-vs-native gap."""
    def check(results):
        calls = results["gate_count"]
        floor = 1e-4
        cpp = Design.NATIVE_INTEGRATED.paper_label
        for design in GATED:
            label = design.paper_label
            gap0 = _cost(results, f"{label} tier0", calls) - _cost(
                results, f"{cpp} tier0", calls
            )
            gap1 = _cost(results, f"{label} tier1", calls) - _cost(
                results, f"{cpp} tier1", calls
            )
            assert gap1 < max(gap0, floor), (design, gap0, gap1, results)

    _timing_gate(check)


def test_eligible_udfs_actually_promoted():
    results = run(smoke=True)
    status = results["meta"]["tier_status"]
    for design in GATED:
        snapshot = status[design.value]
        assert snapshot["tier"] == 1, status
        assert snapshot["promotions"] >= 1, status
        assert snapshot["tier1_batches"] > 0, status
    assert status[Design.NATIVE_INTEGRATED.value] == "tier0(native-control)"
    assert status[Design.SANDBOX_ISOLATED.value] == "worker-local"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small cardinality, single invocation count (CI sanity run)",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="write results as JSON to this path",
    )
    parser.add_argument(
        "--attempts", type=int, default=3,
        help="re-measure up to N times if a wall-clock gate misses "
        "(noisy shared machines)",
    )
    opts = parser.parse_args(argv)
    for attempt in range(max(opts.attempts, 1)):
        results = run(smoke=opts.smoke)
        calls = str(results["gate_count"])
        speedups = results["speedup_tier0_over_tier1"]
        ok = True
        for design in GATED:
            ratio = speedups[design.paper_label][calls]
            print(f"{design.paper_label} tier0/tier1 at {calls} calls: "
                  f"{ratio:.2f}x")
            ok = ok and ratio >= 2.0
        control = results["native_control_total_ratio"]
        print(f"{Design.NATIVE_INTEGRATED.paper_label} control "
              f"(total-time ratio): {control:.2f}x")
        ok = ok and 0.8 <= control <= 1.25
        if ok:
            break
        print(f"gate missed (attempt {attempt + 1}), re-measuring...")
    print(f"tier status: {results['meta']['tier_status']}")
    if opts.out is not None:
        opts.out.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {opts.out}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
