"""JaguarVM value model and verification-type lattice.

JaguarVM is strongly typed, like the JVM the paper builds on: every stack
slot and local variable has a type known to the verifier before the code
runs.  The type system is deliberately small — the six types below cover
every UDF in the paper (the generic benchmark UDF, image functions such as
``REDNESS``, and time-series functions such as ``InvestVal``):

========  ===========================  ==========================
VM type   host representation          notes
========  ===========================  ==========================
INT       ``int`` (wrapped to 64-bit)  two's-complement semantics
FLOAT     ``float``                    IEEE double
BOOL      ``bool``
STR       ``str``                      immutable
ARR       ``bytearray``                mutable byte array
FARR      ``array('d')``               mutable float array
========  ===========================  ==========================

``VOID`` exists only as a function return type.
"""

from __future__ import annotations

import enum
from array import array
from typing import Union

from ..errors import VMRuntimeError

#: Inclusive bounds of the VM's 64-bit signed integer type.
INT_MIN = -(2 ** 63)
INT_MAX = 2 ** 63 - 1
_INT_MASK = 2 ** 64


class VMType(enum.Enum):
    """Verification types (also the runtime type tags)."""

    INT = "int"
    FLOAT = "float"
    BOOL = "bool"
    STR = "str"
    ARR = "arr"
    FARR = "farr"
    VOID = "void"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VMType.{self.name}"


#: Host-level union of every value a VM slot may hold.
VMValue = Union[int, float, bool, str, bytearray, array]

#: Types that may appear as parameters or locals (everything but VOID).
SLOT_TYPES = (
    VMType.INT,
    VMType.FLOAT,
    VMType.BOOL,
    VMType.STR,
    VMType.ARR,
    VMType.FARR,
)

_TYPE_BY_NAME = {t.value: t for t in VMType}

#: Annotation spellings accepted by the compiler front end.
TYPE_ALIASES = {
    "int": VMType.INT,
    "float": VMType.FLOAT,
    "bool": VMType.BOOL,
    "str": VMType.STR,
    "bytes": VMType.ARR,
    "bytearray": VMType.ARR,
    "arr": VMType.ARR,
    "farr": VMType.FARR,
    "None": VMType.VOID,
    "void": VMType.VOID,
}


def type_by_name(name: str) -> VMType:
    """Look up a :class:`VMType` from its canonical wire name."""
    try:
        return _TYPE_BY_NAME[name]
    except KeyError:
        raise ValueError(f"unknown VM type name {name!r}") from None


def wrap_int(value: int) -> int:
    """Wrap a Python int to the VM's 64-bit two's-complement range.

    Java arithmetic silently wraps; unbounded Python ints would both change
    semantics and defeat memory accounting, so every arithmetic opcode
    funnels its result through here.
    """
    value &= _INT_MASK - 1
    if value > INT_MAX:
        value -= _INT_MASK
    return value


def default_value(vm_type: VMType) -> VMValue:
    """The zero value used for uninitialized-looking locals at call entry.

    The verifier guarantees locals are written before read, so these are
    only used for parameter-less temporaries in the interpreter frame.
    """
    if vm_type is VMType.INT:
        return 0
    if vm_type is VMType.FLOAT:
        return 0.0
    if vm_type is VMType.BOOL:
        return False
    if vm_type is VMType.STR:
        return ""
    if vm_type is VMType.ARR:
        return bytearray()
    if vm_type is VMType.FARR:
        return array("d")
    raise ValueError(f"no default for {vm_type}")


def host_type_of(value: VMValue) -> VMType:
    """Classify a host value into a VM type (``bool`` before ``int``!)."""
    if isinstance(value, bool):
        return VMType.BOOL
    if isinstance(value, int):
        return VMType.INT
    if isinstance(value, float):
        return VMType.FLOAT
    if isinstance(value, str):
        return VMType.STR
    if isinstance(value, (bytearray, bytes)):
        return VMType.ARR
    if isinstance(value, array) and value.typecode == "d":
        return VMType.FARR
    raise VMRuntimeError(f"value {value!r} has no VM type")


def coerce_argument(value: object, vm_type: VMType) -> VMValue:
    """Convert a host argument into the canonical representation of a type.

    Used at the language boundary (the JNI analog) when the server passes
    SQL values into a sandboxed UDF.  Raises :class:`VMRuntimeError` on a
    type mismatch rather than silently converting, matching JNI's strict
    marshalling.
    """
    if vm_type is VMType.INT:
        if isinstance(value, bool) or not isinstance(value, int):
            raise VMRuntimeError(f"expected int argument, got {value!r}")
        return wrap_int(value)
    if vm_type is VMType.FLOAT:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise VMRuntimeError(f"expected float argument, got {value!r}")
        return float(value)
    if vm_type is VMType.BOOL:
        if not isinstance(value, bool):
            raise VMRuntimeError(f"expected bool argument, got {value!r}")
        return value
    if vm_type is VMType.STR:
        if not isinstance(value, str):
            raise VMRuntimeError(f"expected str argument, got {value!r}")
        return value
    if vm_type is VMType.ARR:
        if isinstance(value, bytearray):
            return value
        if isinstance(value, (bytes, memoryview)):
            # Copy: the sandbox must never alias server-owned buffers.
            return bytearray(value)
        raise VMRuntimeError(f"expected byte-array argument, got {value!r}")
    if vm_type is VMType.FARR:
        if isinstance(value, array) and value.typecode == "d":
            return value
        if isinstance(value, (list, tuple)):
            return array("d", [float(x) for x in value])
        raise VMRuntimeError(f"expected float-array argument, got {value!r}")
    raise VMRuntimeError(f"cannot pass argument of type {vm_type}")


def coerce_argument_readonly(value: object, vm_type: VMType) -> VMValue:
    """Marshal an argument the flow certifier proved *read-only*.

    Identical to :func:`coerce_argument` except that byte arrays are
    passed by reference instead of defensively copied.  Only sound when
    the static escape analysis proved the parameter is never written
    through (no reachable ASTORE on an alias) and never retained past
    the call — the interpreter and JIT index ``bytes`` and ``bytearray``
    identically, so a mutation-free function cannot tell the difference,
    and the caller's buffer cannot be corrupted.
    """
    if vm_type is VMType.ARR and isinstance(value, (bytes, memoryview)):
        return value  # zero-copy: proven read-only
    return coerce_argument(value, vm_type)
