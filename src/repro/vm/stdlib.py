"""JaguarVM trusted stdlib: native methods available to sandboxed code.

These are the analog of Java's core library natives.  They are trusted
(implemented in the host language, not verified) so the bar for inclusion
is strict: every native here is a *pure, total* function of its VM-typed
arguments — no I/O, no access to server state, no aliasing surprises.
Anything that touches the server goes through a CALLBACK instead, where
the security manager interposes per-UDF permissions.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Tuple

from ..errors import ArithmeticFault
from .values import VMType, wrap_int

I = VMType.INT
F = VMType.FLOAT
B = VMType.BOOL
S = VMType.STR
A = VMType.ARR
FA = VMType.FARR

Signature = Tuple[Tuple[VMType, ...], VMType]


def _checked_sqrt(x: float) -> float:
    if x < 0.0:
        raise ArithmeticFault("sqrt of negative number")
    return math.sqrt(x)


def _checked_log(x: float) -> float:
    if x <= 0.0:
        raise ArithmeticFault("log of non-positive number")
    return math.log(x)


def _checked_pow(x: float, y: float) -> float:
    try:
        result = math.pow(x, y)
    except (ValueError, OverflowError) as exc:
        raise ArithmeticFault(f"pow({x}, {y}): {exc}") from None
    return result


def _checked_exp(x: float) -> float:
    try:
        return math.exp(x)
    except OverflowError:
        raise ArithmeticFault(f"exp({x}) overflows") from None


def _str_of_byte(b: int) -> str:
    if not 0 <= b <= 0x10FFFF:
        raise ArithmeticFault(f"chr of out-of-range code point {b}")
    return chr(b)


#: name -> ((parameter types...), return type)
NATIVE_SIGNATURES: Dict[str, Signature] = {
    "iabs": ((I,), I),
    "imin": ((I, I), I),
    "imax": ((I, I), I),
    "fabs": ((F,), F),
    "fmin": ((F, F), F),
    "fmax": ((F, F), F),
    "sqrt": ((F,), F),
    "exp": ((F,), F),
    "log": ((F,), F),
    "pow": ((F, F), F),
    "sin": ((F,), F),
    "cos": ((F,), F),
    "floor": ((F,), F),
    "ceil": ((F,), F),
    "round": ((F,), I),
    "chr": ((I,), S),
}

#: name -> host implementation.  Every function takes/returns VM values
#: of exactly the advertised signature; the verifier guarantees callers
#: comply, so no defensive conversion happens here (matching JNI).
NATIVE_IMPLS: Dict[str, Callable] = {
    "iabs": lambda x: wrap_int(abs(x)),
    "imin": lambda a, b: a if a < b else b,
    "imax": lambda a, b: a if a > b else b,
    "fabs": abs,
    "fmin": lambda a, b: a if a < b else b,
    "fmax": lambda a, b: a if a > b else b,
    "sqrt": _checked_sqrt,
    "exp": _checked_exp,
    "log": _checked_log,
    "pow": _checked_pow,
    "sin": math.sin,
    "cos": math.cos,
    "floor": math.floor,
    "ceil": math.ceil,
    "round": lambda x: wrap_int(round(x)),
    "chr": _str_of_byte,
}

# ``floor``/``ceil`` return float per signature; math.floor returns int.
NATIVE_IMPLS["floor"] = lambda x: float(math.floor(x))
NATIVE_IMPLS["ceil"] = lambda x: float(math.ceil(x))

assert set(NATIVE_SIGNATURES) == set(NATIVE_IMPLS)
