"""JaguarVM instruction set.

The instruction set is *typed*, like JVM bytecode: there is an ``IADD`` and
an ``FADD`` rather than one polymorphic ``ADD``.  Typed opcodes let the
verifier prove memory safety with a simple dataflow pass (Section 6.1 of
the paper: "bytecode verification ... ensures the well-typedness of the
code"), after which the interpreter and JIT may execute without per-
instruction type dispatch.

Instructions are ``(opcode, arg)`` pairs.  ``arg`` is an immediate value,
a local-variable slot index, a constant-pool index, or a jump target
(an *instruction* index — the VM has no variable-width encoding, so every
integer in ``range(len(code))`` is a valid alignment).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from .values import VMType

I = VMType.INT
F = VMType.FLOAT
B = VMType.BOOL
S = VMType.STR
A = VMType.ARR
FA = VMType.FARR


class Op(enum.IntEnum):
    """Every JaguarVM opcode."""

    # constants -----------------------------------------------------------
    ICONST = 1     # arg: int immediate               -> push INT
    FCONST = 2     # arg: float immediate             -> push FLOAT
    BCONST = 3     # arg: 0 or 1                      -> push BOOL
    SCONST = 4     # arg: constant-pool string index  -> push STR

    # locals ---------------------------------------------------------------
    LOAD = 10      # arg: slot index                  -> push locals[arg]
    STORE = 11     # arg: slot index                  -> pop into locals[arg]

    # stack ----------------------------------------------------------------
    POP = 20
    DUP = 21
    SWAP = 22

    # integer arithmetic (64-bit two's complement) ---------------------------
    IADD = 30
    ISUB = 31
    IMUL = 32
    IDIV = 33      # traps on divide-by-zero
    IMOD = 34      # traps on divide-by-zero
    INEG = 35
    IAND = 36
    IOR = 37
    IXOR = 38
    ISHL = 39      # shift count masked to 0..63
    ISHR = 40      # arithmetic shift; count masked to 0..63

    # float arithmetic -------------------------------------------------------
    FADD = 50
    FSUB = 51
    FMUL = 52
    FDIV = 53      # traps on divide-by-zero
    FNEG = 54

    # conversions ------------------------------------------------------------
    I2F = 60
    F2I = 61       # truncates toward zero; traps on NaN/overflow
    I2S = 62       # int -> decimal string
    F2S = 63       # float -> repr string

    # integer comparisons -> BOOL ---------------------------------------------
    ICMPLT = 70
    ICMPLE = 71
    ICMPGT = 72
    ICMPGE = 73
    ICMPEQ = 74
    ICMPNE = 75

    # float comparisons -> BOOL -------------------------------------------------
    FCMPLT = 80
    FCMPLE = 81
    FCMPGT = 82
    FCMPGE = 83
    FCMPEQ = 84
    FCMPNE = 85

    # booleans --------------------------------------------------------------
    NOT = 90
    BAND = 91      # non-short-circuit; the compiler uses jumps for and/or
    BOR = 92

    # strings ----------------------------------------------------------------
    SCONCAT = 100  # pop b, a -> push a + b (allocation-accounted)
    SLEN = 101
    SEQ = 102      # -> BOOL
    SINDEX = 103   # pop idx, s -> push byte value of char (bounds-checked)
    SSUB = 104     # pop end, start, s -> push s[start:end] (bounds-checked)

    # byte arrays --------------------------------------------------------------
    NEWARR = 110   # pop size -> push zeroed ARR (allocation-accounted)
    ALOAD = 111    # pop idx, arr -> push INT          (bounds-checked)
    ASTORE = 112   # pop val, idx, arr                  (bounds-checked)
    ALEN = 113
    ACOPY = 114    # pop arr -> push copy (allocation-accounted)

    # float arrays ---------------------------------------------------------------
    NEWFARR = 120  # pop size -> push zeroed FARR (allocation-accounted)
    FALOAD = 121   # pop idx, arr -> push FLOAT        (bounds-checked)
    FASTORE = 122  # pop val, idx, arr                  (bounds-checked)
    FALEN = 123

    # control flow -----------------------------------------------------------
    JMP = 130      # arg: target
    JZ = 131       # pop BOOL; jump if false
    JNZ = 132      # pop BOOL; jump if true
    RET = 133      # pop return value (function's declared return type)
    RETV = 134     # return void

    # calls -------------------------------------------------------------------
    CALL = 140     # arg: constant-pool funcref; resolved via class loader
    NATIVE = 141   # arg: constant-pool nativeref (trusted stdlib)
    CALLBACK = 142 # arg: constant-pool callbackref (server interaction,
                   # interposed by the security manager)


@dataclass(frozen=True)
class Instr:
    """One decoded instruction."""

    __slots__ = ("op", "arg")

    op: Op
    arg: object

    def __repr__(self) -> str:
        if self.arg is None:
            return self.op.name
        return f"{self.op.name} {self.arg!r}"


def instr(op: Op, arg: object = None) -> Instr:
    """Convenience constructor used by the compiler and tests."""
    return Instr(op, arg)


# ---------------------------------------------------------------------------
# Static stack effects
# ---------------------------------------------------------------------------
# Maps each opcode with a *fixed* stack effect to (pops, pushes), where both
# are tuples of VMType; pops are listed bottom-to-top (the deepest operand
# first).  Opcodes whose effect depends on the instruction argument
# (LOAD/STORE, DUP/SWAP/POP, calls, returns) are absent and handled
# explicitly by the verifier.

FIXED_EFFECTS: dict[Op, Tuple[Tuple[VMType, ...], Tuple[VMType, ...]]] = {
    Op.IADD: ((I, I), (I,)),
    Op.ISUB: ((I, I), (I,)),
    Op.IMUL: ((I, I), (I,)),
    Op.IDIV: ((I, I), (I,)),
    Op.IMOD: ((I, I), (I,)),
    Op.INEG: ((I,), (I,)),
    Op.IAND: ((I, I), (I,)),
    Op.IOR: ((I, I), (I,)),
    Op.IXOR: ((I, I), (I,)),
    Op.ISHL: ((I, I), (I,)),
    Op.ISHR: ((I, I), (I,)),
    Op.FADD: ((F, F), (F,)),
    Op.FSUB: ((F, F), (F,)),
    Op.FMUL: ((F, F), (F,)),
    Op.FDIV: ((F, F), (F,)),
    Op.FNEG: ((F,), (F,)),
    Op.I2F: ((I,), (F,)),
    Op.F2I: ((F,), (I,)),
    Op.I2S: ((I,), (S,)),
    Op.F2S: ((F,), (S,)),
    Op.ICMPLT: ((I, I), (B,)),
    Op.ICMPLE: ((I, I), (B,)),
    Op.ICMPGT: ((I, I), (B,)),
    Op.ICMPGE: ((I, I), (B,)),
    Op.ICMPEQ: ((I, I), (B,)),
    Op.ICMPNE: ((I, I), (B,)),
    Op.FCMPLT: ((F, F), (B,)),
    Op.FCMPLE: ((F, F), (B,)),
    Op.FCMPGT: ((F, F), (B,)),
    Op.FCMPGE: ((F, F), (B,)),
    Op.FCMPEQ: ((F, F), (B,)),
    Op.FCMPNE: ((F, F), (B,)),
    Op.NOT: ((B,), (B,)),
    Op.BAND: ((B, B), (B,)),
    Op.BOR: ((B, B), (B,)),
    Op.SCONCAT: ((S, S), (S,)),
    Op.SLEN: ((S,), (I,)),
    Op.SEQ: ((S, S), (B,)),
    Op.SINDEX: ((S, I), (I,)),
    Op.SSUB: ((S, I, I), (S,)),
    Op.NEWARR: ((I,), (A,)),
    Op.ALOAD: ((A, I), (I,)),
    Op.ASTORE: ((A, I, I), ()),
    Op.ALEN: ((A,), (I,)),
    Op.ACOPY: ((A,), (A,)),
    Op.NEWFARR: ((I,), (FA,)),
    Op.FALOAD: ((FA, I), (F,)),
    Op.FASTORE: ((FA, I, F), ()),
    Op.FALEN: ((FA,), (I,)),
    Op.JZ: ((B,), ()),
    Op.JNZ: ((B,), ()),
}

#: Opcodes that transfer control (the verifier treats their arg as a target).
BRANCH_OPS = frozenset({Op.JMP, Op.JZ, Op.JNZ})

#: Opcodes after which execution never falls through.
TERMINATOR_OPS = frozenset({Op.JMP, Op.RET, Op.RETV})

#: Opcodes whose arg indexes the constant pool.
POOL_OPS = frozenset({Op.SCONST, Op.CALL, Op.NATIVE, Op.CALLBACK})


def check_arg_shape(op: Op, arg: object) -> Optional[str]:
    """Structural check of an instruction argument; returns an error string.

    This is the *format* check done at classfile-decode time; range checks
    against the actual code/pool/locals sizes belong to the verifier.
    """
    if op in (Op.ICONST,):
        if not isinstance(arg, int) or isinstance(arg, bool):
            return f"{op.name} needs an int immediate"
    elif op is Op.FCONST:
        if not isinstance(arg, float):
            return f"{op.name} needs a float immediate"
    elif op is Op.BCONST:
        if arg not in (0, 1):
            return f"{op.name} needs 0 or 1"
    elif op in (Op.LOAD, Op.STORE) or op in BRANCH_OPS or op in POOL_OPS:
        if not isinstance(arg, int) or isinstance(arg, bool) or arg < 0:
            return f"{op.name} needs a non-negative index"
    else:
        if arg is not None:
            return f"{op.name} takes no argument"
    return None
