"""Two-tier execution: promotion, eligibility, and deopt accounting.

Tier 0 is the existing interpreter/JIT path (:mod:`repro.vm.jit`): one
VM entry per row, per-call quota semantics, dynamic or certified-bound
metering.  Tier 1 (:mod:`repro.vm.kernels`) is a profile-promoted,
type-specialized whole-batch kernel: once a UDF's observed call count
crosses the promotion threshold, its entry function — if *eligible* —
is compiled into a single closure that runs the whole batch.

Eligibility is static and conservative.  A function is refused tier 1
(with a structured reason the ``repro.analysis tier`` lint surfaces)
when:

* it can reach a **callback** (transitively, via the effect summary) —
  callbacks are interactive server round trips whose ordering the
  kernel cannot replay after a mid-batch fault;
* its effect summary records **untyped/unknown operations** — the type
  guards would have nothing sound to specialize on;
* it contains **trap sites without a flow certificate** — traps deopt
  fine, but without the certificate there is no static account of
  where, so promotion stays conservative;
* the certifier proved **no constant fuel bound** — per-row prepayment
  needs a constant worst case;
* it takes a **mutable array parameter** (a byte/float array not proven
  read-only) — a partially executed row could leave caller-visible
  mutations a tier-0 rerun would not reproduce.

Everything dynamic — a type-guard failure, a trap, a quota edge the
refill check cannot cover, a revoked account — **deopts**: the kernel
aborts, and :func:`run_tiered_batch` re-executes the faulting row and
the remainder of the batch on tier 0 with reset-per-call quota
semantics.  Completed rows keep their kernel results (the kernel only
appends a result after a row fully finishes), so the observable outcome
is bit-identical to never having promoted.  A function that deopts
:data:`DEMOTION_DEOPTS` times is demoted for good — a deopt storm means
the static picture and the data disagree, and tier 0 is cheaper than
compile-run-abort cycles.
"""

from __future__ import annotations

from typing import Optional

from ..errors import VMError
from .classfile import FunctionDef
from .kernels import KernelDeopt, KernelUnsupported
from .opcodes import Op
from .values import VMType

#: Calls observed before a UDF is considered hot (promotion attempt).
DEFAULT_PROMOTION_CALLS = 128

#: Deopts tolerated before a promoted UDF is demoted back to tier 0.
DEMOTION_DEOPTS = 8

#: Structured refusal reasons (stable strings: the lint CLI prints and
#: JSON-encodes them, tests match on them).
REFUSE_CALLBACK = "callback"
REFUSE_UNTYPED = "untyped-op"
REFUSE_TRAP = "trap-without-certificate"
REFUSE_UNBOUNDED = "unbounded-fuel"
REFUSE_MUTABLE_ARRAY = "mutable-array-param"

#: Opcodes that can fault at run time (the paper's "price paid for
#: security": bounds checks, checked division, float-to-int).  Without a
#: flow certificate naming the trap sites, their presence refuses
#: promotion.
_TRAP_OPS = frozenset((
    Op.IDIV, Op.IMOD, Op.FDIV, Op.F2I,
    Op.ALOAD, Op.ASTORE, Op.FALOAD, Op.FASTORE,
    Op.SINDEX, Op.SSUB, Op.NEWARR, Op.NEWFARR,
))


def kernel_eligibility(
    func: Optional[FunctionDef], use_flows: bool = True
) -> Optional[str]:
    """``None`` when ``func`` may be promoted, else the refusal reason.

    ``use_flows`` mirrors the executors' ``definition.flows`` gate:
    with flow fast paths disabled the flow certificate must not widen
    eligibility either, so stripping certificates degrades tier 1 the
    same way it degrades copy elision.
    """
    if func is None:
        return REFUSE_UNTYPED
    summary = getattr(func, "summary", None)
    if summary is None:
        return REFUSE_UNTYPED
    if summary.callbacks:
        return REFUSE_CALLBACK
    if summary.unknown_effects:
        return REFUSE_UNTYPED
    cert = getattr(func, "certificate", None)
    if cert is None:
        return REFUSE_UNBOUNDED
    from ..analysis.bounds import constant_bound

    if (constant_bound(cert.fuel_bound) is None
            or constant_bound(cert.local_fuel_bound) is None):
        return REFUSE_UNBOUNDED
    flows = getattr(func, "flows", None) if use_flows else None
    if flows is None and any(ins.op in _TRAP_OPS for ins in func.code):
        return REFUSE_TRAP
    readonly = frozenset(flows.readonly_params) if flows is not None else ()
    for index, vm_type in enumerate(func.param_types):
        if vm_type is VMType.FARR:
            return REFUSE_MUTABLE_ARRAY
        if vm_type is VMType.ARR and index not in readonly:
            return REFUSE_MUTABLE_ARRAY
    return None


class TierState:
    """Per-(UDF, executor) promotion/deopt state machine.

    States: **cold** (counting calls) → **promoted** (kernel compiled)
    → **demoted** (deopt storm) — or **refused** (static eligibility
    said no; remembered so the check runs once).  Isolated workers each
    own one independently; the server aggregates their snapshots.
    """

    __slots__ = (
        "threshold", "calls", "promotions", "deopts", "tier1_batches",
        "kernel", "refusal", "demoted",
    )

    def __init__(self, threshold: int = DEFAULT_PROMOTION_CALLS):
        self.threshold = max(0, int(threshold))
        self.calls = 0
        self.promotions = 0
        self.deopts = 0
        self.tier1_batches = 0
        self.kernel = None
        self.refusal: Optional[str] = None
        self.demoted = False

    @property
    def tier(self) -> int:
        """The tier the next batch will execute on."""
        return 1 if self.kernel is not None and not self.demoted else 0

    @property
    def hot(self) -> bool:
        return self.calls >= self.threshold

    def note_deopt(self) -> None:
        self.deopts += 1
        if self.deopts >= DEMOTION_DEOPTS:
            self.demoted = True

    def snapshot(self) -> dict:
        return {
            "tier": self.tier,
            "calls": self.calls,
            "promotions": self.promotions,
            "deopts": self.deopts,
            "tier1_batches": self.tier1_batches,
            "refusal": self.refusal,
            "demoted": self.demoted,
        }


def maybe_promote(
    state: TierState,
    loaded,
    func_name: str,
    context,
    use_flows: bool = True,
) -> bool:
    """Attempt promotion once the call count crosses the threshold.

    Runs the static eligibility check at most once (the refusal is
    remembered), compiles the kernel on success, and returns whether the
    state is promoted after the attempt.
    """
    if state.kernel is not None:
        return not state.demoted
    if state.refusal is not None or state.demoted or not state.hot:
        return False
    func = loaded.main_class.functions.get(func_name)
    refusal = kernel_eligibility(func, use_flows=use_flows)
    if refusal is not None:
        state.refusal = refusal
        return False
    try:
        state.kernel = loaded.make_batch_invoker(func_name, context)
    except (KernelUnsupported, VMError) as exc:
        state.refusal = f"{REFUSE_UNTYPED}: {exc}"
        return False
    state.promotions += 1
    return True


def run_tiered_batch(state: TierState, context, rows, invoke_one):
    """Run one batch on tier 1, deopting mid-batch to tier 0 on a fault.

    Returns ``(results, deopted)``.  The kernel appends one result per
    *completed* row, so after a fault the tier-0 tail resumes at
    ``len(results)`` — the faulting row re-executes from scratch on a
    freshly reset account and either succeeds or raises exactly the
    error the baseline would have raised.
    """
    account = context.account
    results: list = []
    deopted = False
    try:
        account.enter_call()
    except VMError:
        deopted = True
    else:
        try:
            state.kernel(rows, context, results)
        except (KernelDeopt, VMError):
            deopted = True
        finally:
            account.exit_call()
    if not deopted:
        state.tier1_batches += 1
        return results, False
    state.note_deopt()
    for args in rows[len(results):]:
        account.reset()  # tier-0 baseline: the quota is per invocation
        results.append(invoke_one(args))
    return results, True
