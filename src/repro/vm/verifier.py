"""JaguarVM bytecode verifier.

This is the load-time half of the sandbox, the analog of the JVM's
bytecode verifier the paper leans on (Section 6.1): once a classfile
passes verification, the interpreter and JIT may execute it without
per-instruction type checks, because the verifier has *proved*:

* every instruction's operands have the right types (dataflow over a
  typed abstract stack);
* the stack never underflows and its depth at every point is a single
  well-defined value (``max_stack`` is computed as a side effect);
* every branch lands on a real instruction, and no path falls off the
  end of the code;
* every local variable is written before it is read;
* every constant-pool reference is in range and of the right kind, and
  every CALL / NATIVE / CALLBACK resolves to a known signature (eager
  linking: unresolved references are rejected here, not at run time).

The verifier is deliberately stricter than the JVM's in two ways that
cost expressiveness nothing for compiled code: stacks at control-flow
joins must match *exactly* (there is no subtyping to merge), and
unreachable code is rejected outright (the compiler never emits any, and
rejecting it means the JIT only ever sees instructions with a proven
entry stack depth).

Only *runtime-dependent* safety remains for execution time: array bounds,
division by zero, call depth, and resource quotas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import LinkError, VerifyError
from .classfile import (
    ClassFile,
    FunctionDef,
    K_CALLBACK,
    K_FUNC,
    K_NATIVE,
    K_STR,
)
from .opcodes import BRANCH_OPS, FIXED_EFFECTS, Instr, Op, TERMINATOR_OPS
from .values import VMType

#: Hard cap on operand-stack depth; deeper code is rejected.
MAX_STACK_LIMIT = 1024

Signature = Tuple[Tuple[VMType, ...], VMType]


class Resolver:
    """Signature oracle used for eager linking during verification.

    ``function_signature`` covers CALL targets (searched through the class
    loader's namespace), ``native_signature`` the trusted stdlib, and
    ``callback_signature`` the server callbacks the security policy admits.
    Each raises :class:`~repro.errors.LinkError` for unknown names.
    """

    def __init__(
        self,
        function_signature: Callable[[str, str], Signature],
        native_signature: Callable[[str], Signature],
        callback_signature: Callable[[str], Signature],
    ):
        self.function_signature = function_signature
        self.native_signature = native_signature
        self.callback_signature = callback_signature


def self_resolver(
    cls: ClassFile,
    natives: Optional[Dict[str, Signature]] = None,
    callbacks: Optional[Dict[str, Signature]] = None,
) -> Resolver:
    """A resolver that links CALLs against the class itself.

    Convenient for single-class UDFs and tests; multi-class linking goes
    through :class:`~repro.vm.classloader.ClassLoader`, which builds its
    own resolver.
    """
    natives = natives if natives is not None else _default_natives()
    callbacks = callbacks or {}

    def function_signature(class_name: str, func_name: str) -> Signature:
        if class_name != cls.name:
            raise LinkError(
                f"class {cls.name!r} cannot resolve foreign class "
                f"{class_name!r} without a class loader"
            )
        func = cls.functions.get(func_name)
        if func is None:
            raise LinkError(f"unknown function {class_name}.{func_name}")
        return func.signature

    def native_signature(name: str) -> Signature:
        try:
            return natives[name]
        except KeyError:
            raise LinkError(f"unknown native {name!r}") from None

    def callback_signature(name: str) -> Signature:
        try:
            return callbacks[name]
        except KeyError:
            raise LinkError(f"unknown callback {name!r}") from None

    return Resolver(function_signature, native_signature, callback_signature)


def _default_natives() -> Dict[str, Signature]:
    from .stdlib import NATIVE_SIGNATURES

    return NATIVE_SIGNATURES


@dataclass(frozen=True)
class _State:
    """Abstract machine state at one instruction boundary."""

    stack: Tuple[VMType, ...]
    init: int  # bitmask: which locals have been written


def verify_class(cls: ClassFile, resolver: Optional[Resolver] = None) -> None:
    """Verify every function of ``cls``; mark it verified on success.

    Raises :class:`VerifyError` (or :class:`LinkError` from the resolver)
    on the first problem found.  ``max_stack`` of each function is filled
    in as a side effect.
    """
    if resolver is None:
        resolver = self_resolver(cls)
    for func in cls.functions.values():
        _verify_function(cls, func, resolver)
    cls.verified = True


def _verify_function(cls: ClassFile, func: FunctionDef, resolver: Resolver) -> None:
    code = func.code
    where = f"{cls.name}.{func.name}"
    if not code:
        raise VerifyError(f"{where}: empty code")
    if len(func.param_types) > len(func.local_types):
        raise VerifyError(f"{where}: parameters exceed local slots")

    nlocals = len(func.local_types)
    entry_init = (1 << len(func.param_types)) - 1
    states: List[Optional[_State]] = [None] * len(code)
    states[0] = _State(stack=(), init=entry_init)
    worklist = [0]
    max_stack = 0

    while worklist:
        pc = worklist.pop()
        state = states[pc]
        assert state is not None
        ins = code[pc]
        stack, init = _step(cls, func, resolver, pc, ins, state, where)
        max_stack = max(max_stack, len(state.stack), len(stack))
        if max_stack > MAX_STACK_LIMIT:
            raise VerifyError(f"{where}: operand stack exceeds {MAX_STACK_LIMIT}")

        successors: List[int] = []
        if ins.op in BRANCH_OPS:
            target = ins.arg
            if not (0 <= target < len(code)):
                raise VerifyError(f"{where}@{pc}: branch target {target} out of range")
            successors.append(target)
        if ins.op not in TERMINATOR_OPS:
            if pc + 1 >= len(code):
                raise VerifyError(f"{where}@{pc}: execution falls off end of code")
            successors.append(pc + 1)

        new_state = _State(stack=stack, init=init)
        for succ in successors:
            old = states[succ]
            if old is None:
                states[succ] = new_state
                worklist.append(succ)
            else:
                merged = _merge(old, new_state, where, succ)
                if merged != old:
                    states[succ] = merged
                    worklist.append(succ)

    unreachable = [pc for pc, s in enumerate(states) if s is None]
    if unreachable:
        raise VerifyError(f"{where}: unreachable code at {unreachable[:5]}")

    # Locals init bitmask implicitly bounded by nlocals via LOAD/STORE checks.
    del nlocals
    func.max_stack = max_stack
    # Export the proven per-instruction entry depths for the load-time
    # analyzer (repro.analysis): facts, not guesses — every pc has one.
    func.stack_in = tuple(len(s.stack) for s in states if s is not None)


def _merge(old: _State, new: _State, where: str, pc: int) -> _State:
    if old.stack != new.stack:
        raise VerifyError(
            f"{where}@{pc}: inconsistent stack at join "
            f"({list(old.stack)} vs {list(new.stack)})"
        )
    return _State(stack=old.stack, init=old.init & new.init)


def _step(
    cls: ClassFile,
    func: FunctionDef,
    resolver: Resolver,
    pc: int,
    ins: Instr,
    state: _State,
    where: str,
) -> Tuple[Tuple[VMType, ...], int]:
    """Abstractly execute one instruction; return the post state."""
    stack = list(state.stack)
    init = state.init
    op = ins.op

    def fail(msg: str) -> VerifyError:
        return VerifyError(f"{where}@{pc} ({ins!r}): {msg}")

    def pop(expected: Optional[VMType] = None) -> VMType:
        if not stack:
            raise fail("stack underflow")
        top = stack.pop()
        if expected is not None and top is not expected:
            raise fail(f"expected {expected.value} on stack, found {top.value}")
        return top

    fixed = FIXED_EFFECTS.get(op)
    if fixed is not None:
        pops, pushes = fixed
        for want in reversed(pops):
            pop(want)
        stack.extend(pushes)
        return tuple(stack), init

    if op is Op.ICONST:
        stack.append(VMType.INT)
    elif op is Op.FCONST:
        stack.append(VMType.FLOAT)
    elif op is Op.BCONST:
        stack.append(VMType.BOOL)
    elif op is Op.SCONST:
        _pool_entry(cls, ins.arg, K_STR, fail)
        stack.append(VMType.STR)
    elif op is Op.LOAD:
        slot = ins.arg
        if slot >= len(func.local_types):
            raise fail(f"local slot {slot} out of range")
        if not (init >> slot) & 1:
            raise fail(f"local slot {slot} read before write")
        stack.append(func.local_types[slot])
    elif op is Op.STORE:
        slot = ins.arg
        if slot >= len(func.local_types):
            raise fail(f"local slot {slot} out of range")
        pop(func.local_types[slot])
        init |= 1 << slot
    elif op is Op.POP:
        pop()
    elif op is Op.DUP:
        top = pop()
        stack.extend((top, top))
    elif op is Op.SWAP:
        a = pop()
        b = pop()
        stack.extend((a, b))
    elif op is Op.JMP:
        pass
    elif op is Op.RET:
        if func.ret_type is VMType.VOID:
            raise fail("RET in a void function (use RETV)")
        pop(func.ret_type)
        if stack:
            raise fail("stack not empty under return value")
    elif op is Op.RETV:
        if func.ret_type is not VMType.VOID:
            raise fail("RETV in a non-void function")
        if stack:
            raise fail("stack not empty at void return")
    elif op is Op.CALL:
        class_name, func_name = _pool_entry(cls, ins.arg, K_FUNC, fail)
        try:
            params, ret = resolver.function_signature(class_name, func_name)
        except LinkError as exc:
            raise fail(str(exc)) from None
        _apply_call(stack, params, ret, pop)
    elif op is Op.NATIVE:
        (name,) = _pool_entry(cls, ins.arg, K_NATIVE, fail)
        try:
            params, ret = resolver.native_signature(name)
        except LinkError as exc:
            raise fail(str(exc)) from None
        _apply_call(stack, params, ret, pop)
    elif op is Op.CALLBACK:
        (name,) = _pool_entry(cls, ins.arg, K_CALLBACK, fail)
        try:
            params, ret = resolver.callback_signature(name)
        except LinkError as exc:
            raise fail(str(exc)) from None
        _apply_call(stack, params, ret, pop)
    else:  # pragma: no cover - every opcode is handled above
        raise fail(f"verifier does not know opcode {op.name}")

    return tuple(stack), init


def _apply_call(
    stack: List[VMType],
    params: Tuple[VMType, ...],
    ret: VMType,
    pop: Callable[[Optional[VMType]], VMType],
) -> None:
    for want in reversed(params):
        pop(want)
    if ret is not VMType.VOID:
        stack.append(ret)


def _pool_entry(cls, index, kind, fail) -> Tuple[str, ...]:
    if not (0 <= index < len(cls.pool)):
        raise fail(f"constant-pool index {index} out of range")
    entry = cls.pool[index]
    if entry.kind != kind:
        raise fail(f"constant-pool entry {index} has kind {entry.kind}, want {kind}")
    return entry.value
