"""Restricted-Python front end for JaguarVM.

UDF authors write their functions in a statically typed subset of Python
(the analog of writing Java source); this module compiles that source to
a JaguarVM classfile.  The toolchain mirrors Java's trust model exactly:
the compiler is *not* trusted — anything it emits is re-verified by
:mod:`repro.vm.verifier` before execution, whether it is run at the
client or migrated to the server.

The subset ("JagScript"):

* every parameter and return type is annotated; types are ``int``,
  ``float``, ``bool``, ``str``, ``bytes``/``bytearray`` (byte array) and
  ``farr`` (float array);
* statements: assignments (incl. annotated and augmented), ``if``/
  ``elif``/``else``, ``while``, ``for .. in range(..)``, ``break``,
  ``continue``, ``return``, ``pass``, bare expression calls;
* expressions: arithmetic (``//`` is integer division, ``/`` promotes to
  float), comparisons, short-circuit ``and``/``or``/``not``, conditional
  expressions, indexing and (string) slicing, calls to other functions
  in the same module, to builtins (``len``, ``int``, ``float``, ``str``,
  ``abs``, ``min``, ``max``, ``bytearray``, ``farr``, and the math
  natives), and to declared server *callbacks*;
* indexing a ``str`` yields the character's code point (an ``int``),
  matching the byte-oriented flavour of the VM.

Local variable types are inferred from the first assignment (or taken
from an annotation); control flow may not change a variable's type.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import CompileError
from .classfile import ClassFile, FunctionDef, PoolEntry
from .opcodes import Instr, Op
from .stdlib import NATIVE_SIGNATURES
from .values import TYPE_ALIASES, VMType

Signature = Tuple[Tuple[VMType, ...], VMType]

I = VMType.INT
F = VMType.FLOAT
B = VMType.BOOL
S = VMType.STR
A = VMType.ARR
FA = VMType.FARR


def compile_source(
    source: str,
    class_name: str,
    callbacks: Optional[Dict[str, Signature]] = None,
) -> ClassFile:
    """Compile JagScript ``source`` into an (unverified) classfile.

    ``callbacks`` maps callback names the UDF may reference to their
    signatures; calls to those names compile to CALLBACK instructions.
    """
    try:
        module = ast.parse(source)
    except SyntaxError as exc:
        raise CompileError(f"syntax error: {exc.msg}", exc.lineno or -1) from None

    functions: List[ast.FunctionDef] = []
    for node in module.body:
        if isinstance(node, ast.FunctionDef):
            functions.append(node)
        elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Constant):
            continue  # module docstring
        elif isinstance(node, ast.Pass):
            continue
        else:
            raise CompileError(
                f"only function definitions are allowed at module level, "
                f"found {type(node).__name__}",
                getattr(node, "lineno", -1),
            )
    if not functions:
        raise CompileError("module defines no functions")

    signatures: Dict[str, Signature] = {}
    for fn in functions:
        if fn.name in signatures:
            raise CompileError(f"duplicate function {fn.name!r}", fn.lineno)
        signatures[fn.name] = _signature_of(fn)

    cls = ClassFile(name=class_name)
    for fn in functions:
        gen = _FunctionCompiler(
            cls=cls,
            node=fn,
            module_signatures=signatures,
            callbacks=callbacks or {},
        )
        cls.add_function(gen.compile())
    return cls


def _signature_of(fn: ast.FunctionDef) -> Signature:
    args = fn.args
    if args.vararg or args.kwarg or args.kwonlyargs or args.posonlyargs:
        raise CompileError(
            f"function {fn.name!r}: only plain positional parameters are "
            f"supported", fn.lineno,
        )
    if args.defaults:
        raise CompileError(
            f"function {fn.name!r}: default values are not supported",
            fn.lineno,
        )
    params = tuple(_annotation_type(a.annotation, fn, a.arg) for a in args.args)
    if fn.returns is None:
        raise CompileError(
            f"function {fn.name!r}: missing return type annotation",
            fn.lineno,
        )
    ret = _annotation_type(fn.returns, fn, "return", allow_void=True)
    return params, ret


def _annotation_type(
    node: Optional[ast.expr],
    fn: ast.FunctionDef,
    what: str,
    allow_void: bool = False,
) -> VMType:
    if node is None:
        raise CompileError(
            f"function {fn.name!r}: parameter {what!r} needs a type "
            f"annotation", fn.lineno,
        )
    if isinstance(node, ast.Constant) and node.value is None:
        name = "None"
    elif isinstance(node, ast.Name):
        name = node.id
    else:
        raise CompileError(
            f"function {fn.name!r}: unsupported annotation for {what!r}",
            fn.lineno,
        )
    vm_type = TYPE_ALIASES.get(name)
    if vm_type is None:
        raise CompileError(
            f"function {fn.name!r}: unknown type {name!r} for {what!r}",
            fn.lineno,
        )
    if vm_type is VMType.VOID and not allow_void:
        raise CompileError(
            f"function {fn.name!r}: {what!r} cannot be void", fn.lineno
        )
    return vm_type


def _int_literal(node: ast.expr):
    """The value of an (optionally negated) integer literal, else None."""
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.USub)
    ):
        inner = _int_literal(node.operand)
        return None if inner is None else -inner
    if (
        isinstance(node, ast.Constant)
        and isinstance(node.value, int)
        and not isinstance(node.value, bool)
    ):
        return node.value
    return None


class _Label:
    """A forward-patchable jump target."""

    __slots__ = ("position",)

    def __init__(self) -> None:
        self.position: Optional[int] = None


@dataclass
class _LoopContext:
    start: _Label
    end: _Label
    saw_break: bool = False
    saw_continue: bool = False


_BUILTIN_NAMES = frozenset(
    {"len", "int", "float", "str", "abs", "min", "max", "bytearray", "farr"}
)


class _FunctionCompiler:
    """Compiles one ``ast.FunctionDef`` to a :class:`FunctionDef`."""

    def __init__(
        self,
        cls: ClassFile,
        node: ast.FunctionDef,
        module_signatures: Dict[str, Signature],
        callbacks: Dict[str, Signature],
    ):
        self.cls = cls
        self.node = node
        self.module_signatures = module_signatures
        self.callbacks = callbacks
        self.params, self.ret_type = module_signatures[node.name]
        self.code: List[Instr] = []
        self.locals: Dict[str, Tuple[int, VMType]] = {}
        self.local_types: List[VMType] = []
        self.loops: List[_LoopContext] = []
        for arg, vm_type in zip(node.args.args, self.params):
            self._declare(arg.arg, vm_type, node)

    # -- error helper -------------------------------------------------------

    def _err(self, msg: str, node: ast.AST) -> CompileError:
        return CompileError(
            f"function {self.node.name!r}: {msg}",
            getattr(node, "lineno", -1),
        )

    # -- locals -------------------------------------------------------------

    def _declare(self, name: str, vm_type: VMType, node: ast.AST) -> int:
        if name in self.locals:
            raise self._err(f"variable {name!r} already declared", node)
        slot = len(self.local_types)
        self.local_types.append(vm_type)
        self.locals[name] = (slot, vm_type)
        return slot

    def _lookup(self, name: str, node: ast.AST) -> Tuple[int, VMType]:
        try:
            return self.locals[name]
        except KeyError:
            raise self._err(f"undefined variable {name!r}", node) from None

    # -- emission ------------------------------------------------------------

    def _emit(self, op: Op, arg: object = None) -> None:
        self.code.append(Instr(op, arg))

    def _emit_jump(self, op: Op, label: _Label) -> None:
        self.code.append(Instr(op, label))

    def _place(self, label: _Label) -> None:
        label.position = len(self.code)

    # -- entry point ------------------------------------------------------------

    def compile(self) -> FunctionDef:
        body = self.node.body
        if (
            body
            and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)
        ):
            body = body[1:]  # docstring
        terminated = self._compile_block(body)
        if not terminated:
            if self.ret_type is VMType.VOID:
                self._emit(Op.RETV)
            else:
                raise self._err(
                    "control may reach the end of a non-void function",
                    self.node,
                )
        code = self._resolve_labels()
        return FunctionDef(
            name=self.node.name,
            param_types=self.params,
            ret_type=self.ret_type,
            local_types=tuple(self.local_types),
            code=code,
        )

    def _resolve_labels(self) -> Tuple[Instr, ...]:
        resolved: List[Instr] = []
        for ins in self.code:
            if isinstance(ins.arg, _Label):
                assert ins.arg.position is not None, "unplaced label"
                resolved.append(Instr(ins.op, ins.arg.position))
            else:
                resolved.append(ins)
        return tuple(resolved)

    # -- statements -----------------------------------------------------------

    def _compile_block(self, stmts: Sequence[ast.stmt]) -> bool:
        """Compile a statement list; True if no path falls through."""
        for index, stmt in enumerate(stmts):
            if self._compile_stmt(stmt):
                if index + 1 < len(stmts):
                    raise self._err(
                        "unreachable code after terminating statement",
                        stmts[index + 1],
                    )
                return True
        return False

    def _compile_stmt(self, stmt: ast.stmt) -> bool:
        if isinstance(stmt, ast.Return):
            return self._compile_return(stmt)
        if isinstance(stmt, ast.Assign):
            self._compile_assign(stmt)
            return False
        if isinstance(stmt, ast.AnnAssign):
            self._compile_ann_assign(stmt)
            return False
        if isinstance(stmt, ast.AugAssign):
            self._compile_aug_assign(stmt)
            return False
        if isinstance(stmt, ast.If):
            return self._compile_if(stmt)
        if isinstance(stmt, ast.While):
            return self._compile_while(stmt)
        if isinstance(stmt, ast.For):
            return self._compile_for(stmt)
        if isinstance(stmt, ast.Break):
            if not self.loops:
                raise self._err("break outside loop", stmt)
            self.loops[-1].saw_break = True
            self._emit_jump(Op.JMP, self.loops[-1].end)
            return True
        if isinstance(stmt, ast.Continue):
            if not self.loops:
                raise self._err("continue outside loop", stmt)
            self.loops[-1].saw_continue = True
            self._emit_jump(Op.JMP, self.loops[-1].start)
            return True
        if isinstance(stmt, ast.Pass):
            return False
        if isinstance(stmt, ast.Expr):
            result_type = self._compile_expr(stmt.value)
            if result_type is not VMType.VOID:
                self._emit(Op.POP)
            return False
        raise self._err(
            f"unsupported statement {type(stmt).__name__}", stmt
        )

    def _compile_return(self, stmt: ast.Return) -> bool:
        if self.ret_type is VMType.VOID:
            if stmt.value is not None:
                raise self._err("void function returns a value", stmt)
            self._emit(Op.RETV)
            return True
        if stmt.value is None:
            raise self._err("non-void function returns nothing", stmt)
        value_type = self._compile_expr(stmt.value)
        value_type = self._promote(value_type, self.ret_type, stmt)
        if value_type is not self.ret_type:
            raise self._err(
                f"return type {value_type.value} does not match declared "
                f"{self.ret_type.value}", stmt,
            )
        self._emit(Op.RET)
        return True

    def _compile_assign(self, stmt: ast.Assign) -> None:
        if len(stmt.targets) != 1:
            raise self._err("chained assignment is not supported", stmt)
        target = stmt.targets[0]
        if isinstance(target, ast.Name):
            self._assign_name(target.id, stmt.value, stmt, declared=None)
        elif isinstance(target, ast.Subscript):
            self._assign_subscript(target, stmt.value, stmt)
        else:
            raise self._err(
                f"unsupported assignment target {type(target).__name__}",
                stmt,
            )

    def _compile_ann_assign(self, stmt: ast.AnnAssign) -> None:
        if not isinstance(stmt.target, ast.Name):
            raise self._err("annotated target must be a simple name", stmt)
        declared = _annotation_type(stmt.annotation, self.node, stmt.target.id)
        if stmt.value is None:
            raise self._err(
                "annotated declaration needs an initializer", stmt
            )
        self._assign_name(stmt.target.id, stmt.value, stmt, declared=declared)

    def _assign_name(
        self,
        name: str,
        value: ast.expr,
        stmt: ast.stmt,
        declared: Optional[VMType],
    ) -> None:
        value_type = self._compile_expr(value)
        if name in self.locals:
            slot, existing = self.locals[name]
            if declared is not None and declared is not existing:
                raise self._err(
                    f"variable {name!r} re-declared with a different type",
                    stmt,
                )
            value_type = self._promote(value_type, existing, stmt)
            if value_type is not existing:
                raise self._err(
                    f"cannot assign {value_type.value} to {name!r} of type "
                    f"{existing.value}", stmt,
                )
            self._emit(Op.STORE, slot)
        else:
            target_type = declared if declared is not None else value_type
            value_type = self._promote(value_type, target_type, stmt)
            if value_type is not target_type:
                raise self._err(
                    f"initializer of type {value_type.value} does not match "
                    f"declared type {target_type.value} for {name!r}", stmt,
                )
            slot = self._declare(name, target_type, stmt)
            self._emit(Op.STORE, slot)

    def _assign_subscript(
        self, target: ast.Subscript, value: ast.expr, stmt: ast.stmt
    ) -> None:
        base_type = self._compile_expr(target.value)
        if base_type is A:
            index_type = self._compile_expr(target.slice)
            if index_type is not I:
                raise self._err("array index must be int", stmt)
            value_type = self._compile_expr(value)
            if value_type is not I:
                raise self._err("byte-array element must be int", stmt)
            self._emit(Op.ASTORE)
        elif base_type is FA:
            index_type = self._compile_expr(target.slice)
            if index_type is not I:
                raise self._err("array index must be int", stmt)
            value_type = self._compile_expr(value)
            value_type = self._promote(value_type, F, stmt)
            if value_type is not F:
                raise self._err("float-array element must be float", stmt)
            self._emit(Op.FASTORE)
        else:
            raise self._err(
                f"cannot index-assign into {base_type.value}", stmt
            )

    def _compile_aug_assign(self, stmt: ast.AugAssign) -> None:
        # Desugared to load-op-store.  For subscript targets the base and
        # index expressions are emitted twice, so they must be side-effect
        # free; calls are rejected to keep double evaluation harmless.
        target = stmt.target
        if isinstance(target, ast.Name):
            load = ast.copy_location(
                ast.Name(id=target.id, ctx=ast.Load()), stmt
            )
            binop = ast.copy_location(
                ast.BinOp(left=load, op=stmt.op, right=stmt.value), stmt
            )
            self._assign_name(target.id, binop, stmt, declared=None)
        elif isinstance(target, ast.Subscript):
            for sub in ast.walk(target):
                if isinstance(sub, ast.Call):
                    raise self._err(
                        "augmented assignment target may not contain calls",
                        stmt,
                    )
            load_target = ast.copy_location(
                ast.Subscript(
                    value=target.value, slice=target.slice, ctx=ast.Load()
                ),
                stmt,
            )
            binop = ast.copy_location(
                ast.BinOp(left=load_target, op=stmt.op, right=stmt.value),
                stmt,
            )
            self._assign_subscript(target, binop, stmt)
        else:
            raise self._err("unsupported augmented-assignment target", stmt)

    def _compile_if(self, stmt: ast.If) -> bool:
        condition = self._compile_expr(stmt.test)
        if condition is not B:
            raise self._err("if condition must be bool", stmt)
        else_label = _Label()
        self._emit_jump(Op.JZ, else_label)
        then_terminated = self._compile_block(stmt.body)
        if stmt.orelse:
            end_label = _Label()
            if not then_terminated:
                self._emit_jump(Op.JMP, end_label)
            self._place(else_label)
            else_terminated = self._compile_block(stmt.orelse)
            self._place(end_label)
            return then_terminated and else_terminated
        self._place(else_label)
        return False

    def _compile_while(self, stmt: ast.While) -> bool:
        if stmt.orelse:
            raise self._err("while-else is not supported", stmt)
        start = _Label()
        end = _Label()
        loop = _LoopContext(start=start, end=end)
        always_true = (
            isinstance(stmt.test, ast.Constant) and stmt.test.value is True
        )
        self._place(start)
        if not always_true:
            condition = self._compile_expr(stmt.test)
            if condition is not B:
                raise self._err("while condition must be bool", stmt)
            self._emit_jump(Op.JZ, end)
        self.loops.append(loop)
        body_terminated = self._compile_block(stmt.body)
        self.loops.pop()
        if not body_terminated:
            self._emit_jump(Op.JMP, start)
        if always_true and not loop.saw_break:
            # Infinite loop: nothing reaches past it, and placing the end
            # label would create unreachable code.
            return True
        self._place(end)
        return False

    def _compile_for(self, stmt: ast.For) -> bool:
        if stmt.orelse:
            raise self._err("for-else is not supported", stmt)
        if not isinstance(stmt.target, ast.Name):
            raise self._err("for target must be a simple name", stmt)
        call = stmt.iter
        if not (
            isinstance(call, ast.Call)
            and isinstance(call.func, ast.Name)
            and call.func.id == "range"
        ):
            raise self._err("for may only iterate over range(...)", stmt)
        if call.keywords:
            raise self._err("range() takes no keyword arguments", stmt)
        nargs = len(call.args)
        if nargs == 1:
            start_expr: Optional[ast.expr] = None
            stop_expr = call.args[0]
            step = 1
        elif nargs == 2:
            start_expr, stop_expr = call.args
            step = 1
        elif nargs == 3:
            start_expr, stop_expr = call.args[0], call.args[1]
            step = _int_literal(call.args[2])
            if step is None or step == 0:
                raise self._err(
                    "range() step must be a non-zero integer literal", stmt
                )
        else:
            raise self._err("range() takes 1 to 3 arguments", stmt)

        # i = start
        name = stmt.target.id
        if start_expr is None:
            self._emit(Op.ICONST, 0)
        else:
            if self._compile_expr(start_expr) is not I:
                raise self._err("range() start must be int", stmt)
        if name in self.locals:
            slot, existing = self.locals[name]
            if existing is not I:
                raise self._err(
                    f"loop variable {name!r} already has type "
                    f"{existing.value}", stmt,
                )
        else:
            slot = self._declare(name, I, stmt)
        self._emit(Op.STORE, slot)

        # stop is evaluated once into a hidden local.
        if self._compile_expr(stop_expr) is not I:
            raise self._err("range() stop must be int", stmt)
        stop_slot = len(self.local_types)
        self.local_types.append(I)
        self._emit(Op.STORE, stop_slot)

        check = _Label()
        end = _Label()
        loop = _LoopContext(start=_Label(), end=end)  # continue -> increment
        increment = loop.start
        self._place(check)
        self._emit(Op.LOAD, slot)
        self._emit(Op.LOAD, stop_slot)
        self._emit(Op.ICMPLT if step > 0 else Op.ICMPGT)
        self._emit_jump(Op.JZ, end)
        self.loops.append(loop)
        body_terminated = self._compile_block(stmt.body)
        self.loops.pop()
        if not body_terminated or loop.saw_continue:
            # The increment block is the `continue` target; when every
            # body path returns/breaks and nothing continues, it would be
            # unreachable, and the verifier rejects unreachable code.
            self._place(increment)
            self._emit(Op.LOAD, slot)
            self._emit(Op.ICONST, step)
            self._emit(Op.IADD)
            self._emit(Op.STORE, slot)
            self._emit_jump(Op.JMP, check)
        self._place(end)
        return False

    # -- expressions -------------------------------------------------------------

    def _compile_expr(self, node: ast.expr) -> VMType:
        if isinstance(node, ast.Constant):
            return self._compile_constant(node)
        if isinstance(node, ast.Name):
            slot, vm_type = self._lookup(node.id, node)
            self._emit(Op.LOAD, slot)
            return vm_type
        if isinstance(node, ast.BinOp):
            return self._compile_binop(node)
        if isinstance(node, ast.UnaryOp):
            return self._compile_unaryop(node)
        if isinstance(node, ast.Compare):
            return self._compile_compare(node)
        if isinstance(node, ast.BoolOp):
            return self._compile_boolop(node)
        if isinstance(node, ast.IfExp):
            return self._compile_ifexp(node)
        if isinstance(node, ast.Call):
            return self._compile_call(node)
        if isinstance(node, ast.Subscript):
            return self._compile_subscript(node)
        raise self._err(
            f"unsupported expression {type(node).__name__}", node
        )

    def _compile_constant(self, node: ast.Constant) -> VMType:
        value = node.value
        if isinstance(value, bool):
            self._emit(Op.BCONST, 1 if value else 0)
            return B
        if isinstance(value, int):
            self._emit(Op.ICONST, value)
            return I
        if isinstance(value, float):
            self._emit(Op.FCONST, value)
            return F
        if isinstance(value, str):
            index = self.cls.pool_index(PoolEntry.string(value))
            self._emit(Op.SCONST, index)
            return S
        raise self._err(f"unsupported literal {value!r}", node)

    def _promote(self, actual: VMType, wanted: VMType, node: ast.AST) -> VMType:
        """Insert I2F when an int value flows into a float context."""
        if actual is I and wanted is F:
            self._emit(Op.I2F)
            return F
        return actual

    _INT_OPS = {
        ast.Add: Op.IADD, ast.Sub: Op.ISUB, ast.Mult: Op.IMUL,
        ast.FloorDiv: Op.IDIV, ast.Mod: Op.IMOD,
        ast.BitAnd: Op.IAND, ast.BitOr: Op.IOR, ast.BitXor: Op.IXOR,
        ast.LShift: Op.ISHL, ast.RShift: Op.ISHR,
    }
    _FLOAT_OPS = {
        ast.Add: Op.FADD, ast.Sub: Op.FSUB,
        ast.Mult: Op.FMUL, ast.Div: Op.FDIV,
    }

    def _compile_binop(self, node: ast.BinOp) -> VMType:
        op_type = type(node.op)
        left = self._compile_expr(node.left)

        if left is S:
            if op_type is not ast.Add:
                raise self._err("only + is defined on strings", node)
            right = self._compile_expr(node.right)
            if right is not S:
                raise self._err("string + needs a string", node)
            self._emit(Op.SCONCAT)
            return S

        if op_type is ast.Div or left is F:
            # float arithmetic (/, or any op with a float left operand)
            if left is I:
                self._emit(Op.I2F)
            elif left is not F:
                raise self._err(
                    f"operand of type {left.value} in float arithmetic", node
                )
            right = self._compile_expr(node.right)
            right = self._promote(right, F, node)
            if right is not F:
                raise self._err(
                    f"operand of type {right.value} in float arithmetic",
                    node,
                )
            float_op = self._FLOAT_OPS.get(op_type)
            if float_op is None:
                raise self._err(
                    f"operator {op_type.__name__} not defined on floats",
                    node,
                )
            self._emit(float_op)
            return F

        if left is I:
            right = self._compile_expr(node.right)
            if right is F:
                # int OP float: retype as float arithmetic.  The int is
                # buried under the float, so swap, convert, swap back.
                float_op = self._FLOAT_OPS.get(op_type)
                if float_op is None:
                    raise self._err(
                        f"operator {op_type.__name__} not defined on floats",
                        node,
                    )
                self._emit(Op.SWAP)
                self._emit(Op.I2F)
                self._emit(Op.SWAP)
                self._emit(float_op)
                return F
            if right is not I:
                raise self._err(
                    f"operand of type {right.value} in integer arithmetic",
                    node,
                )
            int_op = self._INT_OPS.get(op_type)
            if int_op is None:
                raise self._err(
                    f"operator {op_type.__name__} not defined on ints "
                    f"(use / for float division)", node,
                )
            self._emit(int_op)
            return I

        raise self._err(
            f"operator {op_type.__name__} not defined on {left.value}", node
        )

    def _compile_unaryop(self, node: ast.UnaryOp) -> VMType:
        if isinstance(node.op, ast.USub):
            operand = self._compile_expr(node.operand)
            if operand is I:
                self._emit(Op.INEG)
                return I
            if operand is F:
                self._emit(Op.FNEG)
                return F
            raise self._err(f"cannot negate {operand.value}", node)
        if isinstance(node.op, ast.Not):
            operand = self._compile_expr(node.operand)
            if operand is not B:
                raise self._err("not needs a bool operand", node)
            self._emit(Op.NOT)
            return B
        if isinstance(node.op, ast.UAdd):
            return self._compile_expr(node.operand)
        raise self._err(
            f"unsupported unary operator {type(node.op).__name__}", node
        )

    _INT_CMP = {
        ast.Lt: Op.ICMPLT, ast.LtE: Op.ICMPLE, ast.Gt: Op.ICMPGT,
        ast.GtE: Op.ICMPGE, ast.Eq: Op.ICMPEQ, ast.NotEq: Op.ICMPNE,
    }
    _FLOAT_CMP = {
        ast.Lt: Op.FCMPLT, ast.LtE: Op.FCMPLE, ast.Gt: Op.FCMPGT,
        ast.GtE: Op.FCMPGE, ast.Eq: Op.FCMPEQ, ast.NotEq: Op.FCMPNE,
    }

    def _compile_compare(self, node: ast.Compare) -> VMType:
        if len(node.ops) != 1:
            raise self._err(
                "chained comparisons are not supported (split with 'and')",
                node,
            )
        op_type = type(node.ops[0])
        left = self._compile_expr(node.left)
        if left is S:
            right = self._compile_expr(node.comparators[0])
            if right is not S:
                raise self._err("string compared to non-string", node)
            if op_type is ast.Eq:
                self._emit(Op.SEQ)
            elif op_type is ast.NotEq:
                self._emit(Op.SEQ)
                self._emit(Op.NOT)
            else:
                raise self._err("only == and != are defined on strings", node)
            return B
        right = self._compile_expr(node.comparators[0])
        if left is F or right is F:
            if right is I:
                self._emit(Op.I2F)
            elif right is not F:
                raise self._err(f"cannot compare float to {right.value}", node)
            if left is I:
                self._emit(Op.SWAP)
                self._emit(Op.I2F)
                self._emit(Op.SWAP)
            elif left is not F:
                raise self._err(f"cannot compare {left.value} to float", node)
            cmp_op = self._FLOAT_CMP.get(op_type)
        elif left is I and right is I:
            cmp_op = self._INT_CMP.get(op_type)
        elif left is B or right is B:
            raise self._err("comparing bools is not supported", node)
        else:
            raise self._err(
                f"cannot compare {left.value} to {right.value}", node
            )
        if cmp_op is None:
            raise self._err(
                f"unsupported comparison {op_type.__name__}", node
            )
        self._emit(cmp_op)
        return B

    def _compile_boolop(self, node: ast.BoolOp) -> VMType:
        end = _Label()
        short_circuit = Op.JZ if isinstance(node.op, ast.And) else Op.JNZ
        for index, value in enumerate(node.values):
            value_type = self._compile_expr(value)
            if value_type is not B:
                raise self._err(
                    f"and/or operand must be bool, got {value_type.value}",
                    node,
                )
            if index + 1 < len(node.values):
                self._emit(Op.DUP)
                self._emit_jump(short_circuit, end)
                self._emit(Op.POP)
        self._place(end)
        return B

    def _compile_ifexp(self, node: ast.IfExp) -> VMType:
        condition = self._compile_expr(node.test)
        if condition is not B:
            raise self._err("conditional-expression test must be bool", node)
        else_label = _Label()
        end_label = _Label()
        self._emit_jump(Op.JZ, else_label)
        then_type = self._compile_expr(node.body)
        self._emit_jump(Op.JMP, end_label)
        self._place(else_label)
        else_type = self._compile_expr(node.orelse)
        self._place(end_label)
        if then_type is not else_type:
            raise self._err(
                f"conditional-expression branches have different types "
                f"({then_type.value} vs {else_type.value})", node,
            )
        return then_type

    def _compile_subscript(self, node: ast.Subscript) -> VMType:
        base = self._compile_expr(node.value)
        if isinstance(node.slice, ast.Slice):
            if base is not S:
                raise self._err("only strings support slicing", node)
            sl = node.slice
            if sl.step is not None:
                raise self._err("slice step is not supported", node)
            if sl.lower is None:
                self._emit(Op.ICONST, 0)
            elif self._compile_expr(sl.lower) is not I:
                raise self._err("slice bound must be int", node)
            if sl.upper is None:
                raise self._err(
                    "open-ended slices are not supported (use len(s))", node
                )
            elif self._compile_expr(sl.upper) is not I:
                raise self._err("slice bound must be int", node)
            self._emit(Op.SSUB)
            return S
        index_type = self._compile_expr(node.slice)
        if index_type is not I:
            raise self._err("index must be int", node)
        if base is A:
            self._emit(Op.ALOAD)
            return I
        if base is FA:
            self._emit(Op.FALOAD)
            return F
        if base is S:
            self._emit(Op.SINDEX)
            return I
        raise self._err(f"cannot index {base.value}", node)

    # -- calls ---------------------------------------------------------------------

    def _compile_call(self, node: ast.Call) -> VMType:
        if node.keywords:
            raise self._err("keyword arguments are not supported", node)
        if not isinstance(node.func, ast.Name):
            raise self._err("only simple-name calls are supported", node)
        name = node.func.id

        if name in _BUILTIN_NAMES:
            return self._compile_builtin(name, node)
        if name in self.module_signatures:
            params, ret = self.module_signatures[name]
            self._emit_args(node, params)
            index = self.cls.pool_index(
                PoolEntry.funcref(self.cls.name, name)
            )
            self._emit(Op.CALL, index)
            return ret
        if name in self.callbacks:
            params, ret = self.callbacks[name]
            self._emit_args(node, params)
            index = self.cls.pool_index(PoolEntry.callbackref(name))
            self._emit(Op.CALLBACK, index)
            return ret
        if name in NATIVE_SIGNATURES:
            params, ret = NATIVE_SIGNATURES[name]
            self._emit_args(node, params)
            index = self.cls.pool_index(PoolEntry.nativeref(name))
            self._emit(Op.NATIVE, index)
            return ret
        raise self._err(f"unknown function {name!r}", node)

    def _emit_args(
        self, node: ast.Call, params: Tuple[VMType, ...]
    ) -> None:
        if len(node.args) != len(params):
            raise self._err(
                f"call expects {len(params)} arguments, got "
                f"{len(node.args)}", node,
            )
        for arg, wanted in zip(node.args, params):
            actual = self._compile_expr(arg)
            actual = self._promote(actual, wanted, node)
            if actual is not wanted:
                raise self._err(
                    f"argument of type {actual.value} where {wanted.value} "
                    f"expected", node,
                )

    def _compile_builtin(self, name: str, node: ast.Call) -> VMType:
        args = node.args
        if name == "len":
            self._require_arity(node, 1)
            base = self._compile_expr(args[0])
            if base is S:
                self._emit(Op.SLEN)
            elif base is A:
                self._emit(Op.ALEN)
            elif base is FA:
                self._emit(Op.FALEN)
            else:
                raise self._err(f"len() of {base.value}", node)
            return I
        if name == "int":
            self._require_arity(node, 1)
            base = self._compile_expr(args[0])
            if base is F:
                self._emit(Op.F2I)
            elif base is not I:
                raise self._err(f"int() of {base.value}", node)
            return I
        if name == "float":
            self._require_arity(node, 1)
            base = self._compile_expr(args[0])
            if base is I:
                self._emit(Op.I2F)
            elif base is not F:
                raise self._err(f"float() of {base.value}", node)
            return F
        if name == "str":
            self._require_arity(node, 1)
            base = self._compile_expr(args[0])
            if base is I:
                self._emit(Op.I2S)
            elif base is F:
                self._emit(Op.F2S)
            elif base is not S:
                raise self._err(f"str() of {base.value}", node)
            return S
        if name == "bytearray":
            self._require_arity(node, 1)
            base = self._compile_expr(args[0])
            if base is I:
                self._emit(Op.NEWARR)
                return A
            if base is A:
                self._emit(Op.ACOPY)
                return A
            raise self._err(f"bytearray() of {base.value}", node)
        if name == "farr":
            self._require_arity(node, 1)
            if self._compile_expr(args[0]) is not I:
                raise self._err("farr() size must be int", node)
            self._emit(Op.NEWFARR)
            return FA
        if name == "abs":
            self._require_arity(node, 1)
            base = self._compile_expr(args[0])
            native = "iabs" if base is I else "fabs" if base is F else None
            if native is None:
                raise self._err(f"abs() of {base.value}", node)
            self._emit(Op.NATIVE, self.cls.pool_index(PoolEntry.nativeref(native)))
            return base
        if name in ("min", "max"):
            self._require_arity(node, 2)
            left = self._compile_expr(args[0])
            right = self._compile_expr(args[1])
            if left is I and right is I:
                native = "imin" if name == "min" else "imax"
                result = I
            elif left is F and right is F:
                native = "fmin" if name == "min" else "fmax"
                result = F
            else:
                raise self._err(
                    f"{name}() needs two ints or two floats", node
                )
            self._emit(Op.NATIVE, self.cls.pool_index(PoolEntry.nativeref(native)))
            return result
        raise self._err(f"unknown builtin {name!r}", node)  # pragma: no cover

    def _require_arity(self, node: ast.Call, n: int) -> None:
        if len(node.args) != n:
            raise self._err(
                f"{node.func.id}() takes {n} argument(s), got "
                f"{len(node.args)}", node,
            )
