"""JaguarVM classfiles: the unit of UDF deployment and migration.

A classfile packages a named class, its constant pool, and its functions'
typed bytecode into a byte string.  Classfiles are what a client uploads
when it migrates a UDF to the server (Section 6.4 of the paper), so the
decoder treats its input as *hostile*: every length, index, opcode, and
argument is validated, and a malformed file raises
:class:`~repro.errors.ClassFormatError` before any code is admitted to the
verifier.

Wire format (all integers little-endian)::

    magic    "JAGC"
    version  u16
    name     str            (u32 length + utf-8 bytes)
    npool    u16            constant-pool entries
    pool     entry*         (kind u8 + payload)
    nfuncs   u16
    funcs    function*

    function := name str, nparams u8, param types, ret type,
                nlocals u16, local types, ncode u32, instruction*
    instruction := opcode u8 [+ argument, encoding fixed per opcode]
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ClassFormatError
from .opcodes import Instr, Op, check_arg_shape
from .values import SLOT_TYPES, VMType

MAGIC = b"JAGC"
VERSION = 1

#: Maximum sizes accepted by the decoder.  Generous for real UDFs while
#: bounding what a malicious classfile can make the server allocate.
MAX_NAME = 255
MAX_POOL = 65535
MAX_FUNCS = 4096
MAX_LOCALS = 65535
MAX_CODE = 1_000_000
MAX_STR_CONST = 1 << 20

# Constant-pool entry kinds.
K_STR = 1
K_FUNC = 2       # (class_name, func_name)
K_NATIVE = 3     # stdlib function name
K_CALLBACK = 4   # server callback name


@dataclass(frozen=True)
class PoolEntry:
    """One constant-pool entry."""

    kind: int
    value: Tuple[str, ...]

    @staticmethod
    def string(s: str) -> "PoolEntry":
        return PoolEntry(K_STR, (s,))

    @staticmethod
    def funcref(class_name: str, func_name: str) -> "PoolEntry":
        return PoolEntry(K_FUNC, (class_name, func_name))

    @staticmethod
    def nativeref(name: str) -> "PoolEntry":
        return PoolEntry(K_NATIVE, (name,))

    @staticmethod
    def callbackref(name: str) -> "PoolEntry":
        return PoolEntry(K_CALLBACK, (name,))


@dataclass
class FunctionDef:
    """One function: its typed signature, local-slot types, and bytecode.

    ``local_types`` covers *all* slots; the first ``len(param_types)`` slots
    are the parameters.  ``max_stack`` and ``stack_in`` (operand-stack
    depth entering each instruction) are filled in by the verifier;
    ``summary`` (a :class:`~repro.analysis.effects.FunctionSummary`) by
    the load-time analyzer.  None of the three is serialized — like
    ``verified``, they are recomputed from hostile bytes on every load.
    """

    name: str
    param_types: Tuple[VMType, ...]
    ret_type: VMType
    local_types: Tuple[VMType, ...]
    code: Tuple[Instr, ...]
    max_stack: int = 0
    stack_in: Optional[Tuple[int, ...]] = None
    summary: Optional[object] = None
    #: ResourceCertificate from the load-time bounds certifier; like
    #: ``summary``, never serialized — recomputed on every load.
    certificate: Optional[object] = None
    #: InlineTemplate or InlineRefusal from the load-time decompiler
    #: (:mod:`repro.analysis.decompile`); never serialized.
    inline: Optional[object] = field(default=None, compare=False)
    #: Interpreter dispatch cache: ``code`` decoded to ``(op, arg)``
    #: tuples, built lazily on first execution.  Pure derivation of
    #: ``code`` (which is immutable), so it never needs invalidation.
    dispatch: Optional[Tuple] = field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if len(self.local_types) < len(self.param_types):
            raise ClassFormatError(
                f"function {self.name!r}: fewer locals than parameters"
            )
        for i, (pt, lt) in enumerate(zip(self.param_types, self.local_types)):
            if pt is not lt:
                raise ClassFormatError(
                    f"function {self.name!r}: local slot {i} type {lt} does "
                    f"not match parameter type {pt}"
                )

    @property
    def signature(self) -> Tuple[Tuple[VMType, ...], VMType]:
        return (self.param_types, self.ret_type)


@dataclass
class ClassFile:
    """A named class: constant pool plus functions.

    ``verified`` is set (only) by the verifier and is never serialized:
    bytes arriving from anywhere must be re-verified (the server never
    trusts a client's claim that code was checked — Section 6.4).
    """

    name: str
    pool: List[PoolEntry] = field(default_factory=list)
    functions: Dict[str, FunctionDef] = field(default_factory=dict)
    verified: bool = False
    #: Class-level effect rollup (analysis.effects.ClassSummary), set by
    #: the load-time analyzer; never serialized.
    analysis: Optional[object] = None
    #: Class-level resource rollup (analysis.bounds.ClassCertificates),
    #: set by the load-time certifier; never serialized.
    certificates: Optional[object] = None

    def add_function(self, func: FunctionDef) -> None:
        if func.name in self.functions:
            raise ClassFormatError(f"duplicate function {func.name!r}")
        self.functions[func.name] = func
        self.verified = False
        self.analysis = None
        self.certificates = None

    def pool_index(self, entry: PoolEntry) -> int:
        """Intern ``entry``, returning its pool index."""
        try:
            return self.pool.index(entry)
        except ValueError:
            self.pool.append(entry)
            return len(self.pool) - 1

    def constant(self, index: int, kind: int) -> Tuple[str, ...]:
        """Fetch a pool entry, checking kind; used by interpreter/JIT."""
        entry = self.pool[index]
        if entry.kind != kind:
            raise ClassFormatError(
                f"pool entry {index} of class {self.name!r} has kind "
                f"{entry.kind}, expected {kind}"
            )
        return entry.value

    # -- serialization ------------------------------------------------------

    def to_bytes(self) -> bytes:
        out = bytearray()
        out += MAGIC
        out += struct.pack("<H", VERSION)
        _put_str(out, self.name)
        out += struct.pack("<H", len(self.pool))
        for entry in self.pool:
            out.append(entry.kind)
            out.append(len(entry.value))
            for part in entry.value:
                _put_str(out, part)
        out += struct.pack("<H", len(self.functions))
        for func in self.functions.values():
            _put_function(out, func)
        return bytes(out)

    @staticmethod
    def from_bytes(data: bytes) -> "ClassFile":
        reader = _Reader(data)
        if reader.take(4) != MAGIC:
            raise ClassFormatError("bad magic (not a JaguarVM classfile)")
        version = reader.u16()
        if version != VERSION:
            raise ClassFormatError(f"unsupported classfile version {version}")
        name = reader.string(MAX_NAME)
        npool = reader.u16()
        if npool > MAX_POOL:
            raise ClassFormatError("constant pool too large")
        pool: List[PoolEntry] = []
        for _ in range(npool):
            kind = reader.u8()
            if kind not in (K_STR, K_FUNC, K_NATIVE, K_CALLBACK):
                raise ClassFormatError(f"bad pool entry kind {kind}")
            nparts = reader.u8()
            expected = 2 if kind == K_FUNC else 1
            if nparts != expected:
                raise ClassFormatError(
                    f"pool entry kind {kind} must have {expected} parts"
                )
            limit = MAX_STR_CONST if kind == K_STR else MAX_NAME
            parts = tuple(reader.string(limit) for _ in range(nparts))
            pool.append(PoolEntry(kind, parts))
        nfuncs = reader.u16()
        if nfuncs > MAX_FUNCS:
            raise ClassFormatError("too many functions")
        cls = ClassFile(name=name, pool=pool)
        for _ in range(nfuncs):
            cls.add_function(_get_function(reader))
        if not reader.exhausted:
            raise ClassFormatError("trailing bytes after classfile body")
        return cls


# ---------------------------------------------------------------------------
# Encoding helpers
# ---------------------------------------------------------------------------

_TYPE_CODE = {t: i for i, t in enumerate(SLOT_TYPES)}
_TYPE_CODE[VMType.VOID] = len(SLOT_TYPES)
_CODE_TYPE = {i: t for t, i in _TYPE_CODE.items()}

# Argument encodings per opcode group.
_I64_OPS = frozenset({Op.ICONST})
_F64_OPS = frozenset({Op.FCONST})
_U8_OPS = frozenset({Op.BCONST})
_U32_OPS = frozenset(
    {Op.SCONST, Op.LOAD, Op.STORE, Op.JMP, Op.JZ, Op.JNZ,
     Op.CALL, Op.NATIVE, Op.CALLBACK}
)

_VALID_OPS = {op.value for op in Op}


def _put_str(out: bytearray, s: str) -> None:
    raw = s.encode("utf-8")
    out += struct.pack("<I", len(raw))
    out += raw


def _put_function(out: bytearray, func: FunctionDef) -> None:
    _put_str(out, func.name)
    out.append(len(func.param_types))
    for t in func.param_types:
        out.append(_TYPE_CODE[t])
    out.append(_TYPE_CODE[func.ret_type])
    out += struct.pack("<H", len(func.local_types))
    for t in func.local_types:
        out.append(_TYPE_CODE[t])
    out += struct.pack("<I", len(func.code))
    for ins in func.code:
        out.append(ins.op.value)
        if ins.op in _I64_OPS:
            out += struct.pack("<q", ins.arg)
        elif ins.op in _F64_OPS:
            out += struct.pack("<d", ins.arg)
        elif ins.op in _U8_OPS:
            out.append(ins.arg)
        elif ins.op in _U32_OPS:
            out += struct.pack("<I", ins.arg)


def _get_function(reader: "_Reader") -> FunctionDef:
    name = reader.string(MAX_NAME)
    nparams = reader.u8()
    param_types = tuple(reader.vm_type(slot_only=True) for _ in range(nparams))
    ret_type = reader.vm_type(slot_only=False)
    nlocals = reader.u16()
    if nlocals > MAX_LOCALS:
        raise ClassFormatError(f"function {name!r}: too many locals")
    local_types = tuple(reader.vm_type(slot_only=True) for _ in range(nlocals))
    ncode = reader.u32()
    if ncode > MAX_CODE:
        raise ClassFormatError(f"function {name!r}: code too long")
    code: List[Instr] = []
    for _ in range(ncode):
        opcode = reader.u8()
        if opcode not in _VALID_OPS:
            raise ClassFormatError(f"function {name!r}: bad opcode {opcode}")
        op = Op(opcode)
        arg: Optional[object] = None
        if op in _I64_OPS:
            arg = reader.i64()
        elif op in _F64_OPS:
            arg = reader.f64()
        elif op in _U8_OPS:
            arg = reader.u8()
        elif op in _U32_OPS:
            arg = reader.u32()
        problem = check_arg_shape(op, arg)
        if problem is not None:
            raise ClassFormatError(f"function {name!r}: {problem}")
        code.append(Instr(op, arg))
    return FunctionDef(
        name=name,
        param_types=param_types,
        ret_type=ret_type,
        local_types=local_types,
        code=tuple(code),
    )


class _Reader:
    """Bounds-checked cursor over untrusted bytes."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    @property
    def exhausted(self) -> bool:
        return self.pos == len(self.data)

    def take(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise ClassFormatError("truncated classfile")
        chunk = self.data[self.pos:self.pos + n]
        self.pos += n
        return chunk

    def u8(self) -> int:
        return self.take(1)[0]

    def u16(self) -> int:
        return struct.unpack("<H", self.take(2))[0]

    def u32(self) -> int:
        return struct.unpack("<I", self.take(4))[0]

    def i64(self) -> int:
        return struct.unpack("<q", self.take(8))[0]

    def f64(self) -> float:
        return struct.unpack("<d", self.take(8))[0]

    def string(self, limit: int) -> str:
        n = self.u32()
        if n > limit:
            raise ClassFormatError(f"string of {n} bytes exceeds limit {limit}")
        try:
            return self.take(n).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ClassFormatError(f"invalid utf-8 in classfile: {exc}") from None

    def vm_type(self, slot_only: bool) -> VMType:
        code = self.u8()
        vm_type = _CODE_TYPE.get(code)
        if vm_type is None:
            raise ClassFormatError(f"bad type code {code}")
        if slot_only and vm_type is VMType.VOID:
            raise ClassFormatError("VOID is not a valid slot type")
        return vm_type
