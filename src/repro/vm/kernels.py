"""Tier-1 whole-batch kernels: one compiled unit per batch of rows.

The JIT (tier 0, :mod:`repro.vm.jit`) removes interpretive dispatch, but
the executor still pays one VM entry per row: a closure call, argument
marshalling through ``coerce_argument``, ``enter_call``/``exit_call``
depth bookkeeping, a quota ``reset``, and the jitted prologue's
certified-bound check.  For a hot arithmetic UDF those fixed costs
dominate the body.  A *batch kernel* moves the row loop inside the
generated code:

* the VM entry, account binding, and depth bookkeeping happen once per
  batch instead of once per row;
* argument marshalling collapses to type **guards** specialized from the
  verifier's declared parameter types — a mismatch raises the deopt
  signal instead of coercing, and the tier-0 rerun then reproduces the
  exact baseline behaviour, coercions and error messages included;
* the certifier's constant fuel bound is prepaid with a single
  subtraction — per row, or once for the whole batch when the function
  is a leaf with a zero heap bound; per-basic-block metering disappears
  entirely (the same soundness argument as the jitted prologue's
  metering elision: the refill check guarantees the remaining quota
  covers the transitive worst case before the row starts);
* quota ``reset`` is elided exactly like the tier-0 certified batch
  paths: refill only when the remaining quota no longer covers the
  certified bounds, with the arena variant refunding non-escaping
  allocations after each row.

Eligibility is decided by :mod:`repro.vm.tier`; this module assumes the
function passed those checks (constant bounds, no callbacks, traps only
under a flow certificate, array parameters proven read-only) and raises
:class:`KernelUnsupported` otherwise.

Any condition the kernel cannot handle inline — a type-guard failure, a
trap, a quota refill that still cannot cover the certified bound — is a
**deopt**: the kernel raises :class:`KernelDeopt` (or lets the VM error
propagate) and the tier runner re-executes the faulting row and the rest
of the batch on tier 0 with per-call quota semantics, which is
bit-identical to never having promoted.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from .classfile import ClassFile, FunctionDef, K_NATIVE
from .interpreter import ExecutionContext
from .jit import (
    _RUNTIME,
    JitCompiler,
    _BlockWriter,
    _emit_block,
    _leaders,
    _stack_depths,
)
from .opcodes import Op
from .values import INT_MAX, INT_MIN, VMType, default_value


class KernelDeopt(Exception):
    """Raised inside a kernel when a row needs the tier-0 slow path."""


class KernelUnsupported(Exception):
    """The function cannot be compiled to a batch kernel.

    Eligibility (:func:`repro.vm.tier.kernel_eligibility`) should have
    refused promotion first; this is the codegen-level backstop.
    """


#: ``kernel(rows, ctx, out)`` appends one result per completed row to
#: ``out``, so on a deopt the caller resumes tier 0 at ``len(out)``.
BatchKernel = Callable[
    [Sequence[Sequence[object]], ExecutionContext, List[object]], None
]


def _guard_line(index: int, vm_type: VMType, readonly: frozenset) -> str:
    """A per-row type guard replacing ``coerce_argument`` for one slot.

    Guards are deliberately *narrower* than the coercers: anything the
    guard is unsure about (an int-valued float parameter, an out-of-range
    int, a memoryview byte array) deopts to tier 0, whose coercion — and
    whose error message on a genuine mismatch — is the semantics of
    record.
    """
    v = f"L{index}"
    if vm_type is VMType.INT:
        return (
            f"if not ({v}.__class__ is int and "
            f"{INT_MIN} <= {v} <= {INT_MAX}): raise __deopt"
        )
    if vm_type is VMType.FLOAT:
        return f"if {v}.__class__ is not float: raise __deopt"
    if vm_type is VMType.BOOL:
        return f"if {v}.__class__ is not bool: raise __deopt"
    if vm_type is VMType.STR:
        return f"if {v}.__class__ is not str: raise __deopt"
    if vm_type is VMType.ARR and index in readonly:
        # Proven read-only: pass the server buffer through uncopied,
        # exactly like coerce_argument_readonly on the tier-0 path.
        return (
            f"if not ({v}.__class__ is bytes or "
            f"{v}.__class__ is bytearray): raise __deopt"
        )
    raise KernelUnsupported(
        f"parameter {index} ({vm_type.value}) has no kernel guard"
    )


def compile_batch_kernel(
    cls: ClassFile,
    func: FunctionDef,
    ctx: ExecutionContext,
    compiler: JitCompiler,
) -> BatchKernel:
    """Translate one certified function into a whole-batch kernel."""
    from ..analysis.bounds import constant_bound

    cert = getattr(func, "certificate", None)
    fuel_need = (
        constant_bound(cert.fuel_bound) if cert is not None else None
    )
    local_need = (
        constant_bound(cert.local_fuel_bound) if cert is not None else None
    )
    if fuel_need is None or local_need is None:
        raise KernelUnsupported(
            f"{cls.name}.{func.name}: no constant certified fuel bound"
        )
    mem_need = constant_bound(cert.mem_bound)
    flows = getattr(func, "flows", None)
    arena = mem_need is None and flows is not None and flows.arena_safe
    readonly = (
        frozenset(flows.readonly_params) if flows is not None
        else frozenset()
    )

    source, namespace = _translate_kernel(
        cls, func, ctx, compiler,
        fuel_need=fuel_need, mem_need=mem_need, local_need=local_need,
        arena=arena, readonly=readonly,
    )
    code = compile(source, f"<kernel {cls.name}.{func.name}>", "exec")
    exec(code, namespace)
    return namespace["__kernel"]


def _translate_kernel(
    cls: ClassFile,
    func: FunctionDef,
    ctx: ExecutionContext,
    compiler: JitCompiler,
    fuel_need: int,
    mem_need,
    local_need: int,
    arena: bool,
    readonly: frozenset,
):
    code = func.code
    depths = _stack_depths(cls, func, ctx)
    leaders = _leaders(func)

    namespace: dict = dict(_RUNTIME)
    namespace["__compiler"] = compiler
    namespace["__deopt"] = KernelDeopt(f"{cls.name}.{func.name}")

    for ins in code:
        if ins.op is Op.CALLBACK:
            raise KernelUnsupported(
                f"{cls.name}.{func.name}: callback-bearing body"
            )
    native_names = set()
    for ins in code:
        if ins.op is Op.NATIVE:
            (name,) = cls.constant(ins.arg, K_NATIVE)
            ctx.security.check_native(name)
            native_names.add(name)
    for name in native_names:
        namespace[f"__n_{name}"] = ctx.natives[name]

    # -- per-row work, relative to the loop body (indent 0) --------------
    row_lines: List[str] = []
    nparams = len(func.param_types)
    row_lines.append(f"if len(__row) != {nparams}: raise __deopt")
    if nparams:
        names = ", ".join(f"L{i}" for i in range(nparams))
        trailing = "," if nparams == 1 else ""
        row_lines.append(f"({names}{trailing}) = __row")
    for i, t in enumerate(func.param_types):
        row_lines.append(_guard_line(i, t, readonly))
    for i, t in enumerate(func.local_types[nparams:], start=nparams):
        row_lines.append(f"L{i} = {default_value(t)!r}")

    if len(leaders) == 1:
        # Straight-line fast form: no pc dispatch at all.  The single
        # block must close with RET/RETV (verified code), whose emitted
        # ``return`` becomes the per-row result append.
        writer = _BlockWriter(depths[0])
        closed = _emit_block(
            cls, func, ctx, writer, code, 0, len(code), namespace
        )
        if not closed:  # pragma: no cover - verified code always closes
            raise KernelUnsupported(
                f"{cls.name}.{func.name}: open straight-line block"
            )
        for line in writer.lines:
            if line == "return None":
                row_lines.append("__app(None)")
            elif line.startswith("return "):
                row_lines.append(f"__app({line[7:]})")
            else:
                row_lines.append(line)
    else:
        row_lines.append("__pc = 0")
        row_lines.append("while True:")
        first = True
        for block_index, start in enumerate(leaders):
            end = (
                leaders[block_index + 1]
                if block_index + 1 < len(leaders) else len(code)
            )
            writer = _BlockWriter(depths[start])
            closed = _emit_block(
                cls, func, ctx, writer, code, start, end, namespace
            )
            if not closed:
                writer.spill_to_entry_names()
                writer.emit(f"__pc = {end}")
                writer.emit("continue")
            keyword = "if" if first else "elif"
            first = False
            row_lines.append(f"    {keyword} __pc == {start}:")
            for line in writer.lines:
                if line == "return None":
                    row_lines.append("        __ret = None")
                    row_lines.append("        break")
                elif line.startswith("return "):
                    row_lines.append(f"        __ret = {line[7:]}")
                    row_lines.append("        break")
                else:
                    row_lines.append(f"        {line}")
        row_lines.append("__app(__ret)")

    # -- per-row quota prologue (hoisted metering, per-row elision) ------
    prologue: List[str] = []
    if mem_need is not None:
        cond = (
            f"__acct.fuel < {fuel_need} or __acct.memory < {mem_need}"
        )
        prologue.append(f"if {cond}:")
        prologue.append("    __acct.reset()")
        prologue.append(f"    if {cond}: raise __deopt")
    elif arena:
        cond = f"__acct.fuel < {fuel_need}"
        prologue.append(f"if {cond}:")
        prologue.append("    __acct.reset()")
        prologue.append(f"    if {cond}: raise __deopt")
    else:
        # Argument-dependent heap use with no arena proof: reset per row
        # (tier-0 baseline quota semantics), deopt if even a fresh quota
        # cannot cover the certified fuel worst case.
        prologue.append("__acct.reset()")
        prologue.append(f"if __acct.fuel < {fuel_need}: raise __deopt")
    if local_need:
        prologue.append(f"__acct.fuel -= {local_need}")

    # A leaf function (transitive bound == local bound) with a certified
    # zero heap bound and a body that never touches the account can have
    # the whole batch's fuel prepaid in one subtraction: if the quota
    # covers ``fuel_need + local_need*(n-1)``, every row is guaranteed
    # its certified bound at start (the elision argument, applied once
    # per batch), so the per-row prologue disappears from the hot loop.
    # A mid-batch deopt may leave the prepayment overcharged, but the
    # tier-0 tail resets per row, so no observable behaviour depends on
    # the residual balance.
    bulk_ok = (
        fuel_need == local_need
        and mem_need == 0
        and not arena
        and not any("__acct" in line for line in row_lines)
    )

    out: List[str] = []
    out.append("def __kernel(__rows, __ctx, __out):")
    out.append("    __acct = __ctx.account")
    out.append("    __app = __out.append")
    if arena:
        out.append("    __ml = __acct.memory_limit")
    if bulk_ok:
        out.append("    __n = len(__rows)")
        out.append(
            f"    __need = {fuel_need} + {local_need} * (__n - 1)"
        )
        out.append("    if __n and __acct.fuel < __need:")
        out.append("        __acct.reset()")
        out.append("    if __n and __acct.fuel >= __need:")
        out.append(f"        __acct.fuel -= {local_need} * __n")
        out.append("        for __row in __rows:")
        for line in row_lines:
            out.append(f"            {line}")
        out.append("        return")
    out.append("    for __row in __rows:")
    for line in prologue:
        out.append(f"        {line}")
    for line in row_lines:
        out.append(f"        {line}")
    if arena:
        # Nothing this function allocates survives its return: refund
        # the row's heap charges, exactly like the tier-0 arena path.
        out.append("        __acct.release_memory(__ml)")

    return "\n".join(out) + "\n", namespace
