"""JaguarVM bytecode interpreter.

The interpreter is the "no JIT" execution mode: a classic decode-dispatch
loop charging one fuel unit per instruction.  It only runs *verified*
code — the constructor refuses unverified classfiles — so it performs no
type checks, but it does enforce everything the verifier provably cannot:
array bounds, division by zero, numeric conversion traps, call depth, and
the fuel / memory quotas.

An :class:`ExecutionContext` bundles the per-invocation environment:
function resolution (class loader), the security manager, the resource
account, and the callback broker.  The same context type drives the JIT,
so the two modes are interchangeable behind
:func:`~repro.vm.machine.JaguarVM.invoke`.
"""

from __future__ import annotations

import math
from array import array
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import (
    ArithmeticFault,
    BoundsError,
    LinkError,
    VerifyError,
    VMRuntimeError,
)
from .classfile import ClassFile, FunctionDef, K_CALLBACK, K_FUNC, K_NATIVE, K_STR
from .opcodes import Op
from .resources import ResourceAccount, unmetered_account
from .security import SecurityManager, open_manager
from .stdlib import NATIVE_IMPLS
from .values import VMType, VMValue, coerce_argument, default_value, wrap_int

INT_MIN = -(2 ** 63)
INT_MAX = 2 ** 63 - 1


class ExecutionContext:
    """Everything one sandboxed invocation needs from its environment."""

    __slots__ = ("resolve_function", "callbacks", "security", "account",
                 "natives", "callback_signatures")

    def __init__(
        self,
        resolve_function: Callable[[str, str], Tuple[ClassFile, FunctionDef]],
        callbacks: Optional[Dict[str, Callable]] = None,
        security: Optional[SecurityManager] = None,
        account: Optional[ResourceAccount] = None,
        callback_signatures: Optional[Dict[str, Tuple]] = None,
    ):
        self.resolve_function = resolve_function
        self.callbacks = callbacks or {}
        self.security = security if security is not None else open_manager()
        self.account = account if account is not None else unmetered_account()
        self.natives = NATIVE_IMPLS
        if callback_signatures is None:
            from ..core.callbacks import standard_callback_signatures

            callback_signatures = standard_callback_signatures()
        self.callback_signatures = callback_signatures

    def invoke_callback(self, name: str, args: Sequence[VMValue]) -> VMValue:
        """Security-checked callback dispatch (the JNI 'native method')."""
        self.security.check_callback(name)
        try:
            handler = self.callbacks[name]
        except KeyError:
            raise LinkError(f"callback {name!r} is not provided") from None
        return handler(*args)

    def invoke_native(self, name: str, args: Sequence[VMValue]) -> VMValue:
        self.security.check_native(name)
        return self.natives[name](*args)


def single_class_context(cls: ClassFile, **kwargs) -> ExecutionContext:
    """Context resolving CALLs inside ``cls`` only (tests, simple UDFs)."""

    def resolve(class_name: str, func_name: str):
        if class_name != cls.name:
            raise LinkError(f"cannot resolve foreign class {class_name!r}")
        try:
            return cls, cls.functions[func_name]
        except KeyError:
            raise LinkError(f"unknown function {func_name!r}") from None

    return ExecutionContext(resolve, **kwargs)


def run_function(
    cls: ClassFile,
    func: FunctionDef,
    args: Sequence[object],
    ctx: ExecutionContext,
) -> VMValue:
    """Invoke ``func`` with host-level ``args`` through the JNI boundary.

    Arguments are marshalled (copied where mutability demands) into VM
    representations; the return value comes back as a host value.
    """
    if not cls.verified:
        raise VerifyError(
            f"refusing to execute unverified class {cls.name!r}"
        )
    if len(args) != len(func.param_types):
        raise VMRuntimeError(
            f"{cls.name}.{func.name} expects {len(func.param_types)} "
            f"arguments, got {len(args)}"
        )
    vm_args = [
        coerce_argument(a, t) for a, t in zip(args, func.param_types)
    ]
    return _execute(cls, func, vm_args, ctx)


def _execute(
    cls: ClassFile,
    func: FunctionDef,
    args: List[VMValue],
    ctx: ExecutionContext,
) -> VMValue:
    """The dispatch loop.  ``args`` are already VM values."""
    account = ctx.account
    account.enter_call()
    try:
        slots: List[VMValue] = list(args)
        for t in func.local_types[len(args):]:
            slots.append(default_value(t))
        stack: List[VMValue] = []
        code = func.code
        pool = cls.pool
        pc = 0
        while True:
            account.fuel -= 1
            if account.fuel < 0:
                account.out_of_fuel()
            ins = code[pc]
            op = ins.op
            pc += 1

            if op is Op.LOAD:
                stack.append(slots[ins.arg])
            elif op is Op.STORE:
                slots[ins.arg] = stack.pop()
            elif op is Op.ICONST or op is Op.FCONST:
                stack.append(ins.arg)
            elif op is Op.BCONST:
                stack.append(ins.arg == 1)
            elif op is Op.SCONST:
                stack.append(pool[ins.arg].value[0])

            elif op is Op.IADD:
                b = stack.pop()
                stack[-1] = wrap_int(stack[-1] + b)
            elif op is Op.ISUB:
                b = stack.pop()
                stack[-1] = wrap_int(stack[-1] - b)
            elif op is Op.IMUL:
                b = stack.pop()
                stack[-1] = wrap_int(stack[-1] * b)
            elif op is Op.IDIV:
                b = stack.pop()
                a = stack[-1]
                if b == 0:
                    raise ArithmeticFault("integer division by zero")
                stack[-1] = wrap_int(_idiv(a, b))
            elif op is Op.IMOD:
                b = stack.pop()
                a = stack[-1]
                if b == 0:
                    raise ArithmeticFault("integer modulo by zero")
                stack[-1] = wrap_int(a - _idiv(a, b) * b)
            elif op is Op.INEG:
                stack[-1] = wrap_int(-stack[-1])
            elif op is Op.IAND:
                b = stack.pop()
                stack[-1] = wrap_int(stack[-1] & b)
            elif op is Op.IOR:
                b = stack.pop()
                stack[-1] = wrap_int(stack[-1] | b)
            elif op is Op.IXOR:
                b = stack.pop()
                stack[-1] = wrap_int(stack[-1] ^ b)
            elif op is Op.ISHL:
                b = stack.pop() & 63
                stack[-1] = wrap_int(stack[-1] << b)
            elif op is Op.ISHR:
                b = stack.pop() & 63
                stack[-1] = wrap_int(stack[-1] >> b)

            elif op is Op.FADD:
                b = stack.pop()
                stack[-1] = stack[-1] + b
            elif op is Op.FSUB:
                b = stack.pop()
                stack[-1] = stack[-1] - b
            elif op is Op.FMUL:
                b = stack.pop()
                stack[-1] = stack[-1] * b
            elif op is Op.FDIV:
                b = stack.pop()
                if b == 0.0:
                    raise ArithmeticFault("float division by zero")
                stack[-1] = stack[-1] / b
            elif op is Op.FNEG:
                stack[-1] = -stack[-1]

            elif op is Op.I2F:
                stack[-1] = float(stack[-1])
            elif op is Op.F2I:
                stack[-1] = _f2i(stack[-1])
            elif op is Op.I2S:
                s = str(stack[-1])
                account.charge_memory(len(s))
                stack[-1] = s
            elif op is Op.F2S:
                s = repr(stack[-1])
                account.charge_memory(len(s))
                stack[-1] = s

            elif op is Op.ICMPLT or op is Op.FCMPLT:
                b = stack.pop()
                stack[-1] = stack[-1] < b
            elif op is Op.ICMPLE or op is Op.FCMPLE:
                b = stack.pop()
                stack[-1] = stack[-1] <= b
            elif op is Op.ICMPGT or op is Op.FCMPGT:
                b = stack.pop()
                stack[-1] = stack[-1] > b
            elif op is Op.ICMPGE or op is Op.FCMPGE:
                b = stack.pop()
                stack[-1] = stack[-1] >= b
            elif op is Op.ICMPEQ or op is Op.FCMPEQ or op is Op.SEQ:
                b = stack.pop()
                stack[-1] = stack[-1] == b
            elif op is Op.ICMPNE or op is Op.FCMPNE:
                b = stack.pop()
                stack[-1] = stack[-1] != b

            elif op is Op.NOT:
                stack[-1] = not stack[-1]
            elif op is Op.BAND:
                b = stack.pop()
                stack[-1] = stack[-1] and b
            elif op is Op.BOR:
                b = stack.pop()
                stack[-1] = stack[-1] or b

            elif op is Op.SCONCAT:
                b = stack.pop()
                a = stack[-1]
                account.charge_memory(len(a) + len(b))
                stack[-1] = a + b
            elif op is Op.SLEN:
                stack[-1] = len(stack[-1])
            elif op is Op.SINDEX:
                i = stack.pop()
                s = stack[-1]
                if not 0 <= i < len(s):
                    raise BoundsError(
                        f"string index {i} out of range [0, {len(s)})"
                    )
                stack[-1] = ord(s[i])
            elif op is Op.SSUB:
                end = stack.pop()
                start = stack.pop()
                s = stack[-1]
                if not (0 <= start <= end <= len(s)):
                    raise BoundsError(
                        f"substring [{start}:{end}] out of range for "
                        f"length {len(s)}"
                    )
                account.charge_memory(end - start)
                stack[-1] = s[start:end]

            elif op is Op.NEWARR:
                n = stack.pop()
                if n < 0:
                    raise BoundsError(f"negative array size {n}")
                account.charge_memory(n)
                stack.append(bytearray(n))
            elif op is Op.ALOAD:
                i = stack.pop()
                arr = stack[-1]
                if not 0 <= i < len(arr):
                    raise BoundsError(
                        f"array index {i} out of range [0, {len(arr)})"
                    )
                stack[-1] = arr[i]
            elif op is Op.ASTORE:
                v = stack.pop()
                i = stack.pop()
                arr = stack.pop()
                if not 0 <= i < len(arr):
                    raise BoundsError(
                        f"array index {i} out of range [0, {len(arr)})"
                    )
                arr[i] = v & 0xFF
            elif op is Op.ALEN:
                stack[-1] = len(stack[-1])
            elif op is Op.ACOPY:
                arr = stack[-1]
                account.charge_memory(len(arr))
                stack[-1] = bytearray(arr)

            elif op is Op.NEWFARR:
                n = stack.pop()
                if n < 0:
                    raise BoundsError(f"negative array size {n}")
                account.charge_memory(8 * n)
                stack.append(array("d", bytes(8 * n)))
            elif op is Op.FALOAD:
                i = stack.pop()
                arr = stack[-1]
                if not 0 <= i < len(arr):
                    raise BoundsError(
                        f"array index {i} out of range [0, {len(arr)})"
                    )
                stack[-1] = arr[i]
            elif op is Op.FASTORE:
                v = stack.pop()
                i = stack.pop()
                arr = stack.pop()
                if not 0 <= i < len(arr):
                    raise BoundsError(
                        f"array index {i} out of range [0, {len(arr)})"
                    )
                arr[i] = v
            elif op is Op.FALEN:
                stack[-1] = len(stack[-1])

            elif op is Op.JMP:
                pc = ins.arg
            elif op is Op.JZ:
                if not stack.pop():
                    pc = ins.arg
            elif op is Op.JNZ:
                if stack.pop():
                    pc = ins.arg
            elif op is Op.RET:
                return stack.pop()
            elif op is Op.RETV:
                return None

            elif op is Op.POP:
                stack.pop()
            elif op is Op.DUP:
                stack.append(stack[-1])
            elif op is Op.SWAP:
                stack[-1], stack[-2] = stack[-2], stack[-1]

            elif op is Op.CALL:
                class_name, func_name = cls.constant(ins.arg, K_FUNC)
                callee_cls, callee = ctx.resolve_function(class_name, func_name)
                nparams = len(callee.param_types)
                call_args = stack[len(stack) - nparams:]
                del stack[len(stack) - nparams:]
                result = _execute(callee_cls, callee, call_args, ctx)
                if callee.ret_type is not VMType.VOID:
                    stack.append(result)
            elif op is Op.NATIVE:
                (name,) = cls.constant(ins.arg, K_NATIVE)
                from .stdlib import NATIVE_SIGNATURES

                nparams = len(NATIVE_SIGNATURES[name][0])
                call_args = stack[len(stack) - nparams:]
                del stack[len(stack) - nparams:]
                result = ctx.invoke_native(name, call_args)
                if NATIVE_SIGNATURES[name][1] is not VMType.VOID:
                    stack.append(result)
            elif op is Op.CALLBACK:
                (name,) = cls.constant(ins.arg, K_CALLBACK)
                try:
                    sig = ctx.callback_signatures[name]
                except KeyError:
                    raise LinkError(f"no signature for callback {name!r}") from None
                nparams = len(sig[0])
                call_args = stack[len(stack) - nparams:]
                del stack[len(stack) - nparams:]
                result = ctx.invoke_callback(name, call_args)
                if sig[1] is not VMType.VOID:
                    stack.append(coerce_argument(result, sig[1]))
            else:  # pragma: no cover - verifier admits only known opcodes
                raise VMRuntimeError(f"unknown opcode {op}")
    finally:
        account.exit_call()


def _idiv(a: int, b: int) -> int:
    """Java-style integer division: truncation toward zero."""
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _f2i(x: float) -> int:
    if math.isnan(x):
        raise ArithmeticFault("cannot convert NaN to int")
    if math.isinf(x) or not (INT_MIN <= x <= INT_MAX):
        raise ArithmeticFault(f"float {x!r} does not fit the int range")
    return int(x)
