"""JaguarVM bytecode interpreter.

The interpreter is the "no JIT" execution mode: a classic decode-dispatch
loop charging one fuel unit per instruction.  It only runs *verified*
code — the constructor refuses unverified classfiles — so it performs no
type checks, but it does enforce everything the verifier provably cannot:
array bounds, division by zero, numeric conversion traps, call depth, and
the fuel / memory quotas.

An :class:`ExecutionContext` bundles the per-invocation environment:
function resolution (class loader), the security manager, the resource
account, and the callback broker.  The same context type drives the JIT,
so the two modes are interchangeable behind
:func:`~repro.vm.machine.JaguarVM.invoke`.
"""

from __future__ import annotations

import math
from array import array
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import (
    ArithmeticFault,
    BoundsError,
    LinkError,
    VerifyError,
    VMRuntimeError,
)
from .classfile import ClassFile, FunctionDef, K_CALLBACK, K_FUNC, K_NATIVE, K_STR
from .opcodes import Op
from .resources import ResourceAccount, unmetered_account
from .security import SecurityManager, open_manager
from .stdlib import NATIVE_IMPLS
from .values import (
    VMType,
    VMValue,
    coerce_argument,
    coerce_argument_readonly,
    default_value,
    wrap_int,
)

INT_MIN = -(2 ** 63)
INT_MAX = 2 ** 63 - 1

#: Every opcode the dispatch loop handles, in the order ``_execute``
#: unpacks them into locals.  Testing ``op is op_load`` (a LOAD_FAST)
#: instead of ``op is Op.LOAD`` (a global plus an enum attribute lookup)
#: roughly halves the cost of walking the dispatch chain.
_DISPATCH_OPS = (
    Op.LOAD, Op.STORE, Op.ICONST, Op.FCONST, Op.BCONST, Op.SCONST,
    Op.IADD, Op.ISUB, Op.IMUL, Op.IDIV, Op.IMOD, Op.INEG,
    Op.IAND, Op.IOR, Op.IXOR, Op.ISHL, Op.ISHR,
    Op.FADD, Op.FSUB, Op.FMUL, Op.FDIV, Op.FNEG,
    Op.I2F, Op.F2I, Op.I2S, Op.F2S,
    Op.ICMPLT, Op.FCMPLT, Op.ICMPLE, Op.FCMPLE,
    Op.ICMPGT, Op.FCMPGT, Op.ICMPGE, Op.FCMPGE,
    Op.ICMPEQ, Op.FCMPEQ, Op.SEQ, Op.ICMPNE, Op.FCMPNE,
    Op.NOT, Op.BAND, Op.BOR,
    Op.SCONCAT, Op.SLEN, Op.SINDEX, Op.SSUB,
    Op.NEWARR, Op.ALOAD, Op.ASTORE, Op.ALEN, Op.ACOPY,
    Op.NEWFARR, Op.FALOAD, Op.FASTORE, Op.FALEN,
    Op.JMP, Op.JZ, Op.JNZ, Op.RET, Op.RETV,
    Op.POP, Op.DUP, Op.SWAP,
    Op.CALL, Op.NATIVE, Op.CALLBACK,
)


class ExecutionContext:
    """Everything one sandboxed invocation needs from its environment."""

    __slots__ = ("resolve_function", "callbacks", "security", "account",
                 "natives", "callback_signatures")

    def __init__(
        self,
        resolve_function: Callable[[str, str], Tuple[ClassFile, FunctionDef]],
        callbacks: Optional[Dict[str, Callable]] = None,
        security: Optional[SecurityManager] = None,
        account: Optional[ResourceAccount] = None,
        callback_signatures: Optional[Dict[str, Tuple]] = None,
    ):
        self.resolve_function = resolve_function
        self.callbacks = callbacks or {}
        self.security = security if security is not None else open_manager()
        self.account = account if account is not None else unmetered_account()
        self.natives = NATIVE_IMPLS
        if callback_signatures is None:
            from ..core.callbacks import standard_callback_signatures

            callback_signatures = standard_callback_signatures()
        self.callback_signatures = callback_signatures

    def invoke_callback(self, name: str, args: Sequence[VMValue]) -> VMValue:
        """Security-checked callback dispatch (the JNI 'native method')."""
        self.security.check_callback(name)
        try:
            handler = self.callbacks[name]
        except KeyError:
            raise LinkError(f"callback {name!r} is not provided") from None
        return handler(*args)

    def invoke_native(self, name: str, args: Sequence[VMValue]) -> VMValue:
        self.security.check_native(name)
        return self.natives[name](*args)


def single_class_context(cls: ClassFile, **kwargs) -> ExecutionContext:
    """Context resolving CALLs inside ``cls`` only (tests, simple UDFs)."""

    def resolve(class_name: str, func_name: str):
        if class_name != cls.name:
            raise LinkError(f"cannot resolve foreign class {class_name!r}")
        try:
            return cls, cls.functions[func_name]
        except KeyError:
            raise LinkError(f"unknown function {func_name!r}") from None

    return ExecutionContext(resolve, **kwargs)


def run_function(
    cls: ClassFile,
    func: FunctionDef,
    args: Sequence[object],
    ctx: ExecutionContext,
    readonly_params: Sequence[int] = (),
) -> VMValue:
    """Invoke ``func`` with host-level ``args`` through the JNI boundary.

    Arguments are marshalled (copied where mutability demands) into VM
    representations; the return value comes back as a host value.
    ``readonly_params`` names parameter indices the flow certifier
    proved read-only, whose byte arrays may skip the defensive copy.
    """
    if not cls.verified:
        raise VerifyError(
            f"refusing to execute unverified class {cls.name!r}"
        )
    if len(args) != len(func.param_types):
        raise VMRuntimeError(
            f"{cls.name}.{func.name} expects {len(func.param_types)} "
            f"arguments, got {len(args)}"
        )
    if readonly_params:
        vm_args = [
            coerce_argument_readonly(a, t) if i in readonly_params
            else coerce_argument(a, t)
            for i, (a, t) in enumerate(zip(args, func.param_types))
        ]
    else:
        vm_args = [
            coerce_argument(a, t) for a, t in zip(args, func.param_types)
        ]
    return _execute(cls, func, vm_args, ctx)


def _execute(
    cls: ClassFile,
    func: FunctionDef,
    args: List[VMValue],
    ctx: ExecutionContext,
    metered: bool = True,
) -> VMValue:
    """The dispatch loop.  ``args`` are already VM values.

    When the function carries a :class:`ResourceCertificate` with a
    finite fuel bound, the whole worst case is charged up front and the
    per-instruction decrement is elided — the certificate *proves* the
    function cannot exceed what it paid.  Unbounded functions (and
    callees of an already-elided frame, whose cost the caller prepaid)
    keep the dynamic meter.  Memory stays dynamically metered in both
    modes: allocations are charged where they happen, so an over-quota
    allocation faults at the same instruction either way.
    """
    account = ctx.account
    if metered:
        cert = getattr(func, "certificate", None)
        if cert is not None and not account.revoked:
            charge = cert.fuel_charge(args)
            if charge is not None and charge <= account.fuel:
                account.fuel -= charge
                metered = False
    account.enter_call()
    try:
        slots: List[VMValue] = list(args)
        for t in func.local_types[len(args):]:
            slots.append(default_value(t))
        stack: List[VMValue] = []
        code = func.dispatch
        if code is None:
            code = tuple((i.op, i.arg) for i in func.code)
            func.dispatch = code
        pool = cls.pool
        (
            op_load, op_store, op_iconst, op_fconst, op_bconst, op_sconst,
            op_iadd, op_isub, op_imul, op_idiv, op_imod, op_ineg,
            op_iand, op_ior, op_ixor, op_ishl, op_ishr,
            op_fadd, op_fsub, op_fmul, op_fdiv, op_fneg,
            op_i2f, op_f2i, op_i2s, op_f2s,
            op_icmplt, op_fcmplt, op_icmple, op_fcmple,
            op_icmpgt, op_fcmpgt, op_icmpge, op_fcmpge,
            op_icmpeq, op_fcmpeq, op_seq, op_icmpne, op_fcmpne,
            op_not, op_band, op_bor,
            op_sconcat, op_slen, op_sindex, op_ssub,
            op_newarr, op_aload, op_astore, op_alen, op_acopy,
            op_newfarr, op_faload, op_fastore, op_falen,
            op_jmp, op_jz, op_jnz, op_ret, op_retv,
            op_pop, op_dup, op_swap,
            op_call, op_native, op_callback,
        ) = _DISPATCH_OPS
        pc = 0
        while True:
            if metered:
                account.fuel -= 1
                if account.fuel < 0:
                    account.out_of_fuel()
            op, arg = code[pc]
            pc += 1

            # The chain is ordered by dynamic frequency — loads, stores,
            # constants, the add/compare/branch loop kernel first — since
            # an instruction's position is its dispatch cost.
            if op is op_load:
                stack.append(slots[arg])
            elif op is op_iconst or op is op_fconst:
                stack.append(arg)
            elif op is op_store:
                slots[arg] = stack.pop()
            elif op is op_iadd:
                b = stack.pop()
                stack[-1] = wrap_int(stack[-1] + b)
            elif op is op_icmplt or op is op_fcmplt:
                b = stack.pop()
                stack[-1] = stack[-1] < b
            elif op is op_jz:
                if not stack.pop():
                    pc = arg
            elif op is op_jmp:
                pc = arg
            elif op is op_jnz:
                if stack.pop():
                    pc = arg
            elif op is op_sindex:
                i = stack.pop()
                s = stack[-1]
                if not 0 <= i < len(s):
                    raise BoundsError(
                        f"string index {i} out of range [0, {len(s)})"
                    )
                stack[-1] = ord(s[i])
            elif op is op_aload:
                i = stack.pop()
                arr = stack[-1]
                if not 0 <= i < len(arr):
                    raise BoundsError(
                        f"array index {i} out of range [0, {len(arr)})"
                    )
                stack[-1] = arr[i]
            elif op is op_ret:
                return stack.pop()

            elif op is op_icmple or op is op_fcmple:
                b = stack.pop()
                stack[-1] = stack[-1] <= b
            elif op is op_icmpgt or op is op_fcmpgt:
                b = stack.pop()
                stack[-1] = stack[-1] > b
            elif op is op_icmpge or op is op_fcmpge:
                b = stack.pop()
                stack[-1] = stack[-1] >= b
            elif op is op_icmpeq or op is op_fcmpeq or op is op_seq:
                b = stack.pop()
                stack[-1] = stack[-1] == b
            elif op is op_icmpne or op is op_fcmpne:
                b = stack.pop()
                stack[-1] = stack[-1] != b

            elif op is op_isub:
                b = stack.pop()
                stack[-1] = wrap_int(stack[-1] - b)
            elif op is op_imul:
                b = stack.pop()
                stack[-1] = wrap_int(stack[-1] * b)
            elif op is op_idiv:
                b = stack.pop()
                a = stack[-1]
                if b == 0:
                    raise ArithmeticFault("integer division by zero")
                stack[-1] = wrap_int(_idiv(a, b))
            elif op is op_imod:
                b = stack.pop()
                a = stack[-1]
                if b == 0:
                    raise ArithmeticFault("integer modulo by zero")
                stack[-1] = wrap_int(a - _idiv(a, b) * b)
            elif op is op_ineg:
                stack[-1] = wrap_int(-stack[-1])
            elif op is op_iand:
                b = stack.pop()
                stack[-1] = wrap_int(stack[-1] & b)
            elif op is op_ior:
                b = stack.pop()
                stack[-1] = wrap_int(stack[-1] | b)
            elif op is op_ixor:
                b = stack.pop()
                stack[-1] = wrap_int(stack[-1] ^ b)
            elif op is op_ishl:
                b = stack.pop() & 63
                stack[-1] = wrap_int(stack[-1] << b)
            elif op is op_ishr:
                b = stack.pop() & 63
                stack[-1] = wrap_int(stack[-1] >> b)

            elif op is op_bconst:
                stack.append(arg == 1)
            elif op is op_sconst:
                stack.append(pool[arg].value[0])

            elif op is op_fadd:
                b = stack.pop()
                stack[-1] = stack[-1] + b
            elif op is op_fsub:
                b = stack.pop()
                stack[-1] = stack[-1] - b
            elif op is op_fmul:
                b = stack.pop()
                stack[-1] = stack[-1] * b
            elif op is op_fdiv:
                b = stack.pop()
                if b == 0.0:
                    raise ArithmeticFault("float division by zero")
                stack[-1] = stack[-1] / b
            elif op is op_fneg:
                stack[-1] = -stack[-1]

            elif op is op_i2f:
                stack[-1] = float(stack[-1])
            elif op is op_f2i:
                stack[-1] = _f2i(stack[-1])
            elif op is op_i2s:
                s = str(stack[-1])
                account.charge_memory(len(s))
                stack[-1] = s
            elif op is op_f2s:
                s = repr(stack[-1])
                account.charge_memory(len(s))
                stack[-1] = s

            elif op is op_not:
                stack[-1] = not stack[-1]
            elif op is op_band:
                b = stack.pop()
                stack[-1] = stack[-1] and b
            elif op is op_bor:
                b = stack.pop()
                stack[-1] = stack[-1] or b

            elif op is op_sconcat:
                b = stack.pop()
                a = stack[-1]
                account.charge_memory(len(a) + len(b))
                stack[-1] = a + b
            elif op is op_slen:
                stack[-1] = len(stack[-1])
            elif op is op_ssub:
                end = stack.pop()
                start = stack.pop()
                s = stack[-1]
                if not (0 <= start <= end <= len(s)):
                    raise BoundsError(
                        f"substring [{start}:{end}] out of range for "
                        f"length {len(s)}"
                    )
                account.charge_memory(end - start)
                stack[-1] = s[start:end]

            elif op is op_newarr:
                n = stack.pop()
                if n < 0:
                    raise BoundsError(f"negative array size {n}")
                account.charge_memory(n)
                stack.append(bytearray(n))
            elif op is op_astore:
                v = stack.pop()
                i = stack.pop()
                arr = stack.pop()
                if not 0 <= i < len(arr):
                    raise BoundsError(
                        f"array index {i} out of range [0, {len(arr)})"
                    )
                arr[i] = v & 0xFF
            elif op is op_alen:
                stack[-1] = len(stack[-1])
            elif op is op_acopy:
                arr = stack[-1]
                account.charge_memory(len(arr))
                stack[-1] = bytearray(arr)

            elif op is op_newfarr:
                n = stack.pop()
                if n < 0:
                    raise BoundsError(f"negative array size {n}")
                account.charge_memory(8 * n)
                stack.append(array("d", bytes(8 * n)))
            elif op is op_faload:
                i = stack.pop()
                arr = stack[-1]
                if not 0 <= i < len(arr):
                    raise BoundsError(
                        f"array index {i} out of range [0, {len(arr)})"
                    )
                stack[-1] = arr[i]
            elif op is op_fastore:
                v = stack.pop()
                i = stack.pop()
                arr = stack.pop()
                if not 0 <= i < len(arr):
                    raise BoundsError(
                        f"array index {i} out of range [0, {len(arr)})"
                    )
                arr[i] = v
            elif op is op_falen:
                stack[-1] = len(stack[-1])

            elif op is op_retv:
                return None

            elif op is op_pop:
                stack.pop()
            elif op is op_dup:
                stack.append(stack[-1])
            elif op is op_swap:
                stack[-1], stack[-2] = stack[-2], stack[-1]

            elif op is op_call:
                class_name, func_name = cls.constant(arg, K_FUNC)
                callee_cls, callee = ctx.resolve_function(class_name, func_name)
                nparams = len(callee.param_types)
                call_args = stack[len(stack) - nparams:]
                del stack[len(stack) - nparams:]
                result = _execute(callee_cls, callee, call_args, ctx,
                                  metered=metered)
                if callee.ret_type is not VMType.VOID:
                    stack.append(result)
            elif op is op_native:
                (name,) = cls.constant(arg, K_NATIVE)
                from .stdlib import NATIVE_SIGNATURES

                nparams = len(NATIVE_SIGNATURES[name][0])
                call_args = stack[len(stack) - nparams:]
                del stack[len(stack) - nparams:]
                result = ctx.invoke_native(name, call_args)
                if NATIVE_SIGNATURES[name][1] is not VMType.VOID:
                    stack.append(result)
            elif op is op_callback:
                (name,) = cls.constant(arg, K_CALLBACK)
                try:
                    sig = ctx.callback_signatures[name]
                except KeyError:
                    raise LinkError(f"no signature for callback {name!r}") from None
                nparams = len(sig[0])
                call_args = stack[len(stack) - nparams:]
                del stack[len(stack) - nparams:]
                result = ctx.invoke_callback(name, call_args)
                if sig[1] is not VMType.VOID:
                    stack.append(coerce_argument(result, sig[1]))
            else:  # pragma: no cover - verifier admits only known opcodes
                raise VMRuntimeError(f"unknown opcode {op}")
    finally:
        account.exit_call()


def _idiv(a: int, b: int) -> int:
    """Java-style integer division: truncation toward zero."""
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _f2i(x: float) -> int:
    if math.isnan(x):
        raise ArithmeticFault("cannot convert NaN to int")
    if math.isinf(x) or not (INT_MIN <= x <= INT_MAX):
        raise ArithmeticFault(f"float {x!r} does not fit the int range")
    return int(x)
