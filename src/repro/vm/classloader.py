"""JaguarVM class loaders.

Section 6.1: "a UDF can be loaded with a special class loader that
isolates the UDF's namespace from that of other UDFs and prevents
interactions between them."  This module implements exactly that model:

* a :class:`SystemClassLoader` holds trusted, shared classes (ADT helper
  classes the server publishes to all UDFs);
* each UDF gets its own :class:`UDFClassLoader` whose namespace shadows
  nothing and leaks nothing — two UDFs may both define a class named
  ``Main`` without interference, and neither can resolve the other's
  classes;
* resolution is parent-first (like Java's delegation model), so a UDF
  cannot redefine a trusted system class for itself.

Classes are verified at definition time, with CALL targets resolved
through the defining loader — eager linking, so a classfile whose
references cannot be resolved is rejected before it ever runs.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

from ..errors import LinkError
from .classfile import ClassFile, FunctionDef
from .security import Signature
from .stdlib import NATIVE_SIGNATURES
from .verifier import Resolver, verify_class


class ClassLoader:
    """Base loader: a namespace of verified classes with parent delegation."""

    def __init__(
        self,
        name: str,
        parent: Optional["ClassLoader"] = None,
        callback_signatures: Optional[Dict[str, Signature]] = None,
    ):
        self.name = name
        self.parent = parent
        self._classes: Dict[str, ClassFile] = {}
        if callback_signatures is None and parent is not None:
            callback_signatures = parent.callback_signatures
        self.callback_signatures = callback_signatures or {}

    # -- resolution -----------------------------------------------------------

    def resolve_class(self, class_name: str) -> ClassFile:
        """Parent-first lookup; raises :class:`LinkError` when not found."""
        if self.parent is not None:
            try:
                return self.parent.resolve_class(class_name)
            except LinkError:
                pass
        try:
            return self._classes[class_name]
        except KeyError:
            raise LinkError(
                f"loader {self.name!r} cannot resolve class {class_name!r}"
            ) from None

    def resolve_function(
        self, class_name: str, func_name: str
    ) -> Tuple[ClassFile, FunctionDef]:
        """Resolve a CALL target; used by the interpreter and JIT."""
        cls = self.resolve_class(class_name)
        func = cls.functions.get(func_name)
        if func is None:
            raise LinkError(f"unknown function {class_name}.{func_name}")
        return cls, func

    def defines(self, class_name: str) -> bool:
        """True if *this* loader (not a parent) defines the class."""
        return class_name in self._classes

    # -- definition --------------------------------------------------------------

    def define_class(self, source: Union[bytes, ClassFile]) -> ClassFile:
        """Decode (if necessary), verify, and admit a class.

        Accepts raw classfile bytes (the hostile path — a migrated UDF)
        or an in-memory :class:`ClassFile` (the local-compile path).
        Either way the class is verified *here*, with resolution scoped
        to this loader, before it becomes resolvable.
        """
        if isinstance(source, (bytes, bytearray)):
            cls = ClassFile.from_bytes(bytes(source))
        else:
            cls = source
        if self.defines(cls.name):
            raise LinkError(
                f"loader {self.name!r} already defines class {cls.name!r}"
            )
        try:
            # Make the class visible to its own verification so that
            # intra-class (and self-recursive) calls resolve.
            self._classes[cls.name] = cls
            verify_class(cls, self._resolver())
            self._analyze(cls)
        except Exception:
            del self._classes[cls.name]
            raise
        return cls

    def _analyze(self, cls: ClassFile) -> None:
        """Attach load-time summaries and resource certificates.

        Runs right after verification, while the class is visible to this
        loader, so cross-class CALL effects resolve parent-first exactly
        like the verifier's signature resolution did.  The certifier runs
        second: its transitive fuel/memory bounds substitute callee
        certificates at call sites, which the effect pass has just made
        resolvable.  The decompiler runs last: it gates on the effect
        summaries the first pass just attached.
        """
        from ..analysis.bounds import certify_class
        from ..analysis.decompile import decompile_class
        from ..analysis.effects import analyze_class
        from ..analysis.flows import analyze_flows

        def foreign_summary(class_name: str, func_name: str):
            try:
                __, func = self.resolve_function(class_name, func_name)
            except LinkError:  # pragma: no cover - verifier linked eagerly
                return None
            return getattr(func, "summary", None)

        def foreign_certificate(class_name: str, func_name: str):
            try:
                __, func = self.resolve_function(class_name, func_name)
            except LinkError:  # pragma: no cover - verifier linked eagerly
                return None
            return getattr(func, "certificate", None)

        analyze_class(cls, foreign_summary=foreign_summary)
        certify_class(cls, resolver=self._resolver(),
                      foreign_certificate=foreign_certificate)
        analyze_flows(cls, resolver=self._resolver())
        decompile_class(cls)

    def _resolver(self) -> Resolver:
        def function_signature(class_name: str, func_name: str) -> Signature:
            __, func = self.resolve_function(class_name, func_name)
            return func.signature

        def native_signature(name: str) -> Signature:
            try:
                return NATIVE_SIGNATURES[name]
            except KeyError:
                raise LinkError(f"unknown native {name!r}") from None

        def callback_signature(name: str) -> Signature:
            try:
                return self.callback_signatures[name]
            except KeyError:
                raise LinkError(f"unknown callback {name!r}") from None

        return Resolver(function_signature, native_signature, callback_signature)


class SystemClassLoader(ClassLoader):
    """The root loader holding trusted shared classes."""

    def __init__(self, callback_signatures: Optional[Dict[str, Signature]] = None):
        super().__init__(
            name="system", parent=None, callback_signatures=callback_signatures
        )


class UDFClassLoader(ClassLoader):
    """One isolated namespace per UDF registration."""

    def __init__(
        self,
        udf_name: str,
        parent: ClassLoader,
        callback_signatures: Optional[Dict[str, Signature]] = None,
    ):
        super().__init__(
            name=f"udf:{udf_name}",
            parent=parent,
            callback_signatures=callback_signatures,
        )
