"""Resource accounting for sandboxed code (the J-Kernel analog).

Section 6.2 of the paper identifies resource management as the missing
piece of 1998 JVM security: "UDFs can currently consume as much CPU time
and memory as they desire", and points at the Cornell J-Kernel project's
plan to instrument bytecode so resources "can be monitored and policed.
Such mechanisms will be essential in database systems."

JaguarVM builds that mechanism in:

* **Fuel** meters CPU: the interpreter charges one unit per instruction;
  the JIT charges per basic block (the exact instrument-the-code strategy
  J-Kernel proposed).  When fuel reaches zero the UDF dies with
  :class:`~repro.errors.FuelExhausted` and the server thread continues.
* **Memory** meters allocations: every NEWARR / NEWFARR / SCONCAT / ACOPY
  / SSUB charges the bytes it materializes.  Exceeding the quota raises
  :class:`~repro.errors.MemoryQuotaExceeded`.
* **Call depth** bounds the host stack so recursive sandboxed code cannot
  overflow the server's own stack.

Accounts are also *revocable*: the owner of a thread group can call
:meth:`ResourceAccount.revoke` and every UDF charged to the account dies
at its next check, which is how thread-group termination is implemented.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..errors import (
    AccountRevoked,
    FuelExhausted,
    MemoryQuotaExceeded,
    StackOverflowFault,
)

#: Defaults are generous for benchmark UDFs yet small enough that a
#: runaway loop dies in well under a second.
DEFAULT_FUEL = 500_000_000
DEFAULT_MEMORY = 64 * 1024 * 1024
DEFAULT_MAX_DEPTH = 256


@dataclass(frozen=True)
class QuotaPolicy:
    """The quota configuration of one VM / session / registration.

    Historically the defaults above were read straight off the module at
    every call site, so a per-session override meant mutating globals.
    A policy object threads through instead: the VM holds one, sessions
    and registrations derive narrowed copies with :meth:`with_overrides`,
    and nothing global ever changes.
    """

    fuel: int = DEFAULT_FUEL
    memory: int = DEFAULT_MEMORY
    max_depth: int = DEFAULT_MAX_DEPTH

    def __post_init__(self) -> None:
        if self.fuel <= 0 or self.memory <= 0 or self.max_depth <= 0:
            raise ValueError("quota policy values must be positive")

    def with_overrides(
        self,
        fuel: Optional[int] = None,
        memory: Optional[int] = None,
        max_depth: Optional[int] = None,
    ) -> "QuotaPolicy":
        """A derived policy; ``None`` keeps the current value."""
        return replace(
            self,
            fuel=fuel if fuel is not None else self.fuel,
            memory=memory if memory is not None else self.memory,
            max_depth=max_depth if max_depth is not None else self.max_depth,
        )

    def account(self) -> "ResourceAccount":
        """A fresh account funded to this policy's quotas."""
        return ResourceAccount(
            fuel=self.fuel, memory=self.memory, max_depth=self.max_depth
        )


#: The process-wide default policy (immutable; derive, don't mutate).
DEFAULT_POLICY = QuotaPolicy()


class ResourceAccount:
    """Mutable quota state charged by one UDF invocation (or a group).

    The interpreter and JIT mutate :attr:`fuel` directly on their hot
    paths (attribute access is the cheapest instrumentation available in
    Python); everything else goes through methods.
    """

    __slots__ = ("fuel", "memory", "depth", "max_depth", "revoked",
                 "fuel_limit", "memory_limit")

    def __init__(
        self,
        fuel: int = DEFAULT_FUEL,
        memory: int = DEFAULT_MEMORY,
        max_depth: int = DEFAULT_MAX_DEPTH,
    ):
        if fuel <= 0:
            raise ValueError("fuel quota must be positive")
        if memory <= 0:
            raise ValueError("memory quota must be positive")
        if max_depth <= 0:
            raise ValueError("max call depth must be positive")
        self.fuel = fuel
        self.fuel_limit = fuel
        self.memory = memory
        self.memory_limit = memory
        self.depth = 0
        self.max_depth = max_depth
        self.revoked = False

    # -- CPU ---------------------------------------------------------------

    def charge_fuel(self, units: int) -> None:
        """Charge ``units`` instructions; raise when the quota is gone."""
        self.fuel -= units
        if self.fuel < 0 or self.revoked:
            self.out_of_fuel()

    def out_of_fuel(self) -> None:
        """Raise the error for an empty (or revoked) fuel tank."""
        if self.revoked:
            raise AccountRevoked("execution revoked by thread-group owner")
        raise FuelExhausted(
            f"instruction quota of {self.fuel_limit} exhausted"
        )

    # -- memory --------------------------------------------------------------

    def charge_memory(self, nbytes: int) -> None:
        """Charge an allocation of ``nbytes``; raise when over quota."""
        if nbytes < 0:
            raise MemoryQuotaExceeded("negative allocation size")
        self.memory -= nbytes
        if self.memory < 0:
            raise MemoryQuotaExceeded(
                f"allocation quota of {self.memory_limit} bytes exhausted"
            )

    def release_memory(self, nbytes: int) -> None:
        """Return bytes to the account (used when the VM frees eagerly)."""
        self.memory = min(self.memory + nbytes, self.memory_limit)

    # -- call depth -------------------------------------------------------------

    def enter_call(self) -> None:
        self.depth += 1
        if self.depth > self.max_depth:
            raise StackOverflowFault(
                f"call depth exceeded limit of {self.max_depth}"
            )

    def exit_call(self) -> None:
        self.depth -= 1

    def reset(self) -> None:
        """Refill both quotas for a new invocation (revocation sticks).

        Executors reuse one account across a query's invocations; the
        quota is per *invocation*, so the account is refilled between
        tuples.
        """
        if not self.revoked:
            self.fuel = self.fuel_limit
            self.memory = self.memory_limit

    # -- revocation ----------------------------------------------------------------

    def revoke(self) -> None:
        """Asynchronously terminate whatever is charging this account.

        Safe to call from another thread: the running code observes it at
        its next fuel check (at most one basic block away).
        """
        self.revoked = True
        self.fuel = -1

    # -- reporting -------------------------------------------------------------------

    @property
    def fuel_used(self) -> int:
        return self.fuel_limit - max(self.fuel, 0)

    @property
    def memory_used(self) -> int:
        return self.memory_limit - max(self.memory, 0)

    def snapshot(self) -> dict:
        """Usage report for auditing (the paper laments JVMs lack this)."""
        return {
            "fuel_limit": self.fuel_limit,
            "fuel_used": self.fuel_used,
            "memory_limit": self.memory_limit,
            "memory_used": self.memory_used,
            "depth": self.depth,
            "revoked": self.revoked,
        }


def unmetered_account() -> ResourceAccount:
    """An effectively unlimited account, for trusted internal uses."""
    return ResourceAccount(fuel=2 ** 62, memory=2 ** 62, max_depth=10_000)
