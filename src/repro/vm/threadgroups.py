"""Per-UDF thread groups (Section 6.1).

"Each UDF is executed within its own thread group, preventing it from
affecting the threads executing other UDFs."

A :class:`ThreadGroup` owns the threads and resource accounts of one
UDF's concurrent invocations.  Termination is cooperative-but-prompt:
killing a group revokes every member account, and revocation is observed
at the next fuel check — at most one basic block of sandboxed execution
away.  This is how Java thread groups *should* have worked for UDFs (the
paper notes ``Thread.stop``-style asynchronous kills are unsound; fuel
revocation gives the same effect safely).
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional

from ..errors import SecurityViolation, VMError
from .resources import ResourceAccount


class ThreadGroup:
    """The threads and accounts belonging to one UDF."""

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._accounts: List[ResourceAccount] = []
        self._threads: List[threading.Thread] = []
        self._killed = False

    def adopt_account(self, account: ResourceAccount) -> ResourceAccount:
        """Register an invocation's account with the group."""
        with self._lock:
            if self._killed:
                account.revoke()
            self._accounts.append(account)
        return account

    def spawn(
        self,
        target: Callable,
        args: tuple = (),
        name: Optional[str] = None,
    ) -> threading.Thread:
        """Run ``target`` on a new thread owned by this group.

        The target is expected to execute sandboxed code charging an
        account adopted into this group; errors are captured on the
        thread object (``thread.udf_error``) rather than crashing the
        server, mirroring how PREDATOR must confine UDF faults.
        """
        with self._lock:
            if self._killed:
                raise SecurityViolation(
                    f"thread group {self.name!r} has been killed"
                )

        def runner() -> None:
            try:
                thread.udf_result = target(*args)
            except VMError as exc:
                thread.udf_error = exc

        thread = threading.Thread(
            target=runner,
            name=name or f"udf-group-{self.name}",
            daemon=True,
        )
        thread.udf_result = None
        thread.udf_error = None
        with self._lock:
            self._threads.append(thread)
        thread.start()
        return thread

    def kill(self) -> None:
        """Revoke every member account; running invocations die at their
        next fuel check, and no new threads may be spawned."""
        with self._lock:
            self._killed = True
            accounts = list(self._accounts)
        for account in accounts:
            account.revoke()

    def join(self, timeout: Optional[float] = None) -> None:
        with self._lock:
            threads = list(self._threads)
        for thread in threads:
            thread.join(timeout)

    @property
    def killed(self) -> bool:
        return self._killed

    @property
    def live_threads(self) -> List[threading.Thread]:
        with self._lock:
            return [t for t in self._threads if t.is_alive()]


class ThreadGroupRegistry:
    """Server-wide map of UDF name -> thread group."""

    def __init__(self) -> None:
        self._groups: Dict[str, ThreadGroup] = {}
        self._lock = threading.Lock()

    def group_for(self, udf_name: str) -> ThreadGroup:
        with self._lock:
            group = self._groups.get(udf_name)
            if group is None:
                group = ThreadGroup(udf_name)
                self._groups[udf_name] = group
            return group

    def kill(self, udf_name: str) -> None:
        with self._lock:
            group = self._groups.pop(udf_name, None)
        if group is not None:
            group.kill()
