"""Per-UDF thread groups (Section 6.1).

"Each UDF is executed within its own thread group, preventing it from
affecting the threads executing other UDFs."

A :class:`ThreadGroup` owns the threads and resource accounts of one
UDF's concurrent invocations.  Termination is cooperative-but-prompt:
killing a group revokes every member account, and revocation is observed
at the next fuel check — at most one basic block of sandboxed execution
away.  This is how Java thread groups *should* have worked for UDFs (the
paper notes ``Thread.stop``-style asynchronous kills are unsound; fuel
revocation gives the same effect safely).
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional

from ..errors import AdmissionRefused, SecurityViolation, VMError
from .resources import ResourceAccount


class ThreadGroup:
    """The threads and accounts belonging to one UDF.

    A group may carry *budgets* — caps on the summed worst-case fuel and
    memory of its concurrently admitted queries.  Callers reserve their
    certified worst case (or their full account quota when no static
    bound exists) before running; a claim that cannot fit is refused (or
    queued) up front via :class:`~repro.errors.AdmissionRefused`, rather
    than admitted and killed mid-flight.  Budgets of ``None`` (the
    default) disable admission control entirely.
    """

    def __init__(
        self,
        name: str,
        fuel_budget: Optional[int] = None,
        memory_budget: Optional[int] = None,
    ):
        self.name = name
        self._lock = threading.Lock()
        self._admission = threading.Condition(self._lock)
        self._accounts: List[ResourceAccount] = []
        self._threads: List[threading.Thread] = []
        self._killed = False
        self.fuel_budget = fuel_budget
        self.memory_budget = memory_budget
        self._fuel_reserved = 0
        self._memory_reserved = 0
        # holder label -> (fuel, memory) currently reserved under it.
        # Worker pools label per-worker claims ("udf/worker3") so a DBA
        # can see which process a reservation belongs to.
        self._holders: Dict[str, List[int]] = {}

    def adopt_account(self, account: ResourceAccount) -> ResourceAccount:
        """Register an invocation's account with the group."""
        with self._lock:
            if self._killed:
                account.revoke()
            self._accounts.append(account)
        return account

    # -- admission control -------------------------------------------------

    def _fits(self, fuel: int, memory: int) -> bool:
        if self.fuel_budget is not None:
            if self._fuel_reserved + fuel > self.fuel_budget:
                return False
        if self.memory_budget is not None:
            if self._memory_reserved + memory > self.memory_budget:
                return False
        return True

    def reserve(
        self,
        fuel: int,
        memory: int,
        wait: bool = False,
        timeout: Optional[float] = None,
        holder: Optional[str] = None,
    ) -> None:
        """Claim worst-case resources for one query's invocations.

        Raises :class:`AdmissionRefused` when the claim cannot fit the
        remaining budget (immediately with ``wait=False``; after other
        queries release without making room, with ``wait=True`` and a
        ``timeout``).  A claim exceeding the *whole* budget is refused
        outright — waiting could never admit it.  ``holder`` optionally
        labels the claim (e.g. one label per pool worker) so
        :attr:`reservations_by_holder` can attribute the group's reserved
        totals to individual execution units.
        """
        with self._admission:
            if self._killed:
                raise SecurityViolation(
                    f"thread group {self.name!r} has been killed"
                )
            over_total = (
                self.fuel_budget is not None and fuel > self.fuel_budget
            ) or (
                self.memory_budget is not None
                and memory > self.memory_budget
            )
            if over_total:
                raise AdmissionRefused(
                    f"thread group {self.name!r}: claim of {fuel} fuel / "
                    f"{memory} bytes exceeds the group budget outright"
                )
            if not self._fits(fuel, memory):
                if not wait:
                    raise AdmissionRefused(
                        f"thread group {self.name!r}: claim of {fuel} fuel "
                        f"/ {memory} bytes does not fit the remaining "
                        f"budget"
                    )
                admitted = self._admission.wait_for(
                    lambda: self._killed or self._fits(fuel, memory),
                    timeout=timeout,
                )
                if self._killed:
                    raise SecurityViolation(
                        f"thread group {self.name!r} has been killed"
                    )
                if not admitted:
                    raise AdmissionRefused(
                        f"thread group {self.name!r}: claim of {fuel} fuel "
                        f"/ {memory} bytes still does not fit after "
                        f"waiting {timeout}s"
                    )
            self._fuel_reserved += fuel
            self._memory_reserved += memory
            if holder is not None:
                entry = self._holders.setdefault(holder, [0, 0])
                entry[0] += fuel
                entry[1] += memory

    def release(
        self, fuel: int, memory: int, holder: Optional[str] = None
    ) -> None:
        """Return a reservation; wakes queued :meth:`reserve` callers."""
        with self._admission:
            self._fuel_reserved = max(0, self._fuel_reserved - fuel)
            self._memory_reserved = max(0, self._memory_reserved - memory)
            if holder is not None:
                entry = self._holders.get(holder)
                if entry is not None:
                    entry[0] = max(0, entry[0] - fuel)
                    entry[1] = max(0, entry[1] - memory)
                    if entry == [0, 0]:
                        del self._holders[holder]
            self._admission.notify_all()

    @property
    def reserved(self) -> dict:
        with self._lock:
            return {
                "fuel": self._fuel_reserved,
                "memory": self._memory_reserved,
            }

    @property
    def reservations_by_holder(self) -> Dict[str, dict]:
        """Labelled claims: holder -> {fuel, memory} currently reserved."""
        with self._lock:
            return {
                holder: {"fuel": entry[0], "memory": entry[1]}
                for holder, entry in self._holders.items()
            }

    def spawn(
        self,
        target: Callable,
        args: tuple = (),
        name: Optional[str] = None,
    ) -> threading.Thread:
        """Run ``target`` on a new thread owned by this group.

        The target is expected to execute sandboxed code charging an
        account adopted into this group; errors are captured on the
        thread object (``thread.udf_error``) rather than crashing the
        server, mirroring how PREDATOR must confine UDF faults.
        """
        with self._lock:
            if self._killed:
                raise SecurityViolation(
                    f"thread group {self.name!r} has been killed"
                )

        def runner() -> None:
            try:
                thread.udf_result = target(*args)
            except VMError as exc:
                thread.udf_error = exc

        thread = threading.Thread(
            target=runner,
            name=name or f"udf-group-{self.name}",
            daemon=True,
        )
        thread.udf_result = None
        thread.udf_error = None
        with self._lock:
            self._threads.append(thread)
        thread.start()
        return thread

    def kill(self) -> None:
        """Revoke every member account; running invocations die at their
        next fuel check, and no new threads may be spawned."""
        with self._admission:
            self._killed = True
            accounts = list(self._accounts)
            self._admission.notify_all()  # unblock queued reservations
        for account in accounts:
            account.revoke()

    def join(self, timeout: Optional[float] = None) -> None:
        with self._lock:
            threads = list(self._threads)
        for thread in threads:
            thread.join(timeout)

    @property
    def killed(self) -> bool:
        return self._killed

    @property
    def live_threads(self) -> List[threading.Thread]:
        with self._lock:
            return [t for t in self._threads if t.is_alive()]


class ThreadGroupRegistry:
    """Server-wide map of UDF name -> thread group."""

    def __init__(self) -> None:
        self._groups: Dict[str, ThreadGroup] = {}
        self._lock = threading.Lock()

    def group_for(self, udf_name: str) -> ThreadGroup:
        with self._lock:
            group = self._groups.get(udf_name)
            if group is None:
                group = ThreadGroup(udf_name)
                self._groups[udf_name] = group
            return group

    def set_budget(
        self,
        udf_name: str,
        fuel: Optional[int] = None,
        memory: Optional[int] = None,
    ) -> ThreadGroup:
        """Configure (or clear, with None) a UDF group's admission budget."""
        group = self.group_for(udf_name)
        with group._admission:
            group.fuel_budget = fuel
            group.memory_budget = memory
            group._admission.notify_all()
        return group

    def kill(self, udf_name: str) -> None:
        with self._lock:
            group = self._groups.pop(udf_name, None)
        if group is not None:
            group.kill()
