"""JaguarVM: the sandboxed, portable UDF runtime (the paper's "Java").

Public surface:

* :func:`~repro.vm.compiler.compile_source` — JagScript source to classfile
* :class:`~repro.vm.classfile.ClassFile` — the migration unit
* :func:`~repro.vm.verifier.verify_class` — load-time safety proof
* :class:`~repro.vm.machine.JaguarVM` — the embedding facade the server
  instantiates once at startup (Section 4.2)
"""

from .classfile import ClassFile, FunctionDef, PoolEntry
from .classloader import ClassLoader, SystemClassLoader, UDFClassLoader
from .compiler import compile_source
from .interpreter import ExecutionContext, run_function, single_class_context
from .machine import JaguarVM, LoadedUDF
from .opcodes import Instr, Op
from .resources import ResourceAccount, unmetered_account
from .security import Permissions, SecurityManager, open_manager
from .values import VMType
from .verifier import verify_class

__all__ = [
    "ClassFile",
    "ClassLoader",
    "ExecutionContext",
    "FunctionDef",
    "Instr",
    "JaguarVM",
    "LoadedUDF",
    "Op",
    "Permissions",
    "PoolEntry",
    "ResourceAccount",
    "SecurityManager",
    "SystemClassLoader",
    "UDFClassLoader",
    "VMType",
    "compile_source",
    "open_manager",
    "run_function",
    "single_class_context",
    "unmetered_account",
    "verify_class",
]
