"""JaguarVM JIT: verified bytecode -> host (Python) closures.

The paper's JVM "also compiles parts of the byte codes to machine code
before execution", and its performance conclusions assume a JIT ("given
current trends in JIT compiler technology...").  JaguarVM's equivalent
translates verified bytecode into Python source, compiles it with the
host compiler, and caches the resulting closure.

The translation keeps every safety property the interpreter enforces:

* **array bounds** — each ALOAD/ASTORE/SINDEX emits an inline range
  check (this is the "price paid for security" the paper measures in
  Figure 7; the JIT pays it too, exactly like Java's JIT did);
* **fuel** — each basic block charges its instruction count and checks
  the quota, the instrument-at-back-edges strategy of the J-Kernel
  project (Section 6.2), so runaway loops still die promptly;
* **memory quotas** — every allocating opcode routes through the
  resource account;
* **64-bit wrapping arithmetic** — inline mask-and-shift, bit-identical
  to the interpreter;
* **security manager** — native permissions are checked once at compile
  time (the permission set of a loaded UDF is immutable); callbacks are
  checked on every invocation, as in the interpreter.

Because the input is *verified* bytecode, translation is straightforward:
every instruction has a known stack depth and operand types, so the
symbolic-stack translator below can map stack slots to Python expressions
without any runtime type dispatch.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ArithmeticFault, BoundsError, VerifyError
from .classfile import ClassFile, FunctionDef, K_CALLBACK, K_FUNC, K_NATIVE, K_STR
from .interpreter import ExecutionContext, _f2i, _idiv
from .opcodes import BRANCH_OPS, FIXED_EFFECTS, Op, TERMINATOR_OPS
from .stdlib import NATIVE_SIGNATURES
from .values import VMType, coerce_argument, default_value, wrap_int

_WRAP_K = 0x8000000000000000
_WRAP_M = 0xFFFFFFFFFFFFFFFF

#: ``wrap(x)`` inlined as a format string.
_WRAP = "((({x}) + 0x8000000000000000 & 0xFFFFFFFFFFFFFFFF) - 0x8000000000000000)"

_ATOM_RE = re.compile(r"[A-Za-z_][A-Za-z_0-9]*|-?\d+")


def _jit_atom_expr(atom: str) -> str:
    """Render a certificate atom against the jitted parameter names."""
    if atom.startswith("len"):
        return f"len(L{atom[3:]})"
    if atom.startswith("pos"):
        i = atom[3:]
        return f"(L{i} if L{i} > 0 else 0)"
    raise ValueError(f"unknown certificate atom {atom!r}")


def _oob(index: int, length: int):
    raise BoundsError(f"array index {index} out of range [0, {length})")


def _oob_slice(start: int, end: int, length: int):
    raise BoundsError(
        f"substring [{start}:{end}] out of range for length {length}"
    )


def _div0():
    raise ArithmeticFault("integer division by zero")


def _fdiv(a: float, b: float) -> float:
    if b == 0.0:
        raise ArithmeticFault("float division by zero")
    return a / b


def _imod(a: int, b: int) -> int:
    if b == 0:
        raise ArithmeticFault("integer modulo by zero")
    return wrap_int(a - _idiv(a, b) * b)


def _idiv_checked(a: int, b: int) -> int:
    if b == 0:
        raise ArithmeticFault("integer division by zero")
    return wrap_int(_idiv(a, b))


def _newarr(acct, n: int) -> bytearray:
    if n < 0:
        raise BoundsError(f"negative array size {n}")
    acct.charge_memory(n)
    return bytearray(n)


def _newfarr(acct, n: int):
    from array import array

    if n < 0:
        raise BoundsError(f"negative array size {n}")
    acct.charge_memory(8 * n)
    return array("d", bytes(8 * n))


def _acopy(acct, a: bytearray) -> bytearray:
    acct.charge_memory(len(a))
    return bytearray(a)


def _sconcat(acct, a: str, b: str) -> str:
    acct.charge_memory(len(a) + len(b))
    return a + b


def _ssub(acct, s: str, start: int, end: int) -> str:
    if not (0 <= start <= end <= len(s)):
        _oob_slice(start, end, len(s))
    acct.charge_memory(end - start)
    return s[start:end]


def _i2s(acct, x: int) -> str:
    s = str(x)
    acct.charge_memory(len(s))
    return s


def _f2s(acct, x: float) -> str:
    s = repr(x)
    acct.charge_memory(len(s))
    return s


from array import array as _host_array

_RUNTIME = {
    "array": _host_array,
    "_oob": _oob,
    "_oob_slice": _oob_slice,
    "_fdiv": _fdiv,
    "_imod": _imod,
    "_idiv": _idiv_checked,
    "_f2i": _f2i,
    "_newarr": _newarr,
    "_newfarr": _newfarr,
    "_acopy": _acopy,
    "_sconcat": _sconcat,
    "_ssub": _ssub,
    "_i2s": _i2s,
    "_f2s": _f2s,
    "_coerce": coerce_argument,
}

JittedFunction = Callable[[Sequence[object], ExecutionContext], object]


class JitCompiler:
    """Compiles and caches jitted functions for one class namespace."""

    def __init__(self, resolve_class: Callable[[str], ClassFile]):
        self._resolve_class = resolve_class
        self._cache: Dict[Tuple[str, str], JittedFunction] = {}

    def get(self, cls: ClassFile, func: FunctionDef,
            ctx: ExecutionContext) -> JittedFunction:
        key = (cls.name, func.name)
        jitted = self._cache.get(key)
        if jitted is None:
            jitted = compile_function(cls, func, ctx, self)
            self._cache[key] = jitted
        return jitted

    def call(self, class_name: str, func_name: str,
             args: Sequence[object], ctx: ExecutionContext) -> object:
        """CALL dispatch used from generated code."""
        callee_cls, callee = ctx.resolve_function(class_name, func_name)
        jitted = self.get(callee_cls, callee, ctx)
        ctx.account.enter_call()
        try:
            return jitted(args, ctx)
        finally:
            ctx.account.exit_call()


def invoke_jit(
    cls: ClassFile,
    func: FunctionDef,
    args: Sequence[object],
    ctx: ExecutionContext,
    compiler: Optional[JitCompiler] = None,
) -> object:
    """JIT-mode counterpart of :func:`repro.vm.interpreter.run_function`."""
    if not cls.verified:
        raise VerifyError(f"refusing to execute unverified class {cls.name!r}")
    if compiler is None:
        compiler = JitCompiler(lambda name: cls)
    if len(args) != len(func.param_types):
        from ..errors import VMRuntimeError

        raise VMRuntimeError(
            f"{cls.name}.{func.name} expects {len(func.param_types)} "
            f"arguments, got {len(args)}"
        )
    vm_args = [coerce_argument(a, t) for a, t in zip(args, func.param_types)]
    jitted = compiler.get(cls, func, ctx)
    ctx.account.enter_call()
    try:
        return jitted(vm_args, ctx)
    finally:
        ctx.account.exit_call()


# ---------------------------------------------------------------------------
# Translation
# ---------------------------------------------------------------------------

def compile_function(
    cls: ClassFile,
    func: FunctionDef,
    ctx: ExecutionContext,
    compiler: JitCompiler,
) -> JittedFunction:
    """Translate one verified function to a Python closure."""
    source, namespace = _translate(cls, func, ctx, compiler)
    code = compile(source, f"<jit {cls.name}.{func.name}>", "exec")
    exec(code, namespace)
    return namespace["__jag"]


def _stack_depths(cls: ClassFile, func: FunctionDef,
                  ctx: ExecutionContext) -> List[int]:
    """Entry stack depth of every instruction (the code is verified, so
    depths at joins agree)."""
    code = func.code
    depths: List[Optional[int]] = [None] * len(code)
    depths[0] = 0
    work = [0]
    while work:
        pc = work.pop()
        depth = depths[pc]
        ins = code[pc]
        op = ins.op
        fixed = FIXED_EFFECTS.get(op)
        if fixed is not None:
            after = depth - len(fixed[0]) + len(fixed[1])
        elif op in (Op.ICONST, Op.FCONST, Op.BCONST, Op.SCONST, Op.LOAD, Op.DUP):
            after = depth + 1
        elif op in (Op.STORE, Op.POP):
            after = depth - 1
        elif op in (Op.SWAP, Op.JMP):
            after = depth
        elif op in (Op.RET, Op.RETV):
            after = 0
        elif op is Op.CALL:
            class_name, func_name = cls.constant(ins.arg, K_FUNC)
            __, callee = ctx.resolve_function(class_name, func_name)
            after = depth - len(callee.param_types)
            if callee.ret_type is not VMType.VOID:
                after += 1
        elif op in (Op.NATIVE, Op.CALLBACK):
            if op is Op.NATIVE:
                (name,) = cls.constant(ins.arg, K_NATIVE)
                params, ret = NATIVE_SIGNATURES[name]
            else:
                (name,) = cls.constant(ins.arg, K_CALLBACK)
                params, ret = ctx.callback_signatures[name]
            after = depth - len(params)
            if ret is not VMType.VOID:
                after += 1
        else:  # pragma: no cover
            raise VerifyError(f"jit cannot size opcode {op}")
        for succ in _successors(pc, ins):
            if succ < len(code) and depths[succ] is None:
                depths[succ] = after
                work.append(succ)
    return [d if d is not None else 0 for d in depths]


def _successors(pc: int, ins) -> List[int]:
    succ = []
    if ins.op in BRANCH_OPS:
        succ.append(ins.arg)
    if ins.op not in TERMINATOR_OPS:
        succ.append(pc + 1)
    return succ


def _leaders(func: FunctionDef) -> List[int]:
    leaders = {0}
    for pc, ins in enumerate(func.code):
        if ins.op in BRANCH_OPS:
            leaders.add(ins.arg)
            if ins.op is not Op.JMP:
                leaders.add(pc + 1)
        elif ins.op in (Op.RET, Op.RETV):
            if pc + 1 < len(func.code):
                leaders.add(pc + 1)
    return sorted(leaders)


class _BlockWriter:
    """Emits the Python statements of one basic block."""

    def __init__(self, entry_depth: int):
        self.lines: List[str] = []
        self.stack: List[str] = [f"s{i}" for i in range(entry_depth)]
        self._temp = 0

    def emit(self, line: str) -> None:
        self.lines.append(line)

    def push(self, expr: str) -> None:
        self.stack.append(expr)

    def pop(self) -> str:
        return self.stack.pop()

    def temp(self, expr: str) -> str:
        name = f"t{self._temp}"
        self._temp += 1
        self.emit(f"{name} = {expr}")
        return name

    def atom(self, expr: str) -> str:
        """Materialize a non-trivial expression into a temp variable."""
        if _ATOM_RE.fullmatch(expr):
            return expr
        return self.temp(expr)

    def flush_below(self, keep: int) -> None:
        """Materialize all stack entries except the top ``keep``.

        Called before side-effecting operations so that pending (lazy)
        expressions are evaluated in stack-machine order.
        """
        limit = len(self.stack) - keep
        for i in range(limit):
            expr = self.stack[i]
            if not _ATOM_RE.fullmatch(expr):
                self.stack[i] = self.temp(expr)

    def spill_to_entry_names(self) -> None:
        """Assign the symbolic stack to the canonical s0.. names, so a
        successor block finds its entry stack where it expects it."""
        targets = [f"s{i}" for i in range(len(self.stack))]
        pairs = [
            (t, e) for t, e in zip(targets, self.stack) if t != e
        ]
        if pairs:
            lhs = ", ".join(t for t, __ in pairs)
            rhs = ", ".join(e for __, e in pairs)
            self.emit(f"{lhs} = {rhs}")
        self.stack = targets


def _translate(
    cls: ClassFile,
    func: FunctionDef,
    ctx: ExecutionContext,
    compiler: JitCompiler,
) -> Tuple[str, dict]:
    code = func.code
    depths = _stack_depths(cls, func, ctx)
    leaders = _leaders(func)
    leader_set = set(leaders)

    namespace: dict = dict(_RUNTIME)
    namespace["__compiler"] = compiler

    # Natives: permission checked once, implementations bound directly.
    native_names = set()
    for ins in code:
        if ins.op is Op.NATIVE:
            (name,) = cls.constant(ins.arg, K_NATIVE)
            ctx.security.check_native(name)
            native_names.add(name)
    for name in native_names:
        namespace[f"__n_{name}"] = ctx.natives[name]

    out: List[str] = []
    out.append("def __jag(__args, __ctx):")
    out.append("    __acct = __ctx.account")
    nparams = len(func.param_types)
    if nparams:
        names = ", ".join(f"L{i}" for i in range(nparams))
        trailing = "," if nparams == 1 else ""
        out.append(f"    ({names}{trailing}) = __args")
    for i, t in enumerate(func.local_types[nparams:], start=nparams):
        out.append(f"    L{i} = {default_value(t)!r}")
    # Certified-bound prologue: when the static certifier proved a fuel
    # bound for this method (callees excluded — they charge their own
    # prologue), pay the whole worst case once and skip the per-block
    # meter.  Falls back to dynamic metering when the bound does not fit
    # the remaining quota or the account was revoked before entry.
    cert = getattr(func, "certificate", None)
    local_bound = getattr(cert, "local_fuel_bound", None)
    if local_bound is not None:
        expr = local_bound.as_python(_jit_atom_expr)
        out.append("    if __acct.revoked:")
        out.append("        __meter = True")
        out.append("    else:")
        out.append(f"        __b = {expr}")
        out.append("        __meter = __b > __acct.fuel")
        out.append("        if not __meter:")
        out.append("            __acct.fuel -= __b")
    else:
        out.append("    __meter = True")
    out.append("    __pc = 0")
    out.append("    while True:")

    first = True
    for block_index, start in enumerate(leaders):
        end = leaders[block_index + 1] if block_index + 1 < len(leaders) else len(code)
        writer = _BlockWriter(depths[start])
        closed = _emit_block(cls, func, ctx, writer, code, start, end, namespace)
        if not closed:
            # Fall through to the next leader.
            writer.spill_to_entry_names()
            writer.emit(f"__pc = {end}")
            writer.emit("continue")
        keyword = "if" if first else "elif"
        first = False
        out.append(f"        {keyword} __pc == {start}:")
        fuel_units = end - start
        out.append("            if __meter:")
        out.append(f"                __acct.fuel -= {fuel_units}")
        out.append("                if __acct.fuel < 0: __acct.out_of_fuel()")
        for line in writer.lines:
            out.append(f"            {line}")
    source = "\n".join(out) + "\n"
    return source, namespace


def _emit_block(
    cls: ClassFile,
    func: FunctionDef,
    ctx: ExecutionContext,
    w: _BlockWriter,
    code,
    start: int,
    end: int,
    namespace: dict,
) -> bool:
    """Emit instructions [start, end); True if the block ends in a
    branch/return (i.e. control never falls through)."""
    for pc in range(start, end):
        ins = code[pc]
        op = ins.op

        if op is Op.ICONST:
            w.push(repr(ins.arg))
        elif op is Op.FCONST:
            w.push(repr(ins.arg))
        elif op is Op.BCONST:
            w.push("True" if ins.arg == 1 else "False")
        elif op is Op.SCONST:
            const_name = f"K{ins.arg}"
            namespace[const_name] = cls.pool[ins.arg].value[0]
            w.push(const_name)
        elif op is Op.LOAD:
            w.push(f"L{ins.arg}")
        elif op is Op.STORE:
            value = w.pop()
            w.flush_below(0)
            w.emit(f"L{ins.arg} = {value}")
        elif op is Op.POP:
            expr = w.pop()
            if not _ATOM_RE.fullmatch(expr):
                w.emit(f"__ = {expr}")
        elif op is Op.DUP:
            top = w.atom(w.pop())
            w.push(top)
            w.push(top)
        elif op is Op.SWAP:
            b = w.atom(w.pop())
            a = w.atom(w.pop())
            w.push(b)
            w.push(a)

        elif op is Op.IADD:
            b = w.pop(); a = w.pop()
            w.push(_WRAP.format(x=f"({a}) + ({b})"))
        elif op is Op.ISUB:
            b = w.pop(); a = w.pop()
            w.push(_WRAP.format(x=f"({a}) - ({b})"))
        elif op is Op.IMUL:
            b = w.pop(); a = w.pop()
            w.push(_WRAP.format(x=f"({a}) * ({b})"))
        elif op is Op.IDIV:
            b = w.pop(); a = w.pop()
            w.push(f"_idiv({a}, {b})")
        elif op is Op.IMOD:
            b = w.pop(); a = w.pop()
            w.push(f"_imod({a}, {b})")
        elif op is Op.INEG:
            a = w.pop()
            w.push(_WRAP.format(x=f"-({a})"))
        elif op is Op.IAND:
            b = w.pop(); a = w.pop()
            w.push(f"(({a}) & ({b}))")
        elif op is Op.IOR:
            b = w.pop(); a = w.pop()
            w.push(f"(({a}) | ({b}))")
        elif op is Op.IXOR:
            b = w.pop(); a = w.pop()
            w.push(f"(({a}) ^ ({b}))")
        elif op is Op.ISHL:
            b = w.pop(); a = w.pop()
            w.push(_WRAP.format(x=f"({a}) << (({b}) & 63)"))
        elif op is Op.ISHR:
            b = w.pop(); a = w.pop()
            w.push(_WRAP.format(x=f"({a}) >> (({b}) & 63)"))

        elif op is Op.FADD:
            b = w.pop(); a = w.pop()
            w.push(f"(({a}) + ({b}))")
        elif op is Op.FSUB:
            b = w.pop(); a = w.pop()
            w.push(f"(({a}) - ({b}))")
        elif op is Op.FMUL:
            b = w.pop(); a = w.pop()
            w.push(f"(({a}) * ({b}))")
        elif op is Op.FDIV:
            b = w.pop(); a = w.pop()
            w.push(f"_fdiv({a}, {b})")
        elif op is Op.FNEG:
            a = w.pop()
            w.push(f"(-({a}))")

        elif op is Op.I2F:
            a = w.pop()
            w.push(f"float({a})")
        elif op is Op.F2I:
            a = w.pop()
            w.push(f"_f2i({a})")
        elif op is Op.I2S:
            a = w.pop()
            w.push(f"_i2s(__acct, {a})")
        elif op is Op.F2S:
            a = w.pop()
            w.push(f"_f2s(__acct, {a})")

        elif op in (Op.ICMPLT, Op.FCMPLT):
            b = w.pop(); a = w.pop()
            w.push(f"(({a}) < ({b}))")
        elif op in (Op.ICMPLE, Op.FCMPLE):
            b = w.pop(); a = w.pop()
            w.push(f"(({a}) <= ({b}))")
        elif op in (Op.ICMPGT, Op.FCMPGT):
            b = w.pop(); a = w.pop()
            w.push(f"(({a}) > ({b}))")
        elif op in (Op.ICMPGE, Op.FCMPGE):
            b = w.pop(); a = w.pop()
            w.push(f"(({a}) >= ({b}))")
        elif op in (Op.ICMPEQ, Op.FCMPEQ, Op.SEQ):
            b = w.pop(); a = w.pop()
            w.push(f"(({a}) == ({b}))")
        elif op in (Op.ICMPNE, Op.FCMPNE):
            b = w.pop(); a = w.pop()
            w.push(f"(({a}) != ({b}))")

        elif op is Op.NOT:
            a = w.pop()
            w.push(f"(not ({a}))")
        elif op is Op.BAND:
            b = w.atom(w.pop()); a = w.atom(w.pop())
            w.push(f"({a} and {b})")
        elif op is Op.BOR:
            b = w.atom(w.pop()); a = w.atom(w.pop())
            w.push(f"({a} or {b})")

        elif op is Op.SCONCAT:
            b = w.pop(); a = w.pop()
            w.push(f"_sconcat(__acct, {a}, {b})")
        elif op is Op.SLEN:
            a = w.pop()
            w.push(f"len({a})")
        elif op is Op.SINDEX:
            i = w.atom(w.pop()); s = w.atom(w.pop())
            w.push(f"(ord({s}[{i}]) if 0 <= {i} < len({s}) "
                   f"else _oob({i}, len({s})))")
        elif op is Op.SSUB:
            e = w.pop(); st = w.pop(); s = w.pop()
            w.push(f"_ssub(__acct, {s}, {st}, {e})")

        elif op is Op.NEWARR:
            n = w.pop()
            w.flush_below(0)
            w.push(w.temp(f"_newarr(__acct, {n})"))
        elif op is Op.ALOAD:
            i = w.atom(w.pop()); a = w.atom(w.pop())
            w.push(f"({a}[{i}] if 0 <= {i} < len({a}) "
                   f"else _oob({i}, len({a})))")
        elif op is Op.ASTORE:
            v = w.pop(); i = w.pop(); a = w.pop()
            w.flush_below(0)
            i = w.atom(i)
            a = w.atom(a)
            w.emit(f"if not 0 <= {i} < len({a}): _oob({i}, len({a}))")
            w.emit(f"{a}[{i}] = ({v}) & 255")
        elif op is Op.ALEN:
            a = w.pop()
            w.push(f"len({a})")
        elif op is Op.ACOPY:
            a = w.pop()
            w.flush_below(0)
            w.push(w.temp(f"_acopy(__acct, {a})"))

        elif op is Op.NEWFARR:
            n = w.pop()
            w.flush_below(0)
            w.push(w.temp(f"_newfarr(__acct, {n})"))
        elif op is Op.FALOAD:
            i = w.atom(w.pop()); a = w.atom(w.pop())
            w.push(f"({a}[{i}] if 0 <= {i} < len({a}) "
                   f"else _oob({i}, len({a})))")
        elif op is Op.FASTORE:
            v = w.pop(); i = w.pop(); a = w.pop()
            w.flush_below(0)
            i = w.atom(i)
            a = w.atom(a)
            w.emit(f"if not 0 <= {i} < len({a}): _oob({i}, len({a}))")
            w.emit(f"{a}[{i}] = {v}")
        elif op is Op.FALEN:
            a = w.pop()
            w.push(f"len({a})")

        elif op is Op.JMP:
            w.spill_to_entry_names()
            w.emit(f"__pc = {ins.arg}")
            w.emit("continue")
            return True
        elif op is Op.JZ or op is Op.JNZ:
            cond = w.pop()
            cond = w.atom(cond) if not _ATOM_RE.fullmatch(cond) else cond
            w.spill_to_entry_names()
            negation = "not " if op is Op.JZ else ""
            w.emit(f"if {negation}{cond}:")
            w.emit(f"    __pc = {ins.arg}")
            w.emit("    continue")
        elif op is Op.RET:
            value = w.pop()
            w.emit(f"return {value}")
            return True
        elif op is Op.RETV:
            w.emit("return None")
            return True

        elif op is Op.CALL:
            class_name, func_name = cls.constant(ins.arg, K_FUNC)
            __, callee = ctx.resolve_function(class_name, func_name)
            nargs = len(callee.param_types)
            args = [w.pop() for _ in range(nargs)]
            args.reverse()
            w.flush_below(0)
            arg_list = ", ".join(args)
            trailing = "," if nargs == 1 else ""
            call = (f"__compiler.call({class_name!r}, {func_name!r}, "
                    f"({arg_list}{trailing}), __ctx)")
            if callee.ret_type is VMType.VOID:
                w.emit(call)
            else:
                w.push(w.temp(call))
        elif op is Op.NATIVE:
            (name,) = cls.constant(ins.arg, K_NATIVE)
            params, ret = NATIVE_SIGNATURES[name]
            args = [w.pop() for _ in range(len(params))]
            args.reverse()
            w.flush_below(0)
            call = f"__n_{name}({', '.join(args)})"
            if ret is VMType.VOID:
                w.emit(call)
            else:
                w.push(w.temp(call))
        elif op is Op.CALLBACK:
            (name,) = cls.constant(ins.arg, K_CALLBACK)
            params, ret = ctx.callback_signatures[name]
            args = [w.pop() for _ in range(len(params))]
            args.reverse()
            w.flush_below(0)
            arg_list = ", ".join(args)
            trailing = "," if len(args) == 1 else ""
            call = f"__ctx.invoke_callback({name!r}, ({arg_list}{trailing}))"
            if ret is VMType.VOID:
                w.emit(call)
            else:
                ret_name = f"__rt_{ret.value}"
                namespace[ret_name] = ret
                w.push(w.temp(f"_coerce({call}, {ret_name})"))
        else:  # pragma: no cover - verified code contains only known ops
            raise VerifyError(f"jit cannot translate {op}")
    return False
