"""The JaguarVM embedding facade.

Section 4.2 of the paper: "a single JVM is created when the database
server starts up, and is used until shutdown.  Each Java UDF is packaged
as a method within its own class."  :class:`JaguarVM` plays that role
here: the server instantiates one at startup, loads each registered UDF
into its own isolated class loader, and invokes entry points across the
JNI-analog boundary.

Every loaded UDF carries its own security manager (permissions + audit
log), class-loader namespace, and JIT cache.  Resource quotas are set at
load time and charged per invocation.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Union

from ..errors import LinkError, VerifyError, VMRuntimeError
from .classfile import ClassFile
from .classloader import SystemClassLoader, UDFClassLoader
from .interpreter import ExecutionContext, run_function
from .jit import JitCompiler, invoke_jit
from .resources import DEFAULT_POLICY, QuotaPolicy, ResourceAccount
from .security import Permissions, SecurityManager, Signature
from .values import coerce_argument, coerce_argument_readonly


class LoadedUDF:
    """One UDF admitted into the VM: classes + policy + JIT cache."""

    def __init__(
        self,
        name: str,
        loader: UDFClassLoader,
        main_class: ClassFile,
        security: SecurityManager,
        callbacks: Dict[str, Callable],
        use_jit: bool,
        policy: QuotaPolicy,
    ):
        self.name = name
        self.loader = loader
        self.main_class = main_class
        self.security = security
        self.callbacks = callbacks
        self.use_jit = use_jit
        self.policy = policy
        self._jit = JitCompiler(loader.resolve_class)
        self._kernels: Dict[str, Callable] = {}

    # Kept as properties: a lot of code (and tests) reads the quota off
    # the loaded UDF directly.
    @property
    def fuel(self) -> int:
        return self.policy.fuel

    @property
    def memory(self) -> int:
        return self.policy.memory

    @property
    def max_depth(self) -> int:
        return self.policy.max_depth

    def new_account(self) -> ResourceAccount:
        """A fresh quota for one invocation."""
        return self.policy.account()

    def make_context(
        self,
        account: Optional[ResourceAccount] = None,
        callbacks: Optional[Dict[str, Callable]] = None,
    ) -> ExecutionContext:
        return ExecutionContext(
            resolve_function=self.loader.resolve_function,
            callbacks=callbacks if callbacks is not None else self.callbacks,
            security=self.security,
            account=account if account is not None else self.new_account(),
            callback_signatures=self.loader.callback_signatures,
        )

    def invoke(
        self,
        func_name: str,
        args: Sequence[object],
        account: Optional[ResourceAccount] = None,
        callbacks: Optional[Dict[str, Callable]] = None,
        context: Optional[ExecutionContext] = None,
    ) -> object:
        """Run ``main_class.func_name(*args)`` inside the sandbox.

        ``context`` lets callers reuse one context (and one resource
        account) across many invocations — the per-tuple fast path the
        UDF executors use; otherwise a fresh account is created.
        """
        func = self.main_class.functions.get(func_name)
        if func is None:
            raise LinkError(
                f"UDF {self.name!r} has no function {func_name!r}"
            )
        ctx = context if context is not None else self.make_context(
            account=account, callbacks=callbacks
        )
        if self.use_jit:
            return invoke_jit(self.main_class, func, args, ctx, self._jit)
        return run_function(self.main_class, func, args, ctx)

    def make_invoker(
        self,
        func_name: str,
        context: ExecutionContext,
        use_jit: Optional[bool] = None,
        elide_copies: bool = True,
    ) -> Callable[[Sequence[object]], object]:
        """Build a per-call closure with invocation-invariant work hoisted.

        One VM "entry" (function lookup, verified check, JIT compile) is
        paid here; the returned callable only marshals arguments and
        runs.  This is the batch fast path: the executor enters the VM
        once per batch and calls the closure once per tuple.

        When ``elide_copies`` is true and the function carries a flow
        certificate, byte-array arguments for parameters proven
        read-only skip the defensive marshalling copy (the Figure 5
        boundary tax) — the certificate guarantees the UDF cannot write
        through or retain them.
        """
        func = self.main_class.functions.get(func_name)
        if func is None:
            raise LinkError(
                f"UDF {self.name!r} has no function {func_name!r}"
            )
        cls = self.main_class
        readonly: frozenset = frozenset()
        if elide_copies:
            flows = getattr(func, "flows", None)
            if flows is not None:
                readonly = frozenset(flows.readonly_params)
        jit = self.use_jit if use_jit is None else use_jit
        if not jit:
            def invoke_interp(args: Sequence[object]) -> object:
                return run_function(
                    cls, func, args, context, readonly_params=readonly
                )

            return invoke_interp
        if not cls.verified:
            raise VerifyError(
                f"refusing to execute unverified class {cls.name!r}"
            )
        jitted = self._jit.get(cls, func, context)
        param_types = func.param_types
        nparams = len(param_types)
        account = context.account
        coercers = [
            coerce_argument_readonly if index in readonly
            else coerce_argument
            for index in range(nparams)
        ]

        def invoke_one(args: Sequence[object]) -> object:
            if len(args) != nparams:
                raise VMRuntimeError(
                    f"{cls.name}.{func.name} expects {nparams} "
                    f"arguments, got {len(args)}"
                )
            vm_args = [
                c(a, t) for c, a, t in zip(coercers, args, param_types)
            ]
            account.enter_call()
            try:
                return jitted(vm_args, context)
            finally:
                account.exit_call()

        return invoke_one

    def make_batch_invoker(self, func_name: str, context: ExecutionContext):
        """Compile (and cache) the tier-1 whole-batch kernel for an entry.

        The kernel closes over the compiler and natives only — the
        execution context travels per call — so one compiled kernel
        serves every context (including Exchange worker threads) for the
        lifetime of the loaded UDF.  Eligibility is the caller's problem
        (see :func:`repro.vm.tier.maybe_promote`); ineligible functions
        raise :class:`repro.vm.kernels.KernelUnsupported`.
        """
        kernel = self._kernels.get(func_name)
        if kernel is not None:
            return kernel
        func = self.main_class.functions.get(func_name)
        if func is None:
            raise LinkError(
                f"UDF {self.name!r} has no function {func_name!r}"
            )
        if not self.main_class.verified:
            raise VerifyError(
                f"refusing to execute unverified class "
                f"{self.main_class.name!r}"
            )
        from .kernels import compile_batch_kernel

        kernel = compile_batch_kernel(
            self.main_class, func, context, self._jit
        )
        self._kernels[func_name] = kernel
        return kernel


class JaguarVM:
    """The single, server-lifetime VM instance.

    ``callback_signatures`` declares the server callbacks visible to
    verification; actual handler callables are supplied per UDF (or per
    invocation), because handlers usually close over query state.
    """

    def __init__(
        self,
        callback_signatures: Optional[Dict[str, Signature]] = None,
        use_jit: bool = True,
        policy: QuotaPolicy = DEFAULT_POLICY,
    ):
        if callback_signatures is None:
            from ..core.callbacks import standard_callback_signatures

            callback_signatures = standard_callback_signatures()
        self.callback_signatures = callback_signatures
        self.use_jit = use_jit
        self.policy = policy
        self.system_loader = SystemClassLoader(callback_signatures)
        self._udfs: Dict[str, LoadedUDF] = {}

    def define_system_class(self, source: Union[bytes, ClassFile]) -> ClassFile:
        """Admit a trusted shared class (e.g. ADT helpers) for all UDFs."""
        return self.system_loader.define_class(source)

    def load_udf(
        self,
        name: str,
        classfiles: Sequence[Union[bytes, ClassFile]],
        main_class: Optional[str] = None,
        permissions: Optional[Permissions] = None,
        callbacks: Optional[Dict[str, Callable]] = None,
        fuel: Optional[int] = None,
        memory: Optional[int] = None,
        max_depth: Optional[int] = None,
    ) -> LoadedUDF:
        """Load (decode, verify, link) a UDF into its own namespace.

        ``classfiles`` are admitted in order, so dependencies come first
        and the main class last; ``main_class`` defaults to the last one
        admitted.  Quota arguments of ``None`` inherit the VM's
        :class:`QuotaPolicy`; explicit values derive a per-UDF policy
        without touching anything shared.
        """
        policy = self.policy.with_overrides(
            fuel=fuel, memory=memory, max_depth=max_depth
        )
        if name in self._udfs:
            raise LinkError(f"UDF {name!r} is already loaded")
        if not classfiles:
            raise LinkError(f"UDF {name!r} supplies no classfiles")
        loader = UDFClassLoader(
            udf_name=name,
            parent=self.system_loader,
            callback_signatures=self.callback_signatures,
        )
        admitted = [loader.define_class(source) for source in classfiles]
        if main_class is None:
            main = admitted[-1]
        else:
            main = loader.resolve_class(main_class)
        security = SecurityManager(
            class_name=main.name,
            permissions=permissions if permissions is not None
            else Permissions.none(),
        )
        # Static security pre-check (analyzer rollup from define_class):
        # a class whose bytecode references a callback or native outside
        # the grant is rejected here, at load — not mid-query at its
        # first denied instruction.
        for cls in admitted:
            rollup = getattr(cls, "analysis", None)
            if rollup is not None:
                security.check_static_effects(
                    rollup.callbacks, rollup.natives, where=cls.name
                )
        # Static resource-bound gate (certifier rollup from define_class):
        # a class whose *proven minimum* fuel or heap consumption already
        # exceeds the quota can never complete a single invocation — it
        # would only ever burn its whole budget and die.  Reject it here,
        # with a static:bounds audit trail, instead of at run time.
        for cls in admitted:
            certificates = getattr(cls, "certificates", None)
            if certificates is not None:
                security.check_resource_bounds(
                    certificates, policy.fuel, policy.memory, where=cls.name
                )
        # Static information-flow gate (flow certificates from
        # define_class): a class whose bytecode can move tuple-derived
        # data into a policy-declared sink callback is a confinement
        # breach; reject it here with a static:flows audit trail.
        for cls in admitted:
            flows = getattr(cls, "flows", None)
            if flows is not None:
                security.check_flows(flows, where=cls.name)
        udf = LoadedUDF(
            name=name,
            loader=loader,
            main_class=main,
            security=security,
            callbacks=callbacks or {},
            use_jit=self.use_jit,
            policy=policy,
        )
        self._udfs[name] = udf
        return udf

    def get_udf(self, name: str) -> LoadedUDF:
        try:
            return self._udfs[name]
        except KeyError:
            raise LinkError(f"UDF {name!r} is not loaded") from None

    def unload_udf(self, name: str) -> None:
        """Drop a UDF; its loader, classes, and JIT cache become garbage."""
        self._udfs.pop(name, None)

    @property
    def loaded_udfs(self) -> Dict[str, LoadedUDF]:
        return dict(self._udfs)
