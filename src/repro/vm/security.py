"""JaguarVM security manager.

The run-time half of the sandbox (Section 6.1): every interaction between
sandboxed code and its environment — callbacks to the database server,
native stdlib calls, thread creation — is interposed by a
:class:`SecurityManager` holding an explicit :class:`Permissions` set.
Following the least-privilege principle the paper cites ([SS75]), a UDF
gets exactly the callbacks its registration granted and nothing else.

Unlike the 1998 JVM, the manager also keeps an **audit log**: the paper
complains that "if the security restrictions are violated, there is no
mechanism to trace the responsible UDF classes", so every check — allowed
or denied — is recorded with the responsible class name.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..errors import SecurityViolation
from .values import VMType

Signature = Tuple[Tuple[VMType, ...], VMType]


@dataclass(frozen=True)
class Permissions:
    """Least-privilege grant for one UDF.

    ``callbacks`` names the server callbacks the UDF may invoke; every
    other callback is denied even if the server exposes it.  ``natives``
    of ``None`` grants the whole (trusted, side-effect-free) stdlib, which
    is the common case; pass a frozenset to restrict further.
    """

    callbacks: FrozenSet[str] = frozenset()
    natives: Optional[FrozenSet[str]] = None
    may_spawn_threads: bool = False
    #: Granted callbacks whose arguments leave the confinement boundary
    #: (logging, tracing).  A sink grant means the UDF may *invoke* the
    #: callback, but the flow certifier must prove no tuple-derived
    #: value reaches its arguments; otherwise the load is refused.
    sinks: FrozenSet[str] = frozenset()

    @staticmethod
    def none() -> "Permissions":
        """The default: pure computation only."""
        return Permissions()

    @staticmethod
    def with_callbacks(*names: str) -> "Permissions":
        return Permissions(callbacks=frozenset(names))


@dataclass
class AuditRecord:
    """One security-relevant event, attributable to a class."""

    timestamp: float
    class_name: str
    action: str
    target: str
    allowed: bool


@dataclass
class SecurityManager:
    """Checks every sensitive action of one sandboxed principal.

    A manager is created per UDF registration and shared by all of that
    UDF's invocations; the audit log therefore accumulates the UDF's
    whole history, giving the traceability the paper found missing.
    """

    class_name: str
    permissions: Permissions = field(default_factory=Permissions.none)
    audit_log: List[AuditRecord] = field(default_factory=list)
    allow_all: bool = False

    def _record(self, action: str, target: str, allowed: bool) -> None:
        self.audit_log.append(
            AuditRecord(time.time(), self.class_name, action, target, allowed)
        )

    def check_callback(self, name: str) -> None:
        """Gate a CALLBACK instruction; raises on denial."""
        allowed = self.allow_all or name in self.permissions.callbacks
        self._record("callback", name, allowed)
        if not allowed:
            raise SecurityViolation(
                f"UDF class {self.class_name!r} is not permitted to invoke "
                f"callback {name!r}"
            )

    def check_native(self, name: str) -> None:
        """Gate a NATIVE instruction; raises on denial."""
        natives = self.permissions.natives
        allowed = self.allow_all or natives is None or name in natives
        if not allowed:
            # Allowed native calls are too hot (and too boring) to log;
            # denials always are.
            self._record("native", name, False)
            raise SecurityViolation(
                f"UDF class {self.class_name!r} is not permitted to call "
                f"native {name!r}"
            )

    def check_spawn_thread(self) -> None:
        allowed = self.allow_all or self.permissions.may_spawn_threads
        self._record("spawn_thread", "", allowed)
        if not allowed:
            raise SecurityViolation(
                f"UDF class {self.class_name!r} may not spawn threads"
            )

    def check_static_effects(
        self,
        callbacks: FrozenSet[str],
        natives: FrozenSet[str] = frozenset(),
        where: Optional[str] = None,
    ) -> None:
        """Load-time gate over a class's *statically inferred* effect set.

        The analyzer (``repro.analysis``) knows, before a UDF ever runs,
        every callback and native its bytecode can reach; this check
        rejects the class at load when that set exceeds the permissions,
        instead of faulting mid-query on the first denied instruction.
        The run-time checks stay in place as defense in depth.
        """
        subject = where or self.class_name
        for name in sorted(callbacks):
            allowed = self.allow_all or name in self.permissions.callbacks
            self._record("static:callback", name, allowed)
            if not allowed:
                raise SecurityViolation(
                    f"UDF class {subject!r}: bytecode references callback "
                    f"{name!r} outside its permissions; rejected at load"
                )
        granted_natives = self.permissions.natives
        for name in sorted(natives):
            allowed = (
                self.allow_all
                or granted_natives is None
                or name in granted_natives
            )
            if not allowed:
                self._record("static:native", name, False)
                raise SecurityViolation(
                    f"UDF class {subject!r}: bytecode references native "
                    f"{name!r} outside its permissions; rejected at load"
                )

    def check_resource_bounds(
        self,
        certificates,
        fuel: int,
        memory: int,
        where: Optional[str] = None,
    ) -> None:
        """Load-time gate over *proven minimum* resource consumption.

        ``certificates`` is an ``analysis.bounds.ClassCertificates``
        rollup.  A function whose certified minimum fuel or heap already
        exceeds the account quota can never complete successfully — every
        run would die on FuelExhausted/MemoryQuotaExceeded after burning
        its whole budget.  Rejecting it at CREATE FUNCTION turns that
        guaranteed runtime death into a load failure the owner sees
        immediately (and the audit log records as ``static:bounds``).
        """
        subject = where or self.class_name
        for name in sorted(certificates.functions):
            cert = certificates.functions[name]
            over_fuel = not self.allow_all and cert.min_fuel > fuel
            over_mem = not self.allow_all and cert.min_memory > memory
            allowed = not (over_fuel or over_mem)
            self._record(
                "static:bounds",
                f"{name}: min_fuel={cert.min_fuel} min_mem={cert.min_memory}",
                allowed,
            )
            if over_fuel:
                raise SecurityViolation(
                    f"UDF class {subject!r}: function {name!r} provably "
                    f"consumes ≥ {cert.min_fuel} fuel but the quota is "
                    f"{fuel}; rejected at load"
                )
            if over_mem:
                raise SecurityViolation(
                    f"UDF class {subject!r}: function {name!r} provably "
                    f"allocates ≥ {cert.min_memory} bytes but the quota "
                    f"is {memory}; rejected at load"
                )

    def check_flows(
        self,
        flows,
        where: Optional[str] = None,
    ) -> None:
        """Load-time gate over *statically proven* information flows.

        ``flows`` is an ``analysis.flows.ClassFlows`` rollup.  For every
        callback the policy declares an egress *sink* (see
        ``Permissions.sinks``), the flow certificates name exactly which
        taint labels — ``arg{i}`` for tuple-derived parameters, ``cb:*``
        for server/LOB-derived callback results — can reach each call
        argument.  Any tainted label reaching a sink means the UDF could
        smuggle database contents past the confinement boundary, so the
        class is rejected at load with a ``static:flows`` audit entry.
        Clean sink invocations (constant arguments only) are allowed and
        recorded as such.
        """
        subject = where or self.class_name
        sinks = self.permissions.sinks
        for name in sorted(flows.functions):
            cert = flows.functions[name]
            for flow in cert.callback_flows:
                if flow.callback not in sinks:
                    continue
                tainted = flow.tainted
                allowed = self.allow_all or not tainted
                self._record(
                    "static:flows",
                    f"{name}: {flow.callback}@{flow.pc} <- "
                    f"{{{', '.join(tainted)}}}",
                    allowed,
                )
                if not allowed:
                    raise SecurityViolation(
                        f"UDF class {subject!r}: function {name!r} passes "
                        f"tuple-derived data ({', '.join(tainted)}) to sink "
                        f"callback {flow.callback!r}; rejected at load"
                    )

    def denials(self) -> List[AuditRecord]:
        """All denied actions, for the DBA's forensic queries."""
        return [r for r in self.audit_log if not r.allowed]


def open_manager(class_name: str = "<trusted>") -> SecurityManager:
    """A manager that allows everything; for trusted internal code paths."""
    return SecurityManager(class_name=class_name, allow_all=True)
