"""Static resource-bound certification over verified bytecode.

This is the load-time prover the paper's Section 6.2 wishes it had: the
1998 JVM could only say "UDFs can currently consume as much CPU time and
memory as they desire"; JaguarVM's answer so far has been *dynamic*
metering — a fuel decrement and check on every interpreted instruction
(and per JIT block).  This module proves bounds once, at CREATE FUNCTION
time, so the hot path can skip those checks for code that cannot run
away.

The certifier is an abstract interpreter over the CFG of PR 1:

* **interval domain** per local slot and operand-stack position, with
  widening at natural-loop headers so fixpoints converge fast;
* **affine tracking** — a value may carry ``coeff·atom + offset`` where
  the atom names an entry fact (``arg{i}``: integer argument *i*;
  ``len{i}``: length of string/array argument *i*), which is what lets a
  bound stay *symbolic* in the input size;
* **counted-loop trip bounds** — the JagScript compiler emits a fixed
  shape (``LOAD i; LOAD stop; ICMPLT; JZ exit`` in the header, a single
  ``LOAD i; ICONST step; IADD; STORE i`` increment); loops matching it
  with a loop-invariant stop get a proven trip count, everything else
  widens to ⊤;
* **worst-case fuel** — instructions executed, as a :class:`Bound`
  polynomial over ``pos{i}``/``len{i}`` atoms (so the bound specializes
  to Rel1/Rel100/Rel10000 the moment arguments are known), closed over
  the intra-class call graph in SCC order;
* **worst-case heap** — summed over the allocation-accounted opcodes
  (NEWARR/NEWFARR/ACOPY/SCONCAT/SSUB/I2S/F2S) with their statically
  bounded sizes;
* **worst-case call depth** over the intra-class call graph (recursion
  ⇒ ⊤);
* **guaranteed minimums** — fuel/heap every *successful* execution must
  consume, from blocks that dominate every exit plus proven minimum
  trip counts.  The security manager compares these against the quota:
  if even the minimum cannot fit, the UDF is rejected at load.

Soundness notes (64-bit wrap-around): intervals collapse to ⊤ when
arithmetic may leave the int64 range, and affine forms are dropped when
coefficients/offsets grow past 2^32, so a wrapped value can never hide
under a small certified bound.  Symbolic trip bounds are only emitted
for step ±1 strict comparisons, where the loop variable provably cannot
wrap before the comparison fails.  Upper bounds evaluating at or above
``MAX_BOUND`` are treated as ⊤ by consumers (the interpreter/JIT then
keep dynamic metering, which remains the backstop for everything the
prover declines to certify).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import LinkError
from ..vm.classfile import (
    ClassFile,
    FunctionDef,
    K_CALLBACK,
    K_FUNC,
    K_NATIVE,
    K_STR,
)
from ..vm.opcodes import Instr, Op
from ..vm.values import VMType
from ..vm.verifier import Resolver, self_resolver
from . import dataflow
from .cfg import Loop, build_cfg
from .effects import _sccs
from .intervals import (
    Bound,
    INF,
    Interval,
    MAX_BOUND,
    NON_NEGATIVE,
    OptBound,
    TOP,
    badd,
    bmul,
    describe_bound,
)

_INT_MAX = 2 ** 63 - 1
_INT_MIN = -(2 ** 63)

#: Affine forms with coefficients/offsets beyond this are dropped (the
#: wrap-around soundness argument in the module docstring needs it).
_AFFINE_LIMIT = 2 ** 32

#: Per-block widening trigger: a block reprocessed this often has its
#: state forced to ⊤ (guards irreducible hand-written bytecode).
_MAX_VISITS = 64

#: Upper bound on the charge of I2S / F2S (decimal int64 / float repr).
_I2S_MAX = 20
_F2S_MAX = 32


# ---------------------------------------------------------------------------
# Abstract values
# ---------------------------------------------------------------------------

K_INT = "int"      # INT and BOOL slots: interval = value range
K_SEQ = "seq"      # STR/ARR/FARR slots: interval = LENGTH range
K_OTHER = "other"  # FLOAT slots: untracked


@dataclass(frozen=True)
class AbsVal:
    """One abstract slot/stack value.

    When ``atom`` is set the concrete value (or length, for ``seq``)
    equals ``coeff * atom + offset`` exactly, where the atom is an entry
    fact about the arguments; the interval always holds as well.
    """

    kind: str
    interval: Interval = TOP
    atom: Optional[str] = None
    coeff: int = 1
    offset: int = 0


_INT_TOP = AbsVal(K_INT)
_BOOL = AbsVal(K_INT, Interval(0, 1))
_OTHER = AbsVal(K_OTHER)
_SEQ_TOP = AbsVal(K_SEQ, NON_NEGATIVE)


def _of_type(vm_type: VMType) -> AbsVal:
    if vm_type in (VMType.INT,):
        return _INT_TOP
    if vm_type is VMType.BOOL:
        return _BOOL
    if vm_type is VMType.FLOAT:
        return _OTHER
    return _SEQ_TOP


def _entry_value(index: int, vm_type: VMType) -> AbsVal:
    if vm_type is VMType.INT:
        return AbsVal(K_INT, TOP, atom=f"arg{index}")
    if vm_type is VMType.BOOL:
        return _BOOL
    if vm_type is VMType.FLOAT:
        return _OTHER
    return AbsVal(K_SEQ, NON_NEGATIVE, atom=f"len{index}")


def _affine_ok(coeff: int, offset: int) -> bool:
    return abs(coeff) <= _AFFINE_LIMIT and abs(offset) <= _AFFINE_LIMIT


def _mk(kind: str, interval: Interval, atom: Optional[str] = None,
        coeff: int = 1, offset: int = 0) -> AbsVal:
    if atom is not None and (coeff == 0 or not _affine_ok(coeff, offset)):
        atom = None
    if atom is None:
        coeff, offset = 1, 0
    return AbsVal(kind, interval, atom, coeff, offset)


def _join_val(a: AbsVal, b: AbsVal) -> AbsVal:
    if a.kind != b.kind:          # verified code keeps kinds consistent
        return _OTHER
    interval = a.interval.join(b.interval)
    if (a.atom, a.coeff, a.offset) == (b.atom, b.coeff, b.offset):
        return _mk(a.kind, interval, a.atom, a.coeff, a.offset)
    return _mk(a.kind, interval)


def _widen_val(a: AbsVal, b: AbsVal) -> AbsVal:
    joined = _join_val(a, b)
    return _mk(joined.kind, a.interval.widen(joined.interval),
               joined.atom, joined.coeff, joined.offset)


def _top_like(v: AbsVal) -> AbsVal:
    if v.kind == K_SEQ:
        return _SEQ_TOP
    if v.kind == K_INT:
        return _INT_TOP
    return _OTHER


# -- affine integer arithmetic over AbsVals ---------------------------------

def _aff_add(a: AbsVal, b: AbsVal) -> AbsVal:
    interval = a.interval.add(b.interval)
    if a.atom is not None and b.atom is None and b.interval.is_const:
        return _mk(K_INT, interval, a.atom, a.coeff,
                   a.offset + int(b.interval.lo))
    if b.atom is not None and a.atom is None and a.interval.is_const:
        return _mk(K_INT, interval, b.atom, b.coeff,
                   b.offset + int(a.interval.lo))
    if a.atom is not None and a.atom == b.atom:
        coeff = a.coeff + b.coeff
        offset = a.offset + b.offset
        if coeff == 0:
            return _mk(K_INT, Interval.const(offset))
        return _mk(K_INT, interval, a.atom, coeff, offset)
    return _mk(K_INT, interval)


def _aff_neg(a: AbsVal) -> AbsVal:
    interval = a.interval.neg()
    if a.atom is not None:
        return _mk(K_INT, interval, a.atom, -a.coeff, -a.offset)
    return _mk(K_INT, interval)


def _aff_sub(a: AbsVal, b: AbsVal) -> AbsVal:
    return _aff_add(a, _aff_neg(b))


def _aff_mul(a: AbsVal, b: AbsVal) -> AbsVal:
    interval = a.interval.mul(b.interval)
    if a.atom is not None and b.atom is None and b.interval.is_const:
        c = int(b.interval.lo)
        return _mk(K_INT, interval, a.atom, a.coeff * c, a.offset * c)
    if b.atom is not None and a.atom is None and a.interval.is_const:
        c = int(a.interval.lo)
        return _mk(K_INT, interval, b.atom, b.coeff * c, b.offset * c)
    return _mk(K_INT, interval)


def _clamp_len(v: AbsVal) -> AbsVal:
    """Reinterpret an int AbsVal as a sequence length (``>= 0``)."""
    lo = max(0.0, v.interval.lo)
    hi = max(lo, v.interval.hi)
    return _mk(K_SEQ, Interval(lo, hi), v.atom, v.coeff, v.offset)


# -- conversion to symbolic bounds ------------------------------------------

def _upper(v: AbsVal) -> OptBound:
    """Sound upper bound on ``max(0, value)`` (length, for ``seq``)."""
    if v.interval.hi != INF:
        return Bound.const(max(0.0, v.interval.hi))
    if v.atom is None:
        return None
    if v.atom.startswith("len"):
        if v.coeff >= 1:
            return (Bound.atom(v.atom, float(v.coeff))
                    + Bound.const(max(0.0, v.offset)))
        return Bound.const(max(0.0, v.offset))
    # arg atoms: only coeff == 1, offset >= 0 survives wrap-around
    # (see the module docstring); everything else is ⊤.
    if v.coeff == 1 and v.offset >= 0:
        return (Bound.atom("pos" + v.atom[3:], 1.0)
                + Bound.const(float(v.offset)))
    return None


def _lower(v: AbsVal) -> int:
    """Sound lower bound on ``max(0, value)``."""
    lo = v.interval.lo
    if lo == -INF or lo == INF:
        return 0
    return max(0, int(lo))


# ---------------------------------------------------------------------------
# Certificates
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class LoopBound:
    """Proven iteration bounds of one natural loop."""

    header_pc: int
    trip_min: int
    trip_bound: OptBound   # None = ⊤ (not a provably counted loop)

    def describe(self) -> str:
        return (f"loop@{self.header_pc}: "
                f"{self.trip_min}..{describe_bound(self.trip_bound)} trips")


@dataclass(frozen=True)
class ResourceCertificate:
    """Per-function resource bounds, proven at load time.

    ``fuel_bound`` is transitive (includes callees); ``local_fuel_bound``
    counts only this method's instructions (CALL = 1) — the JIT charges
    per method, so each activation pays its own local bound.  ``None``
    plays ⊤ throughout.  ``min_fuel``/``min_memory`` are what every
    *successful* execution must consume at minimum.
    """

    function: str
    fuel_bound: OptBound
    local_fuel_bound: OptBound
    mem_bound: OptBound
    depth_bound: Optional[int]
    min_fuel: int
    min_memory: int
    loops: Tuple[LoopBound, ...] = ()

    @property
    def fully_bounded(self) -> bool:
        """Fuel provably finite: per-instruction metering is elidable."""
        return self.fuel_bound is not None

    def fuel_charge(self, args: Sequence[object]) -> Optional[int]:
        """Concrete worst-case fuel for ``args``, or None (stay metered)."""
        return _charge(self.fuel_bound, args)

    def local_fuel_charge(self, args: Sequence[object]) -> Optional[int]:
        return _charge(self.local_fuel_bound, args)

    def mem_charge(self, args: Sequence[object]) -> Optional[int]:
        return _charge(self.mem_bound, args)

    def describe(self) -> str:
        depth = "⊤" if self.depth_bound is None else str(self.depth_bound)
        return (
            f"{self.function}: fuel≤{describe_bound(self.fuel_bound)} "
            f"mem≤{describe_bound(self.mem_bound)} depth≤{depth} "
            f"min_fuel={self.min_fuel} min_mem={self.min_memory}"
        )


def atom_env(args: Sequence[object]) -> Callable[[str], float]:
    """Evaluate certificate atoms against concrete invocation arguments."""
    def env(atom: str) -> float:
        index = int(atom[3:])
        value = args[index]
        if atom.startswith("len"):
            return float(len(value))  # type: ignore[arg-type]
        number = float(value)         # type: ignore[arg-type]
        return number if number > 0 else 0.0
    return env


def constant_bound(bound: OptBound) -> Optional[int]:
    """The bound's value when it is input-independent, else None.

    Admission control and cost derivation can only act on claims known
    before the arguments exist, i.e. bounds with no symbolic atoms.
    """
    if bound is None or any(monomial for monomial, __ in bound.terms):
        return None
    return int(math.ceil(bound.evaluate(lambda atom: 0.0)))


def _charge(bound: OptBound, args: Sequence[object]) -> Optional[int]:
    if bound is None:
        return None
    try:
        value = bound.evaluate(atom_env(args))
    except (IndexError, TypeError, ValueError):
        return None
    if value >= MAX_BOUND:
        return None
    return int(math.ceil(value))


@dataclass
class ClassCertificates:
    """Per-function certificates plus class-level minimum rollups.

    The minimums are over the *entry points* individually — the security
    gate checks each function against the quota, since any of them may
    be the UDF entry point.
    """

    class_name: str
    functions: Dict[str, ResourceCertificate]

    @property
    def fully_bounded(self) -> bool:
        return all(c.fully_bounded for c in self.functions.values())

    @property
    def max_min_fuel(self) -> int:
        return max(
            (c.min_fuel for c in self.functions.values()), default=0
        )

    @property
    def max_min_memory(self) -> int:
        return max(
            (c.min_memory for c in self.functions.values()), default=0
        )


#: Resolves a foreign (class, function) reference to its certificate,
#: or None when unavailable (treated as unbounded).
ForeignCertificates = Callable[[str, str], Optional[ResourceCertificate]]


def certify_class(
    cls: ClassFile,
    resolver: Optional[Resolver] = None,
    foreign_certificate: Optional[ForeignCertificates] = None,
) -> ClassCertificates:
    """Certify every function of a *verified* class; attach certificates.

    Each ``FunctionDef`` gains a ``certificate`` attribute and the class
    a ``cls.certificates`` rollup.  Functions are processed one SCC at a
    time in reverse topological order; calls into a not-yet-final
    certificate (recursion) or an unresolvable foreign class yield ⊤
    fuel/memory/depth — dynamic metering remains their backstop.
    """
    if not cls.verified:
        raise ValueError(
            f"class {cls.name!r} must be verified before certification"
        )
    if resolver is None:
        resolver = self_resolver(cls)
    graph: Dict[str, List[str]] = {}
    for name, func in cls.functions.items():
        callees: List[str] = []
        for ins in func.code:
            if ins.op is Op.CALL:
                class_name, func_name = cls.constant(ins.arg, K_FUNC)
                if class_name == cls.name and func_name in cls.functions:
                    callees.append(func_name)
        graph[name] = callees
    certificates: Dict[str, ResourceCertificate] = {}
    for component in _sccs(graph):
        for name in component:
            certificates[name] = _FunctionCertifier(
                cls, cls.functions[name], resolver,
                certificates, foreign_certificate,
            ).certify()
    for name, func in cls.functions.items():
        func.certificate = certificates[name]
    rollup = ClassCertificates(class_name=cls.name, functions=certificates)
    cls.certificates = rollup
    return rollup


# ---------------------------------------------------------------------------
# Per-function certifier
# ---------------------------------------------------------------------------

#: One abstract machine state: (locals, operand stack).
_State = Tuple[Tuple[AbsVal, ...], Tuple[AbsVal, ...]]


@dataclass(frozen=True)
class _AllocSite:
    block: int
    upper: OptBound    # bytes charged, upper bound
    lower: int         # bytes charged, lower bound


@dataclass(frozen=True)
class _CallSite:
    block: int
    callee: Optional[ResourceCertificate]   # None = unresolved/recursive
    substitution: Dict[str, OptBound]       # callee atom -> caller bound


class _FunctionCertifier:
    def __init__(
        self,
        cls: ClassFile,
        func: FunctionDef,
        resolver: Resolver,
        intra: Dict[str, ResourceCertificate],
        foreign: Optional[ForeignCertificates],
    ):
        self.cls = cls
        self.func = func
        self.code = func.code
        self.resolver = resolver
        self.intra = intra
        self.foreign = foreign
        self.cfg = build_cfg(func.code)
        self.entry_state = self._entry_state()
        self.in_states: List[Optional[_State]] = (
            [None] * len(self.cfg.blocks)
        )
        self.out_states: List[Optional[_State]] = (
            [None] * len(self.cfg.blocks)
        )

    # -- driver -------------------------------------------------------------

    def certify(self) -> ResourceCertificate:
        self._fixpoint()
        trips = {
            loop.header: self._loop_trip(loop) for loop in self.cfg.loops
        }
        mults = self._block_multipliers(trips)
        allocs, calls = self._collect_sites()
        local_fuel, fuel, mem = self._upper_bounds(mults, allocs, calls)
        depth = self._depth_bound(calls)
        min_fuel, min_memory = self._minimums(trips, allocs, calls)
        loop_bounds = tuple(
            LoopBound(
                header_pc=self.cfg.blocks[loop.header].start,
                trip_min=trips[loop.header][0],
                trip_bound=trips[loop.header][1],
            )
            for loop in self.cfg.loops
        )
        return ResourceCertificate(
            function=f"{self.cls.name}.{self.func.name}",
            fuel_bound=fuel,
            local_fuel_bound=local_fuel,
            mem_bound=mem,
            depth_bound=depth,
            min_fuel=min_fuel,
            min_memory=min_memory,
            loops=loop_bounds,
        )

    # -- abstract interpretation -------------------------------------------

    def _entry_state(self) -> _State:
        locals_: List[AbsVal] = []
        for index, vm_type in enumerate(self.func.local_types):
            if index < len(self.func.param_types):
                locals_.append(_entry_value(index, vm_type))
            else:
                locals_.append(_of_type(vm_type))
        return (tuple(locals_), ())

    def _fixpoint(self) -> None:
        # The interval lattice as a DataflowProblem: the shared worklist
        # engine reproduces the historical iteration order exactly, so
        # the resulting certificates stay bit-identical (pinned by the
        # migration-parity test in tests/analysis/test_dataflow.py).
        result = dataflow.solve(
            self.cfg,
            dataflow.DataflowProblem(
                entry=self.entry_state,
                transfer=self._run_block,
                join=self._join_state,
                widen=self._widen_state,
                top=self._top_state,
            ),
            max_visits=_MAX_VISITS,
        )
        self.in_states = result.in_states
        self.out_states = result.out_states

    @staticmethod
    def _top_state(state: _State) -> _State:
        locals_, stack = state
        return (
            tuple(_top_like(v) for v in locals_),
            tuple(_top_like(v) for v in stack),
        )

    @staticmethod
    def _join_state(a: _State, b: _State) -> _State:
        return (
            tuple(_join_val(x, y) for x, y in zip(a[0], b[0])),
            tuple(_join_val(x, y) for x, y in zip(a[1], b[1])),
        )

    @staticmethod
    def _widen_state(old: _State, new: _State) -> _State:
        return (
            tuple(_widen_val(x, y) for x, y in zip(old[0], new[0])),
            tuple(_widen_val(x, y) for x, y in zip(old[1], new[1])),
        )

    def _run_block(self, index: int, state: _State) -> _State:
        locals_, stack = list(state[0]), list(state[1])
        for pc in self.cfg.blocks[index].pcs:
            self._step(pc, self.code[pc], locals_, stack)
        return (tuple(locals_), tuple(stack))

    def _step(self, pc: int, ins: Instr,
              locals_: List[AbsVal], stack: List[AbsVal]) -> None:
        op = ins.op
        push = stack.append
        if op is Op.ICONST:
            push(_mk(K_INT, Interval.const(ins.arg)))
        elif op is Op.FCONST:
            push(_OTHER)
        elif op is Op.BCONST:
            push(_mk(K_INT, Interval.const(ins.arg)))
        elif op is Op.SCONST:
            (text,) = self.cls.constant(ins.arg, K_STR)
            push(_mk(K_SEQ, Interval.const(len(text))))
        elif op is Op.LOAD:
            push(locals_[ins.arg])
        elif op is Op.STORE:
            locals_[ins.arg] = stack.pop()
        elif op is Op.POP:
            stack.pop()
        elif op is Op.DUP:
            push(stack[-1])
        elif op is Op.SWAP:
            stack[-1], stack[-2] = stack[-2], stack[-1]
        elif op is Op.IADD:
            b, a = stack.pop(), stack.pop()
            push(_aff_add(a, b))
        elif op is Op.ISUB:
            b, a = stack.pop(), stack.pop()
            push(_aff_sub(a, b))
        elif op is Op.IMUL:
            b, a = stack.pop(), stack.pop()
            push(_aff_mul(a, b))
        elif op is Op.INEG:
            push(_aff_neg(stack.pop()))
        elif op in (Op.IDIV, Op.IMOD, Op.IAND, Op.IOR, Op.IXOR,
                    Op.ISHL, Op.ISHR):
            stack.pop(); stack.pop()
            push(_INT_TOP)
        elif op in (Op.FADD, Op.FSUB, Op.FMUL, Op.FDIV):
            stack.pop(); stack.pop()
            push(_OTHER)
        elif op is Op.FNEG:
            stack.pop()
            push(_OTHER)
        elif op is Op.I2F:
            stack.pop()
            push(_OTHER)
        elif op is Op.F2I:
            stack.pop()
            push(_INT_TOP)
        elif op is Op.I2S:
            stack.pop()
            push(_mk(K_SEQ, Interval(1, _I2S_MAX)))
        elif op is Op.F2S:
            stack.pop()
            push(_mk(K_SEQ, Interval(1, _F2S_MAX)))
        elif op in (Op.ICMPLT, Op.ICMPLE, Op.ICMPGT, Op.ICMPGE,
                    Op.ICMPEQ, Op.ICMPNE, Op.FCMPLT, Op.FCMPLE,
                    Op.FCMPGT, Op.FCMPGE, Op.FCMPEQ, Op.FCMPNE, Op.SEQ,
                    Op.BAND, Op.BOR):
            stack.pop(); stack.pop()
            push(_BOOL)
        elif op is Op.NOT:
            stack.pop()
            push(_BOOL)
        elif op is Op.SCONCAT:
            b, a = stack.pop(), stack.pop()
            push(_clamp_len(_aff_add(a, b)))
        elif op in (Op.SLEN, Op.ALEN, Op.FALEN):
            v = stack.pop()
            push(_clamp_int_len(v))
        elif op is Op.SINDEX:
            stack.pop(); stack.pop()
            push(_mk(K_INT, Interval(0, 0x10FFFF)))
        elif op is Op.SSUB:
            end, start, seq = stack.pop(), stack.pop(), stack.pop()
            push(_ssub_result(seq, start, end))
        elif op in (Op.NEWARR, Op.NEWFARR):
            push(_clamp_len(stack.pop()))
        elif op is Op.ALOAD:
            stack.pop(); stack.pop()
            push(_mk(K_INT, Interval(0, 255)))
        elif op is Op.FALOAD:
            stack.pop(); stack.pop()
            push(_OTHER)
        elif op in (Op.ASTORE, Op.FASTORE):
            stack.pop(); stack.pop(); stack.pop()
        elif op is Op.ACOPY:
            push(stack.pop())
        elif op is Op.JMP:
            pass
        elif op in (Op.JZ, Op.JNZ):
            stack.pop()
        elif op is Op.RET:
            stack.pop()
        elif op is Op.RETV:
            pass
        elif op in (Op.CALL, Op.NATIVE, Op.CALLBACK):
            self._step_call(pc, ins, stack)
        # every opcode is handled above; verified code has no others

    def _step_call(self, pc: int, ins: Instr, stack: List[AbsVal]) -> None:
        signature = self._call_signature(ins)
        if signature is None:
            # Unresolvable (should not happen for verified code):
            # recover the proven post-call depth from the verifier.
            depth = (
                self.func.stack_in[pc + 1]
                if self.func.stack_in is not None
                and pc + 1 < len(self.func.stack_in)
                else len(stack)
            )
            del stack[depth:]
            while len(stack) < depth:
                stack.append(_OTHER)
            return
        params, ret = signature
        del stack[len(stack) - len(params):]
        if ret is not VMType.VOID:
            stack.append(_of_type(ret))

    def _call_signature(self, ins: Instr):
        try:
            if ins.op is Op.CALL:
                class_name, func_name = self.cls.constant(ins.arg, K_FUNC)
                return self.resolver.function_signature(class_name, func_name)
            if ins.op is Op.NATIVE:
                (name,) = self.cls.constant(ins.arg, K_NATIVE)
                return self.resolver.native_signature(name)
            (name,) = self.cls.constant(ins.arg, K_CALLBACK)
            return self.resolver.callback_signature(name)
        except LinkError:
            return None

    # -- trip counts --------------------------------------------------------

    def _entry_locals(self, loop: Loop) -> Optional[Tuple[AbsVal, ...]]:
        header = self.cfg.blocks[loop.header]
        states: List[Tuple[AbsVal, ...]] = []
        if loop.header == 0:
            states.append(self.entry_state[0])
        for pred in header.predecessors:
            if pred in loop.body:
                continue
            out = self.out_states[pred]
            if out is None:
                return None
            states.append(out[0])
        if not states:
            return None
        merged = states[0]
        for other in states[1:]:
            merged = tuple(
                _join_val(x, y) for x, y in zip(merged, other)
            )
        return merged

    def _loop_trip(self, loop: Loop) -> Tuple[int, OptBound]:
        """(guaranteed minimum trips, symbolic maximum trips or ⊤)."""
        if loop.unbounded:
            return (0, None)
        blocks = self.cfg.blocks
        code = self.code
        header = blocks[loop.header]
        if header.end - header.start < 4:
            return (0, None)
        i0, i1, i2, i3 = code[header.end - 4:header.end]
        if not (i0.op is Op.LOAD and i1.op is Op.LOAD and i3.op is Op.JZ):
            return (0, None)
        if i2.op in (Op.ICMPLT, Op.ICMPLE):
            down, inclusive = False, i2.op is Op.ICMPLE
        elif i2.op in (Op.ICMPGT, Op.ICMPGE):
            down, inclusive = True, i2.op is Op.ICMPGE
        else:
            return (0, None)
        var, stop_slot = i0.arg, i1.arg
        if var == stop_slot:
            return (0, None)
        if self.cfg.block_of[i3.arg] in loop.body:
            return (0, None)   # the JZ must be the loop exit
        store_pcs = []
        for block_index in loop.body:
            for pc in blocks[block_index].pcs:
                ins = code[pc]
                if ins.op is Op.STORE and ins.arg == stop_slot:
                    return (0, None)   # stop must be loop-invariant
                if ins.op is Op.STORE and ins.arg == var:
                    store_pcs.append(pc)
        if len(store_pcs) != 1:
            return (0, None)
        store_pc = store_pcs[0]
        if store_pc < 3:
            return (0, None)
        p_load, p_const, p_add = code[store_pc - 3:store_pc]
        if not (p_load.op is Op.LOAD and p_load.arg == var
                and p_const.op is Op.ICONST and p_add.op is Op.IADD):
            return (0, None)
        step = p_const.arg
        if (not down and step < 1) or (down and step > -1):
            return (0, None)
        inc_block = self.cfg.block_of[store_pc]
        if (self.cfg.block_of[store_pc - 3] != inc_block
                or inc_block not in loop.body):
            return (0, None)
        back_sources = [
            p for p in header.predecessors if p in loop.body
        ]
        dom = self.cfg.dominators
        if not back_sources or not all(
            inc_block in dom[src] for src in back_sources
        ):
            return (0, None)   # increment must run every iteration
        entry = self._entry_locals(loop)
        if entry is None:
            return (0, None)
        init, stop = entry[var], entry[stop_slot]
        hi = self._trip_upper(init, stop, step, down, inclusive)
        lo = self._trip_lower(loop, inc_block, init, stop, step,
                              down, inclusive)
        return (lo, hi)

    @staticmethod
    def _trip_upper(init: AbsVal, stop: AbsVal, step: int,
                    down: bool, inclusive: bool) -> OptBound:
        magnitude = abs(step)
        incl = 1 if inclusive else 0
        if not down:
            far, near = stop.interval.hi, init.interval.lo
        else:
            far, near = init.interval.hi, stop.interval.lo
        if far != INF and near != -INF:
            # Concrete: also prove the loop variable cannot wrap past
            # the comparison (the last step must stay inside int64).
            if not down and far + incl - 1 + magnitude > _INT_MAX:
                return None
            if down and near - incl + 1 - magnitude < _INT_MIN:
                return None
            trips = max(0.0, math.ceil((far - near + incl) / magnitude))
            return Bound.const(trips)
        # Symbolic: only step ±1 strict comparisons are wrap-safe.
        if magnitude != 1 or inclusive:
            return None
        if not down:
            if init.interval.lo == -INF:
                return None
            bound = _upper(stop)
            slack = max(0.0, -init.interval.lo)
        else:
            if stop.interval.lo == -INF:
                return None
            bound = _upper(init)
            slack = max(0.0, -stop.interval.lo)
        if bound is None:
            return None
        return bound + Bound.const(slack)

    def _trip_lower(self, loop: Loop, inc_block: int,
                    init: AbsVal, stop: AbsVal, step: int,
                    down: bool, inclusive: bool) -> int:
        # Early exits (break) or an increment inside a nested loop can
        # shorten the run; then only 0 iterations are guaranteed.
        for block_index in loop.body:
            if block_index == loop.header:
                continue
            block = self.cfg.blocks[block_index]
            if any(s not in loop.body for s in block.successors):
                return 0
        for other in self.cfg.loops:
            if other is loop or other.header == loop.header:
                continue
            if other.body < loop.body and inc_block in other.body:
                return 0
        magnitude = abs(step)
        incl = 1 if inclusive else 0
        if not down:
            far, near = stop.interval.lo, init.interval.hi
        else:
            far, near = init.interval.lo, stop.interval.hi
        if far in (INF, -INF) or near in (INF, -INF):
            return 0
        return max(0, math.ceil((far - near + incl) / magnitude))

    # -- upper bounds -------------------------------------------------------

    def _block_multipliers(
        self, trips: Dict[int, Tuple[int, OptBound]]
    ) -> List[OptBound]:
        mults: List[OptBound] = []
        for block in self.cfg.blocks:
            mult: OptBound = Bound.const(1)
            for loop in self.cfg.loops:
                if block.index in loop.body:
                    trip = trips[loop.header][1]
                    # header runs once more than the body (final check)
                    mult = bmul(
                        mult,
                        None if trip is None else trip + Bound.const(1),
                    )
            mults.append(mult)
        return mults

    def _collect_sites(
        self,
    ) -> Tuple[List[_AllocSite], List[_CallSite]]:
        allocs: List[_AllocSite] = []
        calls: List[_CallSite] = []
        for block in self.cfg.blocks:
            state = self.in_states[block.index]
            if state is None:
                continue
            locals_, stack = list(state[0]), list(state[1])
            for pc in block.pcs:
                ins = self.code[pc]
                alloc = self._alloc_at(block.index, ins, stack)
                if alloc is not None:
                    allocs.append(alloc)
                if ins.op is Op.CALL:
                    calls.append(self._call_at(block.index, ins, stack))
                self._step(pc, ins, locals_, stack)
        return allocs, calls

    def _alloc_at(self, block: int, ins: Instr,
                  stack: List[AbsVal]) -> Optional[_AllocSite]:
        op = ins.op
        if op is Op.NEWARR:
            v = stack[-1]
            return _AllocSite(block, _upper(v), _lower(v))
        if op is Op.NEWFARR:
            v = stack[-1]
            upper = _upper(v)
            return _AllocSite(
                block,
                None if upper is None else upper.scale(8.0),
                8 * _lower(v),
            )
        if op is Op.ACOPY:
            v = stack[-1]
            return _AllocSite(block, _upper(v), _lower(v))
        if op is Op.SCONCAT:
            b, a = stack[-1], stack[-2]
            return _AllocSite(
                block, badd(_upper(a), _upper(b)), _lower(a) + _lower(b)
            )
        if op is Op.SSUB:
            end, start, seq = stack[-1], stack[-2], stack[-3]
            upper = _upper(_clamp_len(_aff_sub(end, start)))
            if upper is None:
                upper = _upper(seq)
            low = 0
            if end.interval.lo != -INF and start.interval.hi != INF:
                low = max(0, int(end.interval.lo - start.interval.hi))
            return _AllocSite(block, upper, low)
        if op is Op.I2S:
            return _AllocSite(block, Bound.const(_I2S_MAX), 1)
        if op is Op.F2S:
            return _AllocSite(block, Bound.const(_F2S_MAX), 1)
        return None

    def _call_at(self, block: int, ins: Instr,
                 stack: List[AbsVal]) -> _CallSite:
        class_name, func_name = self.cls.constant(ins.arg, K_FUNC)
        if class_name == self.cls.name:
            callee_cert = self.intra.get(func_name)
        elif self.foreign is not None:
            callee_cert = self.foreign(class_name, func_name)
        else:
            callee_cert = None
        substitution: Dict[str, OptBound] = {}
        signature = self._call_signature(ins)
        if signature is None:
            return _CallSite(block, None, substitution)
        params, _ret = signature
        if params:
            args = stack[len(stack) - len(params):]
            for k, value in enumerate(args):
                substitution[f"pos{k}"] = _upper(value)
                substitution[f"len{k}"] = _upper(value)
        return _CallSite(block, callee_cert, substitution)

    @staticmethod
    def _substitute(bound: OptBound,
                    mapping: Dict[str, OptBound]) -> OptBound:
        if bound is None:
            return None
        total = Bound.const(0)
        for monomial, coeff in bound.terms:
            term = Bound.const(coeff)
            for atom in monomial:
                replacement = mapping.get(atom)
                if replacement is None:
                    return None
                term = term * replacement
            total = total + term
        return total

    def _upper_bounds(
        self,
        mults: List[OptBound],
        allocs: List[_AllocSite],
        calls: List[_CallSite],
    ) -> Tuple[OptBound, OptBound, OptBound]:
        local_fuel: OptBound = Bound.const(0)
        for block in self.cfg.blocks:
            size = Bound.const(block.end - block.start)
            local_fuel = badd(local_fuel, bmul(size, mults[block.index]))
        fuel = local_fuel
        mem: OptBound = Bound.const(0)
        for site in allocs:
            mem = badd(mem, bmul(site.upper, mults[site.block]))
        for site in calls:
            if site.callee is None:
                fuel = None
                mem = None
                break
            callee_fuel = self._substitute(
                site.callee.fuel_bound, site.substitution
            )
            callee_mem = self._substitute(
                site.callee.mem_bound, site.substitution
            )
            fuel = badd(fuel, bmul(callee_fuel, mults[site.block]))
            mem = badd(mem, bmul(callee_mem, mults[site.block]))
        return local_fuel, fuel, mem

    def _depth_bound(self, calls: List[_CallSite]) -> Optional[int]:
        depth = 1
        for site in calls:
            if site.callee is None or site.callee.depth_bound is None:
                return None
            depth = max(depth, 1 + site.callee.depth_bound)
        return depth

    # -- guaranteed minimums ------------------------------------------------

    def _minimums(
        self,
        trips: Dict[int, Tuple[int, OptBound]],
        allocs: List[_AllocSite],
        calls: List[_CallSite],
    ) -> Tuple[int, int]:
        code = self.code
        blocks = self.cfg.blocks
        exits = [
            b.index for b in blocks
            if code[b.end - 1].op in (Op.RET, Op.RETV)
        ]
        if not exits:
            return (0, 0)   # e.g. `while True: pass`: nothing guaranteed
        dom = self.cfg.dominators
        must_exec = {
            b.index for b in blocks
            if all(b.index in dom[e] for e in exits)
        }
        block_fuel = {b.index: float(b.end - b.start) for b in blocks}
        block_mem = {b.index: 0.0 for b in blocks}
        for site in allocs:
            block_mem[site.block] += site.lower
        for site in calls:
            if site.callee is not None:
                block_fuel[site.block] += site.callee.min_fuel
                block_mem[site.block] += site.callee.min_memory

        loops = self.cfg.loops
        child_blocks: Dict[int, set] = {loop.header: set() for loop in loops}
        children: Dict[int, List[Loop]] = {loop.header: [] for loop in loops}
        top_level: List[Loop] = []
        for loop in loops:
            parent: Optional[Loop] = None
            for other in loops:
                if other is loop or not (loop.body < other.body):
                    continue
                if parent is None or other.body < parent.body:
                    parent = other
            if parent is None:
                top_level.append(loop)
            else:
                children[parent.header].append(loop)
                child_blocks[parent.header] |= set(loop.body)

        def loop_minimum(loop: Loop) -> Tuple[float, float]:
            trip_min = trips[loop.header][0]
            if trip_min <= 0:
                return (0.0, 0.0)
            sources = [
                p for p in blocks[loop.header].predecessors
                if p in loop.body
            ]
            if not sources:
                return (0.0, 0.0)
            fuel = mem = 0.0
            nested = child_blocks[loop.header]
            for index in loop.body:
                if index in nested:
                    continue
                if all(index in dom[src] for src in sources):
                    fuel += block_fuel[index]
                    mem += block_mem[index]
            for child in children[loop.header]:
                if all(child.header in dom[src] for src in sources):
                    child_fuel, child_mem = loop_minimum(child)
                    fuel += child_fuel
                    mem += child_mem
            return (trip_min * fuel, trip_min * mem)

        in_any_loop = set()
        for loop in loops:
            in_any_loop |= set(loop.body)
        top_headers = {loop.header for loop in top_level}
        min_fuel = min_mem = 0.0
        for index in must_exec:
            if index not in in_any_loop or index in top_headers:
                # a top-level loop header runs once on entry even with
                # zero trips; per-iteration re-runs (and everything in
                # nested loops) come from loop_minimum instead.
                min_fuel += block_fuel[index]
                min_mem += block_mem[index]
        for loop in top_level:
            if loop.header in must_exec:
                loop_fuel, loop_mem = loop_minimum(loop)
                min_fuel += loop_fuel
                min_mem += loop_mem
        cap = float(2 ** 62)
        return (int(min(min_fuel, cap)), int(min(min_mem, cap)))


def _clamp_int_len(v: AbsVal) -> AbsVal:
    """SLEN/ALEN/FALEN: a sequence's length AbsVal, as an int value."""
    lo = max(0.0, v.interval.lo)
    hi = max(lo, v.interval.hi)
    return _mk(K_INT, Interval(lo, hi), v.atom, v.coeff, v.offset)


def _ssub_result(seq: AbsVal, start: AbsVal, end: AbsVal) -> AbsVal:
    """SSUB succeeds only when 0 <= start <= end <= len(seq)."""
    diff = _aff_sub(end, start)
    hi = min(diff.interval.hi, seq.interval.hi)
    if hi < 0:
        hi = 0.0
    lo = min(max(0.0, diff.interval.lo), hi)
    return _mk(K_SEQ, Interval(lo, hi), diff.atom, diff.coeff, diff.offset)
