"""Control-flow graphs and natural-loop detection over verified bytecode.

The verifier (``vm/verifier.py``) already proved every instruction
reachable, every branch target in range, and recorded the operand-stack
depth entering each instruction (``FunctionDef.stack_in``).  This module
builds on those facts: it never re-validates targets, and it may assume
the instruction stream has a single well-defined CFG.

The constructions are textbook:

* **basic blocks** — leaders are instruction 0, every branch target, and
  every instruction following a branch or terminator;
* **dominators** — iterative dataflow over the block graph (the graphs
  here are tiny: UDF bodies, not whole programs);
* **natural loops** — one per back edge ``b -> h`` where ``h`` dominates
  ``b``; loops sharing a header are merged, matching what the JagScript
  compiler emits for ``while``/``for``;
* **loop depth** — per instruction, the number of distinct loops whose
  body contains it.  The static cost estimator multiplies opcode weights
  by an assumed trip count per nesting level.

A loop none of whose blocks has a successor outside the loop can never
be left; ``Loop.unbounded`` flags it (the classic ``while True: pass``
CPU-bomb shape — finding those *before* execution is the point).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Tuple

from ..vm.opcodes import BRANCH_OPS, Instr, Op, TERMINATOR_OPS


@dataclass
class BasicBlock:
    """A maximal straight-line run of instructions ``[start, end)``."""

    index: int
    start: int
    end: int
    successors: List[int] = field(default_factory=list)
    predecessors: List[int] = field(default_factory=list)

    @property
    def pcs(self) -> range:
        return range(self.start, self.end)


@dataclass(frozen=True)
class Loop:
    """One natural loop: all back edges sharing ``header`` merged."""

    header: int                 # block index of the loop header
    body: FrozenSet[int]        # block indices, header included
    unbounded: bool             # no edge leaves the body: cannot terminate

    def __contains__(self, block_index: int) -> bool:
        return block_index in self.body


@dataclass
class CFG:
    """Blocks + loop structure of one function's bytecode."""

    blocks: List[BasicBlock]
    block_of: List[int]         # pc -> block index
    loops: List[Loop]
    loop_depth: List[int]       # pc -> nesting depth (0 = not in a loop)
    #: per block, the set of blocks dominating it (the bounds certifier
    #: uses these for must-execute reasoning; entry dominates all).
    dominators: List[FrozenSet[int]] = field(default_factory=list)

    @property
    def max_loop_depth(self) -> int:
        return max(self.loop_depth, default=0)

    def depth_at(self, pc: int) -> int:
        return self.loop_depth[pc]


def build_cfg(code: Sequence[Instr]) -> CFG:
    """Construct the CFG of verified code (blocks, dominators, loops)."""
    if not code:
        raise ValueError("cannot build a CFG over empty code")
    blocks = _basic_blocks(code)
    block_of = [0] * len(code)
    for block in blocks:
        for pc in block.pcs:
            block_of[pc] = block.index
    dominators = _dominators(blocks)
    loops = _natural_loops(blocks, dominators)
    loop_depth = [0] * len(code)
    for loop in loops:
        for block_index in loop.body:
            for pc in blocks[block_index].pcs:
                loop_depth[pc] += 1
    return CFG(blocks=blocks, block_of=block_of, loops=loops,
               loop_depth=loop_depth, dominators=dominators)


def _basic_blocks(code: Sequence[Instr]) -> List[BasicBlock]:
    leaders = {0}
    for pc, ins in enumerate(code):
        if ins.op in BRANCH_OPS:
            leaders.add(ins.arg)
            if pc + 1 < len(code):
                leaders.add(pc + 1)
        elif ins.op in TERMINATOR_OPS and pc + 1 < len(code):
            leaders.add(pc + 1)
    starts = sorted(leaders)
    blocks: List[BasicBlock] = []
    for index, start in enumerate(starts):
        end = starts[index + 1] if index + 1 < len(starts) else len(code)
        blocks.append(BasicBlock(index=index, start=start, end=end))
    start_to_block = {block.start: block.index for block in blocks}
    for block in blocks:
        last = code[block.end - 1]
        targets: List[int] = []
        if last.op in BRANCH_OPS:
            targets.append(start_to_block[last.arg])
        if last.op not in TERMINATOR_OPS and block.end < len(code):
            targets.append(start_to_block[block.end])
        block.successors = targets
        for target in targets:
            blocks[target].predecessors.append(block.index)
    return blocks


def _dominators(blocks: List[BasicBlock]) -> List[FrozenSet[int]]:
    """Iterative dominator sets; entry block dominates everything."""
    everything = frozenset(range(len(blocks)))
    dom: List[FrozenSet[int]] = [everything] * len(blocks)
    dom[0] = frozenset({0})
    changed = True
    while changed:
        changed = False
        for block in blocks[1:]:
            preds = block.predecessors
            if preds:
                incoming = dom[preds[0]]
                for pred in preds[1:]:
                    incoming = incoming & dom[pred]
            else:  # unreachable blocks are rejected by the verifier
                incoming = frozenset()
            new = incoming | {block.index}
            if new != dom[block.index]:
                dom[block.index] = new
                changed = True
    return dom


def _natural_loops(
    blocks: List[BasicBlock], dominators: List[FrozenSet[int]]
) -> List[Loop]:
    bodies: Dict[int, set] = {}
    for block in blocks:
        for succ in block.successors:
            if succ in dominators[block.index]:  # back edge block -> succ
                bodies.setdefault(succ, {succ}).update(
                    _loop_body(blocks, succ, block.index)
                )
    loops = []
    for header, body in sorted(bodies.items()):
        exits = any(
            succ not in body
            for block_index in body
            for succ in blocks[block_index].successors
        )
        loops.append(
            Loop(header=header, body=frozenset(body), unbounded=not exits)
        )
    return loops


def _loop_body(blocks: List[BasicBlock], header: int, tail: int) -> set:
    """Blocks reaching ``tail`` without passing through ``header``."""
    body = {header, tail}
    stack = [tail]
    while stack:
        block_index = stack.pop()
        if block_index == header:
            continue
        for pred in blocks[block_index].predecessors:
            if pred not in body:
                body.add(pred)
                stack.append(pred)
    return body
