"""Information-flow certification over verified JaguarVM bytecode.

Three certifying passes, all running on the shared worklist engine in
``dataflow.py`` and all executed once, at CREATE FUNCTION time:

* **taint / information flow** — which parameters (tuple data) and
  callback results (LOB reads, server state) can reach the function's
  return value and, critically, each *argument* of each callback the
  function invokes.  The paper's confinement model says an untrusted
  UDF must not leak tuple data through its server interface; the
  resulting :class:`FlowCertificate` is what lets the security manager
  refuse, at load, a UDF that smuggles tuple-derived values into a
  policy-declared *sink* callback (``static:flows`` audit action).

* **escape analysis** — which allocation sites produce objects that
  never escape the call (not returned, never passed onward), and which
  array/string parameters are provably never written through nor
  retained.  Non-escaping allocations let the sandbox executor reclaim
  per-call heap like an arena; read-only parameters let the marshalling
  layer skip the defensive copy at the language boundary (the "JNI
  copies every byte array" tax of Figure 5) and the isolated design
  skip the worker-side copy after the shm hop.

* **trap safety** — using the interval facts of the bounds certifier,
  prove that no reachable instruction can raise a VM trap (division by
  zero, array/string index out of range, negative array size, float
  NaN/overflow conversion).  Trap-free functions let the compiled CASE
  machinery in ``sql/expressions.py`` skip short-circuit partitioning
  and EXPLAIN print ``trap-free``.

Taint labels are ``arg{i}`` (parameter *i* — tuple-derived by
construction) and ``cb:{name}`` (the result of callback ``name`` —
server/LOB-derived).  Escape origins are ``param:{i}`` (may alias the
caller's buffer for parameter *i*) and ``alloc:{pc}`` (the object born
at allocation site ``pc``).

Intra-class calls are closed over the call graph in SCC order exactly
like ``effects.py`` / ``bounds.py``; recursive components fall back to
a sound conservative certificate (everything flows everywhere, nothing
is read-only, nothing is trap-free).

Every function additionally gets a :class:`StaticFeatureVector` — the
flat numeric summary (loop bounds, flow widths, escape counts) intended
as the feature substrate for a future learned cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..errors import LinkError
from ..vm.classfile import (
    ClassFile,
    FunctionDef,
    K_CALLBACK,
    K_FUNC,
    K_NATIVE,
)
from ..vm.opcodes import FIXED_EFFECTS, Instr, Op
from ..vm.values import VMType
from ..vm.verifier import Resolver, self_resolver
from . import dataflow
from .bounds import _FunctionCertifier
from .cfg import CFG, build_cfg
from .effects import _sccs

__all__ = [
    "ALLOC_OPS",
    "CallbackFlow",
    "FlowCertificate",
    "StaticFeatureVector",
    "ClassFlows",
    "analyze_flows",
]

#: Opcodes that allocate a fresh heap object (mirror of the VM's
#: allocation-accounted instructions).
ALLOC_OPS = frozenset({
    Op.NEWARR, Op.NEWFARR, Op.ACOPY, Op.SCONCAT, Op.SSUB, Op.I2S, Op.F2S,
})

#: Seq-typed VM types: values with identity/aliasing that matter to the
#: escape pass (INT/FLOAT/BOOL are copied by value).
_SEQ_TYPES = frozenset({VMType.STR, VMType.ARR, VMType.FARR})

_EMPTY: FrozenSet[str] = frozenset()


# ---------------------------------------------------------------------------
# Certificates
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CallbackFlow:
    """One callback call site and the taint reaching each argument."""

    callback: str
    pc: int
    #: Per argument position, the sorted taint labels that may reach it.
    arg_sources: Tuple[Tuple[str, ...], ...]

    @property
    def tainted(self) -> Tuple[str, ...]:
        labels: Set[str] = set()
        for sources in self.arg_sources:
            labels.update(sources)
        return tuple(sorted(labels))


@dataclass(frozen=True)
class StaticFeatureVector:
    """Flat per-UDF numeric features exported for cost modelling."""

    function: str
    instructions: int
    blocks: int
    loops: int
    max_loop_depth: int
    bounded_loops: int
    param_count: int
    return_width: int
    callback_sites: int
    callback_arg_width: int
    escaping_allocs: int
    local_allocs: int
    readonly_params: int
    trap_sites: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "function": self.function,
            "instructions": self.instructions,
            "blocks": self.blocks,
            "loops": self.loops,
            "max_loop_depth": self.max_loop_depth,
            "bounded_loops": self.bounded_loops,
            "param_count": self.param_count,
            "return_width": self.return_width,
            "callback_sites": self.callback_sites,
            "callback_arg_width": self.callback_arg_width,
            "escaping_allocs": self.escaping_allocs,
            "local_allocs": self.local_allocs,
            "readonly_params": self.readonly_params,
            "trap_sites": self.trap_sites,
        }


@dataclass(frozen=True)
class FlowCertificate:
    """Load-time information-flow facts for one function."""

    function: str
    #: Taint labels that may reach the return value.
    return_sources: Tuple[str, ...]
    #: Every callback call site with its per-argument taint.
    callback_flows: Tuple[CallbackFlow, ...]
    #: Indices of seq-typed parameters provably never written through
    #: and never retained (safe to pass without a defensive copy).
    readonly_params: Tuple[int, ...]
    #: Allocation-site pcs whose objects may outlive the call.
    escaping_allocs: Tuple[int, ...]
    #: Allocation-site pcs proven local to the call (arena-reclaimable).
    local_allocs: Tuple[int, ...]
    #: pcs of instructions that may raise a VM trap; empty = trap-free.
    trap_pcs: Tuple[int, ...]
    features: Optional[StaticFeatureVector] = field(default=None, compare=False)

    @property
    def trap_free(self) -> bool:
        return not self.trap_pcs

    @property
    def arena_safe(self) -> bool:
        """All allocations die with the call: per-call heap is an arena."""
        return not self.escaping_allocs

    def describe(self) -> str:
        parts = [f"return<-{{{', '.join(self.return_sources) or ''}}}"]
        for flow in self.callback_flows:
            parts.append(
                f"{flow.callback}@{flow.pc}<-{{{', '.join(flow.tainted)}}}"
            )
        if self.readonly_params:
            parts.append(
                "readonly:" + ",".join(str(i) for i in self.readonly_params)
            )
        parts.append(
            f"allocs:{len(self.local_allocs)}local"
            f"/{len(self.escaping_allocs)}escaping"
        )
        parts.append("trap-free" if self.trap_free else
                     f"traps:{len(self.trap_pcs)}")
        return " ".join(parts)

    def as_dict(self) -> Dict[str, object]:
        return {
            "function": self.function,
            "return_sources": list(self.return_sources),
            "callback_flows": [
                {
                    "callback": flow.callback,
                    "pc": flow.pc,
                    "arg_sources": [list(s) for s in flow.arg_sources],
                }
                for flow in self.callback_flows
            ],
            "readonly_params": list(self.readonly_params),
            "escaping_allocs": list(self.escaping_allocs),
            "local_allocs": list(self.local_allocs),
            "trap_pcs": list(self.trap_pcs),
            "trap_free": self.trap_free,
            "features": (
                self.features.as_dict() if self.features is not None else None
            ),
        }


@dataclass
class ClassFlows:
    """Per-function flow certificates for one loaded class."""

    class_name: str
    functions: Dict[str, FlowCertificate]

    def tainted_sink_flows(
        self, sinks: FrozenSet[str]
    ) -> List[Tuple[str, CallbackFlow]]:
        """Callback flows that move tainted data into a sink callback."""
        leaks: List[Tuple[str, CallbackFlow]] = []
        for name in sorted(self.functions):
            cert = self.functions[name]
            for flow in cert.callback_flows:
                if flow.callback in sinks and flow.tainted:
                    leaks.append((name, flow))
        return leaks


# ---------------------------------------------------------------------------
# Shared per-opcode label propagation
# ---------------------------------------------------------------------------

class _LabelPass:
    """Forward propagation of per-value label sets over the bytecode.

    The state is ``(locals_tuple, stack_tuple)`` of frozensets; the join
    is elementwise union (a finite powerset lattice, so plain joins
    converge and no widening is needed — the engine's visit cap is the
    backstop).  Subclasses choose what labels constants, allocations,
    and call results carry.
    """

    def __init__(self, cls: ClassFile, func: FunctionDef,
                 resolver: Resolver):
        self.cls = cls
        self.func = func
        self.code = func.code
        self.resolver = resolver
        self.cfg = build_cfg(func.code)

    # -- hooks --------------------------------------------------------------

    def entry_local(self, index: int, vm_type: VMType) -> FrozenSet[str]:
        raise NotImplementedError

    def alloc_result(self, pc: int,
                     args: List[FrozenSet[str]]) -> FrozenSet[str]:
        raise NotImplementedError

    def call_result(self, pc: int, ins: Instr,
                    args: List[FrozenSet[str]]) -> FrozenSet[str]:
        raise NotImplementedError

    def elementwise_result(self, pc: int, ins: Instr,
                           args: List[FrozenSet[str]]) -> FrozenSet[str]:
        merged: FrozenSet[str] = _EMPTY
        for labels in args:
            merged = merged | labels
        return merged

    def observe(self, pc: int, ins: Instr,
                locals_: List[FrozenSet[str]],
                stack: List[FrozenSet[str]]) -> None:
        """Called before each instruction during the collection walk."""

    # -- engine plumbing ----------------------------------------------------

    def entry_state(self):
        locals_: List[FrozenSet[str]] = []
        for index, vm_type in enumerate(self.func.local_types):
            if index < len(self.func.param_types):
                locals_.append(self.entry_local(index, vm_type))
            else:
                locals_.append(_EMPTY)
        return (tuple(locals_), ())

    @staticmethod
    def _join(a, b):
        return (
            tuple(x | y for x, y in zip(a[0], b[0])),
            tuple(x | y for x, y in zip(a[1], b[1])),
        )

    def solve(self) -> dataflow.DataflowResult:
        return dataflow.solve(
            self.cfg,
            dataflow.DataflowProblem(
                entry=self.entry_state(),
                transfer=dataflow.block_transfer(
                    self.cfg, self.code, self._step
                ),
                join=self._join,
            ),
        )

    def collect(self, result: dataflow.DataflowResult) -> None:
        """Re-walk every reachable block calling :meth:`observe`."""
        for index, state in enumerate(result.in_states):
            if state is None:
                continue
            locals_, stack = list(state[0]), list(state[1])
            for pc in self.cfg.blocks[index].pcs:
                self.observe(pc, self.code[pc], locals_, stack)
                self._step(pc, self.code[pc], locals_, stack)

    # -- the small step -----------------------------------------------------

    def _arg_count(self, ins: Instr) -> Tuple[int, bool]:
        """(number of VM args, pushes a result?) for a call-like op."""
        try:
            if ins.op is Op.CALL:
                class_name, func_name = self.cls.constant(ins.arg, K_FUNC)
                sig = self.resolver.function_signature(class_name, func_name)
            elif ins.op is Op.NATIVE:
                (name,) = self.cls.constant(ins.arg, K_NATIVE)
                sig = self.resolver.native_signature(name)
            else:
                (name,) = self.cls.constant(ins.arg, K_CALLBACK)
                sig = self.resolver.callback_signature(name)
        except LinkError:
            return (0, True)
        params, ret = sig
        return (len(params), ret is not VMType.VOID)

    def _step(self, pc: int, ins: Instr,
              locals_: List[FrozenSet[str]],
              stack: List[FrozenSet[str]]) -> None:
        op = ins.op
        if op in (Op.ICONST, Op.FCONST, Op.BCONST, Op.SCONST):
            if op is Op.SCONST:
                stack.append(self.alloc_result(pc, []))
            else:
                stack.append(_EMPTY)
        elif op is Op.LOAD:
            stack.append(locals_[ins.arg])
        elif op is Op.STORE:
            locals_[ins.arg] = stack.pop()
        elif op is Op.POP:
            stack.pop()
        elif op is Op.DUP:
            stack.append(stack[-1])
        elif op is Op.SWAP:
            stack[-1], stack[-2] = stack[-2], stack[-1]
        elif op is Op.JMP:
            pass
        elif op in (Op.JZ, Op.JNZ):
            stack.pop()
        elif op is Op.RET:
            stack.pop()
        elif op is Op.RETV:
            pass
        elif op in (Op.CALL, Op.NATIVE, Op.CALLBACK):
            argc, pushes = self._arg_count(ins)
            args = stack[len(stack) - argc:] if argc else []
            del stack[len(stack) - argc:]
            if pushes:
                stack.append(self.call_result(pc, ins, args))
        elif op in FIXED_EFFECTS:
            pops, pushes = FIXED_EFFECTS[op]
            args = stack[len(stack) - len(pops):] if pops else []
            del stack[len(stack) - len(pops):]
            if pushes:
                if op in ALLOC_OPS:
                    stack.append(self.alloc_result(pc, args))
                else:
                    stack.append(self.elementwise_result(pc, ins, args))
        # every opcode is handled above; verified code has no others


# ---------------------------------------------------------------------------
# Pass 1: taint
# ---------------------------------------------------------------------------

class _TaintPass(_LabelPass):
    """Which params / callback results reach returns and callback args."""

    def __init__(self, cls, func, resolver,
                 known: Dict[str, FlowCertificate]):
        super().__init__(cls, func, resolver)
        self.known = known
        self.return_sources: Set[str] = set()
        #: pc -> (callback name, per-arg label sets, joined over visits)
        self.sites: Dict[int, Tuple[str, List[Set[str]]]] = {}

    def entry_local(self, index, vm_type):
        return frozenset({f"arg{index}"})

    def alloc_result(self, pc, args):
        merged: FrozenSet[str] = _EMPTY
        for labels in args:
            merged = merged | labels
        return merged

    def call_result(self, pc, ins, args):
        merged: FrozenSet[str] = _EMPTY
        for labels in args:
            merged = merged | labels
        if ins.op is Op.CALLBACK:
            (name,) = self.cls.constant(ins.arg, K_CALLBACK)
            return frozenset({f"cb:{name}"})
        if ins.op is Op.CALL:
            class_name, func_name = self.cls.constant(ins.arg, K_FUNC)
            callee = (
                self.known.get(func_name)
                if class_name == self.cls.name else None
            )
            if callee is None:
                # Recursive / unresolved intra-class callee: assume the
                # result may carry anything the class can observe.
                return merged | _class_callback_labels(self.cls)
            return merged | _substitute(callee.return_sources, args)
        return merged

    def observe(self, pc, ins, locals_, stack):
        if ins.op is Op.RET:
            self.return_sources.update(stack[-1])
        elif ins.op is Op.CALLBACK:
            (name,) = self.cls.constant(ins.arg, K_CALLBACK)
            argc, _ = self._arg_count(ins)
            args = stack[len(stack) - argc:] if argc else []
            site = self.sites.setdefault(
                pc, (name, [set() for _ in range(argc)])
            )
            for slot, labels in zip(site[1], args):
                slot.update(labels)
        elif ins.op is Op.CALL:
            class_name, func_name = self.cls.constant(ins.arg, K_FUNC)
            if class_name != self.cls.name:
                return
            callee = self.known.get(func_name)
            if callee is None:
                return
            argc, _ = self._arg_count(ins)
            args = stack[len(stack) - argc:] if argc else []
            # Import the callee's callback flows, substituting its
            # parameter labels with what this site actually passes.
            for flow in callee.callback_flows:
                site = self.sites.setdefault(
                    (pc, flow.callback, flow.pc),
                    (flow.callback, [set() for _ in flow.arg_sources]),
                )
                for slot, sources in zip(site[1], flow.arg_sources):
                    slot.update(_substitute(sources, args))


def _class_callback_labels(cls: ClassFile) -> FrozenSet[str]:
    labels = set()
    for entry in cls.pool:
        if entry.kind == K_CALLBACK:
            labels.add(f"cb:{entry.value[0]}")
    return frozenset(labels)


def _substitute(sources: Sequence[str],
                args: Sequence[FrozenSet[str]]) -> FrozenSet[str]:
    """Rewrite a callee's labels into the caller's frame.

    ``arg{j}`` becomes whatever taint the caller passes in position
    ``j``; ``cb:*`` labels are context-free and pass through.
    """
    out: Set[str] = set()
    for label in sources:
        if label.startswith("arg"):
            try:
                j = int(label[3:])
            except ValueError:
                out.add(label)
                continue
            if 0 <= j < len(args):
                out.update(args[j])
            else:
                out.add(label)
        else:
            out.add(label)
    return frozenset(out)


# ---------------------------------------------------------------------------
# Pass 2: escape / read-only
# ---------------------------------------------------------------------------

class _EscapePass(_LabelPass):
    """Which allocations stay local; which seq params stay untouched."""

    def __init__(self, cls, func, resolver):
        super().__init__(cls, func, resolver)
        self.alloc_sites: Set[int] = set()
        self.written: Set[str] = set()
        self.escaped: Set[str] = set()

    def entry_local(self, index, vm_type):
        if vm_type in _SEQ_TYPES:
            return frozenset({f"param:{index}"})
        return _EMPTY

    def alloc_result(self, pc, args):
        self.alloc_sites.add(pc)
        return frozenset({f"alloc:{pc}"})

    def call_result(self, pc, ins, args):
        # A callee may return one of its arguments; the result may
        # alias anything passed in.  Callback results are fresh
        # server-owned objects with no caller aliases.
        if ins.op is Op.CALLBACK:
            return _EMPTY
        merged: FrozenSet[str] = _EMPTY
        for labels in args:
            merged = merged | labels
        return merged

    def elementwise_result(self, pc, ins, args):
        # Scalar results (loads, lengths, comparisons) carry no aliases.
        return _EMPTY

    def observe(self, pc, ins, locals_, stack):
        op = ins.op
        if op in (Op.ASTORE, Op.FASTORE):
            # stack: ... arr idx value
            self.written.update(stack[-3])
        elif op is Op.RET:
            self.escaped.update(stack[-1])
        elif op in (Op.CALL, Op.NATIVE, Op.CALLBACK):
            # Conservative: anything passed onward may be retained or
            # mutated by the callee.
            argc, _ = self._arg_count(ins)
            for labels in (stack[len(stack) - argc:] if argc else []):
                self.written.update(labels)
                self.escaped.update(labels)


# ---------------------------------------------------------------------------
# Pass 3: trap safety (interval-backed)
# ---------------------------------------------------------------------------

def _trap_pcs(cls: ClassFile, func: FunctionDef, resolver: Resolver,
              known: Dict[str, FlowCertificate]) -> List[int]:
    """pcs of reachable instructions not proven trap-free."""
    certifier = _FunctionCertifier(cls, func, resolver, {}, None)
    certifier._fixpoint()
    traps: List[int] = []
    for index, state in enumerate(certifier.in_states):
        if state is None:
            continue
        locals_, stack = list(state[0]), list(state[1])
        for pc in certifier.cfg.blocks[index].pcs:
            ins = func.code[pc]
            if _may_trap(cls, ins, stack, known):
                traps.append(pc)
            certifier._step(pc, ins, locals_, stack)
    return sorted(set(traps))


def _nonzero(val) -> bool:
    iv = val.interval
    return iv.lo > 0 or iv.hi < 0


def _within(idx, seq) -> bool:
    """idx provably a valid index for every possible length of seq."""
    return idx.interval.lo >= 0 and idx.interval.hi <= seq.interval.lo - 1


def _may_trap(cls: ClassFile, ins: Instr, stack,
              known: Dict[str, FlowCertificate]) -> bool:
    op = ins.op
    if op in (Op.IDIV, Op.IMOD):
        return not _nonzero(stack[-1])
    if op is Op.FDIV:
        return True            # float divisor: intervals don't track it
    if op is Op.F2I:
        return True            # NaN / out-of-range conversion
    if op in (Op.SINDEX, Op.ALOAD, Op.FALOAD):
        return not _within(stack[-1], stack[-2])
    if op in (Op.ASTORE, Op.FASTORE):
        return not _within(stack[-2], stack[-3])
    if op is Op.SSUB:
        end, start, seq = stack[-1], stack[-2], stack[-3]
        return not (
            start.interval.lo >= 0
            and start.interval.hi <= end.interval.lo
            and end.interval.hi <= seq.interval.lo
        )
    if op in (Op.NEWARR, Op.NEWFARR):
        return stack[-1].interval.lo < 0
    if op is Op.CALL:
        class_name, func_name = cls.constant(ins.arg, K_FUNC)
        if class_name != cls.name:
            return True
        callee = known.get(func_name)
        return callee is None or not callee.trap_free
    if op in (Op.NATIVE, Op.CALLBACK):
        return True            # domain errors / CallbackError
    return False


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def _conservative_certificate(cls: ClassFile, func: FunctionDef,
                              resolver: Resolver) -> FlowCertificate:
    """Sound fallback for recursive components: everything flows."""
    all_labels = tuple(sorted(
        {f"arg{i}" for i in range(len(func.param_types))}
        | set(_class_callback_labels(cls))
    ))
    flows = []
    for pc, ins in enumerate(func.code):
        if ins.op is Op.CALLBACK:
            (name,) = cls.constant(ins.arg, K_CALLBACK)
            try:
                params, _ = resolver.callback_signature(name)
            except LinkError:
                params = (None,)
            flows.append(CallbackFlow(
                callback=name,
                pc=pc,
                arg_sources=tuple(all_labels for _ in params),
            ))
    allocs = tuple(sorted(
        pc for pc, ins in enumerate(func.code) if ins.op in ALLOC_OPS
    ))
    return FlowCertificate(
        function=f"{cls.name}.{func.name}",
        return_sources=all_labels,
        callback_flows=tuple(flows),
        readonly_params=(),
        escaping_allocs=allocs,
        local_allocs=(),
        trap_pcs=tuple(range(len(func.code))),
    )


def _features(cls: ClassFile, func: FunctionDef, cert: FlowCertificate,
              cfg: CFG) -> StaticFeatureVector:
    certificate = getattr(func, "certificate", None)
    bounded = 0
    if certificate is not None:
        bounded = sum(
            1 for loop in certificate.loops if loop.trip_bound is not None
        )
    widths = [
        sum(len(sources) for sources in flow.arg_sources)
        for flow in cert.callback_flows
    ]
    return StaticFeatureVector(
        function=f"{cls.name}.{func.name}",
        instructions=len(func.code),
        blocks=len(cfg.blocks),
        loops=len(cfg.loops),
        max_loop_depth=cfg.max_loop_depth,
        bounded_loops=bounded,
        param_count=len(func.param_types),
        return_width=len(cert.return_sources),
        callback_sites=len(cert.callback_flows),
        callback_arg_width=max(widths, default=0),
        escaping_allocs=len(cert.escaping_allocs),
        local_allocs=len(cert.local_allocs),
        readonly_params=len(cert.readonly_params),
        trap_sites=len(cert.trap_pcs),
    )


def _certify_function(cls: ClassFile, func: FunctionDef, resolver: Resolver,
                      known: Dict[str, FlowCertificate]) -> FlowCertificate:
    taint = _TaintPass(cls, func, resolver, known)
    taint.collect(taint.solve())

    escape = _EscapePass(cls, func, resolver)
    escape.collect(escape.solve())

    readonly = tuple(
        index
        for index, vm_type in enumerate(func.param_types)
        if vm_type in _SEQ_TYPES
        and f"param:{index}" not in escape.written
        and f"param:{index}" not in escape.escaped
    )
    escaping = tuple(sorted(
        pc for pc in escape.alloc_sites
        if f"alloc:{pc}" in escape.escaped or f"alloc:{pc}" in escape.written
    ))
    local = tuple(sorted(
        pc for pc in escape.alloc_sites
        if pc not in set(escaping)
    ))

    flows = tuple(
        CallbackFlow(
            callback=name,
            pc=key if isinstance(key, int) else key[0],
            arg_sources=tuple(
                tuple(sorted(slot)) for slot in slots
            ),
        )
        for key, (name, slots) in sorted(
            taint.sites.items(),
            key=lambda item: (
                item[0] if isinstance(item[0], int) else item[0][0],
                item[1][0],
            ),
        )
    )

    cert = FlowCertificate(
        function=f"{cls.name}.{func.name}",
        return_sources=tuple(sorted(taint.return_sources)),
        callback_flows=flows,
        readonly_params=readonly,
        escaping_allocs=escaping,
        local_allocs=local,
        trap_pcs=tuple(_trap_pcs(cls, func, resolver, known)),
    )
    return FlowCertificate(
        function=cert.function,
        return_sources=cert.return_sources,
        callback_flows=cert.callback_flows,
        readonly_params=cert.readonly_params,
        escaping_allocs=cert.escaping_allocs,
        local_allocs=cert.local_allocs,
        trap_pcs=cert.trap_pcs,
        features=_features(cls, func, cert, taint.cfg),
    )


def analyze_flows(cls: ClassFile,
                  resolver: Optional[Resolver] = None) -> ClassFlows:
    """Run the three flow passes over every function of a verified class.

    Attaches a :class:`FlowCertificate` to each function as
    ``func.flows`` and the class rollup as ``cls.flows``.
    """
    if not getattr(cls, "verified", False):
        raise ValueError(
            f"class {cls.name!r} must be verified before flow analysis"
        )
    if resolver is None:
        resolver = self_resolver(cls)

    graph: Dict[str, Set[str]] = {}
    for name, func in cls.functions.items():
        callees: Set[str] = set()
        for ins in func.code:
            if ins.op is Op.CALL:
                class_name, func_name = cls.constant(ins.arg, K_FUNC)
                if class_name == cls.name and func_name in cls.functions:
                    callees.add(func_name)
        graph[name] = callees

    known: Dict[str, FlowCertificate] = {}
    for component in _sccs(graph):
        recursive = len(component) > 1 or any(
            name in graph[name] for name in component
        )
        for name in sorted(component):
            func = cls.functions[name]
            if recursive:
                cert = _conservative_certificate(cls, func, resolver)
            else:
                cert = _certify_function(cls, func, resolver, known)
            known[name] = cert
            func.flows = cert

    flows = ClassFlows(class_name=cls.name, functions=dict(known))
    cls.flows = flows
    return flows
