"""Static cost estimation: per-opcode weights and CostHints derivation.

The dynamic model in ``core/cost_model.py`` *fits* coefficients from
calibration runs; this module is its static counterpart in the GRACEFUL
tradition — it predicts a per-invocation cost from bytecode alone, before
the UDF has ever run, so a UDF registered without explicit ``CostHints``
still participates sensibly in expensive-predicate ordering.

The unit convention matches ``CostHints.cost_per_call``: one cheap
built-in comparison ~ 1 unit.  Weights mirror the dynamic model's
structure — an interpreted opcode is a handful of units, a NATIVE call
is a trusted in-process stdlib call, and a CALLBACK crosses the
sandbox/server boundary (argument marshalling, security check, broker
dispatch), the dominant term by two orders of magnitude, exactly the
``c_callback * NumCallbacks`` term of Section 5.6.

Loops multiply: a statically unknowable trip count is assumed to be
:data:`ASSUMED_TRIP_COUNT` per nesting level, and recursive cycles are
scaled by :data:`RECURSION_FACTOR`.  Both are order-of-magnitude knobs,
not measurements — the point is getting the *relative* ranking of
predicates right, and callbacks-vs-arithmetic dominates that.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from ..vm.opcodes import Op

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.udf import CostHints
    from .effects import FunctionSummary

#: Assumed iterations per loop-nesting level when the trip count cannot
#: be bounded statically.
ASSUMED_TRIP_COUNT = 16

#: Multiplier applied to the combined cost of a recursive call cycle.
RECURSION_FACTOR = ASSUMED_TRIP_COUNT

#: Selectivity assigned to derived hints: with no value distribution to
#: consult, a coin flip is the least-wrong prior (same default the
#: declared-hints path uses).
DERIVED_SELECTIVITY = 0.5

#: Cost of an opcode the table has no entry for.
DEFAULT_WEIGHT = 1.0

#: Per-opcode cost units.  Only the expensive classes are listed; plain
#: stack/ALU traffic takes the default.
OPCODE_WEIGHTS: Dict[Op, float] = {
    # Boundary crossings — the terms that matter.
    Op.CALLBACK: 200.0,   # sandbox -> server round trip
    Op.NATIVE: 5.0,       # trusted stdlib, in-process
    Op.CALL: 2.0,         # frame push/pop (callee body added separately)
    # Allocation-accounted opcodes: heap work + quota bookkeeping.
    Op.NEWARR: 16.0,
    Op.NEWFARR: 16.0,
    Op.ACOPY: 16.0,
    Op.SCONCAT: 8.0,
    Op.SSUB: 8.0,
    Op.I2S: 4.0,
    Op.F2S: 4.0,
    # String traffic is length-dependent; charge a middling constant.
    Op.SEQ: 4.0,
    Op.SLEN: 2.0,
    Op.SINDEX: 2.0,
}


def cost_of_instruction(op: Op) -> float:
    """Static cost units for one execution of ``op``."""
    return OPCODE_WEIGHTS.get(op, DEFAULT_WEIGHT)


def derive_cost_hints(
    summary: "FunctionSummary", certificate: object = None
) -> "CostHints":
    """Turn a function's static summary into optimizer-facing CostHints.

    The result carries ``derived=True`` so EXPLAIN can distinguish
    analyzer estimates from operator-declared figures.

    When a resource ``certificate`` proves a *constant* fuel bound, it
    caps the estimate: the heuristic :data:`ASSUMED_TRIP_COUNT`
    pessimism can overstate tight counted loops by orders of magnitude,
    while the certified bound is the worst case the function can
    actually execute.  Boundary-crossing weights (callbacks) are not
    capped — fuel counts instructions, not marshalling.
    """
    from ..core.udf import CostHints
    from .bounds import constant_bound

    # At least one unit: a zero-cost predicate would sort in front of
    # built-in comparisons, which no UDF invocation ever beats.
    cost = max(summary.cost_units, 1.0)
    fuel_const = (
        constant_bound(getattr(certificate, "fuel_bound", None))
        if certificate is not None
        else None
    )
    if fuel_const is not None and not summary.callbacks:
        cost = min(cost, max(float(fuel_const), 1.0))
    return CostHints(
        cost_per_call=cost,
        selectivity=DERIVED_SELECTIVITY,
        derived=True,
    )
