"""Generic worklist dataflow engine over the bytecode CFG.

PRs 1-6 accumulated four ad-hoc static analyses (effects, intervals /
bounds, costs, decompile), each re-walking the CFG with its own
hand-rolled fixpoint loop.  This module factors the fixpoint itself out
into one reusable engine so new analyses only supply a *lattice*:

* an entry (boundary) state,
* a per-block transfer function (usually lifted from a per-opcode small
  step via :func:`block_transfer`),
* a join for control-flow merges,
* optionally a widening operator, applied at natural-loop headers so
  ascending chains converge fast, and
* optionally a ``top`` coercion, forced when a block has been revisited
  more than ``max_visits`` times — the safety net that guarantees
  termination even for lattices of unbounded height.

The engine runs **forward** (states flow entry -> exit, propagated along
successor edges) or **backward** (states flow exit -> entry, propagated
along predecessor edges; the boundary state seeds every exit block).  In
both directions ``in_states[b]`` is the state *given to* block ``b``'s
transfer and ``out_states[b]`` is what the transfer produced — i.e. for
a backward problem ``in_states`` live at block exits and ``out_states``
at block entries.

The worklist is LIFO and propagation is change-driven (``joined !=
old``), which reproduces the exact iteration order of the original
bounds certifier — that is what lets ``bounds.py`` delegate its fixpoint
here and still emit bit-identical :class:`ResourceCertificate`s (pinned
by the migration-parity test in ``tests/analysis/test_dataflow.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from .cfg import CFG

__all__ = [
    "FORWARD",
    "BACKWARD",
    "DataflowProblem",
    "DataflowResult",
    "solve",
    "block_transfer",
]

FORWARD = "forward"
BACKWARD = "backward"

#: Default revisit cap per block before the state is coerced to top.
#: Matches the bounds certifier's historical ``_MAX_VISITS``.
MAX_VISITS = 64

State = Any
Transfer = Callable[[int, State], State]
Join = Callable[[State, State], State]


@dataclass
class DataflowProblem:
    """A lattice plus transfer functions; everything the engine needs.

    ``transfer(block_index, state)`` consumes the block's in-state and
    returns its out-state.  ``join`` merges two in-states at a
    control-flow merge.  ``widen(old, joined)`` is applied at widening
    points (natural-loop headers by default) to accelerate convergence;
    ``top(state)`` is forced after ``max_visits`` revisits of one block.
    Either may be ``None`` for finite-height lattices where plain joins
    already converge (the visit cap still bounds the iteration count).
    """

    entry: State
    transfer: Transfer
    join: Join
    widen: Optional[Join] = None
    top: Optional[Callable[[State], State]] = None
    direction: str = FORWARD
    #: Override the widening points; ``None`` = natural-loop headers.
    widen_points: Optional[FrozenSet[int]] = None


@dataclass
class DataflowResult:
    """Per-block fixpoint states; ``None`` for unreachable blocks."""

    in_states: List[Optional[State]]
    out_states: List[Optional[State]]


def _predecessors(cfg: CFG) -> List[List[int]]:
    preds: List[List[int]] = [[] for _ in cfg.blocks]
    for index, block in enumerate(cfg.blocks):
        for succ in block.successors:
            preds[succ].append(index)
    return preds


def solve(
    cfg: CFG,
    problem: DataflowProblem,
    max_visits: int = MAX_VISITS,
) -> DataflowResult:
    """Run the worklist fixpoint and return the per-block states.

    Forward: the entry state seeds block 0 and out-states propagate to
    successors.  Backward: the entry state seeds every exit block (a
    block with no successors) and out-states propagate to predecessors.
    """
    count = len(cfg.blocks)
    if problem.direction == FORWARD:
        edges: Sequence[Sequence[int]] = [
            block.successors for block in cfg.blocks
        ]
        roots = [0] if count else []
    elif problem.direction == BACKWARD:
        edges = _predecessors(cfg)
        roots = [
            index
            for index, block in enumerate(cfg.blocks)
            if not block.successors
        ]
    else:
        raise ValueError(f"unknown dataflow direction {problem.direction!r}")

    if problem.widen_points is not None:
        widen_points = problem.widen_points
    else:
        widen_points = frozenset(loop.header for loop in cfg.loops)

    in_states: List[Optional[State]] = [None] * count
    out_states: List[Optional[State]] = [None] * count
    visits = [0] * count
    for root in roots:
        in_states[root] = problem.entry
    worklist = list(roots)
    while worklist:
        index = worklist.pop()
        state = in_states[index]
        if state is None:
            continue
        visits[index] += 1
        if visits[index] > max_visits and problem.top is not None:
            state = problem.top(state)
            in_states[index] = state
        out = problem.transfer(index, state)
        out_states[index] = out
        for succ in edges[index]:
            old = in_states[succ]
            if old is None:
                in_states[succ] = out
                worklist.append(succ)
                continue
            joined = problem.join(old, out)
            if succ in widen_points and problem.widen is not None:
                joined = problem.widen(old, joined)
            if joined != old:
                in_states[succ] = joined
                worklist.append(succ)
    return DataflowResult(in_states=in_states, out_states=out_states)


def block_transfer(cfg: CFG, code, step) -> Transfer:
    """Lift a per-instruction small step into a forward block transfer.

    ``step(pc, instruction, locals_, stack)`` mutates the mutable
    ``locals_`` / ``stack`` lists in place, exactly the protocol the
    opcode-dispatch interpreters in ``bounds.py`` and ``flows.py`` use.
    States are ``(locals_tuple, stack_tuple)`` pairs.
    """

    def transfer(index: int, state):
        locals_, stack = list(state[0]), list(state[1])
        for pc in cfg.blocks[index].pcs:
            step(pc, code[pc], locals_, stack)
        return (tuple(locals_), tuple(stack))

    return transfer
