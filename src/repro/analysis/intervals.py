"""Abstract numeric domains for the resource-bound certifier.

Two domains, both deliberately small:

* :class:`Interval` — the classic interval domain over the integers
  (endpoints may be ``±inf``), with the standard widening operator so
  loop fixpoints converge in a handful of iterations;
* :class:`Bound` — a *symbolic* worst-case quantity: a polynomial with
  non-negative coefficients over non-negative atoms.  Atoms name facts
  about the UDF's arguments — ``len3`` is ``len(arg 3)`` (byte array,
  float array, or string), ``pos3`` is ``max(0, arg 3)`` for an integer
  argument — so a certified fuel bound like ``14 + 13·pos1 + 9·len0·pos2``
  specializes to Rel1/Rel100/Rel10000 the moment the actual arguments
  are known.

Because every atom and every coefficient is non-negative, all Bound
operations are monotone: ``+`` and ``*`` are exact polynomial algebra,
and ``join`` (coefficient-wise max) over-approximates the pointwise max
of two bounds, which is what a sound upper bound needs at control-flow
merges.  ``None`` plays ⊤ ("no finite bound"); the helper functions at
the bottom propagate it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

INF = float("inf")

#: Practical ceiling: a bound evaluating beyond this is as good as ⊤
#: (and keeps certificate arithmetic out of silly float territory).
MAX_BOUND = 2.0 ** 62


# ---------------------------------------------------------------------------
# Intervals
# ---------------------------------------------------------------------------

_INT_MIN = -(2 ** 63)
_INT_MAX = 2 ** 63 - 1


@dataclass(frozen=True)
class Interval:
    """A closed interval ``[lo, hi]``; endpoints may be ``±inf``.

    JaguarVM integers wrap at 64 bits, so any arithmetic result leaving
    the representable range collapses to ⊤ rather than pretending the
    mathematical value is the machine value.
    """

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    # -- constructors -------------------------------------------------------

    @staticmethod
    def top() -> "Interval":
        return TOP

    @staticmethod
    def const(value: int) -> "Interval":
        return Interval(value, value)

    @staticmethod
    def at_least(lo: int) -> "Interval":
        return Interval(lo, INF)

    # -- predicates ---------------------------------------------------------

    @property
    def is_const(self) -> bool:
        return self.lo == self.hi and not math.isinf(self.lo)

    @property
    def is_top(self) -> bool:
        return math.isinf(self.lo) and math.isinf(self.hi)

    # -- arithmetic ---------------------------------------------------------

    def _wrapped(self, lo: float, hi: float) -> "Interval":
        if lo < _INT_MIN or hi > _INT_MAX:
            return TOP
        return Interval(lo, hi)

    def add(self, other: "Interval") -> "Interval":
        return self._wrapped(self.lo + other.lo, self.hi + other.hi)

    def sub(self, other: "Interval") -> "Interval":
        return self._wrapped(self.lo - other.hi, self.hi - other.lo)

    def neg(self) -> "Interval":
        return self._wrapped(-self.hi, -self.lo)

    def mul(self, other: "Interval") -> "Interval":
        products = [
            _mul(a, b)
            for a in (self.lo, self.hi)
            for b in (other.lo, other.hi)
        ]
        return self._wrapped(min(products), max(products))

    # -- lattice ------------------------------------------------------------

    def join(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def widen(self, other: "Interval") -> "Interval":
        """Standard widening: a moving endpoint jumps straight to ∞."""
        lo = self.lo if other.lo >= self.lo else -INF
        hi = self.hi if other.hi <= self.hi else INF
        return Interval(lo, hi)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"[{self.lo}, {self.hi}]"


TOP = Interval(-INF, INF)
NON_NEGATIVE = Interval(0, INF)


def _mul(a: float, b: float) -> float:
    """inf-safe multiply with the convention ``0 * inf == 0``."""
    if a == 0 or b == 0:
        return 0.0
    return a * b


# ---------------------------------------------------------------------------
# Symbolic bounds
# ---------------------------------------------------------------------------

#: A monomial is the sorted tuple of its atoms (repetition = power).
Monomial = Tuple[str, ...]


@dataclass(frozen=True)
class Bound:
    """A polynomial ``Σ coeff · Π atoms`` with everything non-negative.

    ``terms`` maps each monomial to its coefficient; the empty monomial
    ``()`` is the constant term.  Instances are immutable and always
    normalized (no zero coefficients).
    """

    terms: Tuple[Tuple[Monomial, float], ...]

    # -- constructors -------------------------------------------------------

    @staticmethod
    def const(value: float) -> "Bound":
        if value < 0:
            value = 0.0
        if value == 0:
            return ZERO
        return Bound(terms=(((), float(value)),))

    @staticmethod
    def atom(name: str, coeff: float = 1.0) -> "Bound":
        if coeff <= 0:
            return ZERO
        return Bound(terms=(((name,), float(coeff)),))

    @staticmethod
    def _from_dict(mapping: Dict[Monomial, float]) -> "Bound":
        cleaned = {m: c for m, c in mapping.items() if c > 0}
        if not cleaned:
            return ZERO
        return Bound(terms=tuple(sorted(cleaned.items())))

    def _as_dict(self) -> Dict[Monomial, float]:
        return dict(self.terms)

    # -- algebra ------------------------------------------------------------

    def __add__(self, other: "Bound") -> "Bound":
        out = self._as_dict()
        for monomial, coeff in other.terms:
            out[monomial] = out.get(monomial, 0.0) + coeff
        return Bound._from_dict(out)

    def __mul__(self, other: "Bound") -> "Bound":
        out: Dict[Monomial, float] = {}
        for m1, c1 in self.terms:
            for m2, c2 in other.terms:
                monomial = tuple(sorted(m1 + m2))
                out[monomial] = out.get(monomial, 0.0) + c1 * c2
        return Bound._from_dict(out)

    def scale(self, factor: float) -> "Bound":
        if factor <= 0:
            return ZERO
        return Bound._from_dict(
            {m: c * factor for m, c in self.terms}
        )

    def join(self, other: "Bound") -> "Bound":
        """Coefficient-wise max: ≥ pointwise max since atoms are ≥ 0."""
        out = self._as_dict()
        for monomial, coeff in other.terms:
            out[monomial] = max(out.get(monomial, 0.0), coeff)
        return Bound._from_dict(out)

    # -- inspection ---------------------------------------------------------

    @property
    def is_constant(self) -> bool:
        return all(m == () for m, __ in self.terms)

    @property
    def constant_value(self) -> Optional[float]:
        """The value if constant, else ``None``."""
        if not self.is_constant:
            return None
        return self.terms[0][1] if self.terms else 0.0

    @property
    def atoms(self) -> Tuple[str, ...]:
        seen = []
        for monomial, __ in self.terms:
            for atom in monomial:
                if atom not in seen:
                    seen.append(atom)
        return tuple(sorted(seen))

    # -- consumers ----------------------------------------------------------

    def evaluate(self, env: Callable[[str], float]) -> float:
        """The bound's value for concrete atom values (``env(atom)``)."""
        total = 0.0
        for monomial, coeff in self.terms:
            product = coeff
            for atom in monomial:
                product *= max(0.0, env(atom))
            total += product
        return min(total, MAX_BOUND)

    def as_python(self, atom_expr: Callable[[str], str]) -> str:
        """Render as a Python expression (the JIT prologue consumer)."""
        if not self.terms:
            return "0"
        parts = []
        for monomial, coeff in self.terms:
            factors = [str(int(math.ceil(coeff)))]
            factors.extend(atom_expr(atom) for atom in monomial)
            parts.append("*".join(factors))
        return " + ".join(parts)

    def describe(self) -> str:
        """Human rendering for lint output and EXPLAIN."""
        if not self.terms:
            return "0"
        parts = []
        for monomial, coeff in self.terms:
            pieces = []
            whole = int(math.ceil(coeff))
            if whole != 1 or not monomial:
                pieces.append(str(whole))
            pieces.extend(monomial)
            parts.append("*".join(pieces))
        return " + ".join(parts)


ZERO = Bound(terms=())


# ---------------------------------------------------------------------------
# ⊤-propagating helpers (None plays ⊤)
# ---------------------------------------------------------------------------

OptBound = Optional[Bound]


def badd(a: OptBound, b: OptBound) -> OptBound:
    if a is None or b is None:
        return None
    return a + b


def bmul(a: OptBound, b: OptBound) -> OptBound:
    if a is None or b is None:
        return None
    return a * b


def bjoin(a: OptBound, b: OptBound) -> OptBound:
    if a is None or b is None:
        return None
    return a.join(b)


def describe_bound(bound: OptBound) -> str:
    return "⊤" if bound is None else bound.describe()
