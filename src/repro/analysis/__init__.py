"""Load-time static analysis over verified JaguarVM bytecode.

The verifier proves type and stack safety; this package answers the
*semantic* questions the rest of the system wants answered before a UDF
ever runs:

* :mod:`~repro.analysis.cfg` — basic blocks, dominators, natural loops;
* :mod:`~repro.analysis.effects` — purity/effect summaries (natives,
  callbacks, allocation, termination) closed over the call graph;
* :mod:`~repro.analysis.costs` — static per-invocation cost estimation
  and :func:`~repro.analysis.costs.derive_cost_hints` for UDFs
  registered without declared ``CostHints``;
* :mod:`~repro.analysis.lint` — the ``python -m repro.analysis`` CLI.

The class loader invokes :func:`analyze_class` right after verification,
so every loaded ``FunctionDef`` carries a ``summary`` and every
``ClassFile`` an ``analysis`` rollup.  Consumers: the security manager
(static pre-check at load), the optimizer (constant folding, rank
ordering), and the executor (pure-UDF memoization).
"""

from .cfg import CFG, BasicBlock, Loop, build_cfg
from .costs import (
    ASSUMED_TRIP_COUNT,
    DERIVED_SELECTIVITY,
    OPCODE_WEIGHTS,
    derive_cost_hints,
)
from .effects import ClassSummary, FunctionSummary, analyze_class
from .lint import Finding, lint_class, report

__all__ = [
    "ASSUMED_TRIP_COUNT",
    "BasicBlock",
    "CFG",
    "ClassSummary",
    "DERIVED_SELECTIVITY",
    "Finding",
    "FunctionSummary",
    "Loop",
    "OPCODE_WEIGHTS",
    "analyze_class",
    "build_cfg",
    "derive_cost_hints",
    "lint_class",
    "report",
]
