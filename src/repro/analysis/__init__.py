"""Load-time static analysis over verified JaguarVM bytecode.

The verifier proves type and stack safety; this package answers the
*semantic* questions the rest of the system wants answered before a UDF
ever runs:

* :mod:`~repro.analysis.cfg` — basic blocks, dominators, natural loops;
* :mod:`~repro.analysis.effects` — purity/effect summaries (natives,
  callbacks, allocation, termination) closed over the call graph;
* :mod:`~repro.analysis.intervals` — the abstract domains of the bounds
  pass: :class:`Interval` (wrap-aware int64 ranges) and :class:`Bound`
  (symbolic polynomials over input sizes);
* :mod:`~repro.analysis.bounds` — resource-bound certification: an
  abstract interpreter proving per-function worst-case fuel/heap/depth
  (:class:`ResourceCertificate`), consumed by the load gate, the
  metering-elision fast paths, admission control, and the optimizer;
* :mod:`~repro.analysis.costs` — static per-invocation cost estimation
  and :func:`~repro.analysis.costs.derive_cost_hints` for UDFs
  registered without declared ``CostHints``;
* :mod:`~repro.analysis.decompile` — Froid-style decompilation of
  pure, loop-free (or unrollable) bodies into SQL expression templates
  (:class:`InlineTemplate`) or structured refusals
  (:class:`InlineRefusal`), consumed by the optimizer's inlining
  rewrite behind ``Database(inlining=True)``;
* :mod:`~repro.analysis.lint` — the ``python -m repro.analysis`` CLI
  (plus the ``bounds`` and ``inline`` subcommands).

The class loader invokes :func:`analyze_class`, :func:`certify_class`,
and :func:`decompile_class` right after verification, so every loaded
``FunctionDef`` carries a ``summary``, a ``certificate``, and an
``inline`` result, and every ``ClassFile`` an ``analysis`` and a
``certificates`` rollup.  Consumers:
the security manager (static pre-checks at load, including the
minimum-consumption bounds gate), the interpreter/JIT (per-instruction
metering elision), thread-group admission control, the optimizer
(constant folding, rank ordering, certified cost caps), and the executor
(pure-UDF memoization).
"""

from .bounds import (
    ClassCertificates,
    LoopBound,
    ResourceCertificate,
    certify_class,
    constant_bound,
)
from .cfg import CFG, BasicBlock, Loop, build_cfg
from .costs import (
    ASSUMED_TRIP_COUNT,
    DERIVED_SELECTIVITY,
    OPCODE_WEIGHTS,
    derive_cost_hints,
)
from .decompile import (
    InlineRefusal,
    InlineTemplate,
    decompile_class,
    decompile_function,
)
from .effects import ClassSummary, FunctionSummary, analyze_class
from .intervals import Bound, Interval, describe_bound
from .lint import Finding, lint_class, report

__all__ = [
    "ASSUMED_TRIP_COUNT",
    "BasicBlock",
    "Bound",
    "CFG",
    "ClassCertificates",
    "ClassSummary",
    "DERIVED_SELECTIVITY",
    "Finding",
    "FunctionSummary",
    "InlineRefusal",
    "InlineTemplate",
    "Interval",
    "Loop",
    "LoopBound",
    "OPCODE_WEIGHTS",
    "ResourceCertificate",
    "analyze_class",
    "build_cfg",
    "certify_class",
    "constant_bound",
    "decompile_class",
    "decompile_function",
    "derive_cost_hints",
    "describe_bound",
    "lint_class",
    "report",
]
