"""Froid-style decompilation: verified bytecode to relational expressions.

The paper's central cost (Fig. 5) is per-invocation overhead — VM entry,
metering, guard checks — paid on every row.  Froid's insight (see
PAPERS.md) is that the simple UDFs dominating real workloads can be
*statically translated* into relational expressions, letting the
optimizer see through the call: no VM entry, no metering, no shm round
trip, and the lifted expression participates in constant folding,
predicate pushdown, and rank ordering like any other SQL.

This pass runs at CREATE FUNCTION time, after verification and the
effect/bounds analyses, over exactly the class of UDFs those analyses
prove safe to lift:

* **pure** — no callbacks, no unresolvable calls (the effect summary);
* **loop-free or fully unrollable** — loops with constant trip counts
  unroll during symbolic execution; any loop still branching on a
  symbolic condition refuses with ``loop``;
* **free of natives** — trusted stdlib calls stay opaque host code.

The decompiler is a symbolic evaluator over the typed stack machine:
the operand stack and locals hold :mod:`repro.sql.ast_nodes` expression
trees instead of values, parameters start as :class:`ParamRef` leaves,
and control flow either folds (constant conditions — this is what
unrolls counted loops) or forks into a ``CASE WHEN`` over both arms.
Constant operands fold with *VM-exact* semantics (64-bit wraparound,
truncating division, masked shifts) so an unrolled loop computes the
same bits the interpreter would; trapping foldings (division by zero,
F2I overflow) are left unfolded so they still raise at run time.

Every function gets either an :class:`InlineTemplate` (the lifted body
over positional parameters) or an :class:`InlineRefusal` with a reason
code from the fixed taxonomy::

    loop            symbolic loop condition, unbounded loop, recursion
    callback        crosses the sandbox/server boundary
    impure          unresolvable effects (or opaque native host code)
    unsupported-op  an opcode with no SQL equivalent (arrays, bitwise
                    ops on symbolic operands, string indexing, ...)
    too-large       step or expression-size budget exceeded

The optimizer substitutes call-site arguments into templates behind
``Database(inlining=True)``; EXPLAIN surfaces ``inlined`` vs
``opaque(<reason>)`` per call site.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from ..sql import ast_nodes as A
from ..vm.classfile import ClassFile, FunctionDef, K_CALLBACK, K_FUNC, K_STR
from ..vm.opcodes import Instr, Op
from ..vm.values import INT_MAX, INT_MIN, VMType, default_value, wrap_int
from .cfg import build_cfg

#: Refusal reason codes (the full taxonomy; CLI and EXPLAIN print these).
REASON_LOOP = "loop"
REASON_CALLBACK = "callback"
REASON_IMPURE = "impure"
REASON_UNSUPPORTED = "unsupported-op"
REASON_TOO_LARGE = "too-large"

#: Symbolic steps across the whole function (shared by unrolled
#: iterations and inlined intra-class callees): the unroll budget.
MAX_STEPS = 4096

#: Node count of the final lifted expression; DUP-heavy code can build
#: expressions exponentially larger than the bytecode.
MAX_NODES = 256

#: Intra-class call inlining depth.
MAX_CALL_DEPTH = 8


@dataclass(frozen=True)
class InlineTemplate:
    """A UDF body lifted to a SQL expression over positional parameters.

    ``expr`` is an :class:`~repro.sql.ast_nodes.Expr` whose leaves
    include :class:`~repro.sql.ast_nodes.ParamRef`; ``param_kinds`` and
    ``ret_kind`` are VM type names (``int``/``float``/``bool``/``str``/
    ``arr``/``farr``) the optimizer uses for argument coercion.
    """

    name: str
    param_kinds: Tuple[str, ...]
    ret_kind: str
    expr: A.Expr
    nodes: int


@dataclass(frozen=True)
class InlineRefusal:
    """Why a function could not be lifted."""

    name: str
    reason: str
    detail: str = ""

    def describe(self) -> str:
        text = f"refused ({self.reason})"
        if self.detail:
            text += f": {self.detail}"
        return text


InlineResult = Union[InlineTemplate, InlineRefusal]


class _Refuse(Exception):
    """Internal control flow: abort symbolic execution with a reason."""

    def __init__(self, reason: str, detail: str = ""):
        super().__init__(reason)
        self.reason = reason
        self.detail = detail


class _Budget:
    """Step budget shared across forks, unrolls, and inlined callees."""

    __slots__ = ("steps",)

    def __init__(self, steps: int = MAX_STEPS):
        self.steps = steps

    def spend(self) -> None:
        self.steps -= 1
        if self.steps < 0:
            raise _Refuse(REASON_TOO_LARGE, "symbolic step budget exceeded")


def decompile_class(cls: ClassFile) -> Dict[str, InlineResult]:
    """Decompile every function; attaches ``func.inline`` and returns
    the name -> result map."""
    results: Dict[str, InlineResult] = {}
    for name, func in cls.functions.items():
        result = decompile_function(cls, func)
        func.inline = result
        results[name] = result
    return results


def decompile_function(cls: ClassFile, func: FunctionDef) -> InlineResult:
    """Lift one function into an :class:`InlineTemplate`, or refuse."""
    try:
        _precheck(func)
        expr = _run_function(cls, func,
                             [A.ParamRef(i)
                              for i in range(len(func.param_types))],
                             _Budget(), call_chain=(func.name,))
        if expr is None:  # void entry: nothing to lift
            raise _Refuse(REASON_UNSUPPORTED, "void return type")
        nodes = _tree_size(expr)
        if nodes > MAX_NODES:
            raise _Refuse(
                REASON_TOO_LARGE,
                f"lifted expression has {nodes} nodes (limit {MAX_NODES})",
            )
        return InlineTemplate(
            name=func.name,
            param_kinds=tuple(t.value for t in func.param_types),
            ret_kind=func.ret_type.value,
            expr=expr,
            nodes=nodes,
        )
    except _Refuse as refuse:
        return InlineRefusal(func.name, refuse.reason, refuse.detail)


def _precheck(func: FunctionDef) -> None:
    """Gate on the effect summary before touching any bytecode."""
    summary = getattr(func, "summary", None)
    if summary is None:
        raise _Refuse(REASON_IMPURE, "no effect summary (class not analyzed)")
    if summary.callbacks:
        names = ", ".join(sorted(summary.callbacks))
        raise _Refuse(REASON_CALLBACK, f"calls callback(s) {names}")
    if summary.unknown_effects:
        raise _Refuse(REASON_IMPURE, "calls a function with unknown effects")
    if summary.natives:
        names = ", ".join(sorted(summary.natives))
        raise _Refuse(REASON_UNSUPPORTED, f"calls native(s) {names}")
    if summary.recursive:
        raise _Refuse(REASON_LOOP, "recursive")
    if summary.has_unbounded_loop:
        raise _Refuse(REASON_LOOP, "contains an unbounded loop")
    if func.ret_type in (VMType.ARR, VMType.FARR):
        raise _Refuse(
            REASON_UNSUPPORTED,
            f"returns {func.ret_type.value} (arrays stay opaque)",
        )


def _run_function(
    cls: ClassFile,
    func: FunctionDef,
    args: List[A.Expr],
    budget: _Budget,
    call_chain: Tuple[str, ...],
) -> Optional[A.Expr]:
    """Symbolically execute ``func`` with expression-valued arguments.

    Returns the function's return-value expression (None for VOID).
    """
    locals_: List[A.Expr] = list(args)
    for slot_type in func.local_types[len(args):]:
        locals_.append(A.Literal(default_value(slot_type)
                                 if slot_type not in (VMType.ARR, VMType.FARR)
                                 else None))
    cfg = build_cfg(func.code)
    return _exec(cls, func, cfg, 0, [], locals_, budget, call_chain)


def _exec(
    cls: ClassFile,
    func: FunctionDef,
    cfg,
    pc: int,
    stack: List[A.Expr],
    locals_: List[A.Expr],
    budget: _Budget,
    call_chain: Tuple[str, ...],
) -> Optional[A.Expr]:
    """One symbolic execution path from ``pc`` to a return.

    Branches on constant conditions follow the taken edge (this is what
    unrolls counted loops); branches on symbolic conditions fork both
    arms and merge them as a CASE — unless the branch sits inside a
    loop, where forking would never converge, so it refuses ``loop``.
    """
    code = func.code
    while True:
        budget.spend()
        ins: Instr = code[pc]
        op = ins.op

        # -- constants ----------------------------------------------------
        if op is Op.ICONST or op is Op.FCONST:
            stack.append(A.Literal(ins.arg))
        elif op is Op.BCONST:
            stack.append(A.Literal(ins.arg == 1))
        elif op is Op.SCONST:
            (text,) = cls.constant(ins.arg, K_STR)
            stack.append(A.Literal(text))

        # -- locals / stack ----------------------------------------------
        elif op is Op.LOAD:
            stack.append(locals_[ins.arg])
        elif op is Op.STORE:
            locals_[ins.arg] = stack.pop()
        elif op is Op.POP:
            stack.pop()
        elif op is Op.DUP:
            stack.append(stack[-1])
        elif op is Op.SWAP:
            stack[-1], stack[-2] = stack[-2], stack[-1]

        # -- arithmetic / comparisons / logic ------------------------------
        elif op in _BINOPS:
            b = stack.pop()
            a = stack.pop()
            stack.append(_binop(op, a, b))
        elif op in _UNOPS:
            stack.append(_unop(op, stack.pop()))

        # -- control flow --------------------------------------------------
        elif op is Op.JMP:
            pc = ins.arg
            continue
        elif op is Op.JZ or op is Op.JNZ:
            cond = stack.pop()
            if isinstance(cond, A.Literal):
                taken = (not cond.value) if op is Op.JZ else bool(cond.value)
                pc = ins.arg if taken else pc + 1
                continue
            if cfg.depth_at(pc) > 0:
                raise _Refuse(
                    REASON_LOOP,
                    f"loop condition at pc {pc} depends on arguments",
                )
            # Fork: the arm reached when ``cond`` is true becomes the
            # WHEN branch, the other arm the ELSE.
            if op is Op.JZ:
                true_pc, false_pc = pc + 1, ins.arg
            else:
                true_pc, false_pc = ins.arg, pc + 1
            true_val = _exec(cls, func, cfg, true_pc, list(stack),
                             list(locals_), budget, call_chain)
            false_val = _exec(cls, func, cfg, false_pc, list(stack),
                              list(locals_), budget, call_chain)
            if true_val is None or false_val is None:  # void paths
                return None
            return A.Case(whens=((cond, true_val),), default=false_val)
        elif op is Op.RET:
            return stack.pop()
        elif op is Op.RETV:
            return None

        # -- calls ---------------------------------------------------------
        elif op is Op.CALL:
            class_name, func_name = cls.constant(ins.arg, K_FUNC)
            if class_name != cls.name:
                raise _Refuse(
                    REASON_UNSUPPORTED,
                    f"cross-class call {class_name}.{func_name}",
                )
            if func_name in call_chain:
                raise _Refuse(REASON_LOOP, f"recursive call to {func_name}")
            if len(call_chain) >= MAX_CALL_DEPTH:
                raise _Refuse(REASON_TOO_LARGE, "call inlining too deep")
            callee = cls.functions[func_name]
            nargs = len(callee.param_types)
            call_args = stack[len(stack) - nargs:] if nargs else []
            del stack[len(stack) - nargs:]
            result = _run_function(cls, callee, list(call_args), budget,
                                   call_chain + (func_name,))
            if callee.ret_type is not VMType.VOID:
                if result is None:
                    raise _Refuse(
                        REASON_UNSUPPORTED,
                        f"callee {func_name} has divergent void paths",
                    )
                stack.append(result)
        elif op is Op.CALLBACK:
            (name,) = cls.constant(ins.arg, K_CALLBACK)
            raise _Refuse(REASON_CALLBACK, f"callback {name!r}")
        elif op is Op.NATIVE:
            raise _Refuse(REASON_UNSUPPORTED, "native call")

        else:
            raise _Refuse(REASON_UNSUPPORTED, op.name)

        pc += 1


# ---------------------------------------------------------------------------
# Opcode -> expression lowering (with VM-exact constant folding)
# ---------------------------------------------------------------------------

#: Binary opcodes lowered directly to SQL operators.  IDIV/IMOD are
#: absent: SQL ``/`` floors where the VM truncates, so they lower to the
#: VM-faithful ``idiv``/``imod`` builtins instead.
_SQL_BINOPS = {
    Op.IADD: "+", Op.ISUB: "-", Op.IMUL: "*",
    Op.FADD: "+", Op.FSUB: "-", Op.FMUL: "*", Op.FDIV: "/",
    Op.ICMPLT: "<", Op.ICMPLE: "<=", Op.ICMPGT: ">", Op.ICMPGE: ">=",
    Op.ICMPEQ: "=", Op.ICMPNE: "!=",
    Op.FCMPLT: "<", Op.FCMPLE: "<=", Op.FCMPGT: ">", Op.FCMPGE: ">=",
    Op.FCMPEQ: "=", Op.FCMPNE: "!=",
    Op.BAND: "and", Op.BOR: "or",
    Op.SCONCAT: "+", Op.SEQ: "=",
}

#: Fold-only binary opcodes: no SQL lowering exists, but constant
#: operands (loop counters, literal masks) still fold VM-exactly, so
#: counted loops over bitwise arithmetic unroll rather than refuse.
_FOLD_ONLY_BINOPS = {Op.IAND, Op.IOR, Op.IXOR, Op.ISHL, Op.ISHR}

_BINOPS = (set(_SQL_BINOPS) | _FOLD_ONLY_BINOPS
           | {Op.IDIV, Op.IMOD})

_UNOPS = {Op.INEG, Op.FNEG, Op.NOT, Op.I2F, Op.F2I, Op.SLEN}

#: VM-exact evaluation of each foldable binary opcode over Python values.
_FOLD_BIN = {
    Op.IADD: lambda a, b: wrap_int(a + b),
    Op.ISUB: lambda a, b: wrap_int(a - b),
    Op.IMUL: lambda a, b: wrap_int(a * b),
    Op.FADD: lambda a, b: a + b,
    Op.FSUB: lambda a, b: a - b,
    Op.FMUL: lambda a, b: a * b,
    Op.FDIV: lambda a, b: a / b,  # b == 0.0 is diverted before folding
    Op.IAND: lambda a, b: wrap_int(a & b),
    Op.IOR: lambda a, b: wrap_int(a | b),
    Op.IXOR: lambda a, b: wrap_int(a ^ b),
    Op.ISHL: lambda a, b: wrap_int(a << (b & 63)),
    Op.ISHR: lambda a, b: wrap_int(a >> (b & 63)),
    Op.ICMPLT: lambda a, b: a < b, Op.ICMPLE: lambda a, b: a <= b,
    Op.ICMPGT: lambda a, b: a > b, Op.ICMPGE: lambda a, b: a >= b,
    Op.ICMPEQ: lambda a, b: a == b, Op.ICMPNE: lambda a, b: a != b,
    Op.FCMPLT: lambda a, b: a < b, Op.FCMPLE: lambda a, b: a <= b,
    Op.FCMPGT: lambda a, b: a > b, Op.FCMPGE: lambda a, b: a >= b,
    Op.FCMPEQ: lambda a, b: a == b, Op.FCMPNE: lambda a, b: a != b,
    Op.BAND: lambda a, b: a and b, Op.BOR: lambda a, b: a or b,
    Op.SCONCAT: lambda a, b: a + b, Op.SEQ: lambda a, b: a == b,
}


def _binop(op: Op, a: A.Expr, b: A.Expr) -> A.Expr:
    folded = isinstance(a, A.Literal) and isinstance(b, A.Literal)
    if op is Op.IDIV or op is Op.IMOD:
        if folded and b.value != 0:
            if op is Op.IDIV:
                q = abs(a.value) // abs(b.value)
                if (a.value >= 0) != (b.value >= 0):
                    q = -q
                return A.Literal(wrap_int(q))
            return A.Literal(wrap_int(
                a.value - _fold_idiv(a.value, b.value) * b.value))
        # Division by a (possibly) zero value: emit the runtime-trapping
        # builtin rather than folding — plan time must never trap.
        name = "idiv" if op is Op.IDIV else "imod"
        return A.FuncCall(name, (a, b))
    if op is Op.FDIV and folded and b.value == 0.0:
        # Constant float division by zero traps in the VM; keep the SQL
        # division node so it raises at execution, not at CREATE time.
        return A.BinaryOp("/", a, b)
    if folded:
        return A.Literal(_FOLD_BIN[op](a.value, b.value))
    if op in _FOLD_ONLY_BINOPS:
        raise _Refuse(
            REASON_UNSUPPORTED,
            f"{op.name} with non-constant operands",
        )
    return A.BinaryOp(_SQL_BINOPS[op], a, b)


def _fold_idiv(a: int, b: int) -> int:
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _unop(op: Op, operand: A.Expr) -> A.Expr:
    if isinstance(operand, A.Literal):
        value = operand.value
        if op is Op.INEG:
            return A.Literal(wrap_int(-value))
        if op is Op.FNEG:
            return A.Literal(-value)
        if op is Op.NOT:
            return A.Literal(not value)
        if op is Op.I2F:
            return A.Literal(float(value))
        if op is Op.SLEN:
            return A.Literal(len(value))
        if op is Op.F2I:
            finite = value == value and value not in (
                float("inf"), float("-inf"))
            if finite and INT_MIN <= value <= INT_MAX:
                return A.Literal(int(value))
            return A.FuncCall("trunc", (operand,))  # traps at run time
    if op is Op.INEG or op is Op.FNEG:
        return A.UnaryOp("-", operand)
    if op is Op.NOT:
        return A.UnaryOp("not", operand)
    if op is Op.I2F:
        return A.FuncCall("float", (operand,))
    if op is Op.F2I:
        return A.FuncCall("trunc", (operand,))
    if op is Op.SLEN:
        return A.FuncCall("length", (operand,))
    raise _Refuse(REASON_UNSUPPORTED, op.name)


def _tree_size(expr: A.Expr) -> int:
    """Expression size counted *as a tree* (shared subtrees recount).

    The expression compiler recurses structurally, so shared sub-DAGs
    (from DUP) cost compile time per occurrence; counting with a
    per-node memo keeps this cheap even when the tree count is huge.
    """
    sizes: Dict[int, int] = {}

    def size(node: A.Expr) -> int:
        cached = sizes.get(id(node))
        if cached is not None:
            return cached
        total = 1
        if isinstance(node, A.BinaryOp):
            total += size(node.left) + size(node.right)
        elif isinstance(node, A.UnaryOp):
            total += size(node.operand)
        elif isinstance(node, A.FuncCall):
            total += sum(size(arg) for arg in node.args)
        elif isinstance(node, A.Case):
            total += sum(size(c) + size(v) for c, v in node.whens)
            if node.default is not None:
                total += size(node.default)
        elif isinstance(node, A.IsNull):
            total += size(node.operand)
        elif isinstance(node, A.Inlined):
            total += size(node.body)
        sizes[id(node)] = min(total, MAX_NODES + 1)
        return sizes[id(node)]

    return size(expr)
