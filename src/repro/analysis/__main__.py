"""``python -m repro.analysis`` — the UDF lint CLI."""

import sys

from .lint import main

if __name__ == "__main__":
    sys.exit(main())
