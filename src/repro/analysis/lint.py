"""UDF lint: surface analyzer findings before code is ever deployed.

``python -m repro.analysis <target>`` runs verification + analysis over
one or more classes and prints findings a DBA (or CI job) can act on:

* **unbounded-loop** (error) — a loop with no exit edge; only the fuel
  quota will ever stop it, and it will eat its whole budget doing so;
* **alloc-in-loop** (warning) — an allocation-accounted opcode inside a
  loop body: the memory quota is charged per iteration, a slow-burn way
  to hit the limit mid-query;
* **callback-in-loop** (warning) — a sandbox→server boundary crossing
  per iteration, the dominant cost term of Section 5.6;
* **dead-callback** (warning) — a callback constant-pool entry no
  instruction references: requested attack surface that buys nothing;
* **unknown-call** (warning) — a CALL whose effects could not be
  resolved, poisoning purity for the caller;
* **recursive** (note) — recursion whose depth only the fuel/call-depth
  quotas bound.

Targets may be a binary classfile (``JAGC`` magic), a JagScript source
file, or a Python file — for the latter, every string literal (and every
``AS '...'`` payload of an embedded ``CREATE FUNCTION``) is tried as
JagScript, so the ``examples/`` scripts lint without modification.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import ClassFormatError, CompileError, LinkError, VerifyError
from ..vm.classfile import MAGIC, ClassFile, K_CALLBACK
from ..vm.compiler import compile_source
from ..vm.opcodes import Op
from ..vm.verifier import self_resolver, verify_class
from .cfg import build_cfg
from .effects import ALLOC_OPS, ClassSummary, analyze_class

ERROR = "error"
WARNING = "warning"
NOTE = "note"

_LEVEL_ORDER = {ERROR: 0, WARNING: 1, NOTE: 2}


@dataclass(frozen=True)
class Finding:
    """One lint diagnostic, anchored to a function (and pc if known)."""

    level: str
    kind: str
    where: str                  # "Class.func" or bare class name
    pc: Optional[int]
    message: str

    def render(self) -> str:
        at = f"@{self.pc}" if self.pc is not None else ""
        return f"{self.level}: [{self.kind}] {self.where}{at}: {self.message}"


def lint_class(cls: ClassFile) -> List[Finding]:
    """Lint one verified+analyzed class (analyzes on demand)."""
    summary: Optional[ClassSummary] = getattr(cls, "analysis", None)
    if summary is None:
        summary = analyze_class(cls)
    findings: List[Finding] = []
    referenced_callbacks: set = set()
    for name, func in cls.functions.items():
        where = f"{cls.name}.{name}"
        cfg = build_cfg(func.code)
        fsum = summary.functions[name]
        for loop in cfg.loops:
            if loop.unbounded:
                header_pc = cfg.blocks[loop.header].start
                findings.append(Finding(
                    ERROR, "unbounded-loop", where, header_pc,
                    "loop has no exit edge; only the fuel quota stops it",
                ))
        for pc, ins in enumerate(func.code):
            depth = cfg.depth_at(pc)
            if ins.op is Op.CALLBACK:
                (cb_name,) = cls.constant(ins.arg, K_CALLBACK)
                referenced_callbacks.add(cb_name)
                if depth > 0:
                    findings.append(Finding(
                        WARNING, "callback-in-loop", where, pc,
                        f"callback {cb_name!r} inside a depth-{depth} loop: "
                        "one sandbox/server crossing per iteration",
                    ))
            elif ins.op in ALLOC_OPS and depth > 0:
                stack_depth = (
                    func.stack_in[pc] if func.stack_in is not None else "?"
                )
                findings.append(Finding(
                    WARNING, "alloc-in-loop", where, pc,
                    f"{ins.op.name} inside a depth-{depth} loop "
                    f"(operand stack {stack_depth}): memory quota is "
                    "charged every iteration",
                ))
        if fsum.unknown_effects:
            findings.append(Finding(
                WARNING, "unknown-call", where, None,
                "calls a function with unresolvable effects; "
                "treated as impure",
            ))
        if fsum.recursive:
            findings.append(Finding(
                NOTE, "recursive", where, None,
                "recursion depth bounded only by run-time quotas",
            ))
    for index, entry in enumerate(cls.pool):
        if entry.kind == K_CALLBACK and entry.value[0] not in referenced_callbacks:
            findings.append(Finding(
                WARNING, "dead-callback", cls.name, None,
                f"pool entry {index} requests callback {entry.value[0]!r} "
                "but no instruction invokes it",
            ))
    findings.sort(key=lambda f: (_LEVEL_ORDER[f.level], f.where, f.pc or 0))
    return findings


def report(cls: ClassFile) -> List[str]:
    """Human-readable lint report: summaries first, then findings."""
    if getattr(cls, "analysis", None) is None:
        analyze_class(cls)
    lines = [f"class {cls.name} ({len(cls.functions)} function(s))"]
    for name in cls.functions:
        lines.append("  " + cls.analysis.functions[name].describe())
    findings = lint_class(cls)
    if findings:
        lines.extend("  " + f.render() for f in findings)
    else:
        lines.append("  clean: no findings")
    return lines


# ---------------------------------------------------------------------------
# Target loading (classfile bytes / JagScript / embedded-in-Python)
# ---------------------------------------------------------------------------

#: ``AS '...'`` payloads inside CREATE FUNCTION statements ('' escapes a
#: quote, per SQL string-literal rules).
_AS_PAYLOAD = re.compile(r"\bAS\s+'((?:[^']|'')*)'", re.IGNORECASE | re.DOTALL)


def load_targets(path: Path) -> List[Tuple[str, ClassFile]]:
    """All lintable classes found at ``path`` (unverified), with labels."""
    data = path.read_bytes()
    if data[:4] == MAGIC:
        return [(path.name, ClassFile.from_bytes(data))]
    text = data.decode("utf-8")
    if path.suffix == ".py":
        classes: List[Tuple[str, ClassFile]] = []
        for i, candidate in enumerate(_embedded_sources(text)):
            cls = _try_compile(candidate, f"{path.stem}_{i}")
            if cls is not None:
                classes.append((f"{path.name}[{i}]", cls))
        return classes
    return [(path.name, _compile_or_raise(text, _class_name_for(path)))]


def _class_name_for(path: Path) -> str:
    stem = re.sub(r"\W", "_", path.stem) or "Lint"
    return stem[:1].upper() + stem[1:]


def _embedded_sources(text: str) -> Iterable[str]:
    """String literals that might be JagScript, dedup'd, order kept."""
    seen: Dict[str, None] = {}
    try:
        tree = ast.parse(text)
    except SyntaxError:
        tree = None
    if tree is not None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                literal = node.value
                if "def " in literal:
                    seen.setdefault(literal)
                for payload in _AS_PAYLOAD.findall(literal):
                    unescaped = payload.replace("''", "'")
                    if "def " in unescaped:
                        seen.setdefault(unescaped)
    return list(seen)


def _standard_callbacks() -> Dict[str, tuple]:
    from ..core.callbacks import standard_callback_signatures

    return dict(standard_callback_signatures())


def _try_compile(source: str, class_name: str) -> Optional[ClassFile]:
    try:
        return compile_source(source, class_name,
                              callbacks=_standard_callbacks())
    except (CompileError, ClassFormatError):
        return None


def _compile_or_raise(source: str, class_name: str) -> ClassFile:
    return compile_source(source, class_name,
                          callbacks=_standard_callbacks())


def _expand_targets(targets: List[Path]) -> List[Path]:
    """Flatten directory targets into their lintable member files."""
    paths: List[Path] = []
    for target in targets:
        if target.is_dir():
            paths.extend(sorted(
                p for p in target.iterdir()
                if p.is_file() and p.suffix in (".py", ".jag", ".jagc")
            ))
        else:
            paths.append(target)
    return paths


def bounds_main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.analysis bounds`` — resource-bound certificates.

    Prints each function's :class:`ResourceCertificate` (worst-case fuel
    and heap as symbolic functions of the inputs, call depth, proven
    minimums) plus its per-loop trip bounds.  Unbounded functions are
    reported, not failed — ``--strict`` exits nonzero only when a target
    cannot be loaded or verified, so an intentionally input-dependent
    UDF does not break CI.
    """
    import argparse

    from .bounds import certify_class

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis bounds",
        description="Static resource-bound certification over UDF classes.",
    )
    parser.add_argument(
        "targets", nargs="+", type=Path,
        help="classfile (.jagc), JagScript source, Python file with "
             "embedded UDF payloads, or a directory of such files",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit nonzero when any target fails to load or verify",
    )
    opts = parser.parse_args(argv)

    failures = 0
    for target in _expand_targets(opts.targets):
        try:
            classes = load_targets(target)
        except (OSError, ClassFormatError, CompileError,
                UnicodeDecodeError) as exc:
            print(f"{target}: cannot load: {exc}")
            failures += 1
            continue
        if not classes:
            print(f"{target}: no UDF payloads found")
            continue
        for label, cls in classes:
            print(f"-- {label}")
            try:
                verify_class(
                    cls,
                    self_resolver(cls, callbacks=_standard_callbacks()),
                )
            except (VerifyError, LinkError) as exc:
                print(f"  error: [verify] {exc}")
                failures += 1
                continue
            certificates = certify_class(cls)
            for name in sorted(certificates.functions):
                cert = certificates.functions[name]
                print("  " + cert.describe())
                for loop in cert.loops:
                    print("    " + loop.describe())
    if opts.strict and failures:
        return 1
    return 0


def inline_main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.analysis inline`` — decompilability report.

    For every UDF in every target: the lifted SQL expression the
    optimizer would substitute at call sites (``inlinable``), or the
    structured refusal (``refused (<reason>): detail``).  ``--strict``
    exits nonzero only on load/verify failures — a UDF that genuinely
    needs a loop is a fact, not a CI regression.
    """
    import argparse

    from .decompile import InlineTemplate, decompile_class
    from .effects import analyze_class as _analyze

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis inline",
        description="Froid-style decompilation report over UDF classes.",
    )
    parser.add_argument(
        "targets", nargs="+", type=Path,
        help="classfile (.jagc), JagScript source, Python file with "
             "embedded UDF payloads, or a directory of such files",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit nonzero when any target fails to load or verify",
    )
    opts = parser.parse_args(argv)

    failures = 0
    for target in _expand_targets(opts.targets):
        try:
            classes = load_targets(target)
        except (OSError, ClassFormatError, CompileError,
                UnicodeDecodeError) as exc:
            print(f"{target}: cannot load: {exc}")
            failures += 1
            continue
        if not classes:
            print(f"{target}: no UDF payloads found")
            continue
        for label, cls in classes:
            print(f"-- {label}")
            try:
                verify_class(
                    cls,
                    self_resolver(cls, callbacks=_standard_callbacks()),
                )
            except (VerifyError, LinkError) as exc:
                print(f"  error: [verify] {exc}")
                failures += 1
                continue
            # The decompiler consults the effect summaries; the lint
            # path loads classes without a ClassLoader, so run the
            # analysis here the way the loader would have.
            _analyze(cls)
            results = decompile_class(cls)
            for name in sorted(results):
                result = results[name]
                if isinstance(result, InlineTemplate):
                    from ..sql.explain import render_expr

                    print(
                        f"  {name}: inlinable "
                        f"[{result.nodes} node(s)] -> "
                        f"{render_expr(result.expr)}"
                    )
                else:
                    print(f"  {name}: {result.describe()}")
    if opts.strict and failures:
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    import argparse
    import sys

    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "bounds":
        return bounds_main(argv[1:])
    if argv and argv[0] == "inline":
        return inline_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static effect/cost/loop lint over JaguarVM UDF classes.",
    )
    parser.add_argument(
        "targets", nargs="+", type=Path,
        help="classfile (.jagc), JagScript source, or Python file with "
             "embedded UDF payloads",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit nonzero when any error-level finding is reported",
    )
    opts = parser.parse_args(argv)

    errors = 0
    for target in opts.targets:
        try:
            classes = load_targets(target)
        except (OSError, ClassFormatError, CompileError,
                UnicodeDecodeError) as exc:
            print(f"{target}: cannot load: {exc}")
            return 2
        if not classes:
            print(f"{target}: no UDF payloads found")
            continue
        for label, cls in classes:
            print(f"-- {label}")
            try:
                verify_class(
                    cls,
                    self_resolver(cls, callbacks=_standard_callbacks()),
                )
            except (VerifyError, LinkError) as exc:
                print(f"  error: [verify] {exc}")
                errors += 1
                continue
            analyze_class(cls)
            findings = lint_class(cls)
            print(f"class {cls.name} ({len(cls.functions)} function(s))")
            for name in cls.functions:
                print("  " + cls.analysis.functions[name].describe())
            if findings:
                for finding in findings:
                    print("  " + finding.render())
            else:
                print("  clean: no findings")
            errors += sum(1 for f in findings if f.level == ERROR)
    if opts.strict and errors:
        return 1
    return 0
