"""UDF lint: surface analyzer findings before code is ever deployed.

``python -m repro.analysis <target>`` runs verification + analysis over
one or more classes and prints findings a DBA (or CI job) can act on:

* **unbounded-loop** (error) — a loop with no exit edge; only the fuel
  quota will ever stop it, and it will eat its whole budget doing so;
* **alloc-in-loop** (warning) — an allocation-accounted opcode inside a
  loop body: the memory quota is charged per iteration, a slow-burn way
  to hit the limit mid-query;
* **callback-in-loop** (warning) — a sandbox→server boundary crossing
  per iteration, the dominant cost term of Section 5.6;
* **dead-callback** (warning) — a callback constant-pool entry no
  instruction references: requested attack surface that buys nothing;
* **unknown-call** (warning) — a CALL whose effects could not be
  resolved, poisoning purity for the caller;
* **recursive** (note) — recursion whose depth only the fuel/call-depth
  quotas bound.

Targets may be a binary classfile (``JAGC`` magic), a JagScript source
file, or a Python file — for the latter, every string literal (and every
``AS '...'`` payload of an embedded ``CREATE FUNCTION``) is tried as
JagScript, so the ``examples/`` scripts lint without modification.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import ClassFormatError, CompileError, LinkError, VerifyError
from ..vm.classfile import MAGIC, ClassFile, K_CALLBACK
from ..vm.compiler import compile_source
from ..vm.opcodes import Op
from ..vm.verifier import self_resolver, verify_class
from .cfg import build_cfg
from .effects import ALLOC_OPS, ClassSummary, analyze_class

ERROR = "error"
WARNING = "warning"
NOTE = "note"

_LEVEL_ORDER = {ERROR: 0, WARNING: 1, NOTE: 2}


@dataclass(frozen=True)
class Finding:
    """One lint diagnostic, anchored to a function (and pc if known)."""

    level: str
    kind: str
    where: str                  # "Class.func" or bare class name
    pc: Optional[int]
    message: str

    def render(self) -> str:
        at = f"@{self.pc}" if self.pc is not None else ""
        return f"{self.level}: [{self.kind}] {self.where}{at}: {self.message}"


def lint_class(cls: ClassFile) -> List[Finding]:
    """Lint one verified+analyzed class (analyzes on demand)."""
    summary: Optional[ClassSummary] = getattr(cls, "analysis", None)
    if summary is None:
        summary = analyze_class(cls)
    findings: List[Finding] = []
    referenced_callbacks: set = set()
    for name, func in cls.functions.items():
        where = f"{cls.name}.{name}"
        cfg = build_cfg(func.code)
        fsum = summary.functions[name]
        for loop in cfg.loops:
            if loop.unbounded:
                header_pc = cfg.blocks[loop.header].start
                findings.append(Finding(
                    ERROR, "unbounded-loop", where, header_pc,
                    "loop has no exit edge; only the fuel quota stops it",
                ))
        for pc, ins in enumerate(func.code):
            depth = cfg.depth_at(pc)
            if ins.op is Op.CALLBACK:
                (cb_name,) = cls.constant(ins.arg, K_CALLBACK)
                referenced_callbacks.add(cb_name)
                if depth > 0:
                    findings.append(Finding(
                        WARNING, "callback-in-loop", where, pc,
                        f"callback {cb_name!r} inside a depth-{depth} loop: "
                        "one sandbox/server crossing per iteration",
                    ))
            elif ins.op in ALLOC_OPS and depth > 0:
                stack_depth = (
                    func.stack_in[pc] if func.stack_in is not None else "?"
                )
                findings.append(Finding(
                    WARNING, "alloc-in-loop", where, pc,
                    f"{ins.op.name} inside a depth-{depth} loop "
                    f"(operand stack {stack_depth}): memory quota is "
                    "charged every iteration",
                ))
        if fsum.unknown_effects:
            findings.append(Finding(
                WARNING, "unknown-call", where, None,
                "calls a function with unresolvable effects; "
                "treated as impure",
            ))
        if fsum.recursive:
            findings.append(Finding(
                NOTE, "recursive", where, None,
                "recursion depth bounded only by run-time quotas",
            ))
    for index, entry in enumerate(cls.pool):
        if entry.kind == K_CALLBACK and entry.value[0] not in referenced_callbacks:
            findings.append(Finding(
                WARNING, "dead-callback", cls.name, None,
                f"pool entry {index} requests callback {entry.value[0]!r} "
                "but no instruction invokes it",
            ))
    findings.sort(key=lambda f: (_LEVEL_ORDER[f.level], f.where, f.pc or 0))
    return findings


def report(cls: ClassFile) -> List[str]:
    """Human-readable lint report: summaries first, then findings."""
    if getattr(cls, "analysis", None) is None:
        analyze_class(cls)
    lines = [f"class {cls.name} ({len(cls.functions)} function(s))"]
    for name in cls.functions:
        lines.append("  " + cls.analysis.functions[name].describe())
    findings = lint_class(cls)
    if findings:
        lines.extend("  " + f.render() for f in findings)
    else:
        lines.append("  clean: no findings")
    return lines


# ---------------------------------------------------------------------------
# Target loading (classfile bytes / JagScript / embedded-in-Python)
# ---------------------------------------------------------------------------

#: ``AS '...'`` payloads inside CREATE FUNCTION statements ('' escapes a
#: quote, per SQL string-literal rules).
_AS_PAYLOAD = re.compile(r"\bAS\s+'((?:[^']|'')*)'", re.IGNORECASE | re.DOTALL)


def load_targets(path: Path) -> List[Tuple[str, ClassFile]]:
    """All lintable classes found at ``path`` (unverified), with labels."""
    data = path.read_bytes()
    if data[:4] == MAGIC:
        return [(path.name, ClassFile.from_bytes(data))]
    text = data.decode("utf-8")
    if path.suffix == ".py":
        classes: List[Tuple[str, ClassFile]] = []
        for i, candidate in enumerate(_embedded_sources(text)):
            cls = _try_compile(candidate, f"{path.stem}_{i}")
            if cls is not None:
                classes.append((f"{path.name}[{i}]", cls))
        return classes
    return [(path.name, _compile_or_raise(text, _class_name_for(path)))]


def _class_name_for(path: Path) -> str:
    stem = re.sub(r"\W", "_", path.stem) or "Lint"
    return stem[:1].upper() + stem[1:]


def _embedded_sources(text: str) -> Iterable[str]:
    """String literals that might be JagScript, dedup'd, order kept."""
    seen: Dict[str, None] = {}
    try:
        tree = ast.parse(text)
    except SyntaxError:
        tree = None
    if tree is not None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                literal = node.value
                if "def " in literal:
                    seen.setdefault(literal)
                for payload in _AS_PAYLOAD.findall(literal):
                    unescaped = payload.replace("''", "'")
                    if "def " in unescaped:
                        seen.setdefault(unescaped)
    return list(seen)


def _standard_callbacks() -> Dict[str, tuple]:
    from ..core.callbacks import standard_callback_signatures

    return dict(standard_callback_signatures())


def _try_compile(source: str, class_name: str) -> Optional[ClassFile]:
    try:
        return compile_source(source, class_name,
                              callbacks=_standard_callbacks())
    except (CompileError, ClassFormatError):
        return None


def _compile_or_raise(source: str, class_name: str) -> ClassFile:
    return compile_source(source, class_name,
                          callbacks=_standard_callbacks())


def _expand_targets(targets: List[Path]) -> List[Path]:
    """Flatten directory targets into their lintable member files."""
    paths: List[Path] = []
    for target in targets:
        if target.is_dir():
            paths.extend(sorted(
                p for p in target.iterdir()
                if p.is_file() and p.suffix in (".py", ".jag", ".jagc")
            ))
        else:
            paths.append(target)
    return paths


# ---------------------------------------------------------------------------
# CLI plumbing shared by every subcommand
# ---------------------------------------------------------------------------
#
# Exit-code convention (uniform across ``lint``/``bounds``/``inline``/
# ``flows``/``report``):
#
# * ``0`` — every target loaded, verified, and was analyzed; findings
#   may have been reported, but none gate without ``--strict``;
# * ``1`` — ``--strict`` and at least one error-level finding (an
#   unbounded loop for ``lint``, a tainted sink flow for ``flows``);
# * ``2`` — a target failed to load or verify, ``--strict`` or not: an
#   unanalyzable input is never a clean run.


def _exit_code(failures: int, errors: int, strict: bool) -> int:
    if failures:
        return 2
    if strict and errors:
        return 1
    return 0


def _gather(targets: List[Path], sink: List[dict]):
    """Load+verify every class under ``targets``, yielding the good ones.

    Load and verify failures are appended to ``sink`` as structured
    records (and count toward exit code 2); callers print them in their
    own format.
    """
    for target in _expand_targets(targets):
        try:
            classes = load_targets(target)
        except (OSError, ClassFormatError, CompileError,
                UnicodeDecodeError) as exc:
            sink.append({"target": str(target), "error": str(exc)})
            continue
        if not classes:
            sink.append({"target": str(target), "empty": True})
            continue
        for label, cls in classes:
            try:
                verify_class(
                    cls,
                    self_resolver(cls, callbacks=_standard_callbacks()),
                )
            except (VerifyError, LinkError) as exc:
                sink.append({
                    "target": str(target), "label": label,
                    "error": f"[verify] {exc}",
                })
                continue
            yield label, cls


def _print_failures(sink: List[dict]) -> None:
    for record in sink:
        if record.get("empty"):
            print(f"{record['target']}: no UDF payloads found")
        elif "label" in record:
            print(f"-- {record['label']}")
            print(f"  error: {record['error']}")
        else:
            print(f"{record['target']}: cannot load: {record['error']}")


def _failure_count(sink: List[dict]) -> int:
    """Empty targets are reported but are not failures."""
    return sum(1 for record in sink if not record.get("empty"))


def _cli_parser(prog: str, description: str, strict_help: str):
    import argparse

    parser = argparse.ArgumentParser(prog=prog, description=description)
    parser.add_argument(
        "targets", nargs="+", type=Path,
        help="classfile (.jagc), JagScript source, Python file with "
             "embedded UDF payloads, or a directory of such files",
    )
    parser.add_argument("--strict", action="store_true", help=strict_help)
    parser.add_argument(
        "--json", action="store_true",
        help="emit one machine-readable JSON document instead of text",
    )
    return parser


# -- per-certificate JSON renderings ----------------------------------------

def _summary_dict(summary) -> dict:
    return {
        "function": summary.name,
        "pure": summary.pure,
        "natives": sorted(summary.natives),
        "callbacks": sorted(summary.callbacks),
        "allocates": summary.allocates,
        "may_not_terminate": summary.may_not_terminate,
        "has_unbounded_loop": summary.has_unbounded_loop,
        "recursive": summary.recursive,
        "unknown_effects": summary.unknown_effects,
        "loop_count": summary.loop_count,
        "max_loop_depth": summary.max_loop_depth,
        "cost_units": summary.cost_units,
    }


def _certificate_dict(cert) -> dict:
    from .intervals import describe_bound

    return {
        "function": cert.function,
        "fuel_bound": describe_bound(cert.fuel_bound),
        "local_fuel_bound": describe_bound(cert.local_fuel_bound),
        "mem_bound": describe_bound(cert.mem_bound),
        "depth_bound": cert.depth_bound,
        "min_fuel": cert.min_fuel,
        "min_memory": cert.min_memory,
        "loops": [
            {
                "header_pc": loop.header_pc,
                "trip_min": loop.trip_min,
                "trip_bound": describe_bound(loop.trip_bound),
            }
            for loop in cert.loops
        ],
    }


def _inline_dict(result) -> dict:
    from ..sql.explain import render_expr
    from .decompile import InlineTemplate

    if isinstance(result, InlineTemplate):
        return {
            "inlinable": True,
            "nodes": result.nodes,
            "sql": render_expr(result.expr),
            "param_kinds": list(result.param_kinds),
            "ret_kind": result.ret_kind,
        }
    return {
        "inlinable": False,
        "reason": result.reason,
        "detail": result.detail,
    }


def _finding_dict(finding: Finding) -> dict:
    return {
        "level": finding.level,
        "kind": finding.kind,
        "where": finding.where,
        "pc": finding.pc,
        "message": finding.message,
    }


def bounds_main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.analysis bounds`` — resource-bound certificates.

    Prints each function's :class:`ResourceCertificate` (worst-case fuel
    and heap as symbolic functions of the inputs, call depth, proven
    minimums) plus its per-loop trip bounds.  Unbounded functions are
    reported, not failed — an intentionally input-dependent UDF does not
    break CI.  A target that cannot be loaded or verified exits 2.
    """
    import json

    from .bounds import certify_class

    parser = _cli_parser(
        "python -m repro.analysis bounds",
        "Static resource-bound certification over UDF classes.",
        "kept for interface symmetry (load/verify failures always exit 2)",
    )
    opts = parser.parse_args(argv)

    failures: List[dict] = []
    documents: List[dict] = []
    for label, cls in _gather(opts.targets, failures):
        certificates = certify_class(cls)
        if opts.json:
            documents.append({
                "target": label,
                "class": cls.name,
                "functions": {
                    name: _certificate_dict(certificates.functions[name])
                    for name in sorted(certificates.functions)
                },
            })
            continue
        print(f"-- {label}")
        for name in sorted(certificates.functions):
            cert = certificates.functions[name]
            print("  " + cert.describe())
            for loop in cert.loops:
                print("    " + loop.describe())
    if opts.json:
        print(json.dumps(
            {"classes": documents, "failures": failures}, indent=2
        ))
    else:
        _print_failures(failures)
    return _exit_code(_failure_count(failures), 0, opts.strict)


def inline_main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.analysis inline`` — decompilability report.

    For every UDF in every target: the lifted SQL expression the
    optimizer would substitute at call sites (``inlinable``), or the
    structured refusal (``refused (<reason>): detail``).  A UDF that
    genuinely needs a loop is a fact, not a CI regression; only a
    target that cannot be loaded or verified fails the run (exit 2).
    """
    import json

    from .decompile import InlineTemplate, decompile_class
    from .effects import analyze_class as _analyze

    parser = _cli_parser(
        "python -m repro.analysis inline",
        "Froid-style decompilation report over UDF classes.",
        "kept for interface symmetry (load/verify failures always exit 2)",
    )
    opts = parser.parse_args(argv)

    failures: List[dict] = []
    documents: List[dict] = []
    for label, cls in _gather(opts.targets, failures):
        # The decompiler consults the effect summaries; the lint path
        # loads classes without a ClassLoader, so run the analysis here
        # the way the loader would have.
        _analyze(cls)
        results = decompile_class(cls)
        if opts.json:
            documents.append({
                "target": label,
                "class": cls.name,
                "functions": {
                    name: _inline_dict(results[name])
                    for name in sorted(results)
                },
            })
            continue
        print(f"-- {label}")
        for name in sorted(results):
            result = results[name]
            if isinstance(result, InlineTemplate):
                from ..sql.explain import render_expr

                print(
                    f"  {name}: inlinable "
                    f"[{result.nodes} node(s)] -> "
                    f"{render_expr(result.expr)}"
                )
            else:
                print(f"  {name}: {result.describe()}")
    if opts.json:
        print(json.dumps(
            {"classes": documents, "failures": failures}, indent=2
        ))
    else:
        _print_failures(failures)
    return _exit_code(_failure_count(failures), 0, opts.strict)


def flows_main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.analysis flows`` — information-flow certificates.

    For every UDF: the taint labels reaching its return value and each
    callback argument, its read-only parameters, escape/arena summary,
    and trap sites.  Each class then gets a load-gate verdict against
    the standard sink policy — ``refuse (static:flows)`` when tuple-
    derived data reaches a sink callback (what CREATE FUNCTION would
    reject), ``accept`` otherwise.  ``--strict`` turns refusals into
    exit 1; unloadable/unverifiable targets always exit 2.
    """
    import json

    from ..core.callbacks import standard_sink_callbacks
    from .flows import analyze_flows

    parser = _cli_parser(
        "python -m repro.analysis flows",
        "Static information-flow certification over UDF classes.",
        "exit 1 when any class would be refused at load",
    )
    opts = parser.parse_args(argv)

    sinks = standard_sink_callbacks()
    failures: List[dict] = []
    documents: List[dict] = []
    refusals = 0
    for label, cls in _gather(opts.targets, failures):
        flows = analyze_flows(
            cls, resolver=self_resolver(cls, callbacks=_standard_callbacks())
        )
        leaks = flows.tainted_sink_flows(sinks)
        verdict = "refuse (static:flows)" if leaks else "accept"
        if leaks:
            refusals += 1
        if opts.json:
            documents.append({
                "target": label,
                "class": cls.name,
                "functions": {
                    name: flows.functions[name].as_dict()
                    for name in sorted(flows.functions)
                },
                "leaks": [
                    {
                        "function": name,
                        "callback": flow.callback,
                        "pc": flow.pc,
                        "tainted": list(flow.tainted),
                    }
                    for name, flow in leaks
                ],
                "verdict": "refuse" if leaks else "accept",
            })
            continue
        print(f"-- {label}")
        for name in sorted(flows.functions):
            print(f"  {name}: {flows.functions[name].describe()}")
        for name, flow in leaks:
            print(
                f"  leak: {name}: {flow.callback}@{flow.pc} <- "
                f"{{{', '.join(flow.tainted)}}}"
            )
        print(f"  verdict: {verdict}")
    if opts.json:
        print(json.dumps(
            {"classes": documents, "failures": failures}, indent=2
        ))
    else:
        _print_failures(failures)
    return _exit_code(_failure_count(failures), refusals, opts.strict)


def tier_main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.analysis tier`` — tier-1 eligibility report.

    For every UDF: whether the tiered executor could promote it to a
    type-specialized whole-batch kernel, and when not, the structured
    refusal reason (``callback``, ``untyped-op``,
    ``trap-without-certificate``, ``unbounded-fuel``,
    ``mutable-array-param``).  An ineligible UDF simply stays on tier 0
    — it is a fact, not a CI regression — so refusals only gate with
    ``--strict``; unloadable/unverifiable targets always exit 2.
    """
    import json

    from ..vm.tier import kernel_eligibility
    from .bounds import certify_class
    from .flows import analyze_flows

    parser = _cli_parser(
        "python -m repro.analysis tier",
        "Tier-1 batch-kernel eligibility report over UDF classes.",
        "exit 1 when any function is refused tier-1 promotion",
    )
    opts = parser.parse_args(argv)

    failures: List[dict] = []
    documents: List[dict] = []
    refused = 0
    for label, cls in _gather(opts.targets, failures):
        # Eligibility reads the same per-function certificates the
        # loader attaches (effects, bounds, flows); the lint path loads
        # classes bare, so run those passes here.
        analyze_class(cls)
        certify_class(cls)
        analyze_flows(
            cls, resolver=self_resolver(cls, callbacks=_standard_callbacks())
        )
        verdicts = {
            name: kernel_eligibility(cls.functions[name])
            for name in sorted(cls.functions)
        }
        refused += sum(1 for r in verdicts.values() if r is not None)
        if opts.json:
            documents.append({
                "target": label,
                "class": cls.name,
                "functions": {
                    name: {
                        "eligible": refusal is None,
                        "refusal": refusal,
                    }
                    for name, refusal in verdicts.items()
                },
            })
            continue
        print(f"-- {label}")
        for name, refusal in verdicts.items():
            if refusal is None:
                print(f"  {name}: eligible")
            else:
                print(f"  {name}: refused ({refusal})")
    if opts.json:
        print(json.dumps(
            {"classes": documents, "failures": failures}, indent=2
        ))
    else:
        _print_failures(failures)
    return _exit_code(_failure_count(failures), refused, opts.strict)


def report_main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.analysis report`` — every certificate, one doc.

    Runs the whole load-time pipeline (effects, resource bounds, derived
    cost hints, decompilation, information flows) over each target and
    emits a single JSON document per run: what CREATE FUNCTION would
    know about the UDF, in machine-readable form.  Always JSON.
    """
    import json

    from ..core.callbacks import standard_sink_callbacks
    from .bounds import certify_class
    from .costs import derive_cost_hints
    from .decompile import decompile_class
    from .flows import analyze_flows

    parser = _cli_parser(
        "python -m repro.analysis report",
        "Full static-certificate report (JSON) over UDF classes.",
        "kept for interface symmetry (load/verify failures always exit 2)",
    )
    opts = parser.parse_args(argv)

    sinks = standard_sink_callbacks()
    failures: List[dict] = []
    documents: List[dict] = []
    for label, cls in _gather(opts.targets, failures):
        summary = analyze_class(cls)
        certificates = certify_class(cls)
        inline_results = decompile_class(cls)
        flows = analyze_flows(
            cls, resolver=self_resolver(cls, callbacks=_standard_callbacks())
        )
        functions = {}
        for name in sorted(cls.functions):
            fsum = summary.functions[name]
            cert = certificates.functions[name]
            hints = derive_cost_hints(fsum, cert)
            functions[name] = {
                "effects": _summary_dict(fsum),
                "bounds": _certificate_dict(cert),
                "cost": {
                    "cost_per_call": hints.cost_per_call,
                    "selectivity": hints.selectivity,
                    "derived": hints.derived,
                },
                "inline": _inline_dict(inline_results[name]),
                "flows": flows.functions[name].as_dict(),
            }
        leaks = flows.tainted_sink_flows(sinks)
        documents.append({
            "target": label,
            "class": cls.name,
            "functions": functions,
            "findings": [_finding_dict(f) for f in lint_class(cls)],
            "flow_verdict": "refuse" if leaks else "accept",
        })
    print(json.dumps({"classes": documents, "failures": failures}, indent=2))
    return _exit_code(_failure_count(failures), 0, opts.strict)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    import json
    import sys

    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "bounds":
        return bounds_main(argv[1:])
    if argv and argv[0] == "inline":
        return inline_main(argv[1:])
    if argv and argv[0] == "flows":
        return flows_main(argv[1:])
    if argv and argv[0] == "tier":
        return tier_main(argv[1:])
    if argv and argv[0] == "report":
        return report_main(argv[1:])

    parser = _cli_parser(
        "python -m repro.analysis",
        "Static effect/cost/loop lint over JaguarVM UDF classes.",
        "exit nonzero when any error-level finding is reported",
    )
    opts = parser.parse_args(argv)

    errors = 0
    failures: List[dict] = []
    documents: List[dict] = []
    for label, cls in _gather(opts.targets, failures):
        analyze_class(cls)
        findings = lint_class(cls)
        errors += sum(1 for f in findings if f.level == ERROR)
        if opts.json:
            documents.append({
                "target": label,
                "class": cls.name,
                "functions": {
                    name: _summary_dict(cls.analysis.functions[name])
                    for name in sorted(cls.functions)
                },
                "findings": [_finding_dict(f) for f in findings],
            })
            continue
        print(f"-- {label}")
        print(f"class {cls.name} ({len(cls.functions)} function(s))")
        for name in cls.functions:
            print("  " + cls.analysis.functions[name].describe())
        if findings:
            for finding in findings:
                print("  " + finding.render())
        else:
            print("  clean: no findings")
    if opts.json:
        print(json.dumps(
            {"classes": documents, "failures": failures}, indent=2
        ))
    else:
        _print_failures(failures)
    return _exit_code(_failure_count(failures), errors, opts.strict)
