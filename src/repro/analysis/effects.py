"""Effect and purity analysis over verified bytecode.

Abstract interpretation over opcodes, in the Froid/GRACEFUL spirit: the
analyzer walks every instruction of every function once, collecting an
*effect summary* — which natives it calls, which callbacks it invokes,
whether it allocates, whether it may fail to terminate — and then closes
the summaries over the intra-class call graph (Tarjan SCCs, so mutual
recursion converges in one pass).

JaguarVM makes purity unusually easy to decide: the VM has no globals,
no statics, and no shared heap — the *only* way sandboxed code can
observe or affect anything beyond its arguments is a CALLBACK into the
server (NATIVE calls are restricted to the trusted, side-effect-free
stdlib by construction; see ``vm/stdlib.py``).  So a function whose
transitive effect set contains no callbacks is a pure function of its
arguments — memoizable and foldable — which is exactly the property the
optimizer exploits.

Summaries are attached to each ``FunctionDef`` (``func.summary``) and
rolled up per class (``cls.analysis``) by :func:`analyze_class`, which
the class loader invokes right after verification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from ..vm.classfile import (
    ClassFile,
    FunctionDef,
    K_CALLBACK,
    K_FUNC,
    K_NATIVE,
)
from ..vm.opcodes import Instr, Op
from .cfg import CFG, build_cfg
from .costs import RECURSION_FACTOR, cost_of_instruction

#: Ceiling on cost units so recursive cycles cannot overflow to silly
#: magnitudes; anything near this is "assume the worst" territory.
MAX_COST_UNITS = 1e12

#: Opcodes that allocate heap memory (charged against the memory quota
#: at run time; statically they mark the function as an allocator).
ALLOC_OPS = frozenset({
    Op.NEWARR, Op.NEWFARR, Op.ACOPY, Op.SCONCAT, Op.SSUB, Op.I2S, Op.F2S,
})

#: A foreign call whose summary cannot be found is assumed to do
#: anything: not pure, may not terminate, expensive.
_UNKNOWN_CALL_COST = 1e6


@dataclass(frozen=True)
class FunctionSummary:
    """Static effect + cost summary of one function (transitive).

    ``cost_units`` is in the optimizer's abstract units: one cheap
    built-in comparison ~ 1 unit, matching the convention of
    :class:`~repro.core.udf.CostHints`.
    """

    name: str
    natives: FrozenSet[str] = frozenset()
    callbacks: FrozenSet[str] = frozenset()
    allocates: bool = False
    may_not_terminate: bool = False
    has_unbounded_loop: bool = False
    recursive: bool = False
    unknown_effects: bool = False   # unresolvable foreign call
    loop_count: int = 0
    max_loop_depth: int = 0
    cost_units: float = 0.0

    @property
    def pure(self) -> bool:
        """A pure function of its arguments: safe to fold and memoize."""
        return not self.callbacks and not self.unknown_effects

    @property
    def reads_args_only(self) -> bool:
        return self.pure

    def describe(self) -> str:
        """One-line human rendering for lint output and EXPLAIN."""
        effects: List[str] = []
        if self.pure:
            effects.append("pure")
        for name in sorted(self.callbacks):
            effects.append(f"callback:{name}")
        if self.unknown_effects:
            effects.append("unknown-calls")
        if self.allocates:
            effects.append("allocates")
        if self.has_unbounded_loop:
            effects.append("never-terminates")
        elif self.may_not_terminate:
            effects.append("may-not-terminate")
        if self.natives:
            effects.append("natives:" + ",".join(sorted(self.natives)))
        return (
            f"{self.name}: {' '.join(effects)} "
            f"cost≈{self.cost_units:.0f} "
            f"loops={self.loop_count}(depth {self.max_loop_depth})"
        )


@dataclass
class ClassSummary:
    """Per-function summaries plus the class-level effect rollup.

    The rollup is the union over *all* functions — deliberately
    conservative: the security pre-check rejects a classfile whose
    bytecode so much as references a forbidden callback, reachable from
    the entry point or not (dead code is still attack surface).
    """

    class_name: str
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)

    @property
    def callbacks(self) -> FrozenSet[str]:
        out: set = set()
        for summary in self.functions.values():
            out |= summary.callbacks
        return frozenset(out)

    @property
    def natives(self) -> FrozenSet[str]:
        out: set = set()
        for summary in self.functions.values():
            out |= summary.natives
        return frozenset(out)


#: Resolves a foreign (class, function) reference to its summary, or
#: None when unavailable (treated as unknown effects).
ForeignLookup = Callable[[str, str], Optional[FunctionSummary]]


@dataclass
class _Direct:
    """Per-function facts before call-graph closure."""

    cfg: CFG
    natives: set
    callbacks: set
    allocates: bool
    local_cost: float
    #: intra-class call sites: func name -> summed loop multiplier
    intra_calls: Dict[str, float]
    #: foreign call sites: (class, func) -> summed loop multiplier
    foreign_calls: Dict[Tuple[str, str], float]


def analyze_class(
    cls: ClassFile,
    foreign_summary: Optional[ForeignLookup] = None,
) -> ClassSummary:
    """Analyze every function of a *verified* class; attach summaries.

    Each ``FunctionDef`` gains a ``summary`` attribute and the class a
    ``cls.analysis`` rollup.  ``foreign_summary`` resolves CALLs into
    other classes (the class loader passes parent-first resolution);
    unresolvable targets poison the caller with ``unknown_effects``.
    """
    if not cls.verified:
        raise ValueError(
            f"class {cls.name!r} must be verified before analysis"
        )
    direct: Dict[str, _Direct] = {
        name: _direct_facts(cls, func)
        for name, func in cls.functions.items()
    }
    summaries = _close_over_calls(cls, direct, foreign_summary)
    for name, func in cls.functions.items():
        func.summary = summaries[name]
    result = ClassSummary(class_name=cls.name, functions=summaries)
    cls.analysis = result
    return result


def cfg_of(func: FunctionDef) -> CFG:
    """The function's CFG (rebuilt on demand; bodies are small)."""
    return build_cfg(func.code)


def _direct_facts(cls: ClassFile, func: FunctionDef) -> _Direct:
    cfg = build_cfg(func.code)
    natives: set = set()
    callbacks: set = set()
    allocates = False
    local_cost = 0.0
    intra_calls: Dict[str, float] = {}
    foreign_calls: Dict[Tuple[str, str], float] = {}
    for pc, ins in enumerate(func.code):
        multiplier = _loop_multiplier(cfg.depth_at(pc))
        if ins.op is Op.NATIVE:
            (name,) = cls.constant(ins.arg, K_NATIVE)
            natives.add(name)
        elif ins.op is Op.CALLBACK:
            (name,) = cls.constant(ins.arg, K_CALLBACK)
            callbacks.add(name)
        elif ins.op is Op.CALL:
            class_name, func_name = cls.constant(ins.arg, K_FUNC)
            if class_name == cls.name:
                intra_calls[func_name] = (
                    intra_calls.get(func_name, 0.0) + multiplier
                )
            else:
                key = (class_name, func_name)
                foreign_calls[key] = foreign_calls.get(key, 0.0) + multiplier
        if ins.op in ALLOC_OPS:
            allocates = True
        local_cost += cost_of_instruction(ins.op) * multiplier
    return _Direct(
        cfg=cfg,
        natives=natives,
        callbacks=callbacks,
        allocates=allocates,
        local_cost=min(local_cost, MAX_COST_UNITS),
        intra_calls=intra_calls,
        foreign_calls=foreign_calls,
    )


def _loop_multiplier(depth: int) -> float:
    from .costs import ASSUMED_TRIP_COUNT

    return float(ASSUMED_TRIP_COUNT) ** depth


def _close_over_calls(
    cls: ClassFile,
    direct: Dict[str, _Direct],
    foreign_summary: Optional[ForeignLookup],
) -> Dict[str, FunctionSummary]:
    """Propagate effects and costs over the intra-class call graph.

    Functions are processed one strongly-connected component at a time,
    in reverse topological order, so every callee outside the SCC is
    final when its callers are summarized.  Inside a multi-function (or
    self-recursive) SCC, effects are unioned and the combined cost is
    scaled by :data:`~repro.analysis.costs.RECURSION_FACTOR` — depth
    cannot be known statically, only bounded by the run-time quota.
    """
    order = _sccs({name: list(d.intra_calls) for name, d in direct.items()})
    summaries: Dict[str, FunctionSummary] = {}
    for component in order:
        in_scc = set(component)
        recursive = len(component) > 1 or any(
            name in direct[name].intra_calls for name in component
        )
        natives: set = set()
        callbacks: set = set()
        allocates = False
        may_not_terminate = recursive
        has_unbounded_loop = False
        unknown = False
        cost = 0.0
        loop_count = 0
        max_depth = 0
        for name in component:
            facts = direct[name]
            natives |= facts.natives
            callbacks |= facts.callbacks
            allocates = allocates or facts.allocates
            loops = facts.cfg.loops
            loop_count += len(loops)
            max_depth = max(max_depth, facts.cfg.max_loop_depth)
            if loops:
                may_not_terminate = True
            if any(loop.unbounded for loop in loops):
                has_unbounded_loop = True
            cost += facts.local_cost
            for callee, multiplier in facts.intra_calls.items():
                if callee in in_scc:
                    continue  # recursion handled by the SCC factor
                callee_summary = summaries[callee]
                natives |= callee_summary.natives
                callbacks |= callee_summary.callbacks
                allocates = allocates or callee_summary.allocates
                may_not_terminate = (
                    may_not_terminate or callee_summary.may_not_terminate
                )
                has_unbounded_loop = (
                    has_unbounded_loop or callee_summary.has_unbounded_loop
                )
                unknown = unknown or callee_summary.unknown_effects
                cost += callee_summary.cost_units * multiplier
            for (fclass, fname), multiplier in facts.foreign_calls.items():
                resolved = (
                    foreign_summary(fclass, fname)
                    if foreign_summary is not None else None
                )
                if resolved is None:
                    unknown = True
                    may_not_terminate = True
                    cost += _UNKNOWN_CALL_COST * multiplier
                else:
                    natives |= resolved.natives
                    callbacks |= resolved.callbacks
                    allocates = allocates or resolved.allocates
                    may_not_terminate = (
                        may_not_terminate or resolved.may_not_terminate
                    )
                    has_unbounded_loop = (
                        has_unbounded_loop or resolved.has_unbounded_loop
                    )
                    unknown = unknown or resolved.unknown_effects
                    cost += resolved.cost_units * multiplier
        if recursive:
            cost *= RECURSION_FACTOR
        cost = min(cost, MAX_COST_UNITS)
        for name in component:
            facts = direct[name]
            summaries[name] = FunctionSummary(
                name=f"{cls.name}.{name}",
                natives=frozenset(natives),
                callbacks=frozenset(callbacks),
                allocates=allocates,
                may_not_terminate=may_not_terminate,
                has_unbounded_loop=has_unbounded_loop,
                recursive=recursive,
                unknown_effects=unknown,
                loop_count=len(facts.cfg.loops),
                max_loop_depth=facts.cfg.max_loop_depth,
                cost_units=cost,
            )
    return summaries


def _sccs(graph: Dict[str, List[str]]) -> List[List[str]]:
    """Tarjan's SCCs, emitted in reverse topological order (callees
    before callers), ignoring edges to names outside the graph."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Dict[str, bool] = {}
    stack: List[str] = []
    counter = [0]
    result: List[List[str]] = []

    def strongconnect(node: str) -> None:
        # Iterative Tarjan: (node, iterator position) frames.
        work = [(node, 0)]
        while work:
            current, pos = work.pop()
            if pos == 0:
                index[current] = lowlink[current] = counter[0]
                counter[0] += 1
                stack.append(current)
                on_stack[current] = True
            recurse = False
            edges = [e for e in graph[current] if e in graph]
            for position in range(pos, len(edges)):
                succ = edges[position]
                if succ not in index:
                    work.append((current, position + 1))
                    work.append((succ, 0))
                    recurse = True
                    break
                if on_stack.get(succ):
                    lowlink[current] = min(lowlink[current], index[succ])
            if recurse:
                continue
            if lowlink[current] == index[current]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == current:
                        break
                result.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[current])

    for node in graph:
        if node not in index:
            strongconnect(node)
    return result
